file(REMOVE_RECURSE
  "libppg_data.a"
)
