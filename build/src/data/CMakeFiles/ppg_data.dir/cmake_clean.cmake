file(REMOVE_RECURSE
  "CMakeFiles/ppg_data.dir/corpus.cpp.o"
  "CMakeFiles/ppg_data.dir/corpus.cpp.o.d"
  "libppg_data.a"
  "libppg_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
