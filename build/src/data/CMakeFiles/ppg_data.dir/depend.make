# Empty dependencies file for ppg_data.
# This may be replaced when dependencies are built.
