file(REMOVE_RECURSE
  "CMakeFiles/ppg_core.dir/dcgen.cpp.o"
  "CMakeFiles/ppg_core.dir/dcgen.cpp.o.d"
  "CMakeFiles/ppg_core.dir/pagpassgpt.cpp.o"
  "CMakeFiles/ppg_core.dir/pagpassgpt.cpp.o.d"
  "libppg_core.a"
  "libppg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
