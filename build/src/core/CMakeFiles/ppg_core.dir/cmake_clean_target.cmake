file(REMOVE_RECURSE
  "libppg_core.a"
)
