# Empty compiler generated dependencies file for ppg_tokenizer.
# This may be replaced when dependencies are built.
