file(REMOVE_RECURSE
  "libppg_tokenizer.a"
)
