file(REMOVE_RECURSE
  "CMakeFiles/ppg_tokenizer.dir/tokenizer.cpp.o"
  "CMakeFiles/ppg_tokenizer.dir/tokenizer.cpp.o.d"
  "libppg_tokenizer.a"
  "libppg_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
