file(REMOVE_RECURSE
  "CMakeFiles/ppg_gpt.dir/infer.cpp.o"
  "CMakeFiles/ppg_gpt.dir/infer.cpp.o.d"
  "CMakeFiles/ppg_gpt.dir/model.cpp.o"
  "CMakeFiles/ppg_gpt.dir/model.cpp.o.d"
  "CMakeFiles/ppg_gpt.dir/sampler.cpp.o"
  "CMakeFiles/ppg_gpt.dir/sampler.cpp.o.d"
  "CMakeFiles/ppg_gpt.dir/trainer.cpp.o"
  "CMakeFiles/ppg_gpt.dir/trainer.cpp.o.d"
  "libppg_gpt.a"
  "libppg_gpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_gpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
