
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpt/infer.cpp" "src/gpt/CMakeFiles/ppg_gpt.dir/infer.cpp.o" "gcc" "src/gpt/CMakeFiles/ppg_gpt.dir/infer.cpp.o.d"
  "/root/repo/src/gpt/model.cpp" "src/gpt/CMakeFiles/ppg_gpt.dir/model.cpp.o" "gcc" "src/gpt/CMakeFiles/ppg_gpt.dir/model.cpp.o.d"
  "/root/repo/src/gpt/sampler.cpp" "src/gpt/CMakeFiles/ppg_gpt.dir/sampler.cpp.o" "gcc" "src/gpt/CMakeFiles/ppg_gpt.dir/sampler.cpp.o.d"
  "/root/repo/src/gpt/trainer.cpp" "src/gpt/CMakeFiles/ppg_gpt.dir/trainer.cpp.o" "gcc" "src/gpt/CMakeFiles/ppg_gpt.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ppg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/ppg_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/pcfg/CMakeFiles/ppg_pcfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
