# Empty compiler generated dependencies file for ppg_gpt.
# This may be replaced when dependencies are built.
