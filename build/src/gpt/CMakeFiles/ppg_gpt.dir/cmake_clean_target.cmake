file(REMOVE_RECURSE
  "libppg_gpt.a"
)
