# Empty dependencies file for ppg_baselines.
# This may be replaced when dependencies are built.
