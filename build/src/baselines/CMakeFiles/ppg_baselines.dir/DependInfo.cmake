
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/markov.cpp" "src/baselines/CMakeFiles/ppg_baselines.dir/markov.cpp.o" "gcc" "src/baselines/CMakeFiles/ppg_baselines.dir/markov.cpp.o.d"
  "/root/repo/src/baselines/passflow.cpp" "src/baselines/CMakeFiles/ppg_baselines.dir/passflow.cpp.o" "gcc" "src/baselines/CMakeFiles/ppg_baselines.dir/passflow.cpp.o.d"
  "/root/repo/src/baselines/passgan.cpp" "src/baselines/CMakeFiles/ppg_baselines.dir/passgan.cpp.o" "gcc" "src/baselines/CMakeFiles/ppg_baselines.dir/passgan.cpp.o.d"
  "/root/repo/src/baselines/passgpt.cpp" "src/baselines/CMakeFiles/ppg_baselines.dir/passgpt.cpp.o" "gcc" "src/baselines/CMakeFiles/ppg_baselines.dir/passgpt.cpp.o.d"
  "/root/repo/src/baselines/rules.cpp" "src/baselines/CMakeFiles/ppg_baselines.dir/rules.cpp.o" "gcc" "src/baselines/CMakeFiles/ppg_baselines.dir/rules.cpp.o.d"
  "/root/repo/src/baselines/vaepass.cpp" "src/baselines/CMakeFiles/ppg_baselines.dir/vaepass.cpp.o" "gcc" "src/baselines/CMakeFiles/ppg_baselines.dir/vaepass.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpt/CMakeFiles/ppg_gpt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ppg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/ppg_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/pcfg/CMakeFiles/ppg_pcfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
