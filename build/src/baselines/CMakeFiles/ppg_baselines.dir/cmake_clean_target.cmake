file(REMOVE_RECURSE
  "libppg_baselines.a"
)
