file(REMOVE_RECURSE
  "CMakeFiles/ppg_baselines.dir/markov.cpp.o"
  "CMakeFiles/ppg_baselines.dir/markov.cpp.o.d"
  "CMakeFiles/ppg_baselines.dir/passflow.cpp.o"
  "CMakeFiles/ppg_baselines.dir/passflow.cpp.o.d"
  "CMakeFiles/ppg_baselines.dir/passgan.cpp.o"
  "CMakeFiles/ppg_baselines.dir/passgan.cpp.o.d"
  "CMakeFiles/ppg_baselines.dir/passgpt.cpp.o"
  "CMakeFiles/ppg_baselines.dir/passgpt.cpp.o.d"
  "CMakeFiles/ppg_baselines.dir/rules.cpp.o"
  "CMakeFiles/ppg_baselines.dir/rules.cpp.o.d"
  "CMakeFiles/ppg_baselines.dir/vaepass.cpp.o"
  "CMakeFiles/ppg_baselines.dir/vaepass.cpp.o.d"
  "libppg_baselines.a"
  "libppg_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
