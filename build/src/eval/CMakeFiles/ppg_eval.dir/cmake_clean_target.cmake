file(REMOVE_RECURSE
  "libppg_eval.a"
)
