# Empty dependencies file for ppg_eval.
# This may be replaced when dependencies are built.
