file(REMOVE_RECURSE
  "CMakeFiles/ppg_eval.dir/metrics.cpp.o"
  "CMakeFiles/ppg_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/ppg_eval.dir/strength.cpp.o"
  "CMakeFiles/ppg_eval.dir/strength.cpp.o.d"
  "libppg_eval.a"
  "libppg_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
