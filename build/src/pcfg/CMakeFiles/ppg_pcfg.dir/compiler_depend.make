# Empty compiler generated dependencies file for ppg_pcfg.
# This may be replaced when dependencies are built.
