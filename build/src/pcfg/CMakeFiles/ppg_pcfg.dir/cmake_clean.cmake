file(REMOVE_RECURSE
  "CMakeFiles/ppg_pcfg.dir/pcfg_model.cpp.o"
  "CMakeFiles/ppg_pcfg.dir/pcfg_model.cpp.o.d"
  "libppg_pcfg.a"
  "libppg_pcfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_pcfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
