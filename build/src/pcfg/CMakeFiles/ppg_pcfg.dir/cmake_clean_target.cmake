file(REMOVE_RECURSE
  "libppg_pcfg.a"
)
