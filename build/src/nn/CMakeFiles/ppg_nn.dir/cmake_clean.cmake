file(REMOVE_RECURSE
  "CMakeFiles/ppg_nn.dir/graph.cpp.o"
  "CMakeFiles/ppg_nn.dir/graph.cpp.o.d"
  "libppg_nn.a"
  "libppg_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
