# Empty dependencies file for ppg_nn.
# This may be replaced when dependencies are built.
