file(REMOVE_RECURSE
  "libppg_nn.a"
)
