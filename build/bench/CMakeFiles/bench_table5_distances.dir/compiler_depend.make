# Empty compiler generated dependencies file for bench_table5_distances.
# This may be replaced when dependencies are built.
