file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_distances.dir/bench_table5_distances.cpp.o"
  "CMakeFiles/bench_table5_distances.dir/bench_table5_distances.cpp.o.d"
  "bench_table5_distances"
  "bench_table5_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
