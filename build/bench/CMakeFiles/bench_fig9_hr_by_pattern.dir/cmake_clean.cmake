file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_hr_by_pattern.dir/bench_fig9_hr_by_pattern.cpp.o"
  "CMakeFiles/bench_fig9_hr_by_pattern.dir/bench_fig9_hr_by_pattern.cpp.o.d"
  "bench_fig9_hr_by_pattern"
  "bench_fig9_hr_by_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hr_by_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
