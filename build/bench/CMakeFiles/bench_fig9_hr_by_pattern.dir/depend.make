# Empty dependencies file for bench_fig9_hr_by_pattern.
# This may be replaced when dependencies are built.
