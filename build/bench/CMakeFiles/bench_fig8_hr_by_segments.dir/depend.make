# Empty dependencies file for bench_fig8_hr_by_segments.
# This may be replaced when dependencies are built.
