file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hr_by_segments.dir/bench_fig8_hr_by_segments.cpp.o"
  "CMakeFiles/bench_fig8_hr_by_segments.dir/bench_fig8_hr_by_segments.cpp.o.d"
  "bench_fig8_hr_by_segments"
  "bench_fig8_hr_by_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hr_by_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
