file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_trawling.dir/bench_table4_trawling.cpp.o"
  "CMakeFiles/bench_table4_trawling.dir/bench_table4_trawling.cpp.o.d"
  "bench_table4_trawling"
  "bench_table4_trawling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_trawling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
