# Empty dependencies file for bench_table4_trawling.
# This may be replaced when dependencies are built.
