# Empty dependencies file for bench_fig10_repeat_rate.
# This may be replaced when dependencies are built.
