file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_classics.dir/bench_baseline_classics.cpp.o"
  "CMakeFiles/bench_baseline_classics.dir/bench_baseline_classics.cpp.o.d"
  "bench_baseline_classics"
  "bench_baseline_classics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_classics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
