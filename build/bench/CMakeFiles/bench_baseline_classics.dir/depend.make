# Empty dependencies file for bench_baseline_classics.
# This may be replaced when dependencies are built.
