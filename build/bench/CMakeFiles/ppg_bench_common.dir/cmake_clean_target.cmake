file(REMOVE_RECURSE
  "libppg_bench_common.a"
)
