file(REMOVE_RECURSE
  "CMakeFiles/ppg_bench_common.dir/common.cpp.o"
  "CMakeFiles/ppg_bench_common.dir/common.cpp.o.d"
  "libppg_bench_common.a"
  "libppg_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppg_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
