# Empty dependencies file for ppg_bench_common.
# This may be replaced when dependencies are built.
