file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pattern_conditioning.dir/bench_ablation_pattern_conditioning.cpp.o"
  "CMakeFiles/bench_ablation_pattern_conditioning.dir/bench_ablation_pattern_conditioning.cpp.o.d"
  "bench_ablation_pattern_conditioning"
  "bench_ablation_pattern_conditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pattern_conditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
