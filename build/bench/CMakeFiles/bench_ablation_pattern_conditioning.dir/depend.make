# Empty dependencies file for bench_ablation_pattern_conditioning.
# This may be replaced when dependencies are built.
