# Empty compiler generated dependencies file for bench_fig11_distance_curve.
# This may be replaced when dependencies are built.
