
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_dc_threshold.cpp" "bench/CMakeFiles/bench_ablation_dc_threshold.dir/bench_ablation_dc_threshold.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_dc_threshold.dir/bench_ablation_dc_threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ppg_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ppg_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ppg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpt/CMakeFiles/ppg_gpt.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ppg_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenizer/CMakeFiles/ppg_tokenizer.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ppg_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ppg_data.dir/DependInfo.cmake"
  "/root/repo/build/src/pcfg/CMakeFiles/ppg_pcfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
