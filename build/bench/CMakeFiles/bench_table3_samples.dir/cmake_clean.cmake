file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_samples.dir/bench_table3_samples.cpp.o"
  "CMakeFiles/bench_table3_samples.dir/bench_table3_samples.cpp.o.d"
  "bench_table3_samples"
  "bench_table3_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
