# Empty dependencies file for bench_table3_samples.
# This may be replaced when dependencies are built.
