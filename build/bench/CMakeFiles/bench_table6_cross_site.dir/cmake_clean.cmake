file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_cross_site.dir/bench_table6_cross_site.cpp.o"
  "CMakeFiles/bench_table6_cross_site.dir/bench_table6_cross_site.cpp.o.d"
  "bench_table6_cross_site"
  "bench_table6_cross_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_cross_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
