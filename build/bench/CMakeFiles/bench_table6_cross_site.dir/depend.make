# Empty dependencies file for bench_table6_cross_site.
# This may be replaced when dependencies are built.
