# Empty compiler generated dependencies file for dcgen_test.
# This may be replaced when dependencies are built.
