file(REMOVE_RECURSE
  "CMakeFiles/dcgen_test.dir/dcgen_test.cpp.o"
  "CMakeFiles/dcgen_test.dir/dcgen_test.cpp.o.d"
  "dcgen_test"
  "dcgen_test.pdb"
  "dcgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
