# Empty compiler generated dependencies file for pcfg_model_test.
# This may be replaced when dependencies are built.
