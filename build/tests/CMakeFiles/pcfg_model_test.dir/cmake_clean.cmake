file(REMOVE_RECURSE
  "CMakeFiles/pcfg_model_test.dir/pcfg_model_test.cpp.o"
  "CMakeFiles/pcfg_model_test.dir/pcfg_model_test.cpp.o.d"
  "pcfg_model_test"
  "pcfg_model_test.pdb"
  "pcfg_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcfg_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
