# Empty compiler generated dependencies file for wordlists_test.
# This may be replaced when dependencies are built.
