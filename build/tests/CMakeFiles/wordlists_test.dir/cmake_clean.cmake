file(REMOVE_RECURSE
  "CMakeFiles/wordlists_test.dir/wordlists_test.cpp.o"
  "CMakeFiles/wordlists_test.dir/wordlists_test.cpp.o.d"
  "wordlists_test"
  "wordlists_test.pdb"
  "wordlists_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordlists_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
