# Empty dependencies file for gpt_model_test.
# This may be replaced when dependencies are built.
