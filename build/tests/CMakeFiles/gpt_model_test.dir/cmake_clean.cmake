file(REMOVE_RECURSE
  "CMakeFiles/gpt_model_test.dir/gpt_model_test.cpp.o"
  "CMakeFiles/gpt_model_test.dir/gpt_model_test.cpp.o.d"
  "gpt_model_test"
  "gpt_model_test.pdb"
  "gpt_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpt_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
