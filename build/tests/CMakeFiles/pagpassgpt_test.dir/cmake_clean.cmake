file(REMOVE_RECURSE
  "CMakeFiles/pagpassgpt_test.dir/pagpassgpt_test.cpp.o"
  "CMakeFiles/pagpassgpt_test.dir/pagpassgpt_test.cpp.o.d"
  "pagpassgpt_test"
  "pagpassgpt_test.pdb"
  "pagpassgpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagpassgpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
