# Empty dependencies file for pagpassgpt_test.
# This may be replaced when dependencies are built.
