# Empty compiler generated dependencies file for cross_site_audit.
# This may be replaced when dependencies are built.
