file(REMOVE_RECURSE
  "CMakeFiles/cross_site_audit.dir/cross_site_audit.cpp.o"
  "CMakeFiles/cross_site_audit.dir/cross_site_audit.cpp.o.d"
  "cross_site_audit"
  "cross_site_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_site_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
