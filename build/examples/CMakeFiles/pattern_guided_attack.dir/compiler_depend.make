# Empty compiler generated dependencies file for pattern_guided_attack.
# This may be replaced when dependencies are built.
