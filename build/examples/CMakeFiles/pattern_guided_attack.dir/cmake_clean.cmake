file(REMOVE_RECURSE
  "CMakeFiles/pattern_guided_attack.dir/pattern_guided_attack.cpp.o"
  "CMakeFiles/pattern_guided_attack.dir/pattern_guided_attack.cpp.o.d"
  "pattern_guided_attack"
  "pattern_guided_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_guided_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
