file(REMOVE_RECURSE
  "CMakeFiles/password_strength.dir/password_strength.cpp.o"
  "CMakeFiles/password_strength.dir/password_strength.cpp.o.d"
  "password_strength"
  "password_strength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/password_strength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
