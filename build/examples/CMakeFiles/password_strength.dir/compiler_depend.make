# Empty compiler generated dependencies file for password_strength.
# This may be replaced when dependencies are built.
