# Empty compiler generated dependencies file for trawling_attack.
# This may be replaced when dependencies are built.
