file(REMOVE_RECURSE
  "CMakeFiles/trawling_attack.dir/trawling_attack.cpp.o"
  "CMakeFiles/trawling_attack.dir/trawling_attack.cpp.o.d"
  "trawling_attack"
  "trawling_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trawling_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
