// Weir-style PCFG password model (paper §II-C) plus the pattern
// distribution object reused by PagPassGPT's D&C-GEN.
//
// Training counts (a) the empirical distribution of full patterns
// ("L4N3S1") and (b), per segment spec ("L4", "N3", …), the empirical
// distribution of concrete strings filling that spec. Generation supports
// both probabilistic sampling and Weir's descending-probability
// enumeration (the classic "next" algorithm with a max-heap).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "pcfg/pattern.h"

namespace ppg::pcfg {

/// Empirical distribution over pattern strings with convenience queries
/// used throughout the evaluation (top-k, per-category grouping).
class PatternDistribution {
 public:
  /// Accumulates one observation of `pattern`.
  void add(const std::string& pattern, std::uint64_t count = 1);

  /// Freezes counts into probabilities and builds the sorted view.
  /// Must be called once after all add()s; add() after finalize() throws.
  void finalize();

  /// Probability of a pattern (0 for unseen). Requires finalize().
  double prob(const std::string& pattern) const;

  /// All patterns sorted by descending probability (ties by pattern string
  /// for determinism). Requires finalize().
  const std::vector<std::pair<std::string, double>>& sorted() const;

  /// The `k` most probable patterns. Requires finalize().
  std::vector<std::pair<std::string, double>> top_k(std::size_t k) const;

  /// The `k` most probable patterns having exactly `segments` segments.
  std::vector<std::pair<std::string, double>> top_k_with_segments(
      std::size_t k, int segments) const;

  /// Number of distinct patterns observed.
  std::size_t distinct() const noexcept { return counts_.size(); }

  /// Total observations.
  std::uint64_t total() const noexcept { return total_; }

  /// Samples a pattern by probability. Requires finalize().
  const std::string& sample(Rng& rng) const;

  /// Serializes the raw counts (requires finalize()).
  void save(BinaryWriter& w) const;

  /// Deserializes into a fresh, finalized distribution.
  static PatternDistribution load(BinaryReader& r);

 private:
  void require_finalized(const char* op) const;

  std::unordered_map<std::string, std::uint64_t> counts_;
  std::vector<std::pair<std::string, double>> sorted_;
  std::vector<double> cdf_;
  std::uint64_t total_ = 0;
  bool finalized_ = false;
};

/// Full PCFG guesser.
class PcfgModel {
 public:
  /// Fits pattern and segment distributions to the training passwords.
  /// Out-of-universe passwords are skipped.
  void train(std::span<const std::string> passwords);

  /// The learned pattern distribution (shared with D&C-GEN and benches).
  const PatternDistribution& patterns() const noexcept { return patterns_; }

  /// Samples one password: pattern by probability, then each segment's
  /// filler by probability.
  std::string sample(Rng& rng) const;

  /// Samples one password conforming to the given pattern; falls back to
  /// uniform random characters for segment specs never seen in training.
  std::string sample_with_pattern(const std::vector<Segment>& segs,
                                  Rng& rng) const;

  /// Enumerates up to `n` passwords in (approximately exact) descending
  /// probability order via Weir's next-function algorithm. Deterministic.
  std::vector<std::string> enumerate(std::size_t n) const;

  /// log P(password) under the model; ~-1e30 when unseen/unrepresentable.
  double log_prob(std::string_view password) const;

  /// Number of distinct segment specs learned (e.g. "L4").
  std::size_t spec_count() const noexcept { return fillers_.size(); }

 private:
  struct FillerTable {
    // Sorted descending by probability; ties by string.
    std::vector<std::pair<std::string, double>> items;
    std::vector<double> cdf;
    std::unordered_map<std::string, double> prob;
  };

  static std::string spec_key(const Segment& s) {
    return std::string(1, class_tag(s.cls)) + std::to_string(s.len);
  }

  PatternDistribution patterns_;
  std::unordered_map<std::string, FillerTable> fillers_;
  bool trained_ = false;
};

}  // namespace ppg::pcfg
