#include "pcfg/pcfg_model.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace ppg::pcfg {

// ---- PatternDistribution ------------------------------------------------

void PatternDistribution::add(const std::string& pattern,
                              std::uint64_t count) {
  if (finalized_)
    throw std::logic_error("PatternDistribution::add after finalize");
  counts_[pattern] += count;
  total_ += count;
}

void PatternDistribution::finalize() {
  if (finalized_) throw std::logic_error("PatternDistribution: refinalized");
  if (total_ == 0)
    throw std::logic_error("PatternDistribution: no observations");
  sorted_.reserve(counts_.size());
  for (const auto& [pat, cnt] : counts_)
    sorted_.emplace_back(pat, double(cnt) / double(total_));
  std::sort(sorted_.begin(), sorted_.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  cdf_.resize(sorted_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    acc += sorted_[i].second;
    cdf_[i] = acc;
  }
  finalized_ = true;
}

void PatternDistribution::require_finalized(const char* op) const {
  if (!finalized_)
    throw std::logic_error(std::string("PatternDistribution::") + op +
                           ": finalize() not called");
}

double PatternDistribution::prob(const std::string& pattern) const {
  require_finalized("prob");
  const auto it = counts_.find(pattern);
  return it == counts_.end() ? 0.0 : double(it->second) / double(total_);
}

const std::vector<std::pair<std::string, double>>& PatternDistribution::sorted()
    const {
  require_finalized("sorted");
  return sorted_;
}

std::vector<std::pair<std::string, double>> PatternDistribution::top_k(
    std::size_t k) const {
  require_finalized("top_k");
  const std::size_t n = std::min(k, sorted_.size());
  return {sorted_.begin(), sorted_.begin() + n};
}

std::vector<std::pair<std::string, double>>
PatternDistribution::top_k_with_segments(std::size_t k, int segments) const {
  require_finalized("top_k_with_segments");
  std::vector<std::pair<std::string, double>> out;
  for (const auto& item : sorted_) {
    if (segment_count(item.first) == segments) {
      out.push_back(item);
      if (out.size() == k) break;
    }
  }
  return out;
}

const std::string& PatternDistribution::sample(Rng& rng) const {
  require_finalized("sample");
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const std::size_t idx =
      it == cdf_.end() ? cdf_.size() - 1
                       : static_cast<std::size_t>(it - cdf_.begin());
  return sorted_[idx].first;
}

void PatternDistribution::save(BinaryWriter& w) const {
  require_finalized("save");
  w.write<std::uint64_t>(counts_.size());
  // Use the sorted view for a deterministic byte stream.
  for (const auto& [pat, prob] : sorted_) {
    w.write_string(pat);
    w.write<std::uint64_t>(counts_.at(pat));
  }
}

PatternDistribution PatternDistribution::load(BinaryReader& r) {
  PatternDistribution d;
  const auto n = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string pat = r.read_string();
    d.add(pat, r.read<std::uint64_t>());
  }
  d.finalize();
  return d;
}

// ---- PcfgModel ----------------------------------------------------------

void PcfgModel::train(std::span<const std::string> passwords) {
  if (trained_) throw std::logic_error("PcfgModel::train: retrained");
  std::unordered_map<std::string, std::unordered_map<std::string, std::uint64_t>>
      seg_counts;
  std::uint64_t used = 0;
  for (const auto& pw : passwords) {
    const auto segs = segment(pw);
    if (segs.empty()) continue;
    patterns_.add(pattern_string(segs));
    std::size_t off = 0;
    for (const auto& s : segs) {
      seg_counts[spec_key(s)][pw.substr(off, s.len)]++;
      off += s.len;
    }
    ++used;
  }
  if (used == 0)
    throw std::invalid_argument("PcfgModel::train: no usable passwords");
  patterns_.finalize();
  for (auto& [spec, table] : seg_counts) {
    FillerTable ft;
    std::uint64_t total = 0;
    for (const auto& [str, cnt] : table) total += cnt;
    ft.items.reserve(table.size());
    for (const auto& [str, cnt] : table)
      ft.items.emplace_back(str, double(cnt) / double(total));
    std::sort(ft.items.begin(), ft.items.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    ft.cdf.resize(ft.items.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < ft.items.size(); ++i) {
      acc += ft.items[i].second;
      ft.cdf[i] = acc;
      ft.prob.emplace(ft.items[i].first, ft.items[i].second);
    }
    fillers_.emplace(spec, std::move(ft));
  }
  trained_ = true;
}

namespace {
/// Uniform random character of a class (used only for unseen specs).
char random_char_of_class(CharClass cls, Rng& rng) {
  switch (cls) {
    case CharClass::kLetter: {
      const auto r = rng.uniform_u64(52);
      return r < 26 ? static_cast<char>('a' + r)
                    : static_cast<char>('A' + (r - 26));
    }
    case CharClass::kDigit:
      return static_cast<char>('0' + rng.uniform_u64(10));
    default: {
      static constexpr char kSpecials[] = "!\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~";
      return kSpecials[rng.uniform_u64(32)];
    }
  }
}

std::size_t sample_cdf(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return it == cdf.end() ? cdf.size() - 1
                         : static_cast<std::size_t>(it - cdf.begin());
}
}  // namespace

std::string PcfgModel::sample(Rng& rng) const {
  if (!trained_) throw std::logic_error("PcfgModel::sample: untrained");
  const std::string& pat = patterns_.sample(rng);
  const auto segs = parse_pattern(pat);
  return sample_with_pattern(*segs, rng);
}

std::string PcfgModel::sample_with_pattern(const std::vector<Segment>& segs,
                                           Rng& rng) const {
  if (!trained_)
    throw std::logic_error("PcfgModel::sample_with_pattern: untrained");
  std::string out;
  for (const auto& s : segs) {
    const auto it = fillers_.find(spec_key(s));
    if (it == fillers_.end() || it->second.items.empty()) {
      for (int i = 0; i < s.len; ++i) out += random_char_of_class(s.cls, rng);
    } else {
      out += it->second.items[sample_cdf(it->second.cdf, rng)].first;
    }
  }
  return out;
}

std::vector<std::string> PcfgModel::enumerate(std::size_t n) const {
  if (!trained_) throw std::logic_error("PcfgModel::enumerate: untrained");
  // Weir's next-function: states are (pattern, per-segment rank indices,
  // pivot). Each state's children bump one index at position >= pivot,
  // which makes the parent relation a tree (no duplicate states).
  struct State {
    double log_prob;
    std::uint32_t pattern_idx;
    std::uint16_t pivot;
    std::vector<std::uint32_t> ranks;
  };
  struct Cmp {
    bool operator()(const State& a, const State& b) const {
      if (a.log_prob != b.log_prob) return a.log_prob < b.log_prob;
      if (a.pattern_idx != b.pattern_idx) return a.pattern_idx > b.pattern_idx;
      return a.ranks > b.ranks;
    }
  };
  const auto& pats = patterns_.sorted();
  // Pre-resolve each pattern's filler tables.
  std::vector<std::vector<const FillerTable*>> tables(pats.size());
  std::vector<double> pat_logp(pats.size());
  std::priority_queue<State, std::vector<State>, Cmp> heap;
  for (std::uint32_t pi = 0; pi < pats.size(); ++pi) {
    const auto segs = parse_pattern(pats[pi].first);
    bool ok = segs.has_value();
    double lp = std::log(pats[pi].second);
    std::vector<const FillerTable*> ts;
    if (ok) {
      for (const auto& s : *segs) {
        const auto it = fillers_.find(spec_key(s));
        if (it == fillers_.end() || it->second.items.empty()) {
          ok = false;
          break;
        }
        ts.push_back(&it->second);
        lp += std::log(it->second.items[0].second);
      }
    }
    if (!ok) continue;
    tables[pi] = std::move(ts);
    pat_logp[pi] = std::log(pats[pi].second);
    heap.push({lp, pi, 0,
               std::vector<std::uint32_t>(tables[pi].size(), 0)});
  }
  std::vector<std::string> out;
  out.reserve(n);
  while (!heap.empty() && out.size() < n) {
    State st = heap.top();
    heap.pop();
    // Materialise the concrete password.
    std::string pw;
    const auto& ts = tables[st.pattern_idx];
    for (std::size_t i = 0; i < ts.size(); ++i)
      pw += ts[i]->items[st.ranks[i]].first;
    out.push_back(std::move(pw));
    // Children: bump rank at each position >= pivot.
    for (std::uint16_t pos = st.pivot;
         pos < static_cast<std::uint16_t>(st.ranks.size()); ++pos) {
      const auto next_rank = st.ranks[pos] + 1;
      if (next_rank >= ts[pos]->items.size()) continue;
      State child = st;
      child.ranks[pos] = next_rank;
      child.pivot = pos;
      child.log_prob =
          st.log_prob - std::log(ts[pos]->items[next_rank - 1].second) +
          std::log(ts[pos]->items[next_rank].second);
      heap.push(std::move(child));
    }
  }
  return out;
}

double PcfgModel::log_prob(std::string_view password) const {
  if (!trained_) throw std::logic_error("PcfgModel::log_prob: untrained");
  constexpr double kNegInf = -1e30;
  const auto segs = segment(std::string(password));
  if (segs.empty()) return kNegInf;
  const double pp = patterns_.prob(pattern_string(segs));
  if (pp <= 0.0) return kNegInf;
  double lp = std::log(pp);
  std::size_t off = 0;
  for (const auto& s : segs) {
    const auto it = fillers_.find(spec_key(s));
    if (it == fillers_.end()) return kNegInf;
    const auto pit =
        it->second.prob.find(std::string(password.substr(off, s.len)));
    if (pit == it->second.prob.end()) return kNegInf;
    lp += std::log(pit->second);
    off += s.len;
  }
  return lp;
}

}  // namespace ppg::pcfg
