// Password pattern structure (PCFG-style L/N/S segmentation).
//
// A password is segmented into maximal runs of a single character class:
// letters (L), digits (N), and specials (S) — exactly the scheme of Weir et
// al. used by the paper (§II-C): "abc123!" → [L3, N3, S1] → "L3N3S1".
//
// The character universe is the 94 printable ASCII characters excluding
// space (matching the paper's vocabulary and data cleaning): 52 letters,
// 10 digits, 32 specials.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppg::pcfg {

/// Character classes of the PCFG segmentation.
enum class CharClass : std::uint8_t { kLetter, kDigit, kSpecial };

/// Number of distinct characters per class (52 / 10 / 32), as used by
/// D&C-GEN's candidate filtering (paper §III-C1).
constexpr int class_size(CharClass c) noexcept {
  switch (c) {
    case CharClass::kLetter: return 52;
    case CharClass::kDigit: return 10;
    default: return 32;
  }
}

/// Single-letter tag of a class ('L', 'N', 'S').
constexpr char class_tag(CharClass c) noexcept {
  switch (c) {
    case CharClass::kLetter: return 'L';
    case CharClass::kDigit: return 'N';
    default: return 'S';
  }
}

/// True when `ch` is in the modelled universe: printable ASCII, not space.
constexpr bool in_universe(char ch) noexcept {
  const auto u = static_cast<unsigned char>(ch);
  return u > 0x20 && u < 0x7f;
}

/// Classifies an in-universe character. Precondition: in_universe(ch).
constexpr CharClass classify(char ch) noexcept {
  if ((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z'))
    return CharClass::kLetter;
  if (ch >= '0' && ch <= '9') return CharClass::kDigit;
  return CharClass::kSpecial;
}

/// One maximal run of a character class.
struct Segment {
  CharClass cls;
  int len;
  bool operator==(const Segment&) const = default;
};

/// Segments `password` into maximal class runs. Characters outside the
/// universe make the result empty (callers clean data first).
inline std::vector<Segment> segment(std::string_view password) {
  std::vector<Segment> segs;
  for (const char ch : password) {
    if (!in_universe(ch)) return {};
    const CharClass c = classify(ch);
    if (!segs.empty() && segs.back().cls == c)
      ++segs.back().len;
    else
      segs.push_back({c, 1});
  }
  return segs;
}

/// Renders segments as a pattern string, e.g. "L4N3S1".
inline std::string pattern_string(const std::vector<Segment>& segs) {
  std::string s;
  for (const auto& seg : segs) {
    s += class_tag(seg.cls);
    s += std::to_string(seg.len);
  }
  return s;
}

/// Pattern of a password ("" if the password is empty or out-of-universe).
inline std::string pattern_of(std::string_view password) {
  return pattern_string(segment(password));
}

/// Parses a pattern string back into segments; std::nullopt on malformed
/// input (unknown tag, missing length, zero length, adjacent same-class
/// segments are accepted — they can arise from user-provided patterns).
inline std::optional<std::vector<Segment>> parse_pattern(
    std::string_view pattern) {
  std::vector<Segment> segs;
  std::size_t i = 0;
  while (i < pattern.size()) {
    CharClass cls;
    switch (pattern[i]) {
      case 'L': cls = CharClass::kLetter; break;
      case 'N': cls = CharClass::kDigit; break;
      case 'S': cls = CharClass::kSpecial; break;
      default: return std::nullopt;
    }
    ++i;
    int len = 0;
    std::size_t digits = 0;
    while (i < pattern.size() && pattern[i] >= '0' && pattern[i] <= '9') {
      len = len * 10 + (pattern[i] - '0');
      ++i;
      ++digits;
      if (len > 1000) return std::nullopt;  // reject absurd lengths early
    }
    if (digits == 0 || len == 0) return std::nullopt;
    segs.push_back({cls, len});
  }
  if (segs.empty()) return std::nullopt;
  return segs;
}

/// Total character length described by a pattern.
inline int pattern_length(const std::vector<Segment>& segs) {
  int n = 0;
  for (const auto& s : segs) n += s.len;
  return n;
}

/// Number of segments in a pattern string (its "category" in the paper's
/// Fig. 8/9 terminology); -1 for malformed patterns.
inline int segment_count(std::string_view pattern) {
  const auto parsed = parse_pattern(pattern);
  return parsed ? static_cast<int>(parsed->size()) : -1;
}

/// Character class of position `pos` (0-based) under a pattern, or
/// std::nullopt when pos is past the pattern's end. Used by pattern-guided
/// samplers and D&C-GEN to filter candidate tokens.
inline std::optional<CharClass> class_at(const std::vector<Segment>& segs,
                                         int pos) {
  for (const auto& s : segs) {
    if (pos < s.len) return s.cls;
    pos -= s.len;
  }
  return std::nullopt;
}

/// Upper bound on the number of distinct passwords matching a pattern
/// (52^L · 10^N · 32^S), saturating at `cap`. Implements the paper's
/// §III-C3 optimisation 2 ("reset N_Pi to the maximum number").
inline double pattern_capacity(const std::vector<Segment>& segs,
                               double cap = 1e18) {
  double total = 1.0;
  for (const auto& s : segs) {
    for (int i = 0; i < s.len; ++i) {
      total *= class_size(s.cls);
      if (total >= cap) return cap;
    }
  }
  return total;
}

/// True when `password` conforms to `segs` exactly (same classes in the
/// same run structure and total length).
inline bool matches_pattern(std::string_view password,
                            const std::vector<Segment>& segs) {
  return segment(password) == segs;
}

}  // namespace ppg::pcfg
