#include "gpt/model.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "common/durable_io.h"
#include "common/failpoint.h"
#include "common/serialize.h"

namespace ppg::gpt {

void Config::validate() const {
  if (vocab <= 0 || d_model <= 0 || n_layers <= 0 || n_heads <= 0 ||
      context <= 0)
    throw std::invalid_argument("gpt::Config: nonpositive dimension");
  if (d_model % n_heads != 0)
    throw std::invalid_argument("gpt::Config: d_model % n_heads != 0");
  if (dropout < 0.f || dropout >= 1.f)
    throw std::invalid_argument("gpt::Config: dropout outside [0,1)");
}

GptModel::GptModel(Config cfg, std::uint64_t seed) : cfg_(cfg) {
  cfg_.validate();
  Rng rng(seed, "gpt-init");
  wte_ = nn::Embedding(params_, "wte", cfg_.vocab, cfg_.d_model, rng);
  wpe_ = nn::Embedding(params_, "wpe", cfg_.context, cfg_.d_model, rng);
  // GPT-2 scales residual-path projections by 1/sqrt(2*n_layers).
  const float resid_scale =
      1.0f / std::sqrt(2.0f * static_cast<float>(cfg_.n_layers));
  blocks_.reserve(cfg_.n_layers);
  for (Index l = 0; l < cfg_.n_layers; ++l) {
    const std::string p = "h" + std::to_string(l);
    Block b;
    b.ln1 = nn::LayerNorm(params_, p + ".ln1", cfg_.d_model);
    b.qkv = nn::Linear(params_, p + ".qkv", cfg_.d_model, 3 * cfg_.d_model,
                       rng);
    b.proj = nn::Linear(params_, p + ".proj", cfg_.d_model, cfg_.d_model, rng,
                        resid_scale);
    b.ln2 = nn::LayerNorm(params_, p + ".ln2", cfg_.d_model);
    b.fc1 = nn::Linear(params_, p + ".fc1", cfg_.d_model, cfg_.d_ff(), rng);
    b.fc2 = nn::Linear(params_, p + ".fc2", cfg_.d_ff(), cfg_.d_model, rng,
                       resid_scale);
    blocks_.push_back(std::move(b));
  }
  ln_f_ = nn::LayerNorm(params_, "ln_f", cfg_.d_model);
  lm_head_ = nn::Linear(params_, "lm_head", cfg_.d_model, cfg_.vocab, rng);
}

nn::Tensor GptModel::forward(nn::Graph& g, const std::vector<int>& ids,
                             Index batch, Index time, Rng* dropout_rng) const {
  if (static_cast<Index>(ids.size()) != batch * time)
    throw std::invalid_argument("GptModel::forward: ids.size() != batch*time");
  if (time > cfg_.context)
    throw std::invalid_argument("GptModel::forward: time exceeds context");
  // Position ids repeat 0..time-1 per sequence.
  std::vector<int> pos(ids.size());
  for (Index b = 0; b < batch; ++b)
    for (Index t = 0; t < time; ++t) pos[b * time + t] = static_cast<int>(t);

  nn::Tensor x = g.add(g.embedding(ids, wte_.table()),
                       g.embedding(pos, wpe_.table()));
  const bool drop = dropout_rng != nullptr && cfg_.dropout > 0.f;
  if (drop) x = g.dropout(x, cfg_.dropout, *dropout_rng);
  for (const Block& blk : blocks_) {
    nn::Tensor att = blk.proj.forward(
        g, g.causal_self_attention(blk.qkv.forward(g, blk.ln1.forward(g, x)),
                                   batch, time, cfg_.n_heads));
    if (drop) att = g.dropout(att, cfg_.dropout, *dropout_rng);
    x = g.add(x, att);
    nn::Tensor mlp = blk.fc2.forward(
        g, g.gelu(blk.fc1.forward(g, blk.ln2.forward(g, x))));
    if (drop) mlp = g.dropout(mlp, cfg_.dropout, *dropout_rng);
    x = g.add(x, mlp);
  }
  return lm_head_.forward(g, ln_f_.forward(g, x));
}

nn::Tensor GptModel::loss(nn::Graph& g, const std::vector<int>& inputs,
                          const std::vector<int>& targets, Index batch,
                          Index time, int ignore_index,
                          Rng* dropout_rng) const {
  if (inputs.size() != targets.size())
    throw std::invalid_argument("GptModel::loss: input/target size mismatch");
  const nn::Tensor logits = forward(g, inputs, batch, time, dropout_rng);
  return g.cross_entropy(logits, targets, ignore_index);
}

double GptModel::evaluate_nll(const std::vector<std::vector<int>>& sequences,
                              Index batch_size, int pad_token) const {
  double total = 0.0;
  std::size_t tokens = 0;
  // Sequences that do not fit the context window are skipped (mirrors the
  // trainer's filtering).
  std::vector<const std::vector<int>*> usable;
  usable.reserve(sequences.size());
  for (const auto& seq : sequences)
    if (seq.size() >= 2 &&
        static_cast<Index>(seq.size()) <= cfg_.context + 1)
      usable.push_back(&seq);
  nn::Graph g;
  for (std::size_t start = 0; start < usable.size();
       start += static_cast<std::size_t>(batch_size)) {
    const std::size_t end =
        std::min(usable.size(), start + static_cast<std::size_t>(batch_size));
    const Index batch = static_cast<Index>(end - start);
    Index time = 0;
    for (std::size_t i = start; i < end; ++i)
      time = std::max(time, static_cast<Index>(usable[i]->size()) - 1);
    if (time <= 0) continue;
    std::vector<int> inputs(batch * time, pad_token);
    std::vector<int> targets(batch * time, -1);
    std::size_t counted = 0;
    for (Index b = 0; b < batch; ++b) {
      const auto& seq = *usable[start + b];
      for (std::size_t t = 0; t + 1 < seq.size(); ++t) {
        inputs[b * time + static_cast<Index>(t)] = seq[t];
        targets[b * time + static_cast<Index>(t)] = seq[t + 1];
        ++counted;
      }
    }
    if (counted == 0) continue;
    g.clear();
    const nn::Tensor l = loss(g, inputs, targets, batch, time, -1);
    total += double(l.at(0)) * double(counted);
    tokens += counted;
  }
  g.clear();
  return tokens == 0 ? 0.0 : total / double(tokens);
}

namespace {
constexpr std::uint32_t kMagic = 0x50504721;  // "PPG!"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void GptModel::save(const std::string& path) const {
  durable::atomic_save(path, [this](BinaryWriter& w) {
    w.write(kMagic);
    w.write(kVersion);
    w.write(cfg_.vocab);
    w.write(cfg_.d_model);
    w.write(cfg_.n_layers);
    w.write(cfg_.n_heads);
    w.write(cfg_.context);
    w.write(cfg_.dropout);
    // Kill point between the header and the bulk of the payload: a crash
    // here must leave the previous checkpoint untouched on the final path.
    PPG_FAILPOINT("model.save.mid_write");
    params_.save(w);
  });
}

void GptModel::load(const std::string& path) {
  // Serving loads checkpoints from operator-supplied paths, so every
  // corruption mode must surface as a descriptive error — never as garbage
  // weights. The durable_io CRC footer catches truncation and bit damage
  // wholesale; the phase checks below then name what a *well-formed but
  // wrong* file contains (foreign magic, version skew, config mismatch).
  const auto fail = [&path](const std::string& what) -> std::runtime_error {
    return std::runtime_error("GptModel::load: " + path + ": " + what);
  };
  try {
    durable::checked_load_or_legacy(path, [&](BinaryReader& r) {
      const auto magic = r.read<std::uint32_t>();
      if (magic != kMagic)
        throw fail("bad magic 0x" + [magic] {
          char buf[16];
          std::snprintf(buf, sizeof buf, "%08x", magic);
          return std::string(buf);
        }() + " (not a PagPassGPT checkpoint)");
      const auto version = r.read<std::uint32_t>();
      if (version != kVersion)
        throw fail("unsupported checkpoint version " +
                   std::to_string(version) + " (this build reads version " +
                   std::to_string(kVersion) + ")");
      Config stored;
      stored.vocab = r.read<Index>();
      stored.d_model = r.read<Index>();
      stored.n_layers = r.read<Index>();
      stored.n_heads = r.read<Index>();
      stored.context = r.read<Index>();
      stored.dropout = r.read<float>();
      try {
        stored.validate();
      } catch (const std::exception& e) {
        throw fail(std::string("corrupt config block: ") + e.what());
      }
      if (stored.vocab != cfg_.vocab || stored.d_model != cfg_.d_model ||
          stored.n_layers != cfg_.n_layers || stored.n_heads != cfg_.n_heads ||
          stored.context != cfg_.context)
        throw fail("config mismatch: checkpoint has vocab=" +
                   std::to_string(stored.vocab) +
                   " d_model=" + std::to_string(stored.d_model) +
                   " n_layers=" + std::to_string(stored.n_layers) +
                   " n_heads=" + std::to_string(stored.n_heads) +
                   " context=" + std::to_string(stored.context) +
                   ", this model expects vocab=" + std::to_string(cfg_.vocab) +
                   " d_model=" + std::to_string(cfg_.d_model) +
                   " n_layers=" + std::to_string(cfg_.n_layers) +
                   " n_heads=" + std::to_string(cfg_.n_heads) +
                   " context=" + std::to_string(cfg_.context));
      try {
        params_.load(r);
      } catch (const std::exception& e) {
        throw fail(std::string("tensor data: ") + e.what());
      }
    });
  } catch (const std::runtime_error& e) {
    // durable_io and reader errors carry no GptModel context; wrap once.
    const std::string msg = e.what();
    if (msg.rfind("GptModel::load:", 0) == 0) throw;
    throw fail(msg);
  }
  // The weights changed: drop any cached int8 view so the next quantized()
  // call rebuilds it from the loaded parameters.
  MutexLock lock(quant_.mu);
  quant_.weights.reset();
}

std::size_t QuantizedWeights::bytes() const {
  std::size_t total = lm_head.bytes();
  for (const QuantizedBlock& b : blocks)
    total += b.qkv.bytes() + b.proj.bytes() + b.fc1.bytes() + b.fc2.bytes();
  return total;
}

const QuantizedWeights& GptModel::quantized() const {
  MutexLock lock(quant_.mu);
  if (quant_.weights == nullptr) {
    auto quantize = [](const nn::Linear& lin) {
      const nn::Tensor& w = lin.weight();  // [k, n] row-major
      return nn::quant::quantize_weights(w.data().data(), w.dim(0), w.dim(1));
    };
    auto q = std::make_unique<QuantizedWeights>();
    q->blocks.reserve(blocks_.size());
    for (const Block& b : blocks_)
      q->blocks.push_back({quantize(b.qkv), quantize(b.proj),
                           quantize(b.fc1), quantize(b.fc2)});
    q->lm_head = quantize(lm_head_);
    quant_.weights = std::move(q);
  }
  return *quant_.weights;
}

}  // namespace ppg::gpt
