// LM training loop: shuffled minibatches, AdamW, linear warmup + cosine
// decay, global-norm gradient clipping, per-epoch validation NLL.
//
// Mirrors the paper's setup (§IV-B1: AdamW, batch 512, 30 epochs, initial
// LR 5e-5 on 4 GPUs) scaled to one CPU core: smaller batches, fewer
// epochs, proportionally larger LR.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gpt/model.h"

namespace ppg::gpt {

/// Training hyperparameters.
struct TrainConfig {
  int epochs = 6;
  Index batch_size = 64;
  float lr = 1e-3f;
  float warmup_frac = 0.03f;  ///< fraction of total steps spent warming up
  bool cosine_decay = true;
  float grad_clip = 1.0f;
  float weight_decay = 0.01f;
  std::uint64_t seed = 42;
  int log_every = 0;  ///< steps between progress logs; 0 = silent

  /// Steps between durable checkpoints; 0 disables checkpointing.
  std::size_t checkpoint_every = 0;
  /// Directory for the checkpoint manifest and snapshots. Must be set when
  /// checkpoint_every > 0. If it already holds a manifest whose latest good
  /// entry matches this run's config and data fingerprint, training resumes
  /// from that snapshot and the result is bitwise identical to an
  /// uninterrupted run.
  std::string checkpoint_dir;
  /// Checkpoint generations to retain (older ones are pruned).
  std::size_t checkpoint_keep = 2;
};

/// Per-epoch training record.
struct TrainReport {
  std::vector<double> epoch_loss;  ///< mean train loss per epoch
  std::vector<double> valid_nll;   ///< validation NLL per epoch (if any)
  std::size_t steps = 0;
  std::size_t resumed_from_step = 0;  ///< 0 when the run started fresh
};

/// Optional per-epoch callback: (epoch, train_loss, valid_nll).
using EpochHook = std::function<void(int, double, double)>;

/// Trains `model` on tokenised sequences (each a full rule, length >= 2).
/// Sequences longer than the model context are skipped with a warning.
/// `pad_token` fills ragged batch tails; padded targets are ignored in the
/// loss. Deterministic for a fixed config.
TrainReport train_lm(GptModel& model,
                     const std::vector<std::vector<int>>& train_seqs,
                     const std::vector<std::vector<int>>& valid_seqs,
                     const TrainConfig& cfg, int pad_token,
                     const EpochHook& hook = nullptr);

}  // namespace ppg::gpt
