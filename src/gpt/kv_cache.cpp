#include "gpt/kv_cache.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace ppg::gpt {

KvCacheMetrics& kv_cache_metrics() {
  auto& r = obs::Registry::global();
  static KvCacheMetrics m{r.counter("kv_cache.hits"),
                          r.counter("kv_cache.misses"),
                          r.counter("kv_cache.inserts"),
                          r.counter("kv_cache.evictions"),
                          r.counter("kv_cache.evicted_bytes"),
                          r.gauge("kv_cache.bytes"),
                          r.counter("kv_cache.prefill_tokens"),
                          r.counter("kv_cache.prefill_saved")};
  return m;
}

std::size_t KvState::bytes() const noexcept {
  std::size_t total = logits.size() * sizeof(float);
  for (const auto& blk : k) total += blk.size() * sizeof(float);
  for (const auto& blk : v) total += blk.size() * sizeof(float);
  return total;
}

/// One trie node: an edge token from its parent, children by token id, and
/// (for inserted prefixes) the owned KvState. Interior nodes created only
/// as path scaffolding carry no state and are pruned when their subtree
/// empties.
struct KvTrieCache::Node {
  Node* parent = nullptr;
  int token = -1;
  std::map<int, std::unique_ptr<Node>> children;
  std::unique_ptr<KvState> state;
  int pins = 0;  ///< live Handles; > 0 exempts the node from eviction
};

KvTrieCache::KvTrieCache(std::size_t budget)
    : max_bytes(budget), root_(std::make_unique<Node>()) {}

KvTrieCache::~KvTrieCache() {
  // A Handle outliving its cache would unpin into freed memory; make that
  // programming error loud at the source. Taken under the lock: destruction
  // racing a live Handle is already UB, but the lock keeps the check itself
  // well-defined (and visible to the thread-safety analysis) when the last
  // release() is still in flight on another thread.
  MutexLock lock(mu_);
  PPG_CHECK(pinned_ == 0, "KvTrieCache destroyed with %zu pinned nodes",
            pinned_);
}

KvTrieCache::Node* KvTrieCache::walk_locked(std::span<const int> prefix,
                                            bool create) {
  Node* n = root_.get();
  for (const int tok : prefix) {
    auto it = n->children.find(tok);
    if (it == n->children.end()) {
      if (!create) return nullptr;
      auto child = std::make_unique<Node>();
      child->parent = n;
      child->token = tok;
      it = n->children.emplace(tok, std::move(child)).first;
    }
    n = it->second.get();
  }
  return n;
}

KvTrieCache::Handle KvTrieCache::pin_locked(Node* n) {
  if (n->pins++ == 0) {
    ++pinned_;
    lru_detach_locked(n);
  }
  return Handle(this, n);
}

void KvTrieCache::lru_detach_locked(Node* n) {
  const auto it = std::find(lru_.begin(), lru_.end(), n);
  if (it != lru_.end()) lru_.erase(it);
}

KvTrieCache::Handle KvTrieCache::find(std::span<const int> prefix) {
  MutexLock lock(mu_);
  Node* n = walk_locked(prefix, /*create=*/false);
  if (n == nullptr || !n->state) {
    kv_cache_metrics().misses.inc();
    return {};
  }
  kv_cache_metrics().hits.inc();
  return pin_locked(n);
}

KvTrieCache::Handle KvTrieCache::find_longest(std::span<const int> prefix) {
  MutexLock lock(mu_);
  Node* n = root_.get();
  Node* deepest = nullptr;
  for (const int tok : prefix) {
    const auto it = n->children.find(tok);
    if (it == n->children.end()) break;
    n = it->second.get();
    if (n->state) deepest = n;
  }
  if (deepest == nullptr) {
    kv_cache_metrics().misses.inc();
    return {};
  }
  kv_cache_metrics().hits.inc();
  return pin_locked(deepest);
}

void KvTrieCache::insert(std::span<const int> prefix, KvState state) {
  MutexLock lock(mu_);
  Node* n = walk_locked(prefix, /*create=*/true);
  if (n->state) return;  // first insert wins; the copies are bitwise equal
  n->state = std::make_unique<KvState>(std::move(state));
  bytes_ += n->state->bytes();
  ++nodes_;
  KvCacheMetrics& m = kv_cache_metrics();
  m.inserts.inc();
  lru_.push_back(n);  // unpinned at birth, most recently used
  evict_over_budget_locked();
  m.bytes.set(static_cast<double>(bytes_));
}

void KvTrieCache::evict_over_budget_locked() {
  while (bytes_ > max_bytes && !lru_.empty()) {
    Node* victim = lru_.front();
    lru_.erase(lru_.begin());
    evict_node_locked(victim);
  }
  kv_cache_metrics().bytes.set(static_cast<double>(bytes_));
}

void KvTrieCache::evict_node_locked(Node* n) {
  PPG_CHECK(n->pins == 0, "kv cache: evicting a pinned node");
  PPG_CHECK(n->state != nullptr, "kv cache: evicting a stateless node");
  const std::size_t freed = n->state->bytes();
  bytes_ -= freed;
  --nodes_;
  KvCacheMetrics& m = kv_cache_metrics();
  m.evictions.inc();
  m.evicted_bytes.inc(freed);
  n->state.reset();
  // Prune now-dead scaffolding so the trie does not accrete token paths.
  while (n != root_.get() && !n->state && n->children.empty() &&
         n->pins == 0) {
    Node* parent = n->parent;
    parent->children.erase(n->token);  // destroys n
    n = parent;
  }
}

std::size_t KvTrieCache::bytes() const {
  MutexLock lock(mu_);
  return bytes_;
}

std::size_t KvTrieCache::nodes() const {
  MutexLock lock(mu_);
  return nodes_;
}

std::size_t KvTrieCache::pinned_nodes() const {
  MutexLock lock(mu_);
  return pinned_;
}

void KvTrieCache::Handle::release() {
  if (node_ == nullptr) return;
  KvTrieCache* cache = cache_;
  Node* n = static_cast<Node*>(node_);
  cache_ = nullptr;
  node_ = nullptr;
  MutexLock lock(cache->mu_);
  PPG_CHECK(n->pins > 0, "kv cache: pin refcount underflow");
  if (--n->pins == 0) {
    --cache->pinned_;
    cache->lru_.push_back(n);  // a released node re-enters LRU as MRU
    cache->evict_over_budget_locked();
  }
}

const KvState* KvTrieCache::Handle::state() const noexcept {
  return node_ == nullptr ? nullptr : static_cast<Node*>(node_)->state.get();
}

Index KvTrieCache::Handle::len() const noexcept {
  const KvState* s = state();
  return s == nullptr ? 0 : s->len;
}

}  // namespace ppg::gpt
