// Decoder-only GPT-2-style transformer (paper §III-B).
//
// Architecture, matching GPT-2 modulo scale: token + learned position
// embeddings, N pre-LayerNorm decoder blocks (masked multi-head
// self-attention + 4x GELU MLP, both with residual connections), a final
// LayerNorm, and a linear language-modelling head producing a distribution
// over the tokenizer vocabulary.
//
// The paper trains d_model=256, 12 layers, 8 heads, context 32. Config
// carries those as Config::paper(); the bench default is a width/depth
// scaled-down variant suited to one CPU core (Config::bench()).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/quant.h"
#include "nn/tensor.h"

namespace ppg::gpt {

using nn::Index;

/// Model hyperparameters.
struct Config {
  Index vocab = 136;
  Index d_model = 64;
  Index n_layers = 4;
  Index n_heads = 4;
  Index context = 32;
  float dropout = 0.0f;

  /// The paper's published configuration (§IV-B1).
  static Config paper() { return {136, 256, 12, 8, 32, 0.0f}; }
  /// Default configuration for CPU benches (same context, scaled width).
  static Config bench() { return {136, 64, 4, 4, 32, 0.0f}; }
  /// Miniature configuration for unit tests. Context stays 32 so every
  /// real training rule (up to 27 tokens) fits even in the smallest model.
  static Config tiny() { return {136, 16, 2, 2, 32, 0.0f}; }
  /// Smallest configuration that learns pattern conditioning well enough
  /// to demonstrate the paper's effects (test fixtures, quick examples).
  static Config small() { return {136, 32, 2, 4, 32, 0.0f}; }

  /// MLP hidden width (GPT-2 uses 4x).
  Index d_ff() const { return 4 * d_model; }
  /// Throws std::invalid_argument on inconsistent settings.
  void validate() const;
};

/// One decoder block's parameters.
struct Block {
  nn::LayerNorm ln1;
  nn::Linear qkv;   ///< d_model -> 3*d_model
  nn::Linear proj;  ///< d_model -> d_model
  nn::LayerNorm ln2;
  nn::Linear fc1;   ///< d_model -> d_ff
  nn::Linear fc2;   ///< d_ff -> d_model
};

/// Int8 views of one block's Linear weights (DESIGN.md §15). LayerNorms
/// and embeddings stay fp32 — they are O(d) next to the O(d²) matmuls.
struct QuantizedBlock {
  nn::quant::QuantizedMatrix qkv, proj, fc1, fc2;
};

/// Per-channel int8 quantization of every GEMM weight in the model, built
/// lazily from the fp32 parameters by GptModel::quantized().
struct QuantizedWeights {
  std::vector<QuantizedBlock> blocks;
  nn::quant::QuantizedMatrix lm_head;
  std::size_t bytes() const;
};

/// The transformer. Owns parameters; forward passes build onto a caller-
/// provided autograd Graph (training) — the no-tape fast path lives in
/// infer.h.
class GptModel {
 public:
  /// Initialises parameters with GPT-2-style scaled normal init from a
  /// deterministic seed.
  GptModel(Config cfg, std::uint64_t seed);

  const Config& config() const noexcept { return cfg_; }

  /// Parameter registry (optimizer + checkpoint walks).
  nn::ParamList& params() noexcept { return params_; }
  const nn::ParamList& params() const noexcept { return params_; }

  /// Forward pass over a flattened batch of `batch` sequences of length
  /// `time` (ids.size() == batch*time, batch-major). Returns logits
  /// [batch*time, vocab]. `dropout_rng` enables training dropout.
  nn::Tensor forward(nn::Graph& g, const std::vector<int>& ids, Index batch,
                     Index time, Rng* dropout_rng = nullptr) const;

  /// Next-token cross-entropy loss: forward(inputs) scored against
  /// `targets` (same layout), ignoring positions whose target is
  /// `ignore_index`. Returns a scalar tensor.
  nn::Tensor loss(nn::Graph& g, const std::vector<int>& inputs,
                  const std::vector<int>& targets, Index batch, Index time,
                  int ignore_index, Rng* dropout_rng = nullptr) const;

  /// Average per-token negative log-likelihood of a dataset slice without
  /// touching any autograd machinery (validation loops).
  double evaluate_nll(const std::vector<std::vector<int>>& sequences,
                      Index batch_size, int pad_token) const;

  /// Checkpoint I/O. Format: magic, config, then the parameter list.
  void save(const std::string& path) const;
  /// Loads a checkpoint; the stored config must equal this model's.
  void load(const std::string& path);

  // Weight access for the inference engine.
  const nn::Embedding& wte() const noexcept { return wte_; }
  const nn::Embedding& wpe() const noexcept { return wpe_; }
  const std::vector<Block>& blocks() const noexcept { return blocks_; }
  const nn::LayerNorm& ln_f() const noexcept { return ln_f_; }
  const nn::Linear& lm_head() const noexcept { return lm_head_; }

  /// Int8 view of the GEMM weights, built on first use and cached
  /// (threads racing here serialize on a mutex; the build is one-time).
  /// load() drops the cache so a freshly loaded checkpoint re-quantizes.
  /// The returned reference is stable until the next load() — callers
  /// must not hold it across a checkpoint reload, the same lifetime rule
  /// the fp32 accessors already impose.
  const QuantizedWeights& quantized() const;

 private:
  Config cfg_;
  nn::ParamList params_;
  nn::Embedding wte_, wpe_;
  std::vector<Block> blocks_;
  nn::LayerNorm ln_f_;
  nn::Linear lm_head_;
  /// Lazily built int8 weight view (see quantized()); its own mutex keeps
  /// the one-time build race-free without touching fp32 accessor paths.
  struct QuantCache {
    Mutex mu;
    std::unique_ptr<QuantizedWeights> weights PPG_GUARDED_BY(mu);
  };
  mutable QuantCache quant_;
};

}  // namespace ppg::gpt
