// Batched autoregressive password sampling on top of InferenceSession.
//
// One sampler serves every GPT-based scheme in the repo:
//  * PagPassGPT pattern-guided: prefix = <BOS> pattern <SEP>, no mask;
//  * PagPassGPT free-running:   prefix = <BOS>, no mask (the model emits
//    pattern, <SEP>, password, <EOS> on its own — paper §IV-D);
//  * PassGPT guided filtering:  prefix = <BOS>, mask = pattern filter that
//    zeroes tokens violating the target pattern at each step (§I-A1);
//  * D&C-GEN leaf tasks:        prefix = task prefix, mask = pattern filter
//    from the task's pattern suffix.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gpt/infer.h"

namespace ppg::gpt {

/// Sampling knobs.
struct SampleOptions {
  float temperature = 1.0f;
  /// Keep only the k most likely tokens (0 = disabled).
  int top_k = 0;
  /// Nucleus sampling mass (1.0 = disabled).
  double top_p = 1.0;
  /// Sequences decoded per InferenceSession batch.
  Index batch_size = 64;
  /// Give up after count*max_attempt_factor sequences when the model keeps
  /// producing undecodable output (unfinished / malformed rules).
  int max_attempt_factor = 4;
  /// Numeric substrate for the decoding session: kFp32 (reference) or
  /// kInt8 (quantized projections — faster, bounded logits error; see
  /// infer.h). Sampled guesses differ between the two, so the precision
  /// participates in D&C-GEN's journal fingerprint.
  Precision precision = Precision::kFp32;
};

/// Diagnostics of one sampling run.
struct SampleStats {
  std::size_t sequences_run = 0;  ///< total sequences started
  std::size_t invalid = 0;        ///< undecodable or unterminated
  /// Prefix positions fed through step() while priming batches.
  std::size_t prefill_tokens = 0;
  /// Prefix positions skipped by resuming from a cached KvState.
  std::size_t prefill_saved = 0;
};

/// Hook applied to each active sequence's raw logits before sampling;
/// `step` counts tokens generated after the prefix (0-based). Set a logit
/// to a very negative value (e.g. -1e30f) to forbid a token.
using LogitMask = std::function<void(Index step, std::span<float> logits)>;

/// Generates `count` decoded passwords continuing `prefix`. Returned
/// strings may repeat — deduplication is the caller's concern (that is the
/// paper's repeat-rate phenomenon). Undecodable sequences are replaced by
/// fresh draws until `count` is reached or the attempt budget is exhausted.
///
/// When `resume` covers a leading part of `prefix` (resume->len <=
/// prefix.size()), every batch restores those positions from the snapshot
/// and primes only the remainder — bitwise identical to priming the whole
/// prefix (see kv_cache.h), just cheaper. The snapshot must stay alive
/// (e.g. a pinned KvTrieCache::Handle) for the duration of the call.
std::vector<std::string> sample_passwords(const GptModel& model,
                                          std::span<const int> prefix,
                                          std::size_t count, Rng& rng,
                                          const SampleOptions& opts = {},
                                          const LogitMask& mask = nullptr,
                                          SampleStats* stats = nullptr,
                                          const KvState* resume = nullptr);

/// Samples a token id from raw logits under the given options.
int sample_from_logits(std::span<const float> logits, Rng& rng,
                       const SampleOptions& opts);

}  // namespace ppg::gpt
