// No-autograd batched inference with per-layer KV caches.
//
// Training goes through nn::Graph; generation volume (millions of guesses)
// demands a fast path: this session keeps key/value caches per layer so each
// new token costs O(d² + pos·d) per sequence, processes a whole batch of
// sequences in lockstep (one GEMM per projection), and allocates all
// buffers once at reset.
//
// All sequences in a session advance together (same position). Callers that
// need ragged prefixes group them by length (see D&C-GEN's divider).
#pragma once

#include <span>
#include <vector>

#include "gpt/kv_cache.h"
#include "gpt/model.h"

namespace ppg::gpt {

/// Numeric substrate for a session's GEMMs. kFp32 is the reference (and
/// training) path; kInt8 runs the projections through per-row absmax
/// quantization + int8 GEMM (nn/quant.h) — ~bounded logits error, higher
/// throughput, identical bits on every SIMD backend. Attention, layernorm
/// and embeddings stay fp32 in both modes.
enum class Precision : int { kFp32 = 0, kInt8 = 1 };

constexpr const char* precision_name(Precision p) noexcept {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

/// Batched incremental decoder over a GptModel's weights.
/// The model must outlive the session.
class InferenceSession {
 public:
  /// Binds to a model. Buffers are sized lazily at reset(). kInt8 builds
  /// (or reuses) the model's cached quantized weight view immediately, so
  /// the one-time quantization cost lands here rather than on the first
  /// step; the view must not be invalidated by GptModel::load() while
  /// this session is alive.
  explicit InferenceSession(const GptModel& model,
                            Precision precision = Precision::kFp32);

  /// Starts `batch` fresh sequences at position 0. Buffers are reused when
  /// `batch` fits the largest batch this session has seen, so schedulers
  /// whose tail batches shrink (D&C-GEN, the serve layer) pay no
  /// reallocation; only a growing batch allocates.
  void reset(Index batch);

  /// Feeds one token per sequence (tokens.size() == batch()) and returns
  /// the next-token logits, row-major [batch, vocab]. The returned span is
  /// valid until the next step()/reset(). Throws when the context window
  /// is exhausted.
  std::span<const float> step(std::span<const int> tokens);

  /// Feeds a shared prefix to every sequence; returns the logits after its
  /// last token. Equivalent to step() per prefix token with the same token
  /// broadcast across the batch.
  std::span<const float> prime(std::span<const int> prefix);

  /// Forks sequence `row` out of this session: copies its per-layer KV
  /// blocks for positions [0, position()) and its current logits row into
  /// a standalone KvState. Requires at least one step taken.
  KvState snapshot(Index row) const;

  /// Starts `batch` fresh sequences that all resume from `state`'s first
  /// `depth` positions — bitwise equivalent to reset(batch) followed by
  /// stepping the snapshotted prefix (per-sequence float op order is batch
  /// invariant; see kv_cache.h). When depth == state.len the stored
  /// logits are restored too, so logits_row() is immediately valid;
  /// resuming shallower requires a step() before reading logits.
  void resume(const KvState& state, Index batch);
  void resume(const KvState& state, Index batch, Index depth);

  /// Per-row resume at a uniform depth: sequence i resumes from
  /// states[i]'s first `depth` positions (requires depth <= states[i]->len
  /// for every i; entries must be non-null). Logits are valid only when
  /// every state's len equals `depth` exactly.
  void resume_rows(std::span<const KvState* const> states, Index depth);

  /// Logits row for sequence `i` from the last step.
  std::span<const float> logits_row(Index i) const;

  /// Next position to be fed (0 after reset).
  Index position() const noexcept { return pos_; }

  /// Number of sequences in the current batch.
  Index batch() const noexcept { return batch_; }

  const Config& config() const noexcept { return model_->config(); }

  /// The numeric substrate this session runs its projections on.
  Precision precision() const noexcept { return precision_; }

 private:
  /// y[batch,n] = x[batch,k]·W + bias for one Linear: fp32 affine when
  /// `qm` is null, otherwise quantize-activations + int8 GEMM + dequant.
  void project(Index n, Index k, const float* x, const nn::Linear& lin,
               const nn::quant::QuantizedMatrix* qm, float* y);

  const GptModel* model_;
  Precision precision_ = Precision::kFp32;
  /// Int8 weight views (owned by the model), non-null iff kInt8.
  const QuantizedWeights* qweights_ = nullptr;
  Index batch_ = 0;
  Index capacity_ = 0;  ///< largest batch the buffers are sized for
  Index pos_ = 0;
  /// Whether logits_ holds the current position's rows (set by step() and
  /// full-depth resume; cleared by reset() and partial resume).
  bool logits_ready_ = false;
  // Per layer: K and V caches, [batch, context, d_model] flattened.
  std::vector<std::vector<float>> kcache_, vcache_;
  // Scratch buffers reused across steps.
  std::vector<float> x_, h_, qkv_, att_, ff_, logits_;
  std::vector<float> scores_;  ///< attention-score scratch, one row
  // Int8 activation scratch (kInt8 only): quantized rows + their scales.
  std::vector<std::int8_t> qx_;
  std::vector<float> qs_;
};

/// One-shot convenience: next-token distribution (softmax of logits) after
/// `prefix` for a single sequence. Builds a throwaway session; use an
/// explicit session for anything hot.
std::vector<float> next_token_distribution(const GptModel& model,
                                           std::span<const int> prefix);

/// log P(ids[1..]) under the model: the sum of next-token log-probabilities
/// of every token after the first (autoregressive chain rule, Eq. 3 of the
/// paper). For a full rule <BOS>‖pattern‖<SEP>‖pw‖<EOS> this is the joint
/// log-probability of the pattern *and* the password — exactly the model's
/// guessing-order score. Requires ids.size() >= 2 and within context.
double sequence_log_prob(const GptModel& model, std::span<const int> ids);

}  // namespace ppg::gpt
