#include "gpt/infer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "nn/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppg::gpt {

namespace {

/// Inference metrics, registered once (lock-free updates thereafter).
struct InferMetrics {
  obs::Counter& steps;
  obs::Counter& tokens;
  obs::Gauge& batch;
  obs::Gauge& cache_bytes;
  obs::Histogram& step_us;
  obs::Histogram& prime_us;
  static InferMetrics& get() {
    static InferMetrics m{obs::Registry::global().counter("infer.steps"),
                          obs::Registry::global().counter("infer.tokens"),
                          obs::Registry::global().gauge("infer.batch"),
                          obs::Registry::global().gauge("infer.cache_bytes"),
                          obs::Registry::global().histogram("infer.step_us"),
                          obs::Registry::global().histogram("infer.prime_us")};
    return m;
  }
};

inline float gelu1(float v) {
  return 0.5f * v * (1.f + std::erf(v * 0.7071067811865475f));
}

}  // namespace

InferenceSession::InferenceSession(const GptModel& model, Precision precision)
    : model_(&model), precision_(precision) {
  if (precision_ == Precision::kInt8) qweights_ = &model.quantized();
}

void InferenceSession::project(Index n, Index k, const float* x,
                               const nn::Linear& lin,
                               const nn::quant::QuantizedMatrix* qm,
                               float* y) {
  if (qm == nullptr) {
    nn::kernels::affine(batch_, n, k, x, lin.weight().data().data(),
                        lin.bias().data().data(), y);
    return;
  }
  nn::kernels::quantize_rows(batch_, k, qm->k_pad, x, qx_.data(), qs_.data());
  nn::kernels::qaffine(batch_, n, qm->k_pad, qx_.data(), qs_.data(),
                       qm->data.data(), qm->scales.data(),
                       lin.bias().data().data(), y);
}

void InferenceSession::reset(Index batch) {
  if (batch <= 0)
    throw std::invalid_argument("InferenceSession::reset: batch must be > 0");
  const Config& c = model_->config();
  batch_ = batch;
  pos_ = 0;
  logits_ready_ = false;
  // Every buffer is indexed with a per-row stride, so a batch that fits the
  // existing allocation reuses it as-is: rows < batch_ are fully rewritten
  // before being read (the KV caches only ever read positions <= pos_, all
  // written since this reset), and stale rows >= batch_ are never touched.
  if (batch > capacity_) {
    const std::size_t cache =
        static_cast<std::size_t>(batch * c.context * c.d_model);
    kcache_.assign(c.n_layers, std::vector<float>(cache, 0.f));
    vcache_.assign(c.n_layers, std::vector<float>(cache, 0.f));
    x_.assign(batch * c.d_model, 0.f);
    h_.assign(batch * c.d_model, 0.f);
    qkv_.assign(batch * 3 * c.d_model, 0.f);
    att_.assign(batch * c.d_model, 0.f);
    ff_.assign(batch * c.d_ff(), 0.f);
    logits_.assign(batch * c.vocab, 0.f);
    if (precision_ == Precision::kInt8) {
      // Widest activation the projections quantize is the d_ff-wide gelu
      // output feeding fc2; k is zero-padded per quant.h.
      qx_.assign(
          static_cast<std::size_t>(batch * nn::quant::padded_k(c.d_ff())), 0);
      qs_.assign(static_cast<std::size_t>(batch), 0.f);
    }
    capacity_ = batch;
  }

  InferMetrics& m = InferMetrics::get();
  m.batch.set(static_cast<double>(batch));
  const double scratch = static_cast<double>(
      x_.size() + h_.size() + qkv_.size() + att_.size() + ff_.size() +
      logits_.size());
  m.cache_bytes.set((2.0 * double(c.n_layers) *
                         double(capacity_ * c.context * c.d_model) +
                     scratch) *
                    sizeof(float));
}

std::span<const float> InferenceSession::step(std::span<const int> tokens) {
  InferMetrics& m = InferMetrics::get();
  m.steps.inc();
  m.tokens.inc(static_cast<std::uint64_t>(tokens.size()));
  obs::ScopedLatency latency(m.step_us);
  obs::Span span("infer/step", "gpt");
  const Config& c = model_->config();
  if (batch_ == 0)
    throw std::logic_error("InferenceSession::step before reset()");
  if (static_cast<Index>(tokens.size()) != batch_)
    throw std::invalid_argument("InferenceSession::step: token count != batch");
  if (pos_ >= c.context)
    throw std::runtime_error("InferenceSession::step: context exhausted");
  const Index d = c.d_model, heads = c.n_heads, dh = d / heads;
  const float scale = 1.f / std::sqrt(static_cast<float>(dh));

  // Embedding: x = wte[token] + wpe[pos].
  const float* wte = model_->wte().table().data().data();
  const float* wpe_row = model_->wpe().table().data().data() + pos_ * d;
  for (Index i = 0; i < batch_; ++i) {
    const int tok = tokens[i];
    if (tok < 0 || tok >= c.vocab)
      throw std::invalid_argument("InferenceSession::step: token out of range");
    const float* te = wte + static_cast<Index>(tok) * d;
    float* xr = x_.data() + i * d;
    for (Index j = 0; j < d; ++j) xr[j] = te[j] + wpe_row[j];
  }

  if (scores_.size() < static_cast<std::size_t>(pos_ + 1))
    scores_.resize(static_cast<std::size_t>(c.context));
  float* const scores = scores_.data();
  for (Index l = 0; l < c.n_layers; ++l) {
    const Block& blk = model_->blocks()[static_cast<std::size_t>(l)];
    const QuantizedBlock* qb =
        qweights_ != nullptr ? &qweights_->blocks[static_cast<std::size_t>(l)]
                             : nullptr;
    // Attention: h = ln1(x); qkv = h·Wqkv+b; cache k,v; attend; x += proj.
    nn::kernels::layernorm_rows(batch_, d, x_.data(),
                                blk.ln1.gain().data().data(),
                                blk.ln1.bias().data().data(), h_.data());
    project(3 * d, d, h_.data(), blk.qkv, qb != nullptr ? &qb->qkv : nullptr,
            qkv_.data());
    float* kc = kcache_[static_cast<std::size_t>(l)].data();
    float* vc = vcache_[static_cast<std::size_t>(l)].data();
    for (Index i = 0; i < batch_; ++i) {
      const float* krow = qkv_.data() + i * 3 * d + d;
      const float* vrow = qkv_.data() + i * 3 * d + 2 * d;
      float* kdst = kc + (i * c.context + pos_) * d;
      float* vdst = vc + (i * c.context + pos_) * d;
      for (Index j = 0; j < d; ++j) {
        kdst[j] = krow[j];
        vdst[j] = vrow[j];
      }
    }
    for (Index i = 0; i < batch_; ++i) {
      const float* q = qkv_.data() + i * 3 * d;
      float* out = att_.data() + i * d;
      for (Index hh = 0; hh < heads; ++hh) {
        const float* qh = q + hh * dh;
        float mx = -1e30f;
        for (Index s = 0; s <= pos_; ++s) {
          const float* kh = kc + (i * c.context + s) * d + hh * dh;
          float acc = 0.f;
          for (Index j = 0; j < dh; ++j) acc += qh[j] * kh[j];
          scores[s] = acc * scale;
          mx = std::max(mx, scores[s]);
        }
        float z = 0.f;
        for (Index s = 0; s <= pos_; ++s) {
          scores[s] = std::exp(scores[s] - mx);
          z += scores[s];
        }
        const float inv = 1.f / z;
        float* oh = out + hh * dh;
        for (Index j = 0; j < dh; ++j) oh[j] = 0.f;
        for (Index s = 0; s <= pos_; ++s) {
          const float p = scores[s] * inv;
          const float* vh = vc + (i * c.context + s) * d + hh * dh;
          for (Index j = 0; j < dh; ++j) oh[j] += p * vh[j];
        }
      }
    }
    // x += proj(att)
    project(d, d, att_.data(), blk.proj, qb != nullptr ? &qb->proj : nullptr,
            h_.data());
    for (Index i = 0; i < batch_ * d; ++i) x_[i] += h_[i];
    // MLP: x += fc2(gelu(fc1(ln2(x))))
    nn::kernels::layernorm_rows(batch_, d, x_.data(),
                                blk.ln2.gain().data().data(),
                                blk.ln2.bias().data().data(), h_.data());
    project(c.d_ff(), d, h_.data(), blk.fc1,
            qb != nullptr ? &qb->fc1 : nullptr, ff_.data());
    // Only the live batch's rows — ff_ may be capacity-sized (reset reuse).
    const Index ffn = batch_ * c.d_ff();
    for (Index idx = 0; idx < ffn; ++idx) ff_[idx] = gelu1(ff_[idx]);
    project(d, c.d_ff(), ff_.data(), blk.fc2,
            qb != nullptr ? &qb->fc2 : nullptr, h_.data());
    for (Index i = 0; i < batch_ * d; ++i) x_[i] += h_[i];
  }

  nn::kernels::layernorm_rows(batch_, d, x_.data(),
                              model_->ln_f().gain().data().data(),
                              model_->ln_f().bias().data().data(), h_.data());
  project(c.vocab, d, h_.data(), model_->lm_head(),
          qweights_ != nullptr ? &qweights_->lm_head : nullptr,
          logits_.data());
  ++pos_;
  logits_ready_ = true;
  return {logits_.data(), static_cast<std::size_t>(batch_ * c.vocab)};
}

KvState InferenceSession::snapshot(Index row) const {
  const Config& c = model_->config();
  if (batch_ == 0)
    throw std::logic_error("InferenceSession::snapshot before reset()");
  if (row < 0 || row >= batch_)
    throw std::invalid_argument("InferenceSession::snapshot: row out of range");
  if (pos_ == 0)
    throw std::logic_error("InferenceSession::snapshot before any step()");
  const Index d = c.d_model;
  KvState s;
  s.len = pos_;
  s.k.resize(static_cast<std::size_t>(c.n_layers));
  s.v.resize(static_cast<std::size_t>(c.n_layers));
  for (Index l = 0; l < c.n_layers; ++l) {
    const float* kc =
        kcache_[static_cast<std::size_t>(l)].data() + row * c.context * d;
    const float* vc =
        vcache_[static_cast<std::size_t>(l)].data() + row * c.context * d;
    s.k[static_cast<std::size_t>(l)].assign(kc, kc + pos_ * d);
    s.v[static_cast<std::size_t>(l)].assign(vc, vc + pos_ * d);
  }
  const auto lr = logits_row(row);
  s.logits.assign(lr.begin(), lr.end());
  return s;
}

void InferenceSession::resume(const KvState& state, Index batch) {
  resume(state, batch, state.len);
}

void InferenceSession::resume(const KvState& state, Index batch, Index depth) {
  std::vector<const KvState*> states(static_cast<std::size_t>(batch), &state);
  resume_rows(states, depth);
}

void InferenceSession::resume_rows(std::span<const KvState* const> states,
                                   Index depth) {
  const Config& c = model_->config();
  if (states.empty())
    throw std::invalid_argument("InferenceSession::resume_rows: empty batch");
  if (depth < 0 || depth > c.context)
    throw std::invalid_argument(
        "InferenceSession::resume_rows: depth out of range");
  for (const KvState* s : states) {
    if (s == nullptr)
      throw std::invalid_argument("InferenceSession::resume_rows: null state");
    if (depth > s->len)
      throw std::invalid_argument(
          "InferenceSession::resume_rows: depth exceeds a state's length");
    if (static_cast<Index>(s->k.size()) != c.n_layers ||
        static_cast<Index>(s->v.size()) != c.n_layers)
      throw std::invalid_argument(
          "InferenceSession::resume_rows: layer count mismatch");
  }
  reset(static_cast<Index>(states.size()));
  const Index d = c.d_model;
  for (Index l = 0; l < c.n_layers; ++l) {
    float* kc = kcache_[static_cast<std::size_t>(l)].data();
    float* vc = vcache_[static_cast<std::size_t>(l)].data();
    for (Index i = 0; i < batch_; ++i) {
      const KvState& s = *states[static_cast<std::size_t>(i)];
      std::memcpy(kc + i * c.context * d,
                  s.k[static_cast<std::size_t>(l)].data(),
                  static_cast<std::size_t>(depth * d) * sizeof(float));
      std::memcpy(vc + i * c.context * d,
                  s.v[static_cast<std::size_t>(l)].data(),
                  static_cast<std::size_t>(depth * d) * sizeof(float));
    }
  }
  pos_ = depth;
  // Restore stored logits only when they correspond to this exact depth
  // for every row; a shallower resume recomputes them at the next step.
  bool full = true;
  for (const KvState* s : states)
    full = full && s->len == depth &&
           static_cast<Index>(s->logits.size()) == c.vocab;
  if (full) {
    for (Index i = 0; i < batch_; ++i)
      std::memcpy(logits_.data() + i * c.vocab,
                  states[static_cast<std::size_t>(i)]->logits.data(),
                  static_cast<std::size_t>(c.vocab) * sizeof(float));
  }
  logits_ready_ = full;
  kv_cache_metrics().prefill_saved.inc(
      static_cast<std::uint64_t>(depth * batch_));
}

std::span<const float> InferenceSession::prime(std::span<const int> prefix) {
  if (prefix.empty())
    throw std::invalid_argument("InferenceSession::prime: empty prefix");
  obs::ScopedLatency latency(InferMetrics::get().prime_us);
  std::vector<int> broadcast(static_cast<std::size_t>(batch_));
  std::span<const float> out;
  for (const int tok : prefix) {
    std::fill(broadcast.begin(), broadcast.end(), tok);
    out = step(broadcast);
  }
  return out;
}

std::span<const float> InferenceSession::logits_row(Index i) const {
  PPG_DCHECK(logits_ready_,
             "logits_row read before a step() or full-depth resume");
  const Index v = model_->config().vocab;
  return {logits_.data() + i * v, static_cast<std::size_t>(v)};
}

std::vector<float> next_token_distribution(const GptModel& model,
                                           std::span<const int> prefix) {
  InferenceSession session(model);
  session.reset(1);
  const auto logits = session.prime(prefix);
  std::vector<float> probs(logits.begin(), logits.end());
  float mx = probs[0];
  for (const float v : probs) mx = std::max(mx, v);
  double z = 0.0;
  for (auto& v : probs) {
    v = std::exp(v - mx);
    z += v;
  }
  for (auto& v : probs) v = static_cast<float>(v / z);
  return probs;
}

double sequence_log_prob(const GptModel& model, std::span<const int> ids) {
  if (ids.size() < 2)
    throw std::invalid_argument("sequence_log_prob: need at least two tokens");
  if (static_cast<Index>(ids.size()) > model.config().context)
    throw std::invalid_argument("sequence_log_prob: sequence exceeds context");
  InferenceSession session(model);
  session.reset(1);
  double total = 0.0;
  for (std::size_t t = 0; t + 1 < ids.size(); ++t) {
    const int tok = ids[t];
    const auto logits = session.step(std::span<const int>(&tok, 1));
    // log softmax at the next token's index.
    float mx = logits[0];
    for (const float v : logits) mx = std::max(mx, v);
    double z = 0.0;
    for (const float v : logits) z += std::exp(double(v - mx));
    total += double(logits[static_cast<std::size_t>(ids[t + 1])] - mx) -
             std::log(z);
  }
  return total;
}

}  // namespace ppg::gpt
