#include "gpt/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tokenizer/tokenizer.h"

namespace ppg::gpt {

int sample_from_logits(std::span<const float> logits, Rng& rng,
                       const SampleOptions& opts) {
  const std::size_t v = logits.size();
  // Work on (probability, index) pairs after temperature scaling.
  thread_local std::vector<std::pair<float, int>> items;
  items.clear();
  items.reserve(v);
  const float inv_t = 1.f / std::max(opts.temperature, 1e-6f);
  float mx = -1e30f;
  for (std::size_t i = 0; i < v; ++i) mx = std::max(mx, logits[i] * inv_t);
  for (std::size_t i = 0; i < v; ++i) {
    const float l = logits[i] * inv_t;
    if (l <= -1e29f) continue;  // masked out
    items.emplace_back(std::exp(l - mx), static_cast<int>(i));
  }
  if (items.empty()) return -1;  // everything masked
  const bool truncate =
      (opts.top_k > 0 && static_cast<std::size_t>(opts.top_k) < items.size()) ||
      opts.top_p < 1.0;
  if (truncate) {
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (opts.top_k > 0 && static_cast<std::size_t>(opts.top_k) < items.size())
      items.resize(static_cast<std::size_t>(opts.top_k));
    if (opts.top_p < 1.0) {
      double total = 0.0;
      for (const auto& [p, idx] : items) total += p;
      double acc = 0.0;
      std::size_t keep = 0;
      for (; keep < items.size(); ++keep) {
        acc += items[keep].first;
        if (acc >= opts.top_p * total) {
          ++keep;
          break;
        }
      }
      items.resize(std::max<std::size_t>(keep, 1));
    }
  }
  double total = 0.0;
  for (const auto& [p, idx] : items) total += p;
  double target = rng.uniform() * total;
  for (const auto& [p, idx] : items) {
    target -= p;
    if (target < 0.0) return idx;
  }
  return items.back().second;
}

std::vector<std::string> sample_passwords(const GptModel& model,
                                          std::span<const int> prefix,
                                          std::size_t count, Rng& rng,
                                          const SampleOptions& opts,
                                          const LogitMask& mask,
                                          SampleStats* stats,
                                          const KvState* resume) {
  std::vector<std::string> out;
  out.reserve(count);
  if (count == 0) return out;
  SampleStats local;
  InferenceSession session(model, opts.precision);
  const Index max_new =
      model.config().context - static_cast<Index>(prefix.size());
  std::vector<float> row(static_cast<std::size_t>(model.config().vocab));
  const std::size_t attempt_budget =
      count * static_cast<std::size_t>(std::max(opts.max_attempt_factor, 1));

  while (out.size() < count && local.sequences_run < attempt_budget) {
    const Index n = static_cast<Index>(std::min<std::size_t>(
        static_cast<std::size_t>(opts.batch_size), count - out.size()));
    local.sequences_run += static_cast<std::size_t>(n);
    const Index depth =
        resume == nullptr
            ? 0
            : std::min(resume->len, static_cast<Index>(prefix.size()));
    if (depth > 0) {
      session.resume(*resume, n, depth);
      if (static_cast<std::size_t>(depth) < prefix.size())
        session.prime(prefix.subspan(static_cast<std::size_t>(depth)));
    } else {
      session.reset(n);
      session.prime(prefix);
    }
    const std::size_t primed =
        (prefix.size() - static_cast<std::size_t>(depth)) *
        static_cast<std::size_t>(n);
    local.prefill_tokens += primed;
    local.prefill_saved +=
        static_cast<std::size_t>(depth) * static_cast<std::size_t>(n);
    kv_cache_metrics().prefill_tokens.inc(primed);
    std::vector<std::vector<int>> generated(static_cast<std::size_t>(n));
    std::vector<bool> active(static_cast<std::size_t>(n), true);
    std::vector<int> next(static_cast<std::size_t>(n), tok::Tokenizer::kPad);
    Index alive = n;
    for (Index step = 0; step < max_new && alive > 0; ++step) {
      for (Index i = 0; i < n; ++i) {
        if (!active[static_cast<std::size_t>(i)]) {
          next[static_cast<std::size_t>(i)] = tok::Tokenizer::kPad;
          continue;
        }
        const auto logits = session.logits_row(i);
        std::copy(logits.begin(), logits.end(), row.begin());
        if (mask) mask(step, row);
        const int tok_id = sample_from_logits(row, rng, opts);
        if (tok_id < 0 || tok_id == tok::Tokenizer::kEos) {
          // Sequence finished (or fully masked -> finished-invalid; the
          // decode below rejects structurally bad sequences).
          if (tok_id == tok::Tokenizer::kEos)
            generated[static_cast<std::size_t>(i)].push_back(tok_id);
          active[static_cast<std::size_t>(i)] = false;
          --alive;
          next[static_cast<std::size_t>(i)] = tok::Tokenizer::kPad;
          continue;
        }
        generated[static_cast<std::size_t>(i)].push_back(tok_id);
        next[static_cast<std::size_t>(i)] = tok_id;
      }
      if (alive > 0 && session.position() < model.config().context)
        session.step(next);
      else
        break;
    }
    for (Index i = 0; i < n && out.size() < count; ++i) {
      std::vector<int> full(prefix.begin(), prefix.end());
      full.insert(full.end(), generated[static_cast<std::size_t>(i)].begin(),
                  generated[static_cast<std::size_t>(i)].end());
      const auto pw = tok::Tokenizer::decode_password(full);
      if (pw.has_value() && !pw->empty())
        out.push_back(*pw);
      else
        ++local.invalid;
    }
  }
  if (stats) *stats = local;
  return out;
}

}  // namespace ppg::gpt
