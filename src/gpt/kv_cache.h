// Prefix-trie KV cache: reuse attention states across prefix-related
// forward passes.
//
// Every consumer of InferenceSession — D&C-GEN's divider, its leaf
// generations, and the serve layer's request batches — primes sessions
// with token prefixes that are *extensions of prefixes already primed*:
// a division task's prefix is its parent's plus one token, a leaf's prefix
// is its parent division's plus one token, and repeated serve requests
// share their whole `<BOS> pattern <SEP>` prefix. Re-running prime() over
// the full prefix recomputes per-layer K/V blocks an ancestor already
// produced. This store memoises them:
//
//  * KvState is one sequence's immutable per-layer K/V blocks for
//    positions [0, len) plus the logits after token len-1 — everything a
//    session needs to continue decoding as if it had stepped the prefix
//    itself (InferenceSession::resume / resume_rows).
//  * KvTrieCache is a trie over token ids whose nodes own KvStates,
//    ref-counted by RAII Handles (a pinned node is never evicted) with
//    LRU eviction of unpinned nodes under a byte budget.
//
// Determinism contract: resuming from a cached KvState is bitwise
// identical to re-priming the same prefix, because per-sequence float op
// order is invariant to batch geometry (kernels.h gemm_nn accumulates
// each output element in the same p-order in the 4-row-blocked and
// remainder paths; layernorm, attention, and GELU are per-row). A cache
// hit therefore changes *where* the floats come from, never their values
// — the differential suite in tests/kv_cache_test.cpp locks this down
// across thread counts and eviction-forcing budgets.
//
// Thread safety: all member functions are safe to call concurrently; the
// store takes one mutex per operation (trivial next to a model forward).
// KvStates are immutable after insert, so pinned readers need no lock.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_annotations.h"
#include "nn/tensor.h"
#include "obs/metrics.h"

namespace ppg::gpt {

using nn::Index;

/// One sequence's KV snapshot: per-layer K and V blocks covering positions
/// [0, len), plus the next-token logits after token len-1. Immutable once
/// inside the cache.
struct KvState {
  Index len = 0;                         ///< positions covered
  std::vector<std::vector<float>> k, v;  ///< per layer, len * d_model
  std::vector<float> logits;             ///< vocab, after token len-1

  /// Payload size (the eviction budget's unit).
  std::size_t bytes() const noexcept;
};

/// Trie-of-token-ids store of KvStates with pin refcounts and LRU
/// eviction under a byte budget.
class KvTrieCache {
 public:
  /// `max_bytes` caps the *unpinned* resident payload: pinned nodes are
  /// never evicted, so the live total can transiently exceed the budget
  /// while handles are outstanding; it is trimmed back as they release.
  explicit KvTrieCache(std::size_t max_bytes);
  ~KvTrieCache();

  KvTrieCache(const KvTrieCache&) = delete;
  KvTrieCache& operator=(const KvTrieCache&) = delete;

  class Handle;

  /// Exact-prefix lookup. An empty handle on miss.
  Handle find(std::span<const int> prefix);

  /// Deepest cached ancestor of `prefix` (including `prefix` itself).
  /// An empty handle when no prefix of it is cached.
  Handle find_longest(std::span<const int> prefix);

  /// Stores `state` under `prefix` (state.len need not equal
  /// prefix.size(); D&C-GEN and serve always insert state.len ==
  /// prefix.size()). First insert wins: re-inserting an existing prefix
  /// keeps the resident state (cached and recomputed states are bitwise
  /// equal by the determinism contract, so which copy survives is
  /// unobservable). May trigger eviction of other, unpinned nodes.
  void insert(std::span<const int> prefix, KvState state);

  /// Unpinned + pinned resident payload bytes.
  std::size_t bytes() const;
  /// Nodes currently holding a state.
  std::size_t nodes() const;
  /// Nodes currently pinned by live handles.
  std::size_t pinned_nodes() const;

  const std::size_t max_bytes;

  /// RAII pin on one cached node. While a handle is live its state is
  /// immutable and cannot be evicted; destruction (or release()) unpins
  /// and may trigger deferred eviction.
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& o) noexcept : cache_(o.cache_), node_(o.node_) {
      o.cache_ = nullptr;
      o.node_ = nullptr;
    }
    Handle& operator=(Handle&& o) noexcept {
      if (this != &o) {
        release();
        cache_ = o.cache_;
        node_ = o.node_;
        o.cache_ = nullptr;
        o.node_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    /// Drops the pin early. Idempotent.
    void release();

    explicit operator bool() const noexcept { return node_ != nullptr; }
    /// The pinned state; nullptr for an empty handle.
    const KvState* state() const noexcept;
    /// Positions the pinned state covers (0 for an empty handle).
    Index len() const noexcept;

   private:
    friend class KvTrieCache;
    Handle(KvTrieCache* cache, void* node) : cache_(cache), node_(node) {}
    KvTrieCache* cache_ = nullptr;
    void* node_ = nullptr;
  };

 private:
  struct Node;
  Node* walk_locked(std::span<const int> prefix, bool create) PPG_REQUIRES(mu_);
  Handle pin_locked(Node* n) PPG_REQUIRES(mu_);
  void lru_detach_locked(Node* n) PPG_REQUIRES(mu_);
  void evict_over_budget_locked() PPG_REQUIRES(mu_);
  void evict_node_locked(Node* n) PPG_REQUIRES(mu_);

  mutable Mutex mu_;
  std::unique_ptr<Node> root_ PPG_GUARDED_BY(mu_);
  // Intrusive-by-pointer LRU of unpinned state-bearing nodes; front is
  // the eviction victim, back is most recently used.
  std::vector<Node*> lru_ PPG_GUARDED_BY(mu_);  ///< small; linear ops fine
  std::size_t bytes_ PPG_GUARDED_BY(mu_) = 0;
  std::size_t nodes_ PPG_GUARDED_BY(mu_) = 0;
  std::size_t pinned_ PPG_GUARDED_BY(mu_) = 0;
};

/// Process-wide KV-cache metrics ("kv_cache.*" in the global registry):
/// hit/miss/insert/eviction counters, resident- and evicted-bytes, and the
/// prefill ledger (token positions computed by prime loops vs skipped by
/// resuming) that bench_kv_cache reports. Registered once; updates are the
/// registry's lock-free fast path.
struct KvCacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& inserts;
  obs::Counter& evictions;
  obs::Counter& evicted_bytes;
  obs::Gauge& bytes;
  /// Prefill positions actually fed through step() by prime loops.
  obs::Counter& prefill_tokens;
  /// Prefill positions skipped because resume() restored them.
  obs::Counter& prefill_saved;
};
KvCacheMetrics& kv_cache_metrics();

}  // namespace ppg::gpt
