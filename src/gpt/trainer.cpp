#include "gpt/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "common/check.h"
#include "common/durable_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppg::gpt {

namespace {

constexpr std::uint32_t kTrainCkptMagic = 0x50504354;  // "PPCT"
constexpr std::uint32_t kTrainCkptVersion = 1;

/// Order-sensitive 64-bit combine for the run fingerprint.
std::uint64_t fp_mix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

/// Fingerprint of everything that determines the training trajectory: the
/// hyperparameters, the pad token, and every training token. A checkpoint
/// from a different run must be rejected, not silently continued — resuming
/// over changed data would produce weights that belong to neither run.
std::uint64_t run_fingerprint(const TrainConfig& cfg, int pad_token,
                              const std::vector<std::vector<int>>& seqs) {
  std::uint64_t h = 0x5050ULL;
  h = fp_mix(h, static_cast<std::uint64_t>(cfg.epochs));
  h = fp_mix(h, static_cast<std::uint64_t>(cfg.batch_size));
  std::uint32_t bits;
  static_assert(sizeof bits == sizeof cfg.lr);
  std::memcpy(&bits, &cfg.lr, sizeof bits);
  h = fp_mix(h, bits);
  std::memcpy(&bits, &cfg.warmup_frac, sizeof bits);
  h = fp_mix(h, bits);
  h = fp_mix(h, cfg.cosine_decay ? 1 : 0);
  std::memcpy(&bits, &cfg.grad_clip, sizeof bits);
  h = fp_mix(h, bits);
  std::memcpy(&bits, &cfg.weight_decay, sizeof bits);
  h = fp_mix(h, bits);
  h = fp_mix(h, cfg.seed);
  h = fp_mix(h, static_cast<std::uint64_t>(pad_token));
  h = fp_mix(h, seqs.size());
  for (const auto& seq : seqs) {
    h = fp_mix(h, seq.size());
    for (const int t : seq) h = fp_mix(h, static_cast<std::uint64_t>(t));
  }
  return h;
}

/// Debug/sanitize-only numerics tripwire: after forward+backward every
/// parameter value and gradient must be finite. A NaN that enters the
/// optimizer state poisons all subsequent steps silently (AdamW moments
/// never recover), so catching it at the step that produced it — with the
/// parameter's name — is worth the full sweep. Release builds skip the
/// whole loop (kDchecksEnabled is constexpr-false); note -ffast-math
/// builds also can't run it meaningfully, which is one reason sanitized
/// builds drop -ffast-math (see the top-level CMakeLists).
void dcheck_finite_params(const nn::ParamList& params, std::size_t step) {
  if constexpr (!ppg::kDchecksEnabled) {
    (void)params;
    (void)step;
  } else {
    for (const auto& p : params.items()) {
      for (const float v : p.tensor.data())
        PPG_CHECK(std::isfinite(v), "non-finite value in '%s' after step %zu",
                  p.name.c_str(), step);
      for (const float g : p.tensor.grad())
        PPG_CHECK(std::isfinite(g),
                  "non-finite gradient in '%s' after step %zu", p.name.c_str(),
                  step);
    }
  }
}

}  // namespace

TrainReport train_lm(GptModel& model,
                     const std::vector<std::vector<int>>& train_seqs,
                     const std::vector<std::vector<int>>& valid_seqs,
                     const TrainConfig& cfg, int pad_token,
                     const EpochHook& hook) {
  if (cfg.epochs <= 0 || cfg.batch_size <= 0)
    throw std::invalid_argument("train_lm: epochs and batch_size must be > 0");
  const Index context = model.config().context;

  // Usable sequences: need at least one (input, target) pair and must fit.
  std::vector<std::size_t> usable;
  usable.reserve(train_seqs.size());
  std::size_t skipped = 0;
  for (std::size_t i = 0; i < train_seqs.size(); ++i) {
    const auto len = static_cast<Index>(train_seqs[i].size());
    if (len >= 2 && len <= context + 1)
      usable.push_back(i);
    else
      ++skipped;
  }
  if (usable.empty())
    throw std::invalid_argument("train_lm: no usable training sequences");
  if (skipped > 0)
    log_warn("train_lm: skipped %zu sequences not fitting context", skipped);

  Rng shuffle_rng(cfg.seed, "train-shuffle");
  nn::AdamW::Config opt_cfg;
  opt_cfg.lr = cfg.lr;
  opt_cfg.weight_decay = cfg.weight_decay;
  nn::AdamW opt(model.params(), opt_cfg);

  const std::size_t steps_per_epoch =
      (usable.size() + static_cast<std::size_t>(cfg.batch_size) - 1) /
      static_cast<std::size_t>(cfg.batch_size);
  const std::size_t total_steps =
      steps_per_epoch * static_cast<std::size_t>(cfg.epochs);
  const std::size_t warmup_steps = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.warmup_frac * double(total_steps)));

  // Registry metrics (cached references; see src/obs/metrics.h).
  auto& obs_reg = obs::Registry::global();
  obs::Counter& m_steps = obs_reg.counter("train.steps");
  obs::Counter& m_tokens = obs_reg.counter("train.tokens");
  obs::Gauge& m_loss = obs_reg.gauge("train.loss");
  obs::Gauge& m_grad_norm = obs_reg.gauge("train.grad_norm");
  obs::Histogram& m_step_ms = obs_reg.histogram("train.step_ms");

  TrainReport report;
  nn::Graph g;
  std::size_t step = 0;

  // Durable checkpointing (optional): snapshot every complete piece of
  // trajectory state — parameters, optimizer moments, shuffle RNG, the
  // in-flight permutation, loss accumulators, and the step/epoch cursor —
  // so a killed run resumed from the latest good generation replays the
  // exact remaining steps and lands on bitwise-identical weights.
  std::unique_ptr<durable::CheckpointManifest> manifest;
  std::uint64_t fingerprint = 0;
  int start_epoch = 0;
  std::size_t resume_start = 0;
  double resume_epoch_loss = 0.0;
  std::size_t resume_epoch_batches = 0;
  bool restored_perm = false;
  if (cfg.checkpoint_every > 0) {
    if (cfg.checkpoint_dir.empty())
      throw std::invalid_argument(
          "train_lm: checkpoint_every > 0 requires checkpoint_dir");
    fingerprint = run_fingerprint(cfg, pad_token, train_seqs);
    manifest =
        std::make_unique<durable::CheckpointManifest>(cfg.checkpoint_dir);
    if (const auto entry = manifest->latest_good()) {
      durable::checked_load(
          manifest->file_path(entry->files.at(0)), [&](BinaryReader& r) {
            if (r.read<std::uint32_t>() != kTrainCkptMagic)
              throw std::runtime_error(
                  "train_lm: not a training checkpoint");
            if (r.read<std::uint32_t>() != kTrainCkptVersion)
              throw std::runtime_error(
                  "train_lm: unsupported training checkpoint version");
            if (r.read<std::uint64_t>() != fingerprint)
              throw std::runtime_error(
                  "train_lm: checkpoint fingerprint mismatch (different "
                  "config or training data); refusing to resume");
            start_epoch = r.read<std::int32_t>();
            step = r.read<std::uint64_t>();
            resume_start = r.read<std::uint64_t>();
            resume_epoch_loss = r.read<double>();
            resume_epoch_batches = r.read<std::uint64_t>();
            report.epoch_loss = r.read_vector<double>();
            report.valid_nll = r.read_vector<double>();
            std::array<std::uint64_t, 4> rng_state;
            for (auto& word : rng_state) word = r.read<std::uint64_t>();
            shuffle_rng.set_state(rng_state);
            const auto perm = r.read_vector<std::uint64_t>();
            if (perm.size() != usable.size())
              throw std::runtime_error(
                  "train_lm: checkpoint permutation size mismatch");
            for (std::size_t i = 0; i < perm.size(); ++i)
              usable[i] = static_cast<std::size_t>(perm[i]);
            model.params().load(r);
            opt.load(r);
          });
      restored_perm = true;
      report.resumed_from_step = step;
      log_info("train_lm: resumed from checkpoint at step %zu (epoch %d)",
               step, start_epoch + 1);
    }
  }
  const auto save_checkpoint = [&](int epoch, std::size_t next_start,
                                   double ep_loss, std::size_t ep_batches) {
    const std::string name = "ckpt-" + std::to_string(step) + ".bin";
    durable::atomic_save(manifest->file_path(name), [&](BinaryWriter& w) {
      w.write(kTrainCkptMagic);
      w.write(kTrainCkptVersion);
      w.write(fingerprint);
      w.write<std::int32_t>(epoch);
      w.write<std::uint64_t>(step);
      w.write<std::uint64_t>(next_start);
      w.write<double>(ep_loss);
      w.write<std::uint64_t>(ep_batches);
      w.write_vector(report.epoch_loss);
      w.write_vector(report.valid_nll);
      for (const std::uint64_t word : shuffle_rng.state()) w.write(word);
      const std::vector<std::uint64_t> perm(usable.begin(), usable.end());
      w.write_vector(perm);
      PPG_FAILPOINT("train.checkpoint.mid_write");
      model.params().save(w);
      opt.save(w);
    });
    manifest->publish(step, {name});
    manifest->prune(cfg.checkpoint_keep);
  };

  for (int epoch = start_epoch; epoch < cfg.epochs; ++epoch) {
    obs::Span epoch_span("train/epoch", "train");
    double epoch_loss = 0.0;
    std::size_t epoch_batches = 0;
    std::size_t first = 0;
    if (restored_perm) {
      // The permutation for this epoch was restored from the checkpoint;
      // re-shuffling would consume RNG draws the original run never made.
      first = resume_start;
      epoch_loss = resume_epoch_loss;
      epoch_batches = resume_epoch_batches;
      restored_perm = false;
    } else {
      shuffle_rng.shuffle(usable);
    }
    for (std::size_t start = first; start < usable.size();
         start += static_cast<std::size_t>(cfg.batch_size)) {
      const std::size_t end = std::min(
          usable.size(), start + static_cast<std::size_t>(cfg.batch_size));
      const Index batch = static_cast<Index>(end - start);
      Index time = 0;
      for (std::size_t i = start; i < end; ++i)
        time = std::max(
            time, static_cast<Index>(train_seqs[usable[i]].size()) - 1);
      std::vector<int> inputs(batch * time, pad_token);
      std::vector<int> targets(batch * time, -1);
      for (Index b = 0; b < batch; ++b) {
        const auto& seq = train_seqs[usable[start + static_cast<std::size_t>(b)]];
        for (std::size_t t = 0; t + 1 < seq.size(); ++t) {
          inputs[b * time + static_cast<Index>(t)] = seq[t];
          targets[b * time + static_cast<Index>(t)] = seq[t + 1];
        }
      }
      // LR schedule: linear warmup then cosine decay to 10% of peak.
      double lr_scale;
      if (step < warmup_steps) {
        lr_scale = double(step + 1) / double(warmup_steps);
      } else if (cfg.cosine_decay && total_steps > warmup_steps) {
        const double progress = double(step - warmup_steps) /
                                double(total_steps - warmup_steps);
        lr_scale = 0.1 + 0.9 * 0.5 * (1.0 + std::cos(3.141592653589793 * progress));
      } else {
        lr_scale = 1.0;
      }
      opt.lr() = static_cast<float>(cfg.lr * lr_scale);

      const std::int64_t step_start =
          obs::timing_enabled() ? obs::now_ns() : 0;
      g.clear();
      const nn::Tensor loss =
          model.loss(g, inputs, targets, batch, time, -1, nullptr);
      g.backward(loss);
      PPG_DCHECK(std::isfinite(loss.at(0)), "loss diverged at step %zu: %f",
                 step, double(loss.at(0)));
      const double grad_norm = model.params().clip_grad_norm(cfg.grad_clip);
      PPG_DCHECK(std::isfinite(grad_norm),
                 "gradient norm diverged at step %zu", step);
      opt.step();
      dcheck_finite_params(model.params(), step);
      epoch_loss += double(loss.at(0));
      ++epoch_batches;
      ++step;
      m_steps.inc();
      m_tokens.inc(static_cast<std::uint64_t>(batch) *
                   static_cast<std::uint64_t>(time));
      m_loss.set(double(loss.at(0)));
      m_grad_norm.set(grad_norm);
      if (step_start != 0)
        m_step_ms.observe(double(obs::now_ns() - step_start) * 1e-6);
      PPG_FAILPOINT("train.after_step");
      if (manifest && step % cfg.checkpoint_every == 0)
        save_checkpoint(epoch, end, epoch_loss, epoch_batches);
      if (cfg.log_every > 0 && step % static_cast<std::size_t>(cfg.log_every) == 0)
        log_info("train_lm: step %zu/%zu loss=%.4f lr=%.2e", step, total_steps,
                 loss.at(0), double(opt.lr()));
    }
    g.clear();
    const double mean_loss =
        epoch_batches == 0 ? 0.0 : epoch_loss / double(epoch_batches);
    report.epoch_loss.push_back(mean_loss);
    double vnll = 0.0;
    if (!valid_seqs.empty()) {
      obs::Span valid_span("train/validate", "train");
      vnll = model.evaluate_nll(valid_seqs, cfg.batch_size, pad_token);
      report.valid_nll.push_back(vnll);
    }
    if (hook) hook(epoch, mean_loss, vnll);
    if (cfg.log_every > 0)
      log_info("train_lm: epoch %d/%d train=%.4f valid=%.4f", epoch + 1,
               cfg.epochs, mean_loss, vnll);
  }
  report.steps = step;
  return report;
}

}  // namespace ppg::gpt
