// Synthetic leaked-password corpora, cleaning, and splits (paper §IV-A).
//
// Real leak files (RockYou, LinkedIn, …) are not redistributable and are
// unavailable offline, so the evaluation substrate is a parameterised
// generator that reproduces the *distributional* properties the paper's
// metrics depend on: a Zipf-heavy head of very common passwords, a body of
// human composition habits (word+digits, leetspeak, names+years, keyboard
// walks, dates), convergent pattern structure across sites, and a
// site-specific parameter shift that makes cross-site evaluation
// meaningful. Each profile also injects "dirty" entries (too long/short,
// spaces, non-ASCII) so the §IV-A1 cleaning rules have real work to do and
// Table II's retention rates are reproduced.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace ppg::data {

/// Tunable knobs of one synthetic "site" (one leak).
struct SiteProfile {
  std::string name;
  /// Approximate number of distinct raw entries to produce.
  std::size_t unique_target = 50000;
  /// Zipf exponent over the word/name lists; higher = heavier head.
  double zipf_s = 0.9;
  /// Mixture weights over composition habits (need not sum to 1).
  double w_common = 0.08;        ///< verbatim very-common password
  double w_word_digits = 0.30;   ///< word + digit suffix ("monkey12")
  double w_word_special_digits = 0.07;  ///< word + special + digits
  double w_digits_only = 0.14;   ///< dates, phone fragments, repeats
  double w_name_year = 0.12;     ///< given name + 2/4-digit year
  double w_keyboard_walk = 0.05; ///< "qwerty"-style walks
  double w_leet_word = 0.06;     ///< leetspeak substitutions
  double w_two_words = 0.08;     ///< word pairs ("bluedragon")
  double w_word_only = 0.10;     ///< bare word, case-mangled
  /// Probability of capitalising the first letter of word habits.
  double caps_rate = 0.12;
  /// Probability of fully uppercasing a word habit.
  double upper_rate = 0.02;
  /// How far each site's word-frequency ranking drifts from the global
  /// ranking (0 = identical across sites; 1 = heavy local reshuffle).
  double rank_jitter = 0.15;
  /// Fraction of dirty (cleaning-removed) entries ≈ 1 - retention rate.
  double dirty_rate = 0.05;
  /// Inclusive year range for year suffixes.
  int year_lo = 1955;
  int year_hi = 2012;
};

/// Built-in profiles mirroring the paper's five datasets (Table II),
/// scaled ~100x down. Retention targets: RockYou 92.5%, LinkedIn 82.2%,
/// phpBB 98.4%, MySpace 98.0%, Yahoo! 98.5%.
SiteProfile rockyou_profile();
SiteProfile linkedin_profile();
SiteProfile phpbb_profile();
SiteProfile myspace_profile();
SiteProfile yahoo_profile();

/// A raw leak: unique entries, dirty ones included.
struct RawCorpus {
  std::string name;
  std::vector<std::string> entries;
};

/// Deterministically generates the raw corpus for a profile. The same
/// (profile, master_seed) always produces the same corpus; different site
/// names decorrelate via seed derivation.
RawCorpus generate_site(const SiteProfile& profile, std::uint64_t master_seed);

/// Cleaning statistics for Table II.
struct CleanStats {
  std::size_t unique_raw = 0;
  std::size_t cleaned = 0;
  /// cleaned / unique_raw.
  double retention() const {
    return unique_raw == 0 ? 0.0 : double(cleaned) / double(unique_raw);
  }
};

/// A cleaned corpus: deduplicated passwords of length 4..12 made only of
/// printable non-space ASCII (paper §IV-A1).
struct CleanCorpus {
  std::string name;
  std::vector<std::string> passwords;
  CleanStats stats;
};

/// Applies the paper's cleaning rules to a raw corpus.
CleanCorpus clean(const RawCorpus& raw);

/// 7:1:2 train/validation/test split of unique passwords (paper §IV-A2).
struct Split {
  std::vector<std::string> train;
  std::vector<std::string> valid;
  std::vector<std::string> test;
};

/// Shuffles deterministically with `seed` and splits 70/10/20.
Split split_712(std::vector<std::string> passwords, std::uint64_t seed);

/// Summary statistics used by benches and examples.
struct CorpusSummary {
  std::size_t count = 0;
  double mean_length = 0.0;
  std::size_t distinct_patterns = 0;
  /// Top patterns by frequency, descending.
  std::vector<std::pair<std::string, double>> top_patterns;
};

/// Computes summary statistics over a password list.
CorpusSummary summarize(const std::vector<std::string>& passwords,
                        std::size_t top_k = 10);

}  // namespace ppg::data
