// Embedded vocabulary for the synthetic leaked-corpus generator.
//
// These lists stand in for the lexical material of real leaks: a head of
// very common passwords, everyday English words, given names, and keyboard
// walks. They are ordered roughly by real-world frequency so a Zipf draw
// over the index reproduces the heavy head observed in leaked corpora.
#pragma once

#include <string_view>

namespace ppg::data {

/// Passwords that top every real leak's frequency table.
inline constexpr std::string_view kCommonPasswords[] = {
    "123456", "password", "123456789", "12345678", "12345", "1234567",
    "iloveyou", "qwerty", "abc123", "111111", "123123", "admin",
    "letmein", "welcome", "monkey", "dragon", "sunshine", "princess",
    "football", "shadow", "master", "666666", "qwertyuiop", "123321",
    "baseball", "superman", "1qaz2wsx", "7777777", "121212", "000000",
    "qazwsx", "trustno1", "jordan", "hunter", "michael", "batman",
    "soccer", "harley", "ranger", "buster", "thomas", "tigger",
    "robert", "access", "love", "passw0rd", "loveme", "hello",
    "charlie", "pepper", "jessica", "asshole", "696969", "amanda",
    "nicole", "daniel", "babygirl", "lovely", "jesus", "michelle",
    "ashley", "654321", "qwerty123", "football1", "987654321", "mynoob",
    "18atcskd2w", "3rjs1la7qe", "google", "zxcvbnm", "1q2w3e4r", "555555",
    "fuckyou", "starwars", "computer", "michelle1", "jordan23", "liverpool",
    "justin", "loveyou", "princess1", "1234", "131313", "159753",
    "anthony", "159357", "222222", "lol123", "qwe123", "secret",
    "summer", "internet", "a123456", "bailey", "whatever", "ginger",
    "flower", "hottie", "cheese", "matthew", "pokemon", "joshua",
    "november", "killer", "mustang", "freedom", "nothing", "maggie",
    "andrea", "chelsea", "family", "purple", "angels", "jennifer",
    "peanut", "cookie", "silver", "987654", "112233", "samsung",
};

/// Everyday words users build passwords from (rough frequency order).
inline constexpr std::string_view kWords[] = {
    "love", "baby", "angel", "girl", "life", "happy", "lucky", "money",
    "star", "blue", "pink", "sexy", "cool", "rock", "king", "queen",
    "heart", "music", "dance", "smile", "dream", "sweet", "honey", "candy",
    "sugar", "magic", "power", "tiger", "eagle", "wolf", "bear", "lion",
    "horse", "dog", "cat", "bird", "fish", "snake", "panda", "bunny",
    "green", "black", "white", "red", "gold", "silver", "orange", "purple",
    "yellow", "brown", "crazy", "funny", "super", "mega", "ultra", "hyper",
    "ninja", "pirate", "zombie", "ghost", "devil", "demon", "spirit",
    "soul", "fire", "water", "earth", "wind", "storm", "thunder", "light",
    "dark", "night", "day", "moon", "sun", "sky", "rain", "snow",
    "summer", "winter", "spring", "autumn", "flower", "rose", "daisy",
    "lily", "jasmine", "peace", "hope", "faith", "grace", "glory", "honor",
    "pride", "trust", "truth", "forever", "always", "never", "alone",
    "friend", "family", "mother", "father", "sister", "brother", "cousin",
    "uncle", "mommy", "daddy", "nana", "papa", "house", "home", "school",
    "college", "work", "office", "beach", "ocean", "river", "lake",
    "mountain", "forest", "island", "paradise", "heaven", "hell", "world",
    "planet", "space", "galaxy", "rocket", "shuttle", "pilot", "driver",
    "racer", "runner", "player", "gamer", "winner", "loser", "master",
    "slave", "boss", "chief", "captain", "soldier", "warrior", "knight",
    "prince", "duke", "lord", "wizard", "witch", "fairy", "mermaid",
    "dolphin", "shark", "whale", "turtle", "monkey", "donkey", "chicken",
    "cowboy", "hunter", "fisher", "farmer", "doctor", "nurse", "teacher",
    "student", "lawyer", "banker", "singer", "artist", "writer", "poet",
    "actor", "model", "diva", "princess", "cutie", "sweetie", "darling",
    "honey", "sunshine", "rainbow", "butterfly", "ladybug", "dragonfly",
    "firefly", "cricket", "spider", "scorpion", "cobra", "viper", "python",
    "falcon", "hawk", "raven", "crow", "robin", "sparrow", "phoenix",
    "dragon", "unicorn", "pegasus", "griffin", "hydra", "kraken", "titan",
    "atlas", "zeus", "apollo", "athena", "venus", "mars", "jupiter",
    "saturn", "neptune", "pluto", "mercury", "cosmos", "nebula", "comet",
    "meteor", "eclipse", "aurora", "horizon", "sunset", "sunrise", "dawn",
    "dusk", "midnight", "noon", "today", "tomorrow", "yesterday", "monday",
    "friday", "sunday", "january", "april", "june", "july", "august",
    "october", "december", "spring", "soccer", "football", "baseball",
    "basket", "tennis", "hockey", "rugby", "cricket", "golf", "boxing",
    "karate", "judo", "yoga", "chess", "poker", "bingo", "lotto",
    "casino", "vegas", "paris", "london", "tokyo", "berlin", "madrid",
    "roma", "milan", "dallas", "texas", "boston", "chicago", "miami",
    "brooklyn", "jersey", "hawaii", "alaska", "canada", "mexico", "brazil",
    "china", "india", "japan", "korea", "france", "spain", "italy",
    "russia", "egypt", "kenya", "congo", "peru", "chile", "cuba",
    "guitar", "piano", "violin", "drums", "flute", "trumpet", "banjo",
    "techno", "disco", "salsa", "tango", "reggae", "hiphop", "metal",
    "punk", "blues", "jazz", "opera", "remix", "melody", "rhythm",
    "chorus", "lyric", "song", "tune", "beat", "bass", "treble",
    "coffee", "pizza", "burger", "taco", "pasta", "noodle", "cookie",
    "brownie", "muffin", "donut", "bagel", "pretzel", "popcorn", "nachos",
    "cheese", "butter", "pepper", "garlic", "onion", "tomato", "potato",
    "carrot", "banana", "apple", "mango", "peach", "cherry", "berry",
    "grape", "melon", "lemon", "lime", "coconut", "vanilla", "chocolate",
    "caramel", "toffee", "fudge", "jelly", "peanut", "walnut", "almond",
    "turbo", "nitro", "diesel", "petrol", "engine", "motor", "wheels",
    "brakes", "clutch", "gears", "speed", "racing", "drift", "cruise",
    "harley", "honda", "yamaha", "suzuki", "ferrari", "porsche", "bentley",
    "jaguar", "mustang", "camaro", "charger", "viper", "shelby", "lancer",
    "pixel", "cyber", "digital", "virtual", "matrix", "vector", "binary",
    "kernel", "server", "router", "modem", "laptop", "mobile", "tablet",
    "gadget", "widget", "hacker", "coder", "nerd", "geek", "wizard",
};

/// Given names (used for name+year habits; rough frequency order).
inline constexpr std::string_view kNames[] = {
    "michael", "jessica", "ashley", "matthew", "joshua", "amanda",
    "daniel", "david", "james", "robert", "john", "joseph", "andrew",
    "ryan", "brandon", "jason", "justin", "sarah", "william", "jonathan",
    "brittany", "samantha", "anthony", "stephanie", "nicholas", "melissa",
    "christopher", "jennifer", "elizabeth", "megan", "kevin", "steven",
    "thomas", "lauren", "eric", "rachel", "amber", "nicole", "heather",
    "timothy", "christina", "tiffany", "charles", "austin", "jeremy",
    "sean", "kayla", "brian", "emily", "jacob", "danielle", "kyle",
    "rebecca", "zachary", "chelsea", "jose", "alex", "maria", "angel",
    "victoria", "crystal", "richard", "erica", "tyler", "jordan",
    "alexis", "jesse", "alyssa", "vanessa", "cody", "courtney", "aaron",
    "kimberly", "adam", "laura", "patrick", "natalie", "jasmine",
    "travis", "michelle", "karen", "nathan", "sara", "dustin", "kelsey",
    "paul", "mark", "erin", "katie", "derek", "allison", "lucas",
    "monica", "diana", "carlos", "sophia", "olivia", "emma", "isabella",
    "mia", "charlotte", "amelia", "harper", "evelyn", "abigail", "ella",
    "scarlett", "grace", "lily", "aria", "chloe", "zoey", "penelope",
    "layla", "riley", "nora", "hazel", "violet", "aurora", "savannah",
    "audrey", "brooklyn", "bella", "claire", "skylar", "lucy", "paisley",
    "everly", "anna", "caroline", "genesis", "kennedy", "stella",
    "maya", "valeria", "adrian", "gabriel", "miguel", "antonio", "diego",
    "fernando", "pedro", "juan", "luis", "pablo", "sergio", "marco",
    "bruno", "felipe", "rafael", "andres", "hugo", "ivan", "oscar",
    "victor", "ricardo", "eduardo", "roberto", "manuel", "alejandro",
    "francisco", "javier", "leonardo", "gustavo",
};

/// Keyboard walks common in leaks.
inline constexpr std::string_view kKeyboardWalks[] = {
    "qwerty", "qwertyuiop", "asdfgh", "asdfghjkl", "zxcvbn", "zxcvbnm",
    "1qaz2wsx", "qazwsx", "qazwsxedc", "1q2w3e4r", "1q2w3e", "q1w2e3r4",
    "zaq12wsx", "xsw2zaq1", "poiuyt", "lkjhgf", "mnbvcx", "098765",
    "135790", "246810", "13579", "02468", "1234qwer", "qwer1234",
    "asdf1234", "1234asdf", "wasd", "wasdwasd", "4rfv3edc", "5tgb6yhn",
    "7ujm8ik", "9ol.0p", "plokij", "okmijn", "qweasd", "qweasdzxc",
};

/// Special characters in rough order of password popularity.
inline constexpr std::string_view kSpecialsByPopularity =
    "!.@_-*#$&+?=%^/~,:;'\"()[]{}<>|\\`";

}  // namespace ppg::data
