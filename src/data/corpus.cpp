#include "data/corpus.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <numeric>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "data/wordlists.h"
#include "pcfg/pattern.h"

namespace ppg::data {

SiteProfile rockyou_profile() {
  SiteProfile p;
  p.name = "rockyou";
  p.unique_target = 120000;
  p.zipf_s = 0.95;
  p.dirty_rate = 0.075;
  p.rank_jitter = 0.0;  // the reference distribution
  return p;
}

SiteProfile linkedin_profile() {
  SiteProfile p;
  p.name = "linkedin";
  p.unique_target = 150000;
  p.zipf_s = 0.85;
  p.dirty_rate = 0.178;
  p.rank_jitter = 0.25;
  // Professional site: fewer pure-common entries, more word+digits (many
  // sites enforced digit rules), fewer name+year.
  p.w_common = 0.05;
  p.w_word_digits = 0.34;
  p.w_word_special_digits = 0.09;
  p.w_name_year = 0.09;
  p.caps_rate = 0.16;
  return p;
}

SiteProfile phpbb_profile() {
  SiteProfile p;
  p.name = "phpbb";
  p.unique_target = 24000;
  p.zipf_s = 0.9;
  p.dirty_rate = 0.016;
  p.rank_jitter = 0.3;
  // Tech forum: more keyboard walks and leet, fewer names.
  p.w_keyboard_walk = 0.09;
  p.w_leet_word = 0.09;
  p.w_name_year = 0.07;
  return p;
}

SiteProfile myspace_profile() {
  SiteProfile p;
  p.name = "myspace";
  p.unique_target = 9000;
  p.zipf_s = 1.0;
  p.dirty_rate = 0.02;
  p.rank_jitter = 0.2;
  // Social site with a (historical) letter+digit requirement: heavy
  // word+digit mixture.
  p.w_word_digits = 0.40;
  p.w_word_only = 0.04;
  p.w_common = 0.06;
  return p;
}

SiteProfile yahoo_profile() {
  SiteProfile p;
  p.name = "yahoo";
  p.unique_target = 36000;
  p.zipf_s = 0.9;
  p.dirty_rate = 0.015;
  p.rank_jitter = 0.22;
  return p;
}

namespace {

/// A per-site view of a global frequency-ordered list: a Zipf sampler over
/// ranks composed with a site-specific locally-jittered permutation, so
/// sites agree on roughly what is popular while disagreeing in detail.
class JitteredList {
 public:
  JitteredList(std::span<const std::string_view> items, double zipf_s,
               double jitter, Rng& rng)
      : items_(items), table_(items.size(), zipf_s), perm_(items.size()) {
    std::iota(perm_.begin(), perm_.end(), 0);
    // Local reshuffle: displacement grows with `jitter`.
    const auto n = perm_.size();
    const auto swaps = static_cast<std::size_t>(jitter * double(n) * 3.0);
    for (std::size_t k = 0; k < swaps; ++k) {
      const std::size_t i = rng.uniform_u64(n);
      const std::size_t d = 1 + rng.uniform_u64(std::max<std::size_t>(n / 8, 1));
      const std::size_t j = std::min(n - 1, i + d);
      std::swap(perm_[i], perm_[j]);
    }
  }

  std::string_view sample(Rng& rng) const {
    return items_[perm_[table_.sample(rng)]];
  }

 private:
  std::span<const std::string_view> items_;
  ZipfTable table_;
  std::vector<std::size_t> perm_;
};

std::string apply_case(std::string word, double caps_rate, double upper_rate,
                       Rng& rng) {
  if (rng.bernoulli(upper_rate)) {
    for (auto& c : word) c = static_cast<char>(std::toupper(c));
  } else if (rng.bernoulli(caps_rate) && !word.empty()) {
    word[0] = static_cast<char>(std::toupper(word[0]));
  }
  return word;
}

std::string digit_suffix(const SiteProfile& p, Rng& rng) {
  switch (rng.uniform_u64(6)) {
    case 0:  // single digit
      return std::to_string(rng.uniform_u64(10));
    case 1:  // two digits
      return std::to_string(rng.uniform_u64(10)) +
             std::to_string(rng.uniform_u64(10));
    case 2: {  // 2-digit year
      const int y = static_cast<int>(
          rng.uniform_int(p.year_lo, p.year_hi));
      const int yy = y % 100;
      return std::string(1, char('0' + yy / 10)) +
             std::string(1, char('0' + yy % 10));
    }
    case 3:  // 4-digit year
      return std::to_string(rng.uniform_int(p.year_lo, p.year_hi));
    case 4:  // "123"-style run
      return std::string("123").substr(0, 1 + rng.uniform_u64(3));
    default: {  // repeated digit
      const char d = static_cast<char>('0' + rng.uniform_u64(10));
      return std::string(1 + rng.uniform_u64(3), d);
    }
  }
}

std::string digits_only(const SiteProfile& p, Rng& rng) {
  switch (rng.uniform_u64(5)) {
    case 0: {  // MMDD
      const int mm = static_cast<int>(1 + rng.uniform_u64(12));
      const int dd = static_cast<int>(1 + rng.uniform_u64(28));
      char buf[5];
      std::snprintf(buf, sizeof buf, "%02d%02d", mm, dd);
      return buf;
    }
    case 1: {  // MMDDYYYY
      const int mm = static_cast<int>(1 + rng.uniform_u64(12));
      const int dd = static_cast<int>(1 + rng.uniform_u64(28));
      const int y = static_cast<int>(rng.uniform_int(p.year_lo, p.year_hi));
      char buf[9];
      std::snprintf(buf, sizeof buf, "%02d%02d%04d", mm, dd, y);
      return buf;
    }
    case 2: {  // ascending run starting anywhere
      const int start = static_cast<int>(rng.uniform_u64(5));
      const int len = static_cast<int>(4 + rng.uniform_u64(6));
      std::string s;
      for (int i = 0; i < len; ++i) s += char('0' + (start + i) % 10);
      return s;
    }
    case 3: {  // repeated block ("121212", "777777")
      const int len = static_cast<int>(4 + rng.uniform_u64(5));
      const char a = static_cast<char>('0' + rng.uniform_u64(10));
      const char b = rng.bernoulli(0.5)
                         ? a
                         : static_cast<char>('0' + rng.uniform_u64(10));
      std::string s;
      for (int i = 0; i < len; ++i) s += (i % 2 == 0 ? a : b);
      return s;
    }
    default: {  // random 6-8 digit number (phone fragment / PIN)
      const int len = static_cast<int>(6 + rng.uniform_u64(3));
      std::string s;
      for (int i = 0; i < len; ++i) s += char('0' + rng.uniform_u64(10));
      return s;
    }
  }
}

char popular_special(Rng& rng) {
  // Zipf-ish over the popularity-ordered special list: squared-uniform
  // index concentrates on the head.
  const double u = rng.uniform();
  const auto idx = static_cast<std::size_t>(
      u * u * double(kSpecialsByPopularity.size()));
  return kSpecialsByPopularity[std::min(idx, kSpecialsByPopularity.size() - 1)];
}

std::string leetify(std::string word, Rng& rng) {
  bool changed = false;
  for (auto& c : word) {
    if (!rng.bernoulli(0.6)) continue;
    switch (c) {
      case 'a': c = rng.bernoulli(0.7) ? '@' : '4'; changed = true; break;
      case 'e': c = '3'; changed = true; break;
      case 'i': c = rng.bernoulli(0.7) ? '1' : '!'; changed = true; break;
      case 'o': c = '0'; changed = true; break;
      case 's': c = rng.bernoulli(0.7) ? '$' : '5'; changed = true; break;
      case 't': c = '7'; changed = true; break;
      default: break;
    }
  }
  if (!changed && !word.empty()) word[0] = '@';  // force at least one sub
  return word;
}

/// One dirty entry that the §IV-A1 cleaning must reject.
std::string dirty_entry(Rng& rng) {
  switch (rng.uniform_u64(4)) {
    case 0: {  // too long (13..28 chars)
      const int len = static_cast<int>(13 + rng.uniform_u64(16));
      std::string s;
      for (int i = 0; i < len; ++i)
        s += char('a' + rng.uniform_u64(26));
      return s;
    }
    case 1: {  // too short (1..3 chars)
      const int len = static_cast<int>(1 + rng.uniform_u64(3));
      std::string s;
      for (int i = 0; i < len; ++i)
        s += char('a' + rng.uniform_u64(26));
      return s;
    }
    case 2: {  // contains a space
      std::string s = "pass word";
      s += std::to_string(rng.uniform_u64(100000));
      return s;
    }
    default: {  // contains non-ASCII bytes (UTF-8-ish garbage)
      std::string s = "p\xc3\xa4ss";
      s += std::to_string(rng.uniform_u64(100000));
      return s;
    }
  }
}

}  // namespace

RawCorpus generate_site(const SiteProfile& profile,
                        std::uint64_t master_seed) {
  Rng rng(master_seed, profile.name);
  const JitteredList words(std::span<const std::string_view>(kWords), profile.zipf_s,
                           profile.rank_jitter, rng);
  const JitteredList names(std::span<const std::string_view>(kNames), profile.zipf_s,
                           profile.rank_jitter, rng);
  const JitteredList commons(std::span<const std::string_view>(kCommonPasswords),
                             profile.zipf_s * 1.1, profile.rank_jitter, rng);
  const JitteredList walks(std::span<const std::string_view>(kKeyboardWalks), profile.zipf_s,
                           profile.rank_jitter, rng);

  const std::array<double, 9> mix = {
      profile.w_common,        profile.w_word_digits,
      profile.w_word_special_digits, profile.w_digits_only,
      profile.w_name_year,     profile.w_keyboard_walk,
      profile.w_leet_word,     profile.w_two_words,
      profile.w_word_only};

  std::unordered_set<std::string> seen;
  RawCorpus corpus;
  corpus.name = profile.name;
  corpus.entries.reserve(profile.unique_target);
  seen.reserve(profile.unique_target * 2);

  // Generation loop with a stall guard: habit spaces are finite, so after
  // enough consecutive duplicates we accept the corpus as saturated.
  std::size_t consecutive_dups = 0;
  const std::size_t dup_limit = 50000;
  while (corpus.entries.size() < profile.unique_target &&
         consecutive_dups < dup_limit) {
    std::string pw;
    if (rng.bernoulli(profile.dirty_rate)) {
      pw = dirty_entry(rng);
    } else {
      switch (rng.discrete(std::span(mix.data(), mix.size()))) {
        case 0:
          pw = std::string(commons.sample(rng));
          break;
        case 1:
          pw = apply_case(std::string(words.sample(rng)), profile.caps_rate,
                          profile.upper_rate, rng) +
               digit_suffix(profile, rng);
          break;
        case 2:
          pw = apply_case(std::string(words.sample(rng)), profile.caps_rate,
                          profile.upper_rate, rng) +
               std::string(1, popular_special(rng)) + digit_suffix(profile, rng);
          break;
        case 3:
          pw = digits_only(profile, rng);
          break;
        case 4:
          pw = apply_case(std::string(names.sample(rng)), profile.caps_rate,
                          profile.upper_rate, rng) +
               digit_suffix(profile, rng);
          break;
        case 5: {
          pw = std::string(walks.sample(rng));
          if (rng.bernoulli(0.25)) pw += digit_suffix(profile, rng);
          break;
        }
        case 6:
          pw = leetify(std::string(words.sample(rng)), rng);
          if (rng.bernoulli(0.4)) pw += digit_suffix(profile, rng);
          break;
        case 7: {
          pw = std::string(words.sample(rng)) + std::string(words.sample(rng));
          break;
        }
        default:
          pw = apply_case(std::string(words.sample(rng)), profile.caps_rate,
                          profile.upper_rate, rng);
          break;
      }
    }
    if (seen.insert(pw).second) {
      corpus.entries.push_back(std::move(pw));
      consecutive_dups = 0;
    } else {
      ++consecutive_dups;
    }
  }
  return corpus;
}

CleanCorpus clean(const RawCorpus& raw) {
  CleanCorpus out;
  out.name = raw.name;
  std::unordered_set<std::string> seen;
  seen.reserve(raw.entries.size() * 2);
  for (const auto& e : raw.entries) {
    if (!seen.insert(e).second) continue;  // raw may carry duplicates
    ++out.stats.unique_raw;
    if (e.size() < 4 || e.size() > 12) continue;
    const bool universe_ok =
        std::all_of(e.begin(), e.end(), pcfg::in_universe);
    if (!universe_ok) continue;
    out.passwords.push_back(e);
  }
  out.stats.cleaned = out.passwords.size();
  return out;
}

Split split_712(std::vector<std::string> passwords, std::uint64_t seed) {
  Rng rng(seed, "split712");
  rng.shuffle(passwords);
  const std::size_t n = passwords.size();
  const std::size_t n_train = n * 7 / 10;
  const std::size_t n_valid = n / 10;
  Split s;
  s.train.assign(passwords.begin(), passwords.begin() + n_train);
  s.valid.assign(passwords.begin() + n_train,
                 passwords.begin() + n_train + n_valid);
  s.test.assign(passwords.begin() + n_train + n_valid, passwords.end());
  return s;
}

CorpusSummary summarize(const std::vector<std::string>& passwords,
                        std::size_t top_k) {
  CorpusSummary s;
  s.count = passwords.size();
  if (passwords.empty()) return s;
  double len_sum = 0.0;
  std::unordered_map<std::string, std::size_t> pattern_counts;
  for (const auto& pw : passwords) {
    len_sum += double(pw.size());
    pattern_counts[pcfg::pattern_of(pw)]++;
  }
  s.mean_length = len_sum / double(passwords.size());
  s.distinct_patterns = pattern_counts.size();
  std::vector<std::pair<std::string, std::size_t>> items(
      pattern_counts.begin(), pattern_counts.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (std::size_t i = 0; i < std::min(top_k, items.size()); ++i)
    s.top_patterns.emplace_back(items[i].first,
                                double(items[i].second) / double(s.count));
  return s;
}

}  // namespace ppg::data
