#include "baselines/passgan.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/onehot.h"
#include "common/durable_io.h"
#include "common/logging.h"
#include "nn/optimizer.h"

namespace ppg::baselines {

namespace {
constexpr nn::Index kFeature = static_cast<nn::Index>(kWidth) * kClasses;
}  // namespace

PassGan::PassGan(PassGanConfig cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  Rng rng(seed, "passgan-init");
  g1_ = nn::Linear(gen_params_, "g1", cfg_.z_dim, cfg_.hidden, rng);
  g2_ = nn::Linear(gen_params_, "g2", cfg_.hidden, cfg_.hidden, rng);
  g3_ = nn::Linear(gen_params_, "g3", cfg_.hidden, kFeature, rng);
  c1_ = nn::Linear(critic_params_, "c1", kFeature, cfg_.hidden, rng);
  c2_ = nn::Linear(critic_params_, "c2", cfg_.hidden, cfg_.hidden, rng);
  c3_ = nn::Linear(critic_params_, "c3", cfg_.hidden, 1, rng);
}

nn::Tensor PassGan::generator_forward(nn::Graph& g, const nn::Tensor& z,
                                      Rng* gumbel_rng) const {
  nn::Tensor h = g.relu(g1_.forward(g, z));
  h = g.relu(g2_.forward(g, h));
  nn::Tensor logits = g3_.forward(g, h);  // [B, W*C]
  const nn::Index b = logits.dim(0);
  nn::Tensor rows = logits.reshaped({b * kWidth, kClasses});
  if (gumbel_rng != nullptr) {
    // Gumbel-softmax relaxation: logits + G, G = -log(-log U).
    nn::Tensor noise({b * kWidth, kClasses});
    for (auto& v : noise.data()) {
      double u = gumbel_rng->uniform();
      if (u <= 0.0) u = 1e-12;
      v = static_cast<float>(-std::log(-std::log(u)));
    }
    rows = g.add(rows, noise);
  }
  rows = g.scale(rows, 1.f / cfg_.gumbel_tau);
  return g.softmax_rows(rows).reshaped({b, kFeature});
}

nn::Tensor PassGan::critic_forward(nn::Graph& g, const nn::Tensor& x) const {
  nn::Tensor h = g.relu(c1_.forward(g, x));
  h = g.relu(c2_.forward(g, h));
  return g.mean_all(c3_.forward(g, h));
}

void PassGan::train(std::span<const std::string> passwords) {
  if (trained_) throw std::logic_error("PassGan::train: already trained");
  std::vector<std::vector<int>> encoded;
  encoded.reserve(passwords.size());
  for (const auto& pw : passwords)
    if (auto e = encode_fixed(pw)) encoded.push_back(std::move(*e));
  if (encoded.empty())
    throw std::invalid_argument("PassGan::train: no usable passwords");

  Rng data_rng(seed_, "passgan-data");
  Rng noise_rng(seed_, "passgan-noise");
  nn::AdamW::Config gen_opt_cfg{cfg_.lr, 0.5f, 0.9f, 1e-8f, 0.f};
  nn::AdamW::Config critic_opt_cfg{cfg_.lr, 0.5f, 0.9f, 1e-8f, 0.f};
  nn::AdamW gen_opt(gen_params_, gen_opt_cfg);
  nn::AdamW critic_opt(critic_params_, critic_opt_cfg);
  nn::Graph g;

  auto real_batch = [&](nn::Index n) {
    nn::Tensor x({n, kFeature});
    for (nn::Index i = 0; i < n; ++i) {
      const auto& e = encoded[data_rng.uniform_u64(encoded.size())];
      onehot_row(e, x.data().data() + i * kFeature);
    }
    return x;
  };
  auto noise_batch = [&](nn::Index n) {
    nn::Tensor z({n, cfg_.z_dim});
    for (auto& v : z.data()) v = static_cast<float>(noise_rng.normal());
    return z;
  };

  for (int step = 0; step < cfg_.steps; ++step) {
    for (int k = 0; k < cfg_.n_critic; ++k) {
      g.clear();
      const nn::Tensor fake = generator_forward(g, noise_batch(cfg_.batch),
                                                &noise_rng);
      const nn::Tensor score_fake = critic_forward(g, fake);
      const nn::Tensor score_real = critic_forward(g, real_batch(cfg_.batch));
      // Critic maximises real - fake, so minimise fake - real.
      const nn::Tensor loss = g.sub(score_fake, score_real);
      g.backward(loss);
      critic_opt.step();
      gen_params_.zero_grad();  // discard the leak into the generator
      last_wdist_ = -double(loss.at(0));
      // Weight clipping (original WGAN Lipschitz constraint).
      for (auto& p : critic_params_.items())
        for (auto& w : p.tensor.data())
          w = std::clamp(w, -cfg_.weight_clip, cfg_.weight_clip);
    }
    g.clear();
    const nn::Tensor fake = generator_forward(g, noise_batch(cfg_.batch),
                                              &noise_rng);
    const nn::Tensor loss = g.scale(critic_forward(g, fake), -1.f);
    g.backward(loss);
    gen_opt.step();
    critic_params_.zero_grad();
    if ((step + 1) % 500 == 0)
      log_debug("PassGan: step %d wdist=%.4f", step + 1, last_wdist_);
  }
  g.clear();
  trained_ = true;
}

std::vector<std::string> PassGan::generate(std::size_t count,
                                           Rng& rng) const {
  if (!trained_) throw std::logic_error("PassGan::generate: untrained");
  std::vector<std::string> out;
  out.reserve(count);
  nn::Graph g;  // forward-only; cleared each batch
  const nn::Index batch = cfg_.batch;
  while (out.size() < count) {
    const nn::Index n = static_cast<nn::Index>(
        std::min<std::size_t>(static_cast<std::size_t>(batch),
                              count - out.size()));
    nn::Tensor z({n, cfg_.z_dim});
    for (auto& v : z.data()) v = static_cast<float>(rng.normal());
    g.clear();
    const nn::Tensor probs = generator_forward(g, z, nullptr);
    // Sharpened decode: p^(gumbel_tau/sample_tau), renormalised. At
    // sample_tau → 0 this is the original PassGAN's argmax (all the
    // randomness in z, heavy mode concentration — its published repeat-
    // rate signature); small positive values let a little per-position
    // noise through.
    const double sharpen =
        cfg_.sample_tau <= 0.f ? 0.0 : double(cfg_.gumbel_tau / cfg_.sample_tau);
    for (nn::Index i = 0; i < n; ++i) {
      std::vector<int> classes(kWidth);
      for (int p = 0; p < kWidth; ++p) {
        const float* row = probs.data().data() + i * kFeature + p * kClasses;
        int chosen = 0;
        if (sharpen == 0.0) {
          for (int c = 1; c < kClasses; ++c)
            if (row[c] > row[chosen]) chosen = c;
        } else {
          double weights[kClasses], total = 0.0;
          for (int c = 0; c < kClasses; ++c) {
            weights[c] = std::pow(double(row[c]), sharpen);
            total += weights[c];
          }
          double target = rng.uniform() * total;
          chosen = kClasses - 1;
          for (int c = 0; c < kClasses; ++c) {
            target -= weights[c];
            if (target < 0.0) {
              chosen = c;
              break;
            }
          }
        }
        classes[static_cast<std::size_t>(p)] = chosen;
      }
      out.push_back(decode_fixed(classes));
    }
  }
  g.clear();
  return out;
}

namespace {
constexpr std::uint32_t kGanMagic = 0x50474147;  // "PGAG"
}  // namespace

void PassGan::save(const std::string& path) const {
  if (!trained_) throw std::logic_error("PassGan::save: untrained");
  durable::atomic_save(path, [this](BinaryWriter& w) {
    w.write(kGanMagic);
    w.write(cfg_.z_dim);
    w.write(cfg_.hidden);
    gen_params_.save(w);
    critic_params_.save(w);
  });
}

void PassGan::load(const std::string& path) {
  durable::checked_load_or_legacy(path, [&](BinaryReader& r) {
    if (r.read<std::uint32_t>() != kGanMagic)
      throw std::runtime_error("PassGan::load: bad magic in " + path);
    if (r.read<nn::Index>() != cfg_.z_dim || r.read<nn::Index>() != cfg_.hidden)
      throw std::runtime_error("PassGan::load: config mismatch in " + path);
    gen_params_.load(r);
    critic_params_.load(r);
  });
  trained_ = true;
}

}  // namespace ppg::baselines
