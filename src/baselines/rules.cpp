#include "baselines/rules.h"

#include <algorithm>
#include <cctype>

namespace ppg::baselines {

std::optional<Rule> Rule::parse(std::string_view text) {
  Rule rule;
  rule.text_ = std::string(text);
  std::size_t i = 0;
  auto need = [&](std::size_t k) { return i + k <= text.size(); };
  while (i < text.size()) {
    const char c = text[i++];
    switch (c) {
      case ':': rule.ops_.push_back({Kind::kNoop}); break;
      case 'l': rule.ops_.push_back({Kind::kLower}); break;
      case 'u': rule.ops_.push_back({Kind::kUpper}); break;
      case 'c': rule.ops_.push_back({Kind::kCapitalize}); break;
      case 'C': rule.ops_.push_back({Kind::kInvertCap}); break;
      case 't': rule.ops_.push_back({Kind::kToggleAll}); break;
      case 'r': rule.ops_.push_back({Kind::kReverse}); break;
      case 'd': rule.ops_.push_back({Kind::kDuplicate}); break;
      case '[': rule.ops_.push_back({Kind::kDeleteFirst}); break;
      case ']': rule.ops_.push_back({Kind::kDeleteLast}); break;
      case '$':
        if (!need(1)) return std::nullopt;
        rule.ops_.push_back({Kind::kAppend, text[i++]});
        break;
      case '^':
        if (!need(1)) return std::nullopt;
        rule.ops_.push_back({Kind::kPrepend, text[i++]});
        break;
      case '@':
        if (!need(1)) return std::nullopt;
        rule.ops_.push_back({Kind::kPurge, text[i++]});
        break;
      case 's':
        if (!need(2)) return std::nullopt;
        rule.ops_.push_back({Kind::kSubstitute, text[i], text[i + 1]});
        i += 2;
        break;
      case 'T':
        if (!need(1) || !std::isdigit(static_cast<unsigned char>(text[i])))
          return std::nullopt;
        rule.ops_.push_back({Kind::kToggleAt, text[i++]});
        break;
      case 'z':
        if (!need(1) || !std::isdigit(static_cast<unsigned char>(text[i])))
          return std::nullopt;
        rule.ops_.push_back({Kind::kDupFirst, text[i++]});
        break;
      case 'Z':
        if (!need(1) || !std::isdigit(static_cast<unsigned char>(text[i])))
          return std::nullopt;
        rule.ops_.push_back({Kind::kDupLast, text[i++]});
        break;
      case ' ':
        break;  // rule files separate ops with spaces; ignore
      default:
        return std::nullopt;
    }
  }
  return rule;
}

namespace {
char toggle(char c) {
  if (std::islower(static_cast<unsigned char>(c)))
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  if (std::isupper(static_cast<unsigned char>(c)))
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return c;
}
}  // namespace

std::string Rule::apply(std::string_view word) const {
  std::string w(word);
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Kind::kNoop:
        break;
      case Kind::kLower:
        for (auto& c : w)
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        break;
      case Kind::kUpper:
        for (auto& c : w)
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        break;
      case Kind::kCapitalize:
        for (auto& c : w)
          c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (!w.empty())
          w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
        break;
      case Kind::kInvertCap:
        for (auto& c : w)
          c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
        if (!w.empty())
          w[0] = static_cast<char>(std::tolower(static_cast<unsigned char>(w[0])));
        break;
      case Kind::kToggleAll:
        for (auto& c : w) c = toggle(c);
        break;
      case Kind::kReverse:
        std::reverse(w.begin(), w.end());
        break;
      case Kind::kDuplicate:
        w += w;
        break;
      case Kind::kAppend:
        w += op.a;
        break;
      case Kind::kPrepend:
        w.insert(w.begin(), op.a);
        break;
      case Kind::kSubstitute:
        for (auto& c : w)
          if (c == op.a) c = op.b;
        break;
      case Kind::kDeleteFirst:
        if (!w.empty()) w.erase(w.begin());
        break;
      case Kind::kDeleteLast:
        if (!w.empty()) w.pop_back();
        break;
      case Kind::kToggleAt: {
        const std::size_t pos = static_cast<std::size_t>(op.a - '0');
        if (pos < w.size()) w[pos] = toggle(w[pos]);
        break;
      }
      case Kind::kDupFirst: {
        if (w.empty()) break;
        const int n = op.a - '0';
        w.insert(0, std::string(static_cast<std::size_t>(n), w[0]));
        break;
      }
      case Kind::kDupLast: {
        if (w.empty()) break;
        const int n = op.a - '0';
        w.append(std::string(static_cast<std::size_t>(n), w.back()));
        break;
      }
      case Kind::kPurge:
        w.erase(std::remove(w.begin(), w.end(), op.a), w.end());
        break;
    }
  }
  return w;
}

RuleAttack::RuleAttack(std::span<const std::string> rule_lines,
                       std::vector<std::string> dictionary)
    : dictionary_(std::move(dictionary)) {
  rules_.reserve(rule_lines.size());
  for (const auto& line : rule_lines) {
    if (auto rule = Rule::parse(line))
      rules_.push_back(std::move(*rule));
    else
      ++rejected_;
  }
}

std::vector<std::string> RuleAttack::enumerate(std::size_t n) const {
  std::vector<std::string> out;
  out.reserve(std::min(n, capacity()));
  for (const Rule& rule : rules_) {
    for (const auto& word : dictionary_) {
      if (out.size() >= n) return out;
      std::string guess = rule.apply(word);
      if (!guess.empty()) out.push_back(std::move(guess));
    }
  }
  return out;
}

std::vector<std::string> RuleAttack::stock_rules() {
  // A best64-flavoured core: identity, case mangles, common suffixes,
  // small leet substitutions, and structural tweaks, ordered by the
  // empirical productivity of each family.
  return {
      ":",     "c",     "u",      "$1",    "$2",    "$3",    "c$1",
      "$1$2$3", "$7",   "$1$1",   "$6$9", "$2$3", "$0$7", "c$1$2$3",
      "$!",    "c$!",   "se3",    "sa@",   "so0",   "si1",  "ss$",
      "se3so0", "c se3", "r",     "d",     "]",     "[",    "T0",
      "$1$2",  "$9$9",  "$0$0",   "$2$0$0$9", "$2$0$1$0", "$2$0$1$1",
      "$2$0$1$2", "^1", "^a",     "Z1",    "z1",    "@a",   "c$2$2",
      "u$1",   "$8$8",  "$4$5$6", "$5$5",  "sa4",   "st7",  "$q$w$e",
  };
}

}  // namespace ppg::baselines
