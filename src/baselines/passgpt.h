// PassGPT baseline (Rando et al. 2023), re-implemented on the shared GPT
// substrate exactly as the paper describes it (§I-A1, §III-B):
//
//  * trained on bare-password rules <BOS>‖password‖<EOS> — no pattern
//    conditioning;
//  * free generation samples from <BOS>;
//  * pattern-guided generation filters candidate tokens at every step so
//    the output obeys the pattern — the scheme whose word-truncation
//    artifact ("polic#10") motivates PagPassGPT.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gpt/model.h"
#include "gpt/sampler.h"
#include "gpt/trainer.h"
#include "pcfg/pattern.h"

namespace ppg::baselines {

/// GPT over bare passwords with filter-based guided generation.
class PassGpt {
 public:
  PassGpt(gpt::Config cfg, std::uint64_t seed);

  /// Encodes <BOS>‖pw‖<EOS> rules and trains the LM.
  gpt::TrainReport train(std::span<const std::string> train_passwords,
                         std::span<const std::string> valid_passwords,
                         const gpt::TrainConfig& cfg);

  /// Unconditional trawling generation.
  std::vector<std::string> generate(std::size_t count, Rng& rng,
                                    const gpt::SampleOptions& opts = {},
                                    gpt::SampleStats* stats = nullptr) const;

  /// Pattern-guided generation by per-step token filtering: at step s only
  /// characters of the pattern's class at position s survive; after the
  /// pattern, only <EOS>.
  std::vector<std::string> generate_with_pattern(
      const std::vector<pcfg::Segment>& pattern, std::size_t count, Rng& rng,
      const gpt::SampleOptions& opts = {},
      gpt::SampleStats* stats = nullptr) const;

  const gpt::GptModel& model() const noexcept { return model_; }
  gpt::GptModel& model() noexcept { return model_; }

  void save(const std::string& path) const { model_.save(path); }
  void load(const std::string& path) {
    model_.load(path);
    trained_ = true;
  }

  bool trained() const noexcept { return trained_; }

 private:
  gpt::GptModel model_;
  bool trained_ = false;
};

}  // namespace ppg::baselines
