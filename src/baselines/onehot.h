// Fixed-width character coding shared by the continuous-space baselines
// (PassGAN, VAEPass, PassFlow).
//
// These model families require a fixed input dimension, so passwords are
// padded to kWidth positions over an alphabet of the 94 in-universe
// characters plus one terminator/pad class — the same framing the original
// papers use (PassGAN pads to 10, we pad to the cleaning limit of 12).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pcfg/pattern.h"

namespace ppg::baselines {

/// Fixed password width (equals the data-cleaning maximum).
inline constexpr int kWidth = 12;
/// 94 characters + 1 pad/terminator class.
inline constexpr int kClasses = 95;
/// Index of the pad/terminator class.
inline constexpr int kPadClass = 94;

/// Class index of an in-universe character (0..93).
inline int char_class_index(char c) {
  return static_cast<unsigned char>(c) - 0x21;
}

/// Character of a non-pad class index.
inline char class_index_char(int idx) {
  return static_cast<char>(idx + 0x21);
}

/// Encodes a password into kWidth class indices (pad-filled), or
/// std::nullopt when it does not fit / contains out-of-universe chars.
inline std::optional<std::vector<int>> encode_fixed(std::string_view pw) {
  if (pw.empty() || pw.size() > static_cast<std::size_t>(kWidth))
    return std::nullopt;
  std::vector<int> out(kWidth, kPadClass);
  for (std::size_t i = 0; i < pw.size(); ++i) {
    if (!pcfg::in_universe(pw[i])) return std::nullopt;
    out[i] = char_class_index(pw[i]);
  }
  return out;
}

/// Decodes class indices back to a password, truncating at the first pad.
inline std::string decode_fixed(const std::vector<int>& classes) {
  std::string pw;
  for (const int c : classes) {
    if (c == kPadClass) break;
    pw += class_index_char(c);
  }
  return pw;
}

/// Scatters class indices into a one-hot row of width kWidth*kClasses.
inline void onehot_row(const std::vector<int>& classes, float* row) {
  for (int p = 0; p < kWidth; ++p) row[p * kClasses + classes[p]] = 1.f;
}

}  // namespace ppg::baselines
