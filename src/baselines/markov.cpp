#include "baselines/markov.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "pcfg/pattern.h"

namespace ppg::baselines {

MarkovModel::MarkovModel(int order, double smoothing)
    : order_(order), smoothing_(smoothing) {
  if (order < 1 || order > 8)
    throw std::invalid_argument("MarkovModel: order outside [1,8]");
  if (smoothing <= 0.0)
    throw std::invalid_argument("MarkovModel: smoothing must be > 0");
}

void MarkovModel::train(std::span<const std::string> passwords) {
  if (trained_) throw std::logic_error("MarkovModel::train: retrained");
  std::size_t used = 0;
  for (const auto& pw : passwords) {
    if (pw.empty() ||
        !std::all_of(pw.begin(), pw.end(), pcfg::in_universe))
      continue;
    std::string context(static_cast<std::size_t>(order_), '\x01');
    for (std::size_t i = 0; i <= pw.size(); ++i) {
      const int sym = i < pw.size() ? symbol_of(pw[i]) : kEnd;
      auto [it, inserted] = table_.try_emplace(context);
      if (inserted) it->second.fill(0);
      it->second[static_cast<std::size_t>(sym)]++;
      if (i < pw.size()) {
        context.erase(context.begin());
        context.push_back(pw[i]);
      }
    }
    ++used;
  }
  if (used == 0)
    throw std::invalid_argument("MarkovModel::train: no usable passwords");
  trained_ = true;
}

std::string MarkovModel::sample(Rng& rng) const {
  if (!trained_) throw std::logic_error("MarkovModel::sample: untrained");
  std::string pw;
  std::string context(static_cast<std::size_t>(order_), '\x01');
  for (int len = 0; len < kMaxLen; ++len) {
    const auto it = table_.find(context);
    double weights[kSymbols];
    if (it == table_.end()) {
      std::fill(weights, weights + kSymbols, smoothing_);
    } else {
      for (int s = 0; s < kSymbols; ++s)
        weights[s] =
            double(it->second[static_cast<std::size_t>(s)]) + smoothing_;
    }
    const auto sym = static_cast<int>(
        rng.discrete(std::span<const double>(weights, kSymbols)));
    if (sym == kEnd) break;
    pw += char_of(sym);
    context.erase(context.begin());
    context.push_back(char_of(sym));
  }
  return pw;
}

std::vector<std::string> MarkovModel::generate(std::size_t count,
                                               Rng& rng) const {
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(sample(rng));
  return out;
}

std::vector<std::string> MarkovModel::enumerate(std::size_t n) const {
  if (!trained_) throw std::logic_error("MarkovModel::enumerate: untrained");
  struct State {
    double log_prob;
    std::string password;  // context is derivable: last `order` chars
    bool done;
  };
  struct Cmp {
    bool operator()(const State& a, const State& b) const {
      if (a.log_prob != b.log_prob) return a.log_prob < b.log_prob;
      return a.password > b.password;  // deterministic tie-break
    }
  };
  std::priority_queue<State, std::vector<State>, Cmp> heap;
  heap.push({0.0, "", false});
  std::vector<std::string> out;
  out.reserve(n);
  const auto context_of = [this](const std::string& pw) {
    std::string ctx(static_cast<std::size_t>(order_), '\x01');
    const std::size_t take =
        std::min(pw.size(), static_cast<std::size_t>(order_));
    ctx.replace(ctx.size() - take, take, pw.substr(pw.size() - take));
    return ctx;
  };
  // Best-first search: a popped `done` state is the next-most-probable
  // password; a popped prefix expands every transition observed in
  // training. The frontier is capped to bound memory.
  const std::size_t frontier_cap = std::max<std::size_t>(n * 64, 1 << 16);
  while (!heap.empty() && out.size() < n) {
    const State st = heap.top();
    heap.pop();
    if (st.done) {
      out.push_back(st.password);
      continue;
    }
    if (static_cast<int>(st.password.size()) >= kMaxLen) continue;
    const auto it = table_.find(context_of(st.password));
    if (it == table_.end()) continue;
    double total = smoothing_ * kSymbols;
    for (int s = 0; s < kSymbols; ++s)
      total += double(it->second[static_cast<std::size_t>(s)]);
    for (int s = 0; s < kSymbols; ++s) {
      const auto count = it->second[static_cast<std::size_t>(s)];
      if (count == 0) continue;  // prune unseen transitions
      // Score with the same add-δ smoothing log_prob() uses, so the
      // enumeration order agrees with the model's scoring.
      const double lp =
          st.log_prob + std::log((double(count) + smoothing_) / total);
      if (heap.size() >= frontier_cap) break;
      if (s == kEnd) {
        if (!st.password.empty()) heap.push({lp, st.password, true});
      } else {
        heap.push({lp, st.password + char_of(s), false});
      }
    }
  }
  return out;
}

double MarkovModel::log_prob(std::string_view password) const {
  if (!trained_) throw std::logic_error("MarkovModel::log_prob: untrained");
  if (password.empty() ||
      !std::all_of(password.begin(), password.end(), pcfg::in_universe))
    return -1e30;
  double lp = 0.0;
  std::string context(static_cast<std::size_t>(order_), '\x01');
  for (std::size_t i = 0; i <= password.size(); ++i) {
    const int sym = i < password.size() ? symbol_of(password[i]) : kEnd;
    const auto it = table_.find(context);
    double numer = smoothing_, denom = smoothing_ * kSymbols;
    if (it != table_.end()) {
      numer += double(it->second[static_cast<std::size_t>(sym)]);
      for (int s = 0; s < kSymbols; ++s)
        denom += double(it->second[static_cast<std::size_t>(s)]);
    }
    lp += std::log(numer / denom);
    if (i < password.size()) {
      context.erase(context.begin());
      context.push_back(password[i]);
    }
  }
  return lp;
}

}  // namespace ppg::baselines
