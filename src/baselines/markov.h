// Order-k character Markov password model (OMEN-family; paper §II-B2).
//
// Not part of the paper's comparison table, but the classic probabilistic
// baseline the deep models are implicitly measured against; used by the
// ablation benches and available through the public API.
#pragma once

#include <array>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace ppg::baselines {

/// Add-δ smoothed order-k Markov chain over the 94-character universe plus
/// an end symbol.
class MarkovModel {
 public:
  /// `order` previous characters condition each next character.
  explicit MarkovModel(int order = 3, double smoothing = 0.01);

  /// Counts transitions over the training passwords (out-of-universe
  /// passwords are skipped).
  void train(std::span<const std::string> passwords);

  /// Samples one password (may have any length up to the cap).
  std::string sample(Rng& rng) const;

  /// Samples `count` passwords.
  std::vector<std::string> generate(std::size_t count, Rng& rng) const;

  /// OMEN-style deterministic enumeration: the `n` most probable passwords
  /// in (approximately exact) descending probability order, via best-first
  /// search over prefixes. Transitions never observed in training are
  /// pruned (smoothing mass is for scoring, not enumeration), so the
  /// output is finite even for small n. Lengths are bounded by the same
  /// cap as sample().
  std::vector<std::string> enumerate(std::size_t n) const;

  /// log P(password) including the end transition.
  double log_prob(std::string_view password) const;

  int order() const noexcept { return order_; }
  std::size_t context_count() const noexcept { return table_.size(); }

 private:
  // 94 chars + end symbol.
  static constexpr int kSymbols = 95;
  static constexpr int kEnd = 94;
  static constexpr int kMaxLen = 16;

  static int symbol_of(char c) { return static_cast<unsigned char>(c) - 0x21; }
  static char char_of(int s) { return static_cast<char>(s + 0x21); }

  int order_;
  double smoothing_;
  bool trained_ = false;
  // context string (start-padded with '\x01') -> next-symbol counts.
  std::unordered_map<std::string, std::array<std::uint32_t, kSymbols>> table_;
};

}  // namespace ppg::baselines
