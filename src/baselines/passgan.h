// PassGAN baseline (Hitaj et al. 2019): adversarial password generator.
//
// A WGAN over fixed-width one-hot passwords: an MLP generator maps Gaussian
// noise to per-position character distributions (Gumbel-softmax relaxation
// during training), and an MLP critic scores real vs. generated samples
// under weight clipping (original WGAN Lipschitz control). This keeps the
// mechanism responsible for PassGAN's published evaluation signature — the
// continuous→discrete mapping loss and mode concentration that give it the
// highest repeat rate and a weak hit rate at scale (paper §I-A2, Fig. 10).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/layers.h"

namespace ppg::baselines {

/// PassGAN hyperparameters.
struct PassGanConfig {
  nn::Index z_dim = 32;
  nn::Index hidden = 128;
  int steps = 1500;       ///< generator updates
  int n_critic = 5;       ///< critic updates per generator update
  nn::Index batch = 64;
  float lr = 5e-4f;
  float weight_clip = 0.02f;
  float gumbel_tau = 0.75f;
  /// Decode temperature at sampling time. The original PassGAN decodes
  /// argmax (temperature → 0, full mode concentration); a small positive
  /// value keeps that duplicate-heavy signature while letting z diversity
  /// through. 0 selects exact argmax.
  float sample_tau = 0.2f;
};

/// WGAN password generator.
class PassGan {
 public:
  PassGan(PassGanConfig cfg, std::uint64_t seed);

  /// Adversarial training on cleaned passwords.
  void train(std::span<const std::string> passwords);

  /// Samples `count` passwords: per-position categorical at the (sharp)
  /// sample_tau temperature, so most of the randomness comes from z — the
  /// original PassGAN's argmax decode corresponds to sample_tau = 0. A draw
  /// whose first position lands on the pad class decodes to an empty
  /// string — a wasted guess, exactly how a real PassGAN run spends part
  /// of its budget on junk.
  std::vector<std::string> generate(std::size_t count, Rng& rng) const;

  bool trained() const noexcept { return trained_; }

  /// Mean critic score gap of the last training step (diagnostics).
  double last_wdist() const noexcept { return last_wdist_; }

  /// Checkpoints both networks' weights.
  void save(const std::string& path) const;
  /// Restores a checkpoint saved with the same configuration.
  void load(const std::string& path);

 private:
  /// Generator forward: z [B, z_dim] -> per-position probabilities
  /// [B, width*classes]. `gumbel_rng` adds Gumbel noise (training only).
  nn::Tensor generator_forward(nn::Graph& g, const nn::Tensor& z,
                               Rng* gumbel_rng) const;
  /// Critic forward: probabilities/one-hot [B, width*classes] -> mean score.
  nn::Tensor critic_forward(nn::Graph& g, const nn::Tensor& x) const;

  PassGanConfig cfg_;
  std::uint64_t seed_;
  nn::ParamList gen_params_, critic_params_;
  nn::Linear g1_, g2_, g3_;
  nn::Linear c1_, c2_, c3_;
  bool trained_ = false;
  double last_wdist_ = 0.0;
};

}  // namespace ppg::baselines
