#include "baselines/vaepass.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/onehot.h"
#include "common/durable_io.h"
#include "common/logging.h"
#include "nn/optimizer.h"

namespace ppg::baselines {

namespace {
constexpr nn::Index kFeature = static_cast<nn::Index>(kWidth) * kClasses;
}  // namespace

VaePass::VaePass(VaePassConfig cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  Rng rng(seed, "vaepass-init");
  e1_ = nn::Linear(params_, "e1", kFeature, cfg_.hidden, rng);
  e_mu_ = nn::Linear(params_, "e_mu", cfg_.hidden, cfg_.latent, rng);
  e_logvar_ = nn::Linear(params_, "e_logvar", cfg_.hidden, cfg_.latent, rng);
  d1_ = nn::Linear(params_, "d1", cfg_.latent, cfg_.hidden, rng);
  d2_ = nn::Linear(params_, "d2", cfg_.hidden, kFeature, rng);
}

void VaePass::train(std::span<const std::string> passwords) {
  if (trained_) throw std::logic_error("VaePass::train: already trained");
  std::vector<std::vector<int>> encoded;
  encoded.reserve(passwords.size());
  for (const auto& pw : passwords)
    if (auto e = encode_fixed(pw)) encoded.push_back(std::move(*e));
  if (encoded.empty())
    throw std::invalid_argument("VaePass::train: no usable passwords");

  Rng shuffle_rng(seed_, "vaepass-shuffle");
  Rng eps_rng(seed_, "vaepass-eps");
  nn::AdamW::Config opt_cfg;
  opt_cfg.lr = cfg_.lr;
  opt_cfg.weight_decay = 0.f;
  nn::AdamW opt(params_, opt_cfg);
  nn::Graph g;

  std::vector<std::size_t> order(encoded.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg_.batch)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg_.batch));
      const nn::Index n = static_cast<nn::Index>(end - start);
      nn::Tensor x({n, kFeature});
      std::vector<int> targets(static_cast<std::size_t>(n) * kWidth);
      for (nn::Index i = 0; i < n; ++i) {
        const auto& e = encoded[order[start + static_cast<std::size_t>(i)]];
        onehot_row(e, x.data().data() + i * kFeature);
        for (int p = 0; p < kWidth; ++p)
          targets[static_cast<std::size_t>(i) * kWidth +
                  static_cast<std::size_t>(p)] = e[static_cast<std::size_t>(p)];
      }
      nn::Tensor eps({n, cfg_.latent});
      for (auto& v : eps.data()) v = static_cast<float>(eps_rng.normal());

      g.clear();
      const nn::Tensor h = g.relu(e1_.forward(g, x));
      const nn::Tensor mu = e_mu_.forward(g, h);
      const nn::Tensor logvar = e_logvar_.forward(g, h);
      // z = mu + exp(logvar/2) ∘ eps
      const nn::Tensor z =
          g.add(mu, g.mul(g.exp_op(g.scale(logvar, 0.5f)), eps));
      const nn::Tensor logits =
          d2_.forward(g, g.relu(d1_.forward(g, z)))
              .reshaped({n * kWidth, static_cast<nn::Index>(kClasses)});
      const nn::Tensor recon = g.cross_entropy(logits, targets, -1);
      // KL(q||p) per batch element: -1/2 Σ (1 + logvar - mu² - e^logvar)
      const nn::Tensor kl_terms =
          g.sub(g.sub(g.add_scalar(logvar, 1.f), g.square(mu)),
                g.exp_op(logvar));
      const nn::Tensor kl =
          g.scale(g.sum_all(kl_terms), -0.5f / static_cast<float>(n));
      const nn::Tensor loss = g.add(recon, g.scale(kl, cfg_.beta));
      g.backward(loss);
      params_.clip_grad_norm(5.0);
      opt.step();
      epoch_loss += double(loss.at(0));
      ++batches;
    }
    g.clear();
    last_loss_ = batches == 0 ? 0.0 : epoch_loss / double(batches);
    log_debug("VaePass: epoch %d loss=%.4f", epoch + 1, last_loss_);
  }
  trained_ = true;
}

std::vector<std::string> VaePass::generate(std::size_t count,
                                           Rng& rng) const {
  if (!trained_) throw std::logic_error("VaePass::generate: untrained");
  std::vector<std::string> out;
  out.reserve(count);
  nn::Graph g;
  const nn::Index batch = cfg_.batch;
  while (out.size() < count) {
    const nn::Index n = static_cast<nn::Index>(std::min<std::size_t>(
        static_cast<std::size_t>(batch), count - out.size()));
    nn::Tensor z({n, cfg_.latent});
    for (auto& v : z.data()) v = static_cast<float>(rng.normal());
    g.clear();
    const nn::Tensor logits =
        d2_.forward(g, g.relu(d1_.forward(g, z)))
            .reshaped({n * kWidth, static_cast<nn::Index>(kClasses)});
    const nn::Tensor probs = g.softmax_rows(logits);
    // Sharpened decode (p^(1/sample_tau)): at sample_tau → 0 this is the
    // original VAEPass argmax, whose blurry decoder maps nearby z to the
    // same string — its duplicate-heavy signature.
    const double sharpen =
        cfg_.sample_tau <= 0.f ? 0.0 : 1.0 / double(cfg_.sample_tau);
    for (nn::Index i = 0; i < n; ++i) {
      std::vector<int> classes(kWidth);
      for (int p = 0; p < kWidth; ++p) {
        const float* row =
            probs.data().data() + (i * kWidth + p) * kClasses;
        int chosen = 0;
        if (sharpen == 0.0) {
          for (int c = 1; c < kClasses; ++c)
            if (row[c] > row[chosen]) chosen = c;
        } else {
          double weights[kClasses], total = 0.0;
          for (int c = 0; c < kClasses; ++c) {
            weights[c] = std::pow(double(row[c]), sharpen);
            total += weights[c];
          }
          double target = rng.uniform() * total;
          chosen = kClasses - 1;
          for (int c = 0; c < kClasses; ++c) {
            target -= weights[c];
            if (target < 0.0) {
              chosen = c;
              break;
            }
          }
        }
        classes[static_cast<std::size_t>(p)] = chosen;
      }
      out.push_back(decode_fixed(classes));
    }
  }
  g.clear();
  return out;
}

namespace {
constexpr std::uint32_t kVaeMagic = 0x50564145;  // "PVAE"
}  // namespace

void VaePass::save(const std::string& path) const {
  if (!trained_) throw std::logic_error("VaePass::save: untrained");
  durable::atomic_save(path, [this](BinaryWriter& w) {
    w.write(kVaeMagic);
    w.write(cfg_.latent);
    w.write(cfg_.hidden);
    params_.save(w);
  });
}

void VaePass::load(const std::string& path) {
  durable::checked_load_or_legacy(path, [&](BinaryReader& r) {
    if (r.read<std::uint32_t>() != kVaeMagic)
      throw std::runtime_error("VaePass::load: bad magic in " + path);
    if (r.read<nn::Index>() != cfg_.latent ||
        r.read<nn::Index>() != cfg_.hidden)
      throw std::runtime_error("VaePass::load: config mismatch in " + path);
    params_.load(r);
  });
  trained_ = true;
}

}  // namespace ppg::baselines
