// VAEPass baseline (Yang et al. 2022): variational-autoencoder guesser.
//
// MLP encoder to a Gaussian latent, reparameterised sample, MLP decoder to
// per-position character logits over fixed-width one-hot passwords, trained
// with ELBO (reconstruction cross-entropy + β·KL). Generation decodes
// latent draws from the prior. Same model family as the paper's baseline;
// shows its signature blurry-decoder behaviour: duplicate-heavy output and
// mid-pack hit rates (paper Table IV/V, Fig. 10).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/layers.h"

namespace ppg::baselines {

/// VAEPass hyperparameters.
struct VaePassConfig {
  nn::Index latent = 24;
  nn::Index hidden = 128;
  int epochs = 4;
  nn::Index batch = 64;
  float lr = 1e-3f;
  float beta = 0.05f;  ///< KL weight (β-VAE style warm target)
  /// Decode temperature at sampling time; 0 = argmax (the original
  /// VAEPass decode — blurry-decoder duplicates), small positive values
  /// admit a little per-position noise.
  float sample_tau = 0.3f;
};

/// The VAE password model.
class VaePass {
 public:
  VaePass(VaePassConfig cfg, std::uint64_t seed);

  /// Trains the ELBO on cleaned passwords.
  void train(std::span<const std::string> passwords);

  /// Decodes `count` prior samples into passwords (categorical per
  /// position). Empty decodes are wasted guesses, as in the real model.
  std::vector<std::string> generate(std::size_t count, Rng& rng) const;

  bool trained() const noexcept { return trained_; }

  /// Final epoch's mean training loss (diagnostics).
  double last_loss() const noexcept { return last_loss_; }

  /// Checkpoints the encoder/decoder weights.
  void save(const std::string& path) const;
  /// Restores a checkpoint saved with the same configuration.
  void load(const std::string& path);

 private:
  VaePassConfig cfg_;
  std::uint64_t seed_;
  nn::ParamList params_;
  nn::Linear e1_, e_mu_, e_logvar_;
  nn::Linear d1_, d2_;
  bool trained_ = false;
  double last_loss_ = 0.0;
};

}  // namespace ppg::baselines
