#include "baselines/passflow.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/onehot.h"
#include "common/durable_io.h"
#include "common/logging.h"
#include "nn/kernels.h"
#include "nn/optimizer.h"

namespace ppg::baselines {

namespace {
constexpr nn::Index kDim = kWidth;       // one continuous value per position
constexpr nn::Index kHalf = kDim / 2;
constexpr double kLog2Pi = 1.8378770664093453;
}  // namespace

PassFlow::PassFlow(PassFlowConfig cfg, std::uint64_t seed)
    : cfg_(cfg), seed_(seed) {
  if (cfg_.couplings < 1)
    throw std::invalid_argument("PassFlow: need at least one coupling");
  Rng rng(seed, "passflow-init");
  couplings_.reserve(static_cast<std::size_t>(cfg_.couplings));
  for (int i = 0; i < cfg_.couplings; ++i) {
    Coupling c;
    const std::string p = "cpl" + std::to_string(i);
    c.fc1 = nn::Linear(params_, p + ".fc1", kHalf, cfg_.hidden, rng);
    c.fc2 = nn::Linear(params_, p + ".fc2", cfg_.hidden, kHalf, rng);
    c.swap = (i % 2) == 1;
    couplings_.push_back(std::move(c));
  }
  log_scale_ = nn::Tensor({kDim});
  log_scale_.fill(0.f);
  params_.add("log_scale", log_scale_);
}

nn::Tensor PassFlow::flow_forward(nn::Graph& g, const nn::Tensor& x) const {
  nn::Tensor a = g.slice_cols(x, 0, kHalf);
  nn::Tensor b = g.slice_cols(x, kHalf, kDim);
  for (const Coupling& c : couplings_) {
    if (!c.swap) {
      const nn::Tensor m =
          c.fc2.forward(g, g.tanh_op(c.fc1.forward(g, a)));
      b = g.add(b, m);
    } else {
      const nn::Tensor m =
          c.fc2.forward(g, g.tanh_op(c.fc1.forward(g, b)));
      a = g.add(a, m);
    }
  }
  nn::Tensor y = g.concat_cols(a, b);
  // Diagonal scaling: z = y ∘ exp(log_scale); log|det| = Σ log_scale.
  return g.mul_row(y, g.exp_op(log_scale_));
}

void PassFlow::flow_inverse(std::vector<float>& row) const {
  // Undo the diagonal scaling.
  for (nn::Index j = 0; j < kDim; ++j)
    row[static_cast<std::size_t>(j)] *= std::exp(-log_scale_.at(j));
  std::vector<float> h(static_cast<std::size_t>(cfg_.hidden));
  std::vector<float> m(static_cast<std::size_t>(kHalf));
  for (auto it = couplings_.rbegin(); it != couplings_.rend(); ++it) {
    const float* cond = it->swap ? row.data() + kHalf : row.data();
    float* target = it->swap ? row.data() : row.data() + kHalf;
    std::fill(h.begin(), h.end(), 0.f);
    nn::kernels::affine(1, cfg_.hidden, kHalf, cond,
                        it->fc1.weight().data().data(),
                        it->fc1.bias().data().data(), h.data());
    for (auto& v : h) v = std::tanh(v);
    std::fill(m.begin(), m.end(), 0.f);
    nn::kernels::affine(1, kHalf, cfg_.hidden, h.data(),
                        it->fc2.weight().data().data(),
                        it->fc2.bias().data().data(), m.data());
    for (nn::Index j = 0; j < kHalf; ++j)
      target[j] -= m[static_cast<std::size_t>(j)];
  }
}

void PassFlow::train(std::span<const std::string> passwords) {
  if (trained_) throw std::logic_error("PassFlow::train: already trained");
  std::vector<std::vector<int>> encoded;
  encoded.reserve(passwords.size());
  for (const auto& pw : passwords)
    if (auto e = encode_fixed(pw)) encoded.push_back(std::move(*e));
  if (encoded.empty())
    throw std::invalid_argument("PassFlow::train: no usable passwords");

  Rng shuffle_rng(seed_, "passflow-shuffle");
  Rng deq_rng(seed_, "passflow-dequant");
  nn::AdamW::Config opt_cfg;
  opt_cfg.lr = cfg_.lr;
  opt_cfg.weight_decay = 0.f;
  nn::AdamW opt(params_, opt_cfg);
  nn::Graph g;

  std::vector<std::size_t> order(encoded.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_nll = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(cfg_.batch)) {
      const std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(cfg_.batch));
      const nn::Index n = static_cast<nn::Index>(end - start);
      nn::Tensor x({n, kDim});
      for (nn::Index i = 0; i < n; ++i) {
        const auto& e = encoded[order[start + static_cast<std::size_t>(i)]];
        for (nn::Index j = 0; j < kDim; ++j)
          x.at(i, j) = static_cast<float>(
              (double(e[static_cast<std::size_t>(j)]) + deq_rng.uniform()) /
              double(kClasses));
      }
      g.clear();
      const nn::Tensor z = flow_forward(g, x);
      // mean NLL = 0.5/B Σ z² + D/2 log2π - Σ log_scale
      const nn::Tensor quad =
          g.scale(g.sum_all(g.square(z)), 0.5f / static_cast<float>(n));
      const nn::Tensor logdet = g.sum_all(log_scale_);
      const nn::Tensor loss = g.add_scalar(
          g.sub(quad, logdet), static_cast<float>(0.5 * kDim * kLog2Pi));
      g.backward(loss);
      params_.clip_grad_norm(5.0);
      opt.step();
      epoch_nll += double(loss.at(0));
      ++batches;
    }
    g.clear();
    last_nll_ = batches == 0 ? 0.0 : epoch_nll / double(batches);
    log_debug("PassFlow: epoch %d nll=%.4f", epoch + 1, last_nll_);
  }
  trained_ = true;
}

std::vector<std::string> PassFlow::generate(std::size_t count,
                                            Rng& rng) const {
  if (!trained_) throw std::logic_error("PassFlow::generate: untrained");
  std::vector<std::string> out;
  out.reserve(count);
  std::vector<float> row(static_cast<std::size_t>(kDim));
  std::vector<int> classes(static_cast<std::size_t>(kDim));
  for (std::size_t i = 0; i < count; ++i) {
    for (auto& v : row)
      v = static_cast<float>(rng.normal(0.0, cfg_.sample_sigma));
    flow_inverse(row);
    for (nn::Index j = 0; j < kDim; ++j) {
      const int idx = static_cast<int>(
          std::floor(double(row[static_cast<std::size_t>(j)]) * kClasses));
      classes[static_cast<std::size_t>(j)] =
          std::clamp(idx, 0, kClasses - 1);
    }
    out.push_back(decode_fixed(classes));
  }
  return out;
}

namespace {
constexpr std::uint32_t kFlowMagic = 0x50464c57;  // "PFLW"
}  // namespace

void PassFlow::save(const std::string& path) const {
  if (!trained_) throw std::logic_error("PassFlow::save: untrained");
  durable::atomic_save(path, [this](BinaryWriter& w) {
    w.write(kFlowMagic);
    w.write(cfg_.couplings);
    w.write(cfg_.hidden);
    params_.save(w);
  });
}

void PassFlow::load(const std::string& path) {
  durable::checked_load_or_legacy(path, [&](BinaryReader& r) {
    if (r.read<std::uint32_t>() != kFlowMagic)
      throw std::runtime_error("PassFlow::load: bad magic in " + path);
    if (r.read<int>() != cfg_.couplings || r.read<nn::Index>() != cfg_.hidden)
      throw std::runtime_error("PassFlow::load: config mismatch in " + path);
    params_.load(r);
  });
  trained_ = true;
}

}  // namespace ppg::baselines
