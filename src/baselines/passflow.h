// PassFlow baseline (Pagnotta et al., DSN 2022): flow-based guesser.
//
// A NICE-style normalizing flow (Dinh et al. 2014, the architecture the
// PassFlow paper builds on) over dequantised character codes: passwords are
// padded to a fixed width, each position's class index is dequantised to
// (idx + u)/classes with u ~ U[0,1), and a stack of additive coupling
// layers plus a trained diagonal scaling maps them to a standard Gaussian.
// Sampling inverts the (analytically invertible) flow on prior draws.
//
// The fixed-dimension continuous treatment is what produces PassFlow's
// published signature — by far the worst length distance in Table V —
// because password length is only encoded through pad-class boundaries the
// flow blurs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "nn/layers.h"

namespace ppg::baselines {

/// PassFlow hyperparameters.
struct PassFlowConfig {
  int couplings = 4;      ///< additive coupling layers (alternating halves)
  nn::Index hidden = 96;  ///< coupling MLP hidden width
  int epochs = 4;
  nn::Index batch = 64;
  float lr = 1e-3f;
  /// Prior temperature at sampling time (PassFlow samples slightly cold).
  float sample_sigma = 1.0f;
};

/// NICE flow over dequantised fixed-width passwords.
class PassFlow {
 public:
  PassFlow(PassFlowConfig cfg, std::uint64_t seed);

  /// Maximum-likelihood training on cleaned passwords.
  void train(std::span<const std::string> passwords);

  /// Inverts the flow on `count` prior draws and quantises to passwords.
  std::vector<std::string> generate(std::size_t count, Rng& rng) const;

  bool trained() const noexcept { return trained_; }

  /// Final epoch's mean NLL (diagnostics).
  double last_nll() const noexcept { return last_nll_; }

  /// Checkpoints the coupling networks and scaling.
  void save(const std::string& path) const;
  /// Restores a checkpoint saved with the same configuration.
  void load(const std::string& path);

 private:
  struct Coupling {
    nn::Linear fc1, fc2;
    bool swap;  ///< which half conditions which
  };

  /// Forward (density) pass x -> z on the graph; adds the log-det term.
  nn::Tensor flow_forward(nn::Graph& g, const nn::Tensor& x) const;

  /// Inverse pass z -> x in plain float math (sampling path).
  void flow_inverse(std::vector<float>& row) const;

  PassFlowConfig cfg_;
  std::uint64_t seed_;
  nn::ParamList params_;
  std::vector<Coupling> couplings_;
  nn::Tensor log_scale_;  ///< diagonal scaling, one per dimension
  bool trained_ = false;
  double last_nll_ = 0.0;
};

}  // namespace ppg::baselines
