#include "baselines/passgpt.h"

#include <stdexcept>

#include "core/masks.h"
#include "tokenizer/tokenizer.h"

namespace ppg::baselines {

PassGpt::PassGpt(gpt::Config cfg, std::uint64_t seed) : model_(cfg, seed) {}

gpt::TrainReport PassGpt::train(std::span<const std::string> train_passwords,
                                std::span<const std::string> valid_passwords,
                                const gpt::TrainConfig& cfg) {
  if (trained_) throw std::logic_error("PassGpt::train: already trained");
  std::vector<std::vector<int>> train_seqs, valid_seqs;
  train_seqs.reserve(train_passwords.size());
  for (const auto& pw : train_passwords)
    if (auto ids = tok::Tokenizer::encode_password_only(pw))
      train_seqs.push_back(std::move(*ids));
  for (const auto& pw : valid_passwords)
    if (auto ids = tok::Tokenizer::encode_password_only(pw))
      valid_seqs.push_back(std::move(*ids));
  if (train_seqs.empty())
    throw std::invalid_argument("PassGpt::train: no encodable passwords");
  auto report = gpt::train_lm(model_, train_seqs, valid_seqs, cfg,
                              tok::Tokenizer::kPad);
  trained_ = true;
  return report;
}

std::vector<std::string> PassGpt::generate(std::size_t count, Rng& rng,
                                           const gpt::SampleOptions& opts,
                                           gpt::SampleStats* stats) const {
  const std::vector<int> prefix = {tok::Tokenizer::kBos};
  return gpt::sample_passwords(model_, prefix, count, rng, opts, nullptr,
                               stats);
}

std::vector<std::string> PassGpt::generate_with_pattern(
    const std::vector<pcfg::Segment>& pattern, std::size_t count, Rng& rng,
    const gpt::SampleOptions& opts, gpt::SampleStats* stats) const {
  const std::vector<int> prefix = {tok::Tokenizer::kBos};
  // The filtering starts at password position 0: the model never sees the
  // pattern, it is simply forbidden from leaving it.
  const auto mask = core::make_pattern_mask(pattern, 0);
  return gpt::sample_passwords(model_, prefix, count, rng, opts, mask, stats);
}

}  // namespace ppg::baselines
