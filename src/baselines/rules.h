// Rule-based password guessing (paper §II-B1): the Hashcat / John-the-
// Ripper family the probabilistic and neural models are measured against.
//
// Implements a practical subset of the Hashcat rule language. A RuleSet is
// an ordered list of rules; a rule is a sequence of operations applied to a
// dictionary word. The attack enumerates (rule, word) pairs in rule-major
// order — the classic wordlist+rules attack.
//
// Supported operations (one rule = concatenation of these):
//   :        no-op (pass word through)
//   l u c C  lowercase / uppercase / capitalize / invert-capitalize
//   t        toggle case of every letter
//   r        reverse
//   d        duplicate word ("pass" -> "passpass")
//   $X       append character X
//   ^X       prepend character X
//   sXY      substitute every X with Y
//   [        delete first character
//   ]        delete last character
//   TN       toggle case at position N (0-9)
//   zN       duplicate first character N times
//   ZN       duplicate last character N times
//   @X       purge all instances of character X
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ppg::baselines {

/// One parsed rule: a compiled sequence of operations.
class Rule {
 public:
  /// Parses rule text; std::nullopt on any unsupported/ill-formed token.
  static std::optional<Rule> parse(std::string_view text);

  /// Applies the rule to a word. Never throws; returns the transformed
  /// word (possibly empty — callers treat empty as a skipped guess).
  std::string apply(std::string_view word) const;

  /// The original rule text.
  const std::string& text() const noexcept { return text_; }

 private:
  enum class Kind : char {
    kNoop,
    kLower,
    kUpper,
    kCapitalize,
    kInvertCap,
    kToggleAll,
    kReverse,
    kDuplicate,
    kAppend,
    kPrepend,
    kSubstitute,
    kDeleteFirst,
    kDeleteLast,
    kToggleAt,
    kDupFirst,
    kDupLast,
    kPurge,
  };
  struct Op {
    Kind kind;
    char a = 0;
    char b = 0;
  };
  std::string text_;
  std::vector<Op> ops_;
};

/// An ordered collection of rules plus a dictionary: the classic
/// wordlist+rules attack.
class RuleAttack {
 public:
  /// Builds from rule lines (unparseable lines are dropped and counted)
  /// and a dictionary. Rule order and word order define guess order.
  RuleAttack(std::span<const std::string> rule_lines,
             std::vector<std::string> dictionary);

  /// Number of rules that failed to parse.
  std::size_t rejected_rules() const noexcept { return rejected_; }

  /// Number of usable rules.
  std::size_t rule_count() const noexcept { return rules_.size(); }

  /// Total guesses available (rules × words).
  std::size_t capacity() const noexcept {
    return rules_.size() * dictionary_.size();
  }

  /// Enumerates the first `n` guesses in rule-major order. Empty
  /// transformations are skipped (they consume no budget).
  std::vector<std::string> enumerate(std::size_t n) const;

  /// The stock rule list used by the benches: the "best64"-style core of
  /// common mangling rules.
  static std::vector<std::string> stock_rules();

 private:
  std::vector<Rule> rules_;
  std::vector<std::string> dictionary_;
  std::size_t rejected_ = 0;
};

}  // namespace ppg::baselines
