// Structured run reports: one JSON file per bench/training run.
//
// A RunReport accumulates the run's identity (name), a config echo
// (key/value strings), and named stage timings, then serialises them
// together with a metrics-registry snapshot into a single JSON document:
//
//   {"name":…, "schema":1, "config":{…},
//    "stages":[{"name":…,"seconds":…,"items":…,"items_per_sec":…},…],
//    "metrics":{"counters":{…},"gauges":{…},"histograms":{…}}}
//
// Benches feed the global() report (bench/common.cpp installs an atexit
// writer when --report=<file> is passed); tests build local instances.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace ppg::obs {

class Registry;

class RunReport {
 public:
  /// The process-wide report used by the bench harness.
  static RunReport& global();

  void set_name(std::string name);
  std::string name() const;

  /// Records one config key. Later writes to the same key win.
  void add_config(const std::string& key, std::string value);
  void add_config(const std::string& key, double value);
  void add_config(const std::string& key, std::uint64_t value);

  /// Point-in-time copy of the config echo (the trajectory recorder
  /// fingerprints it; see obs/bench_track.h).
  std::vector<std::pair<std::string, std::string>> config_snapshot() const;

  /// Attaches a pre-serialised JSON value under a top-level key (e.g. the
  /// hot-kernel atlas). The caller guarantees `raw_json` is one well-formed
  /// JSON value; it is spliced into to_json() verbatim. Later writes to the
  /// same key win.
  void set_section(const std::string& key, std::string raw_json);

  /// Records a completed stage. `items` (optional) is a work count for the
  /// stage — guesses generated, tokens trained — from which the report
  /// derives items_per_sec.
  void add_stage(std::string name, double seconds, double items = 0.0);

  struct Stage {
    std::string name;
    double seconds;
    double items;
  };
  /// Point-in-time copy of the recorded stages (the trajectory recorder
  /// derives per-stage throughput metrics from it).
  std::vector<Stage> stages_snapshot() const;

  /// Serialises the report plus a snapshot of `registry` (the global
  /// registry by default).
  std::string to_json(const Registry* registry = nullptr) const;

  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write(const std::string& path, const Registry* registry = nullptr) const;

  /// Drops all recorded state (tests).
  void clear();

 private:
  mutable Mutex mu_;
  std::string name_ PPG_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::string>> config_ PPG_GUARDED_BY(mu_);
  std::vector<Stage> stages_ PPG_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::string>> sections_
      PPG_GUARDED_BY(mu_);
};

/// RAII stage clock: measures wall-clock from construction to destruction
/// and records it into the report (also emitting a trace span with the
/// same name). Call set_items() before scope exit to get a throughput.
class StageTimer {
 public:
  explicit StageTimer(std::string name, RunReport& report = RunReport::global());
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;
  ~StageTimer();

  void set_items(double items) { items_ = items; }

 private:
  RunReport& report_;
  std::string name_;
  double start_;
  double items_ = 0.0;
};

}  // namespace ppg::obs
