// Minimal JSON emitter and validator for the observability subsystem.
//
// The exporters (metrics snapshot, trace events, run reports) only need to
// *produce* JSON; nothing in the hot path parses it. The validator exists so
// tests and the ctest smoke target can assert that emitted files are
// well-formed without pulling in an external JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppg::obs {

/// Escapes a string for use inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Streaming JSON builder with automatic comma placement. Usage:
///   JsonWriter w;
///   w.begin_object().key("n").value(3).end_object();
///   w.str();  // {"n":3}
/// Callers are responsible for balanced begin/end calls; the writer asserts
/// nothing and simply emits what it is told.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Emits `"name":` (with any needed comma). Must be followed by a value
  /// or a begin_object/begin_array.
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(bool b);
  JsonWriter& null();

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_{true};
  bool after_key_ = false;
};

/// Validates that `text` is exactly one well-formed JSON value (RFC 8259
/// subset: objects, arrays, strings with escapes, numbers, literals).
/// On failure returns false and, if `error` is non-null, stores a short
/// message with the byte offset of the problem.
bool validate_json(std::string_view text, std::string* error = nullptr);

}  // namespace ppg::obs
