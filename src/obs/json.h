// Minimal JSON emitter, validator, and DOM parser for the observability
// and serving subsystems.
//
// The exporters (metrics snapshot, trace events, run reports) only need to
// *produce* JSON; nothing in the hot path parses it. The validator exists so
// tests and the ctest smoke targets can assert that emitted files are
// well-formed, and the small DOM parser backs the serve layer's
// newline-delimited JSON request protocol — all without pulling in an
// external JSON library.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppg::obs {

/// Escapes a string for use inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Streaming JSON builder with automatic comma placement. Usage:
///   JsonWriter w;
///   w.begin_object().key("n").value(3).end_object();
///   w.str();  // {"n":3}
/// Callers are responsible for balanced begin/end calls; the writer asserts
/// nothing and simply emits what it is told.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Emits `"name":` (with any needed comma). Must be followed by a value
  /// or a begin_object/begin_array.
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double d);
  JsonWriter& value(std::uint64_t u);
  JsonWriter& value(std::int64_t i);
  JsonWriter& value(bool b);
  JsonWriter& null();
  /// Splices a pre-serialised JSON value verbatim (comma placement still
  /// applies). The caller guarantees `json` is one well-formed value.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  std::string out_;
  // One entry per open container: true until the first element is written.
  std::vector<bool> first_{true};
  bool after_key_ = false;
};

/// Validates that `text` is exactly one well-formed JSON value (RFC 8259
/// subset: objects, arrays, strings with escapes, numbers, literals).
/// On failure returns false and, if `error` is non-null, stores a short
/// message with the byte offset of the problem.
bool validate_json(std::string_view text, std::string* error = nullptr);

/// Parsed JSON value (small DOM). Objects keep insertion order; find()
/// scans from the back, so on duplicate keys the last occurrence wins.
/// Numbers are doubles — ample for the wire protocol's counts and timeouts.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return type == Type::kNull; }
  bool is_object() const noexcept { return type == Type::kObject; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Typed member accessors (wire-protocol convenience): the value when the
  // key is present with the matching type, std::nullopt when absent or
  // mistyped (use find() to distinguish the two).
  std::optional<std::string> get_string(std::string_view key) const;
  std::optional<double> get_number(std::string_view key) const;
  std::optional<bool> get_bool(std::string_view key) const;
};

/// Parses exactly one JSON value (same grammar the validator accepts).
/// Returns std::nullopt on malformed input and, if `error` is non-null,
/// stores a short message with the byte offset of the problem.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace ppg::obs
