#include "obs/run_report.h"

#include <cstdio>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppg::obs {

RunReport& RunReport::global() {
  // Leaked: the bench atexit writer runs during shutdown.
  static RunReport* instance = new RunReport();
  return *instance;
}

void RunReport::set_name(std::string name) {
  MutexLock lock(mu_);
  name_ = std::move(name);
}

std::string RunReport::name() const {
  MutexLock lock(mu_);
  return name_;
}

void RunReport::add_config(const std::string& key, std::string value) {
  MutexLock lock(mu_);
  for (auto& [k, v] : config_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  config_.emplace_back(key, std::move(value));
}

void RunReport::add_config(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  add_config(key, std::string(buf));
}

void RunReport::add_config(const std::string& key, std::uint64_t value) {
  add_config(key, std::to_string(value));
}

void RunReport::add_stage(std::string name, double seconds, double items) {
  MutexLock lock(mu_);
  stages_.push_back({std::move(name), seconds, items});
}

std::vector<std::pair<std::string, std::string>> RunReport::config_snapshot()
    const {
  MutexLock lock(mu_);
  return config_;
}

std::vector<RunReport::Stage> RunReport::stages_snapshot() const {
  MutexLock lock(mu_);
  return stages_;
}

void RunReport::set_section(const std::string& key, std::string raw_json) {
  MutexLock lock(mu_);
  for (auto& [k, v] : sections_) {
    if (k == key) {
      v = std::move(raw_json);
      return;
    }
  }
  sections_.emplace_back(key, std::move(raw_json));
}

std::string RunReport::to_json(const Registry* registry) const {
  JsonWriter w;
  std::vector<std::pair<std::string, std::string>> sections;
  {
    MutexLock lock(mu_);
    sections = sections_;
    w.begin_object();
    w.key("name").value(name_.empty() ? "unnamed" : name_);
    w.key("schema").value(std::uint64_t{1});
    w.key("config").begin_object();
    for (const auto& [k, v] : config_) w.key(k).value(v);
    w.end_object();
    w.key("stages").begin_array();
    for (const auto& s : stages_) {
      w.begin_object();
      w.key("name").value(s.name);
      w.key("seconds").value(s.seconds);
      w.key("items").value(s.items);
      if (s.items > 0.0 && s.seconds > 0.0)
        w.key("items_per_sec").value(s.items / s.seconds);
      w.end_object();
    }
    w.end_array();
    w.key("metrics");
  }
  // Registry snapshot outside our own lock (independent mutex).
  (registry != nullptr ? *registry : Registry::global()).write_json(w);
  for (const auto& [key, raw] : sections) w.key(key).raw(raw);
  w.end_object();
  return w.take();
}

bool RunReport::write(const std::string& path, const Registry* registry) const {
  const std::string json = to_json(registry);
  // Best-effort diagnostic JSON, often pointed at a pipe or /dev/stdout;
  // rename-over semantics would break those sinks and a torn report is
  // harmless.
  std::ofstream out(  // ppg-lint: allow(direct-final-write) diagnostics
      path, std::ios::trunc);
  if (!out) return false;
  out << json << '\n';
  return static_cast<bool>(out);
}

void RunReport::clear() {
  MutexLock lock(mu_);
  name_.clear();
  config_.clear();
  stages_.clear();
  sections_.clear();
}

StageTimer::StageTimer(std::string name, RunReport& report)
    : report_(report), name_(std::move(name)), start_(now_seconds()) {}

StageTimer::~StageTimer() {
  const double end = now_seconds();
  if (trace_enabled())
    trace_emit_complete(name_.c_str(), "stage",
                        static_cast<std::int64_t>(start_ * 1e6),
                        static_cast<std::int64_t>((end - start_) * 1e6));
  report_.add_stage(std::move(name_), end - start_, items_);
}

}  // namespace ppg::obs
