#include "obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>  // std::call_once

#include "common/thread_annotations.h"
#include "obs/json.h"

namespace ppg::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_trace_env_checked{false};
}  // namespace detail

namespace {

struct TraceState {
  Mutex mu;
  std::FILE* file PPG_GUARDED_BY(mu) = nullptr;
  bool any_event PPG_GUARDED_BY(mu) = false;
  bool atexit_registered PPG_GUARDED_BY(mu) = false;
};

TraceState& state() {
  // Leaked: spans may fire from atexit handlers and detached threads.
  static TraceState* s = new TraceState();
  return *s;
}

/// Stable small id for the calling thread (Chrome wants an integer tid).
int thread_tid() {
  static std::atomic<int> next{1};
  thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void close_locked(TraceState& s) PPG_REQUIRES(s.mu) {
  if (s.file == nullptr) return;
  std::fputs("\n]}\n", s.file);
  std::fclose(s.file);
  s.file = nullptr;
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void emit(const char* name, const char* cat, const char* ph,
          std::int64_t ts_us, std::int64_t dur_us, bool has_dur) {
  TraceState& s = state();
  MutexLock lock(s.mu);
  if (s.file == nullptr) return;
  const std::string ename = json_escape(name);
  const std::string ecat = json_escape(cat && cat[0] ? cat : "ppg");
  if (has_dur) {
    std::fprintf(s.file,
                 "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                 "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%d}",
                 s.any_event ? ",\n" : "\n", ename.c_str(), ecat.c_str(), ph,
                 static_cast<long long>(ts_us),
                 static_cast<long long>(dur_us), thread_tid());
  } else {
    std::fprintf(s.file,
                 "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                 "\"ts\":%lld,\"s\":\"t\",\"pid\":1,\"tid\":%d}",
                 s.any_event ? ",\n" : "\n", ename.c_str(), ecat.c_str(), ph,
                 static_cast<long long>(ts_us), thread_tid());
  }
  s.any_event = true;
}

}  // namespace

namespace detail {

void trace_env_init() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* path = std::getenv("PPG_TRACE");
    if (path != nullptr && path[0] != '\0') trace_start(path);
    g_trace_env_checked.store(true, std::memory_order_release);
  });
}

}  // namespace detail

bool trace_start(const std::string& path) {
  TraceState& s = state();
  MutexLock lock(s.mu);
  close_locked(s);
  s.file = std::fopen(path.c_str(), "w");
  if (s.file == nullptr) return false;
  std::fputs("{\"traceEvents\":[", s.file);
  s.any_event = false;
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit([] {
      TraceState& st = state();
      MutexLock l(st.mu);
      close_locked(st);
    });
  }
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
  detail::g_trace_env_checked.store(true, std::memory_order_release);
  return true;
}

void trace_stop() {
  TraceState& s = state();
  MutexLock lock(s.mu);
  close_locked(s);
}

void trace_emit_complete(const char* name, const char* cat,
                         std::int64_t ts_us, std::int64_t dur_us) {
  emit(name, cat, "X", ts_us, dur_us, /*has_dur=*/true);
}

void trace_instant(const char* name, const char* cat) {
  if (!trace_enabled()) return;
  emit(name, cat, "i", now_us(), 0, /*has_dur=*/false);
}

void trace_set_thread_name(const char* name) {
  if (!trace_enabled()) return;
  TraceState& s = state();
  MutexLock lock(s.mu);
  if (s.file == nullptr) return;
  const std::string ename = json_escape(name);
  std::fprintf(s.file,
               "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
               "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
               s.any_event ? ",\n" : "\n", thread_tid(), ename.c_str());
  s.any_event = true;
}

}  // namespace ppg::obs
