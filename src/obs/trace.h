// Scoped trace spans emitting Chrome trace-event JSON.
//
// When tracing is enabled — `PPG_TRACE=<file>` in the environment, or an
// explicit trace_start(path) — every Span constructed anywhere in the
// process appends one complete ("ph":"X") event to the file, which loads
// directly into chrome://tracing or https://ui.perfetto.dev. When disabled,
// a Span costs one relaxed atomic load and a branch: no clock read, no
// allocation, no lock.
//
// Events are written under a mutex as single fprintf calls, so concurrent
// spans from worker threads interleave at event granularity and the file is
// always well-formed once trace_stop() (or process exit) closes the array.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/clock.h"

namespace ppg::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
/// Reads PPG_TRACE once and opens the file if set. Called from the first
/// enabled-check; idempotent and thread-safe.
void trace_env_init();
extern std::atomic<bool> g_trace_env_checked;
}  // namespace detail

/// True when a trace file is open. First call picks up PPG_TRACE.
inline bool trace_enabled() noexcept {
  if (!detail::g_trace_env_checked.load(std::memory_order_acquire))
    detail::trace_env_init();
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Opens `path` for writing and starts recording (replacing any previous
/// trace). Registers an atexit flush so the file is valid JSON on any
/// normal exit, even if the caller never reaches trace_stop(); death by
/// signal leaves an empty or truncated file. Returns false if the file
/// cannot be opened.
bool trace_start(const std::string& path);

/// Closes the event array and the file. Safe to call when not tracing.
void trace_stop();

/// Appends a complete event (begin timestamp `ts_us`, duration `dur_us`,
/// both in µs on the obs monotonic timeline). No-op when disabled.
void trace_emit_complete(const char* name, const char* cat,
                         std::int64_t ts_us, std::int64_t dur_us);

/// Appends an instant event at the current time. No-op when disabled.
void trace_instant(const char* name, const char* cat = "");

/// Emits a Chrome-trace thread-name metadata event ("ph":"M") for the
/// calling thread, so Perfetto/chrome://tracing shows a named lane
/// ("serve-worker-2") instead of a bare tid. Call once per thread, after
/// tracing is on (worker loops call it at entry). No-op when disabled.
void trace_set_thread_name(const char* name);

/// RAII span: marks the enclosed scope as one trace event. `name` and
/// `cat` must outlive the span (string literals in practice).
class Span {
 public:
  explicit Span(const char* name, const char* cat = "") noexcept {
    if (trace_enabled()) {
      name_ = name;
      cat_ = cat;
      start_us_ = now_us();
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (name_ != nullptr)
      trace_emit_complete(name_, cat_, start_us_, now_us() - start_us_);
  }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::int64_t start_us_ = 0;
};

}  // namespace ppg::obs
