#include "obs/atlas.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/json.h"

namespace ppg::obs {

namespace {

struct SpanEvent {
  std::string name;
  std::string cat;
  std::int64_t tid = 0;
  double ts = 0.0;   ///< µs
  double dur = 0.0;  ///< µs
};

/// Exact percentile over a sorted duration vector (nearest-rank).
double exact_percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

std::optional<Atlas> build_atlas_from_json(std::string_view json,
                                           std::string* error) {
  const auto doc = parse_json(json, error);
  if (!doc.has_value()) return std::nullopt;
  const JsonValue* events = nullptr;
  if (doc->type == JsonValue::Type::kArray) {
    events = &*doc;
  } else if (doc->is_object()) {
    events = doc->find("traceEvents");
  }
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    if (error != nullptr) *error = "no traceEvents array";
    return std::nullopt;
  }

  std::vector<SpanEvent> spans;
  spans.reserve(events->array.size());
  for (const JsonValue& ev : events->array) {
    if (!ev.is_object()) continue;
    const auto ph = ev.get_string("ph");
    if (!ph.has_value() || *ph != "X") continue;  // metadata/instants skipped
    const auto ts = ev.get_number("ts");
    const auto dur = ev.get_number("dur");
    const auto name = ev.get_string("name");
    if (!ts.has_value() || !dur.has_value() || !name.has_value()) continue;
    if (!(*dur >= 0.0)) continue;
    SpanEvent s;
    s.name = *name;
    s.cat = ev.get_string("cat").value_or("");
    s.tid = static_cast<std::int64_t>(ev.get_number("tid").value_or(0.0));
    s.ts = *ts;
    s.dur = *dur;
    spans.push_back(std::move(s));
  }

  Atlas atlas;
  atlas.events = spans.size();
  if (spans.empty()) return atlas;

  // Wall span of the trace and the set of lanes.
  double t0 = spans.front().ts, t1 = spans.front().ts + spans.front().dur;
  std::map<std::int64_t, std::vector<SpanEvent*>> by_tid;
  for (SpanEvent& s : spans) {
    t0 = std::min(t0, s.ts);
    t1 = std::max(t1, s.ts + s.dur);
    by_tid[s.tid].push_back(&s);
  }
  atlas.wall_us = t1 - t0;
  atlas.threads = by_tid.size();

  // Self time per span via the flame-graph stack walk: per thread, spans
  // sorted by start (longer first on ties, so parents precede the children
  // they enclose); a span fully inside the stack top is its child and its
  // duration is subtracted from the parent's self time once.
  struct Aggregate {
    std::string cat;
    std::uint64_t count = 0;
    double total_us = 0.0;
    double self_us = 0.0;
    std::vector<double> durations;
  };
  std::map<std::string, Aggregate> by_name;
  constexpr double kEps = 1e-6;  // µs tolerance for boundary-sharing spans
  for (auto& [tid, lane] : by_tid) {
    std::sort(lane.begin(), lane.end(),
              [](const SpanEvent* a, const SpanEvent* b) {
                if (a->ts != b->ts) return a->ts < b->ts;
                return a->dur > b->dur;
              });
    struct Open {
      const SpanEvent* span;
      double child_us = 0.0;
    };
    std::vector<Open> stack;
    const auto pop_one = [&] {
      const Open top = stack.back();
      stack.pop_back();
      Aggregate& agg = by_name[top.span->name];
      if (agg.count == 0) agg.cat = top.span->cat;
      ++agg.count;
      agg.total_us += top.span->dur;
      agg.self_us += std::max(0.0, top.span->dur - top.child_us);
      agg.durations.push_back(top.span->dur);
      if (!stack.empty()) stack.back().child_us += top.span->dur;
    };
    for (const SpanEvent* s : lane) {
      while (!stack.empty() &&
             stack.back().span->ts + stack.back().span->dur <= s->ts + kEps)
        pop_one();
      stack.push_back({s, 0.0});
    }
    while (!stack.empty()) pop_one();
  }

  double self_total = 0.0;
  for (auto& [name, agg] : by_name) self_total += agg.self_us;
  for (auto& [name, agg] : by_name) {
    AtlasEntry e;
    e.name = name;
    e.category = agg.cat;
    e.count = agg.count;
    e.total_us = agg.total_us;
    e.self_us = agg.self_us;
    std::sort(agg.durations.begin(), agg.durations.end());
    e.p50_us = exact_percentile(agg.durations, 0.50);
    e.p99_us = exact_percentile(agg.durations, 0.99);
    e.share = self_total > 0.0 ? agg.self_us / self_total : 0.0;
    atlas.entries.push_back(std::move(e));
  }
  std::sort(atlas.entries.begin(), atlas.entries.end(),
            [](const AtlasEntry& a, const AtlasEntry& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });
  return atlas;
}

std::optional<Atlas> build_atlas(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  return build_atlas_from_json(content, error);
}

std::string atlas_to_json(const Atlas& atlas, std::size_t top) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(std::int64_t{1});
  w.key("wall_us").value(atlas.wall_us);
  w.key("threads").value(std::uint64_t{atlas.threads});
  w.key("events").value(std::uint64_t{atlas.events});
  w.key("kernels").begin_array();
  std::size_t n = 0;
  for (const AtlasEntry& e : atlas.entries) {
    if (top > 0 && n++ >= top) break;
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.category);
    w.key("count").value(std::uint64_t{e.count});
    w.key("total_us").value(e.total_us);
    w.key("self_us").value(e.self_us);
    w.key("p50_us").value(e.p50_us);
    w.key("p99_us").value(e.p99_us);
    w.key("share").value(e.share);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::string atlas_to_text(const Atlas& atlas, std::size_t top) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "hot-kernel atlas: %llu spans, %llu threads, wall %.1f ms\n",
                static_cast<unsigned long long>(atlas.events),
                static_cast<unsigned long long>(atlas.threads),
                atlas.wall_us / 1000.0);
  out += buf;
  std::snprintf(buf, sizeof buf, "%4s %-28s %7s %12s %12s %7s %10s %10s\n",
                "rank", "kernel", "share", "self ms", "total ms", "count",
                "p50 us", "p99 us");
  out += buf;
  std::size_t rank = 0;
  for (const AtlasEntry& e : atlas.entries) {
    if (top > 0 && rank >= top) break;
    ++rank;
    std::snprintf(buf, sizeof buf,
                  "%4zu %-28s %6.1f%% %12.2f %12.2f %7llu %10.1f %10.1f\n",
                  rank, e.name.c_str(), e.share * 100.0, e.self_us / 1000.0,
                  e.total_us / 1000.0, static_cast<unsigned long long>(e.count),
                  e.p50_us, e.p99_us);
    out += buf;
  }
  return out;
}

}  // namespace ppg::obs
