// Perf-trajectory recorder: one NDJSON record per bench run (DESIGN.md §12).
//
// Every bench appends one BenchRecord — commit hash, build fingerprint,
// config echo + fingerprint, and the run's headline metrics — to a
// `BENCH_<name>.json` trajectory at the repo root. Trajectories are the
// cross-commit memory of the repo's performance claims: the perf gate
// (perf_gate.h) compares a fresh run against the median of the last N
// same-config records and fails CI on a regression, so a GEMM or KV-cache
// win recorded here cannot silently rot.
//
// Format: JSON Lines (NDJSON) — one self-contained JSON object per line,
// so `ppg_check_json --ndjson` validates a trajectory directly. Appends
// follow the PR-5 atomic_save discipline (tmp → flush → fsync → rename →
// fsync dir) and are corruption-tolerant both ways:
//   * a torn tail line (crash mid-append, copy truncation) is dropped at
//     the next append and skipped by load_trajectory;
//   * complete lines that fail to parse as the current schema (foreign
//     JSON, future schema versions) are *preserved* byte-for-byte across
//     appends but skipped by load_trajectory, so old binaries never
//     destroy records written by newer ones.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

namespace ppg::obs {

/// Current trajectory record schema. Parsers reject records whose schema
/// is newer (skew-skip, never misread); appends always write the current
/// version.
inline constexpr int kBenchRecordSchema = 1;

/// One bench run, as remembered by its trajectory.
struct BenchRecord {
  int schema = kBenchRecordSchema;
  std::string bench;      ///< bench binary name, e.g. "bench_kv_cache"
  std::string commit;     ///< git HEAD hash, or "unknown"
  std::string build;      ///< compiler + flags fingerprint
  std::string host;       ///< machine name (timings compare per-host)
  std::string time_utc;   ///< ISO-8601 wall-clock stamp (display only)
  std::string config_fp;  ///< fingerprint of `config` minus volatile keys
  /// Config echo (scale, seed, model dims, bench-specific knobs).
  std::map<std::string, std::string> config;
  /// Headline metrics: guesses/sec, step ms, serve p99, prefill tokens…
  /// Names carry their gate direction (see perf_gate.h metric_direction).
  std::map<std::string, double> metrics;
};

/// Compiler id + the build-shape macros that change codegen (opt level,
/// sanitizers, DCHECKs). Recorded so a sanitizer run never baselines an
/// optimized one.
std::string bench_build_fingerprint();

/// Resolves the current git commit: the PPG_COMMIT environment variable if
/// set, else by walking up from `start_dir` (default: cwd) to `.git` and
/// reading HEAD / refs / packed-refs. Returns "unknown" when unresolvable.
std::string bench_git_commit(const std::string& start_dir = ".");

/// Host name (gethostname), "unknown-host" on failure.
std::string bench_host();

/// Current wall-clock time as ISO-8601 UTC (display only — never feeds
/// generation or comparison logic).
std::string bench_timestamp_utc();

/// Order-independent FNV-1a fingerprint over config key=value pairs,
/// excluding volatile keys (cache_dir, report, track_dir, fresh, seed —
/// they change where bytes land or which RNG stream runs, not the cost of
/// the work). 16 hex chars.
std::string bench_config_fingerprint(
    const std::map<std::string, std::string>& config);

/// Builds a record with all identity fields (commit, build, host, time,
/// config_fp) filled in from the environment.
BenchRecord make_bench_record(std::string bench,
                              std::map<std::string, std::string> config,
                              std::map<std::string, double> metrics);

/// One-line JSON serialisation (no trailing newline).
std::string bench_record_to_json(const BenchRecord& rec);

/// Parses one trajectory line. Returns nullopt (with a message in `error`
/// if non-null) on malformed JSON, missing fields, or a schema newer than
/// kBenchRecordSchema.
std::optional<BenchRecord> parse_bench_record(std::string_view line,
                                              std::string* error = nullptr);

/// A loaded trajectory: parsed records in file order plus the count of
/// lines that were skipped (torn tail, foreign JSON, schema skew).
struct TrajectoryLoad {
  std::vector<BenchRecord> records;
  std::size_t skipped = 0;
};

/// Loads `path`; a missing file is an empty trajectory, not an error.
TrajectoryLoad load_trajectory(const std::string& path);

/// Appends `rec` as one line via atomic replace (read, drop any torn tail,
/// rewrite + new line, fsync, rename, fsync dir). Complete foreign lines
/// are preserved verbatim. Returns false (with `error`) on IO failure.
bool append_trajectory(const std::string& path, const BenchRecord& rec,
                       std::string* error = nullptr);

/// Canonical trajectory path: `<dir>/BENCH_<name>.json`, where <name> is
/// the bench name with any leading "bench_" stripped.
std::string trajectory_path(const std::string& dir, const std::string& bench);

/// Thread-safe store of the headline metrics a bench run wants remembered
/// (bench::track_metric feeds the global instance), plus the copy-then-write
/// flush that turns them into a trajectory append.
///
/// Lock discipline: flush() snapshots and merges under the lock, then
/// invokes the writer strictly *outside* it, so a slow (or reentrant)
/// writer can never stall concurrent set() calls — the file IO of a
/// trajectory append happens with no TrackRecorder lock held
/// (tests/lock_discipline_test.cpp holds the writer on a delay failpoint
/// and proves set() still completes).
class TrackRecorder {
 public:
  TrackRecorder() = default;
  TrackRecorder(const TrackRecorder&) = delete;
  TrackRecorder& operator=(const TrackRecorder&) = delete;

  /// The process-wide recorder (leaked so atexit flushers can read it).
  static TrackRecorder& global();

  /// Records (or overwrites) one named metric.
  void set(const std::string& name, double value);

  /// Point-in-time copy of everything recorded.
  std::map<std::string, double> snapshot() const;

  /// Drops all recorded metrics (tests).
  void clear();

  /// Merges `base_metrics` with the recorded values (recorded wins on a
  /// name collision), builds a BenchRecord via make_bench_record, and
  /// passes it to `write` with the lock released. Returns write's result,
  /// or false without calling write when the merged map is empty (*error
  /// names the reason).
  bool flush(std::string bench_name,
             std::map<std::string, std::string> config,
             std::map<std::string, double> base_metrics,
             const std::function<bool(const BenchRecord&)>& write,
             std::string* error = nullptr);

 private:
  mutable Mutex mu_;
  std::map<std::string, double> values_ PPG_GUARDED_BY(mu_);
};

}  // namespace ppg::obs
