#include "obs/bench_track.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "obs/json.h"

namespace ppg::obs {

namespace fs = std::filesystem;

namespace {

/// FNV-1a 64-bit over a byte string.
std::uint64_t fnv1a64(std::string_view s, std::uint64_t h = 0xcbf29ce484222325ull) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Bit-level finiteness test: the tree builds with -ffast-math, under
/// which std::isfinite constant-folds to true and would let an overflowed
/// foreign metric (1e999 -> inf) into a record.
bool finite_double(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof bits);
  return (bits & 0x7ff0000000000000ull) != 0x7ff0000000000000ull;
}

/// Keys whose values change across runs without changing the cost of the
/// measured work: output destinations, cache locations, RNG streams.
bool volatile_config_key(std::string_view key) {
  return key == "cache_dir" || key == "report" || key == "track_dir" ||
         key == "fresh" || key == "seed";
}

/// POSIX atomic text replace: write to `path + ".tmp"`, fsync, rename over
/// `path`, fsync the parent directory — the PR-5 atomic_save sequence,
/// reimplemented here because obs cannot depend on common (common's
/// thread_pool/failpoint already instrument through obs).
bool atomic_write_text(const std::string& path, std::string_view data,
                       std::string* error) {
  const auto fail = [&](const char* what) {
    // generic_category().message over strerror: the latter returns a
    // pointer into static storage (clang-tidy concurrency-mt-unsafe).
    if (error != nullptr)
      *error = std::string(what) + " " + path + ": " +
               std::generic_category().message(errno);
    return false;
  };
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return fail("write");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail("fsync");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail("rename");
  }
  // fsync the parent directory so the rename itself is durable.
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

/// First line of a file, or empty.
std::string read_first_line(const fs::path& p) {
  std::ifstream in(p);
  std::string line;
  std::getline(in, line);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

}  // namespace

std::string bench_build_fingerprint() {
  std::ostringstream os;
#if defined(__clang__)
  os << "clang-" << __clang_major__ << "." << __clang_minor__;
#elif defined(__GNUC__)
  os << "gcc-" << __GNUC__ << "." << __GNUC_MINOR__;
#else
  os << "cxx";
#endif
#if defined(NDEBUG)
  os << " release";
#else
  os << " debug";
#endif
#if defined(__SANITIZE_ADDRESS__)
  os << " asan";
#endif
#if defined(__SANITIZE_THREAD__)
  os << " tsan";
#endif
#if defined(PPG_ENABLE_DCHECKS)
  os << " dchecks";
#endif
#if defined(__FAST_MATH__)
  os << " fast-math";
#endif
  return os.str();
}

std::string bench_git_commit(const std::string& start_dir) {
  if (const char* env = std::getenv("PPG_COMMIT");
      env != nullptr && env[0] != '\0')
    return env;
  std::error_code ec;
  fs::path dir = fs::absolute(start_dir, ec);
  if (ec) return "unknown";
  for (; !dir.empty(); dir = dir.parent_path()) {
    const fs::path git = dir / ".git";
    if (!fs::exists(git / "HEAD", ec)) {
      if (dir == dir.parent_path()) break;
      continue;
    }
    const std::string head = read_first_line(git / "HEAD");
    if (head.rfind("ref: ", 0) != 0)
      return head.empty() ? "unknown" : head;  // detached HEAD: bare hash
    const std::string ref = head.substr(5);
    const std::string direct = read_first_line(git / ref);
    if (!direct.empty()) return direct;
    // Packed ref: lines are "<hash> <refname>".
    std::ifstream packed(git / "packed-refs");
    std::string line;
    while (std::getline(packed, line)) {
      if (line.empty() || line[0] == '#' || line[0] == '^') continue;
      const std::size_t sp = line.find(' ');
      if (sp != std::string::npos && line.compare(sp + 1, ref.size(), ref) == 0 &&
          sp + 1 + ref.size() == line.size())
        return line.substr(0, sp);
    }
    return "unknown";
  }
  return "unknown";
}

std::string bench_host() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) != 0 || buf[0] == '\0')
    return "unknown-host";
  return buf;
}

std::string bench_timestamp_utc() {
  // Wall clock for the human-readable stamp only — trajectories are
  // ordered by file position, and the gate never compares timestamps.
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  return stamp;
}

std::string bench_config_fingerprint(
    const std::map<std::string, std::string>& config) {
  // std::map iterates in key order, so the fingerprint is insertion-order
  // independent by construction.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [k, v] : config) {
    if (volatile_config_key(k)) continue;
    h = fnv1a64(k, h);
    h = fnv1a64("=", h);
    h = fnv1a64(v, h);
    h = fnv1a64("\n", h);
  }
  return hex64(h);
}

BenchRecord make_bench_record(std::string bench,
                              std::map<std::string, std::string> config,
                              std::map<std::string, double> metrics) {
  BenchRecord rec;
  rec.bench = std::move(bench);
  rec.commit = bench_git_commit();
  rec.build = bench_build_fingerprint();
  rec.host = bench_host();
  rec.time_utc = bench_timestamp_utc();
  rec.config = std::move(config);
  rec.metrics = std::move(metrics);
  rec.config_fp = bench_config_fingerprint(rec.config);
  return rec;
}

std::string bench_record_to_json(const BenchRecord& rec) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(std::int64_t{rec.schema});
  w.key("bench").value(rec.bench);
  w.key("commit").value(rec.commit);
  w.key("build").value(rec.build);
  w.key("host").value(rec.host);
  w.key("time").value(rec.time_utc);
  w.key("config_fp").value(rec.config_fp);
  w.key("config").begin_object();
  for (const auto& [k, v] : rec.config) w.key(k).value(v);
  w.end_object();
  w.key("metrics").begin_object();
  for (const auto& [k, v] : rec.metrics) w.key(k).value(v);
  w.end_object();
  w.end_object();
  return w.take();
}

std::optional<BenchRecord> parse_bench_record(std::string_view line,
                                              std::string* error) {
  const auto doc = parse_json(line, error);
  if (!doc.has_value()) return std::nullopt;
  const auto fail = [&](const char* what) -> std::optional<BenchRecord> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  if (!doc->is_object()) return fail("record is not a JSON object");
  const auto schema = doc->get_number("schema");
  if (!schema.has_value()) return fail("missing schema");
  if (*schema > kBenchRecordSchema || *schema < 1)
    return fail("unsupported schema version");
  BenchRecord rec;
  rec.schema = static_cast<int>(*schema);
  const auto bench = doc->get_string("bench");
  if (!bench.has_value() || bench->empty()) return fail("missing bench name");
  rec.bench = *bench;
  rec.commit = doc->get_string("commit").value_or("unknown");
  rec.build = doc->get_string("build").value_or("");
  rec.host = doc->get_string("host").value_or("");
  rec.time_utc = doc->get_string("time").value_or("");
  rec.config_fp = doc->get_string("config_fp").value_or("");
  if (const JsonValue* cfg = doc->find("config");
      cfg != nullptr && cfg->is_object())
    for (const auto& [k, v] : cfg->object)
      if (v.type == JsonValue::Type::kString) rec.config[k] = v.string;
  if (const JsonValue* m = doc->find("metrics");
      m != nullptr && m->is_object())
    for (const auto& [k, v] : m->object)
      if (v.type == JsonValue::Type::kNumber && finite_double(v.number))
        rec.metrics[k] = v.number;
  if (rec.config_fp.empty()) rec.config_fp = bench_config_fingerprint(rec.config);
  return rec;
}

TrajectoryLoad load_trajectory(const std::string& path) {
  TrajectoryLoad out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn tail (no terminating newline): never a complete record.
      if (pos < content.size()) ++out.skipped;
      break;
    }
    const std::string_view line(content.data() + pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (auto rec = parse_bench_record(line); rec.has_value())
      out.records.push_back(std::move(*rec));
    else
      ++out.skipped;
  }
  return out;
}

bool append_trajectory(const std::string& path, const BenchRecord& rec,
                       std::string* error) {
  // Read existing bytes, keep every newline-terminated line verbatim
  // (foreign or future-schema lines survive an append by an old binary),
  // drop a torn tail, then atomically replace with old + new line.
  std::string keep;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::string content((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
      const std::size_t last_nl = content.rfind('\n');
      if (last_nl != std::string::npos) keep = content.substr(0, last_nl + 1);
    }
  }
  keep += bench_record_to_json(rec);
  keep += '\n';
  return atomic_write_text(path, keep, error);
}

std::string trajectory_path(const std::string& dir, const std::string& bench) {
  std::string name = bench;
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  const std::string file = "BENCH_" + name + ".json";
  if (dir.empty() || dir == ".") return file;
  return dir + "/" + file;
}

TrackRecorder& TrackRecorder::global() {
  // Leaked: the bench atexit flusher reads it during shutdown.
  static TrackRecorder* instance = new TrackRecorder();
  return *instance;
}

void TrackRecorder::set(const std::string& name, double value) {
  MutexLock lock(mu_);
  values_[name] = value;
}

std::map<std::string, double> TrackRecorder::snapshot() const {
  MutexLock lock(mu_);
  return values_;
}

void TrackRecorder::clear() {
  MutexLock lock(mu_);
  values_.clear();
}

bool TrackRecorder::flush(std::string bench_name,
                          std::map<std::string, std::string> config,
                          std::map<std::string, double> base_metrics,
                          const std::function<bool(const BenchRecord&)>& write,
                          std::string* error) {
  std::map<std::string, double> merged = std::move(base_metrics);
  {
    MutexLock lock(mu_);
    for (const auto& [k, v] : values_) merged[k] = v;
  }
  if (merged.empty()) {
    if (error != nullptr) *error = "no metrics tracked";
    return false;
  }
  const BenchRecord rec = make_bench_record(
      std::move(bench_name), std::move(config), std::move(merged));
  // Deliberately outside the critical section: the writer does file IO
  // (or anything else — it is caller-supplied) and must not hold up
  // concurrent set() calls. See the class comment.
  return write(rec);
}

}  // namespace ppg::obs
