// Monotonic clock wrapper for the observability subsystem.
//
// All obs timestamps come from one steady clock so span timings, stage
// wall-clocks, and latency histograms are mutually comparable. The process
// epoch is captured the first time any obs component asks for the time, so
// trace timestamps start near zero and fit comfortably in a double.
#pragma once

#include <chrono>
#include <cstdint>

namespace ppg::obs {

/// Nanoseconds on the process-local monotonic timeline (0 = first use).
inline std::int64_t now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                              epoch)
      .count();
}

/// Microseconds on the same timeline (Chrome trace events use µs).
inline std::int64_t now_us() noexcept { return now_ns() / 1000; }

/// Seconds on the same timeline, as a double (stage wall-clocks).
inline double now_seconds() noexcept {
  return static_cast<double>(now_ns()) * 1e-9;
}

}  // namespace ppg::obs
