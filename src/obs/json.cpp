#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ppg::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma();
  // JSON has no inf/nan; degrade to null rather than emit an invalid token.
  if (!std::isfinite(d)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.12g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t u) {
  comma();
  out_ += std::to_string(u);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t i) {
  comma();
  out_ += std::to_string(i);
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

namespace {

/// Recursive-descent JSON checker over a string_view cursor.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value()) {
      fill(error);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing content";
      fill(error);
      return false;
    }
    return true;
  }

 private:
  void fill(std::string* error) const {
    if (error)
      *error = err_ + " at byte " + std::to_string(pos_);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool fail(const char* what) {
    err_ = what;
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (depth_ > 256) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
              return fail("bad \\u escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected value");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_ = "invalid JSON";
};

/// Recursive-descent parser building the JsonValue DOM. Grammar identical
/// to the Validator's; kept separate so validation stays allocation-free.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    skip_ws();
    JsonValue v;
    if (!value(v)) {
      fill(error);
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing content";
      fill(error);
      return std::nullopt;
    }
    return v;
  }

 private:
  void fill(std::string* error) const {
    if (error) *error = err_ + " at byte " + std::to_string(pos_);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }

  bool fail(const char* what) {
    err_ = what;
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value(JsonValue& out) {
    if (depth_ > 256) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default:
        out.type = JsonValue::Type::kNumber;
        return number(out.number);
    }
  }

  bool object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++depth_;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++depth_;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  /// Appends a Unicode code point as UTF-8.
  static void append_utf8(std::string& s, std::uint32_t cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xc0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xe0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      s += static_cast<char>(0xf0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      s += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool hex4(std::uint32_t& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      ++pos_;
      if (eof() || !std::isxdigit(static_cast<unsigned char>(peek())))
        return fail("bad \\u escape");
      const char c = peek();
      out = (out << 4) | static_cast<std::uint32_t>(
                             c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
    }
    return true;
  }

  bool string(std::string& out) {
    ++pos_;  // '"'
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("control character in string");
      if (c == '\\') {
        ++pos_;
        if (eof()) return fail("unterminated escape");
        const char e = text_[pos_];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!hex4(cp)) return false;
            if (cp >= 0xd800 && cp < 0xdc00) {
              // Surrogate pair: require a following \uDCxx low surrogate.
              if (pos_ + 2 < text_.size() && text_[pos_ + 1] == '\\' &&
                  text_[pos_ + 2] == 'u') {
                pos_ += 2;
                std::uint32_t lo = 0;
                if (!hex4(lo)) return false;
                if (lo < 0xdc00 || lo > 0xdfff)
                  return fail("bad surrogate pair");
                cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
              } else {
                return fail("lone surrogate");
              }
            }
            append_utf8(out, cp);
            break;
          }
          default: return fail("bad escape character");
        }
      } else {
        out += static_cast<char>(c);
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number(double& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected value");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad fraction");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("bad exponent");
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                      nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_ = "invalid JSON";
};

}  // namespace

bool validate_json(std::string_view text, std::string* error) {
  return Validator(text).run(error);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (auto it = object.rbegin(); it != object.rend(); ++it)
    if (it->first == key) return &it->second;
  return nullptr;
}

std::optional<std::string> JsonValue::get_string(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->type != Type::kString) return std::nullopt;
  return v->string;
}

std::optional<double> JsonValue::get_number(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->type != Type::kNumber) return std::nullopt;
  return v->number;
}

std::optional<bool> JsonValue::get_bool(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->type != Type::kBool) return std::nullopt;
  return v->boolean;
}

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  return Parser(text).run(error);
}

}  // namespace ppg::obs
