// Hot-kernel atlas: aggregates a PPG_TRACE Chrome-trace file into a ranked
// table of recurring kernels (DESIGN.md §12).
//
// A trace answers "what happened at 12:34:56.789"; the atlas answers "where
// did the run's time go". Complete ("ph":"X") spans are grouped by name
// across all threads; for each name the atlas reports call count, total
// wall time, *self* time (total minus time spent in spans nested inside on
// the same thread — the flame-graph decomposition, so a parent like
// dcgen/leaf does not absorb the infer/step calls it contains), p50/p99
// span duration, and the share of the run's total self time. Every
// optimization PR cites the atlas entry it moved.
//
// `ppg_atlas` is the CLI; benches with both --report and PPG_TRACE embed
// the atlas JSON into their run report automatically (bench/common.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ppg::obs {

/// One span name's aggregate across the whole trace.
struct AtlasEntry {
  std::string name;
  std::string category;
  std::uint64_t count = 0;
  double total_us = 0.0;  ///< Σ span durations (can exceed wall: threads)
  double self_us = 0.0;   ///< total minus same-thread nested children
  double p50_us = 0.0;    ///< exact percentiles over this name's durations
  double p99_us = 0.0;
  double share = 0.0;     ///< self_us / Σ self_us over all entries
};

struct Atlas {
  double wall_us = 0.0;       ///< last span end − first span start
  std::uint64_t threads = 0;  ///< distinct tids carrying spans
  std::uint64_t events = 0;   ///< complete spans aggregated
  std::vector<AtlasEntry> entries;  ///< ranked by self_us, descending
};

/// Builds an atlas from a Chrome-trace JSON document ({"traceEvents":[…]}
/// or a bare event array). Metadata ("M") and instant ("i") events are
/// ignored. Returns nullopt with a message in `error` on malformed input.
std::optional<Atlas> build_atlas_from_json(std::string_view json,
                                           std::string* error = nullptr);

/// Reads `path` and builds the atlas from its contents.
std::optional<Atlas> build_atlas(const std::string& path,
                                 std::string* error = nullptr);

/// JSON form: {"schema":1,"wall_us":…,"threads":…,"events":…,
/// "kernels":[{name,cat,count,total_us,self_us,p50_us,p99_us,share},…]}.
/// `top` = 0 keeps every entry, else the first `top` ranked ones.
std::string atlas_to_json(const Atlas& atlas, std::size_t top = 0);

/// Ranked text table (share, self/total ms, count, p50/p99 µs).
std::string atlas_to_text(const Atlas& atlas, std::size_t top = 20);

}  // namespace ppg::obs
