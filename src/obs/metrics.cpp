#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "obs/json.h"

namespace ppg::obs {

namespace {

/// Atomic min/max update via CAS (no std::atomic<double>::fetch_min).
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN land in the first bucket
  int e = 0;
  std::frexp(v, &e);  // v = m·2^e, m ∈ [0.5, 1)  ⇒  2^(e-1) ≤ v < 2^e
  const int idx = e + kSubUnit;
  if (idx < 0) return 0;
  if (idx >= kBuckets) return kBuckets - 1;
  return idx;
}

double Histogram::bucket_upper_bound(int i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, i - kSubUnit);
}

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

Histogram::Summary Histogram::summary() const {
  Summary s;
  std::uint64_t buckets[kBuckets];
  for (int i = 0; i < kBuckets; ++i)
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) s.count += buckets[i];
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  const auto quantile = [&](double q) {
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(s.count))));
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (buckets[i] == 0) continue;
      const std::uint64_t before = seen;
      seen += buckets[i];
      if (seen < rank) continue;
      // Linear interpolation of the rank inside the covering bucket; the
      // unbounded edges (below-range first bucket, open-topped last) borrow
      // the observed min/max, and the estimate is clamped to [min, max].
      double lo = i == 0 ? 0.0 : bucket_upper_bound(i - 1);
      double hi = bucket_upper_bound(i);
      if (!std::isfinite(hi)) hi = s.max;
      lo = std::max(lo, std::min(s.min, hi));
      const double frac = static_cast<double>(rank - before) /
                          static_cast<double>(buckets[i]);
      const double est = lo + frac * (hi - lo);
      return std::clamp(est, s.min, s.max);
    }
    return s.max;
  };
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Leaked intentionally: instrumented code (thread pools, atexit report
  // writers) may touch metrics during static destruction.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::string Registry::to_text() const {
  MutexLock lock(mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof buf, "counter %s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof buf, "gauge %s %.6g\n", name.c_str(),
                  g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    const auto s = h->summary();
    std::snprintf(buf, sizeof buf,
                  "histogram %s count=%llu sum=%.6g p50=%.6g p90=%.6g "
                  "p95=%.6g p99=%.6g max=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(s.count),
                  s.sum, s.p50, s.p90, s.p95, s.p99, s.max);
    out += buf;
  }
  return out;
}

void Registry::write_json(JsonWriter& w) const {
  MutexLock lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.key(name).value(g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const auto s = h->summary();
    w.key(name).begin_object();
    w.key("count").value(s.count);
    w.key("sum").value(s.sum);
    w.key("min").value(s.min);
    w.key("max").value(s.max);
    w.key("mean").value(s.mean());
    w.key("p50").value(s.p50);
    w.key("p90").value(s.p90);
    w.key("p95").value(s.p95);
    w.key("p99").value(s.p99);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string Registry::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

void Registry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

std::atomic<bool>& timing_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("PPG_METRICS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return flag;
}

}  // namespace

bool timing_enabled() noexcept {
  return timing_flag().load(std::memory_order_relaxed);
}

void set_timing_enabled(bool on) noexcept {
  timing_flag().store(on, std::memory_order_relaxed);
}

}  // namespace ppg::obs
