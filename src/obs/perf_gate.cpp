#include "obs/perf_gate.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/json.h"

namespace ppg::obs {

namespace {

bool contains(std::string_view name, std::string_view needle) {
  return name.find(needle) != std::string_view::npos;
}

bool ends_with(std::string_view name, std::string_view suffix) {
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Median of an unsorted non-empty vector (midpoint average when even).
double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

const char* direction_name(MetricDirection d) {
  switch (d) {
    case MetricDirection::kHigherBetter:
      return "higher-better";
    case MetricDirection::kLowerBetter:
      return "lower-better";
    default:
      return "unclassified";
  }
}

}  // namespace

MetricDirection metric_direction(std::string_view name) {
  // Higher-better first: "prefill_saved" must not fall through to the
  // lower-better "prefill" family, and "guesses_per_sec" must not match a
  // generic "guesses" count.
  for (const char* needle : {"per_sec", "per_second", "throughput", "speedup",
                             "reduction", "saved", "hit_rate", "occupancy"})
    if (contains(name, needle)) return MetricDirection::kHigherBetter;
  for (const char* needle :
       {"latency", "tokens", "calls", "bytes", "invalid", "wall", "p50", "p90",
        "p95", "p99", "seconds", "queue"})
    if (contains(name, needle)) return MetricDirection::kLowerBetter;
  for (const char* suffix : {"_ms", "_us", "_ns", "_s", "_secs", "_min"})
    if (ends_with(name, suffix)) return MetricDirection::kLowerBetter;
  return MetricDirection::kUnknown;
}

GateResult evaluate_gate(const std::vector<BenchRecord>& trajectory,
                         const BenchRecord& run, const GateConfig& cfg) {
  GateResult result;

  // Comparable records, file order = oldest first; keep the newest window.
  std::vector<const BenchRecord*> base;
  for (const BenchRecord& rec : trajectory) {
    if (rec.bench != run.bench) continue;
    if (rec.config_fp != run.config_fp) continue;
    if (rec.build != run.build) continue;
    if (cfg.match_host && rec.host != run.host) continue;
    base.push_back(&rec);
  }
  if (base.size() > cfg.window)
    base.erase(base.begin(),
               base.end() - static_cast<std::ptrdiff_t>(cfg.window));
  result.baseline_records = base.size();

  if (base.empty()) {
    result.pass = !cfg.require_baseline;
    result.note = "no comparable baseline (bench/config/build" +
                  std::string(cfg.match_host ? "/host" : "") +
                  " unmatched in trajectory)";
    return result;
  }

  for (const auto& [name, current] : run.metrics) {
    MetricDelta d;
    d.name = name;
    d.direction = metric_direction(name);
    d.current = current;
    std::vector<double> samples;
    for (const BenchRecord* rec : base)
      if (const auto it = rec->metrics.find(name); it != rec->metrics.end())
        samples.push_back(it->second);
    d.samples = samples.size();
    if (!samples.empty()) {
      d.baseline = median(std::move(samples));
      if (d.baseline != 0.0 && d.direction != MetricDirection::kUnknown) {
        // Positive delta always means "worse".
        d.delta_pct = d.direction == MetricDirection::kLowerBetter
                          ? (d.current - d.baseline) / d.baseline * 100.0
                          : (d.baseline - d.current) / d.baseline * 100.0;
        d.gated = true;
        d.regressed = d.delta_pct > cfg.max_regress_pct;
        if (d.regressed) result.pass = false;
      }
    }
    result.deltas.push_back(std::move(d));
  }
  std::sort(result.deltas.begin(), result.deltas.end(),
            [](const MetricDelta& a, const MetricDelta& b) {
              if (a.gated != b.gated) return a.gated;
              if (a.delta_pct != b.delta_pct) return a.delta_pct > b.delta_pct;
              return a.name < b.name;
            });
  return result;
}

std::string gate_to_text(const GateResult& result, const GateConfig& cfg) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "perf gate: baseline = median of last %zu comparable records "
                "(%zu found), threshold %.1f%%\n",
                cfg.window, result.baseline_records, cfg.max_regress_pct);
  out += buf;
  if (!result.note.empty()) {
    out += "note: " + result.note + "\n";
  }
  if (!result.deltas.empty()) {
    std::snprintf(buf, sizeof buf, "%-36s %14s %14s %9s %4s  %s\n", "metric",
                  "baseline", "current", "delta%", "n", "verdict");
    out += buf;
    for (const MetricDelta& d : result.deltas) {
      const char* verdict = !d.gated         ? direction_name(d.direction)
                            : d.regressed    ? "REGRESSED"
                            : d.delta_pct < 0 ? "improved"
                                              : "ok";
      std::snprintf(buf, sizeof buf, "%-36s %14.4g %14.4g %+8.1f%% %4zu  %s\n",
                    d.name.c_str(), d.baseline, d.current, d.delta_pct,
                    d.samples, verdict);
      out += buf;
    }
  }
  out += result.pass ? "perf gate: PASS\n" : "perf gate: FAIL\n";
  return out;
}

std::string gate_to_json(const GateResult& result, const GateConfig& cfg) {
  JsonWriter w;
  w.begin_object();
  w.key("pass").value(result.pass);
  w.key("max_regress_pct").value(cfg.max_regress_pct);
  w.key("window").value(std::uint64_t{cfg.window});
  w.key("baseline_records").value(std::uint64_t{result.baseline_records});
  if (!result.note.empty()) w.key("note").value(result.note);
  w.key("deltas").begin_array();
  for (const MetricDelta& d : result.deltas) {
    w.begin_object();
    w.key("metric").value(d.name);
    w.key("direction").value(direction_name(d.direction));
    w.key("baseline").value(d.baseline);
    w.key("current").value(d.current);
    w.key("delta_pct").value(d.delta_pct);
    w.key("samples").value(std::uint64_t{d.samples});
    w.key("gated").value(d.gated);
    w.key("regressed").value(d.regressed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace ppg::obs
