// Process-wide metrics registry: counters, gauges, and log-bucketed
// histograms with a lock-free fast path.
//
// Design contract (see DESIGN.md §7):
//  - Named lookup pays a mutex exactly once, at registration; call sites
//    cache the returned reference (`static auto& c = …`) so the hot path is
//    a single relaxed atomic op.
//  - Metric objects are owned by their registry and are address-stable for
//    its lifetime; the global registry lives for the whole process.
//  - Updates from any number of threads are exact (atomics, no sampling):
//    the D&C-GEN thread-invariance test relies on this.
//  - Timed instrumentation (clock reads feeding latency histograms) is
//    gated on `timing_enabled()` so that, when off, instrumented hot loops
//    pay only a relaxed load + branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/thread_annotations.h"
#include "obs/clock.h"

namespace ppg::obs {

class JsonWriter;

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar, with an atomic add for accumulating doubles.
class Gauge {
 public:
  void set(double x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(double d) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over non-negative values with fixed log2-scaled buckets.
///
/// Bucket i (0 < i < kBuckets-1) holds values v with 2^(i-1-kSubUnit) ≤ v
/// < 2^(i-kSubUnit); the first bucket absorbs everything below the range,
/// the last everything above. The layout covers ~[1.5e-5, 1.4e14], wide
/// enough for latencies in µs or ns and for dimensionless counts.
/// count/sum/min/max are exact; percentiles are estimated by linear
/// interpolation of the rank within the covering bucket (clamped to the
/// observed min/max), so a quantile is off by at most the spread of its
/// bucket and is exact when observations are uniform inside it.
class Histogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kSubUnit = 16;  ///< buckets reserved below 1.0

  void observe(double v) noexcept;

  /// Point-in-time summary. Reads are not synchronised against writers
  /// beyond per-field atomicity; exporters call this at quiescent points.
  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double mean() const { return count == 0 ? 0.0 : sum / double(count); }
  };
  Summary summary() const;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

  /// Upper bound of bucket `i` (+inf for the last bucket).
  static double bucket_upper_bound(int i);

 private:
  static int bucket_index(double v) noexcept;

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Seeded at the identities of min/max so concurrent first observations
  // need no special casing; summary() reports 0 for an empty histogram.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Name → metric table. Registration (first lookup of a name) takes a
/// mutex; the returned references stay valid for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry used by all built-in instrumentation.
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// One metric per line: `counter name value`, `gauge name value`,
  /// `histogram name count sum p50 p90 p95 p99 max`. Stable (sorted) order.
  std::string to_text() const;

  /// Snapshot as a JSON object {"counters":{…},"gauges":{…},
  /// "histograms":{name:{count,sum,min,max,mean,p50,p90,p95,p99}}}.
  std::string to_json() const;

  /// Writes the same snapshot into an in-progress JsonWriter (the run
  /// report embeds it under its own key).
  void write_json(JsonWriter& w) const;

  /// Zeroes every registered metric (tests). Names stay registered.
  void reset();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      PPG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      PPG_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      PPG_GUARDED_BY(mu_);
};

/// Whether timed instrumentation (clock reads) is active. Defaults to the
/// truthiness of the PPG_METRICS environment variable; benches turn it on
/// when `--report` is requested.
bool timing_enabled() noexcept;
void set_timing_enabled(bool on) noexcept;

/// RAII latency probe: observes elapsed microseconds into `h` at scope
/// exit, or does nothing at all (no clock read) when timing is disabled.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram& h) noexcept
      : h_(timing_enabled() ? &h : nullptr), start_(h_ ? now_ns() : 0) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (h_) h_->observe(double(now_ns() - start_) * 1e-3);
  }

 private:
  Histogram* h_;
  std::int64_t start_;
};

}  // namespace ppg::obs
