// Perf gate: compares a fresh bench run against its trajectory and fails
// on regression (DESIGN.md §12).
//
// The baseline for each metric is the *median* of the last `window`
// trajectory records that are comparable to the run — same bench, same
// config fingerprint, same build fingerprint, and (optionally) same host —
// so one noisy historical record cannot poison the gate, and a config or
// machine change silently starts a new baseline instead of comparing
// apples to oranges.
//
// Metric direction is carried by the metric *name* (suffix conventions:
// `*_per_sec` is higher-better, `*_ms`/`*_tokens` lower-better; see
// metric_direction). Metrics whose direction cannot be classified are
// reported in the delta table but never gated.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/bench_track.h"

namespace ppg::obs {

enum class MetricDirection {
  kHigherBetter,  ///< throughput-like: regression = value dropped
  kLowerBetter,   ///< latency/cost-like: regression = value rose
  kUnknown,       ///< unclassified: reported, never gated
};

/// Classifies a metric by name. Higher-better needles (per_sec,
/// throughput, speedup, reduction, saved, hit_rate) win over lower-better
/// ones (_ms/_us/_ns/_s suffixes, latency, pXX, tokens, calls, bytes,
/// wall, invalid); anything else is kUnknown.
MetricDirection metric_direction(std::string_view name);

struct GateConfig {
  /// A gated metric regressing by more than this percentage fails the run.
  double max_regress_pct = 10.0;
  /// Baseline = per-metric median of the newest `window` comparable records.
  std::size_t window = 5;
  /// Also require baseline records to come from the same host.
  bool match_host = false;
  /// Fail (rather than pass-with-note) when no comparable baseline exists.
  bool require_baseline = false;
};

/// One metric's verdict. delta_pct is oriented so that positive always
/// means "got worse", whatever the metric's direction.
struct MetricDelta {
  std::string name;
  MetricDirection direction = MetricDirection::kUnknown;
  double baseline = 0.0;
  double current = 0.0;
  double delta_pct = 0.0;
  std::size_t samples = 0;  ///< baseline records carrying this metric
  bool gated = false;       ///< participated in the pass/fail decision
  bool regressed = false;   ///< gated && delta_pct > max_regress_pct
};

struct GateResult {
  bool pass = true;
  std::size_t baseline_records = 0;  ///< comparable records found
  std::string note;                  ///< e.g. "no comparable baseline"
  std::vector<MetricDelta> deltas;   ///< worst regression first
};

/// Evaluates `run` against `trajectory`. Records equal to `run` itself
/// (same bench/commit/time/metrics) are fine to include in `trajectory`;
/// callers gating the last appended record should pass the records before
/// it instead (see ppg_perfgate --last).
GateResult evaluate_gate(const std::vector<BenchRecord>& trajectory,
                         const BenchRecord& run, const GateConfig& cfg);

/// Human-readable per-metric delta table plus the verdict line.
std::string gate_to_text(const GateResult& result, const GateConfig& cfg);

/// Machine-readable verdict (one JSON object).
std::string gate_to_json(const GateResult& result, const GateConfig& cfg);

}  // namespace ppg::obs
