// Minimal command-line flag parsing for bench and example binaries.
//
// Supports --name=value and --name value forms plus boolean --name. Unknown
// flags are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ppg {

/// Parsed command line: a flag→value map with typed accessors and defaults.
class Cli {
 public:
  /// Parses argv. `allowed` lists every flag the binary understands (without
  /// the leading dashes); anything else throws std::invalid_argument.
  Cli(int argc, char** argv, std::vector<std::string> allowed) {
    for (auto& a : allowed) allowed_.insert(std::move(a));
    for (int i = 1; i < argc; ++i) {
      std::string_view arg(argv[i]);
      if (!arg.starts_with("--"))
        throw std::invalid_argument("Cli: positional arguments unsupported: " +
                                    std::string(arg));
      arg.remove_prefix(2);
      std::string name, value;
      if (const auto eq = arg.find('='); eq != std::string_view::npos) {
        name = std::string(arg.substr(0, eq));
        value = std::string(arg.substr(eq + 1));
      } else {
        name = std::string(arg);
        if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--")
          value = argv[++i];
        else
          value = "1";  // bare boolean flag
      }
      if (!allowed_.contains(name))
        throw std::invalid_argument("Cli: unknown flag --" + name);
      values_[name] = value;
    }
  }

  /// True if the flag was present on the command line.
  bool has(const std::string& name) const { return values_.contains(name); }

  /// String flag with default.
  std::string get(const std::string& name, std::string def = "") const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  /// Integer flag with default.
  std::int64_t get_int(const std::string& name, std::int64_t def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::stoll(it->second);
  }

  /// Floating flag with default.
  double get_double(const std::string& name, double def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::stod(it->second);
  }

  /// Boolean flag (present, "1", "true", "yes" → true).
  bool get_bool(const std::string& name, bool def = false) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return def;
    return it->second == "1" || it->second == "true" || it->second == "yes";
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> allowed_;
};

}  // namespace ppg
