// Tiny binary (de)serialization for model checkpoints.
//
// Format: little-endian PODs, length-prefixed strings and vectors, with a
// magic/version header written by the model classes themselves. Only needs
// to round-trip on the machine that wrote the file (checkpoints are local
// artifacts of a bench run, not an interchange format).
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace ppg {

/// Streaming binary writer over an ostream.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  /// Writes a trivially-copyable value verbatim.
  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&value), sizeof(T));
    if (!out_) throw std::runtime_error("BinaryWriter: write failed");
  }

  /// Writes a u64 length then the raw bytes.
  void write_string(const std::string& s) {
    write<std::uint64_t>(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
    if (!out_) throw std::runtime_error("BinaryWriter: write failed");
  }

  /// Writes a u64 length then the elements.
  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write<std::uint64_t>(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
    if (!out_) throw std::runtime_error("BinaryWriter: write failed");
  }

  /// Flushes and throws if any buffered byte failed to reach the stream.
  /// Every save site calls this before treating the artifact as written:
  /// an ofstream happily swallows writes into a full disk and only admits
  /// it at flush/close time, after the caller stopped looking.
  void finish() {
    out_.flush();
    if (!out_) throw std::runtime_error("BinaryWriter: flush failed");
  }

 private:
  std::ostream& out_;
};

/// Streaming binary reader over an istream. Throws on truncated input.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  /// Reads a trivially-copyable value.
  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    in_.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in_) throw std::runtime_error("BinaryReader: truncated input");
    return value;
  }

  /// Reads a length-prefixed string.
  std::string read_string() {
    const auto n = read<std::uint64_t>();
    check_size(n);
    std::string s(n, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(n));
    if (!in_) throw std::runtime_error("BinaryReader: truncated input");
    return s;
  }

  /// Reads a length-prefixed vector.
  template <typename T>
  std::vector<T> read_vector() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = read<std::uint64_t>();
    // Divide instead of multiplying: n * sizeof(T) can wrap around for a
    // corrupt length field, sailing straight past the cap.
    if (n > kMaxBytes / sizeof(T))
      throw std::runtime_error("BinaryReader: implausible length field");
    std::vector<T> v(n);
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(n * sizeof(T)));
    if (!in_) throw std::runtime_error("BinaryReader: truncated input");
    return v;
  }

 private:
  /// Sanity cap: refuse absurd lengths from corrupt files (4 GiB).
  static constexpr std::uint64_t kMaxBytes = 1ULL << 32;

  static void check_size(std::uint64_t bytes) {
    if (bytes > kMaxBytes)
      throw std::runtime_error("BinaryReader: implausible length field");
  }
  std::istream& in_;
};

}  // namespace ppg
