#include "common/failpoint.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace ppg::failpoint {

namespace detail {
std::atomic<std::uint64_t> g_armed_count{0};
}  // namespace detail

namespace {

struct Spec {
  Action action = Action::kThrow;
  std::uint64_t nth = 1;       ///< fire on this hit (1-based)
  std::uint64_t delay_ms = 0;  ///< Action::kDelay only
  std::uint64_t hits = 0;      ///< hits since this spec was armed
};

struct State {
  Mutex mu;
  std::map<std::string, Spec, std::less<>> armed PPG_GUARDED_BY(mu);
};

State& state() {
  static State s;
  return s;
}

/// PPG_FAILPOINTS is parsed once at static-init time (any binary with an
/// injection site links this object, so the env override always works).
/// The env var is explicit operator config exactly like PPG_LOG_LEVEL.
const bool g_env_parsed = [] {
  const char* env = std::getenv("PPG_FAILPOINTS");
  if (env != nullptr && env[0] != '\0' && !activate_from_spec(env))
    log_warn("failpoint: malformed PPG_FAILPOINTS entry in '%s'", env);
  return true;
}();

[[noreturn]] void simulated_crash(const std::string& name) {
  // stderr only (single write, unbuffered); deliberately no fflush of
  // other streams — the whole point is to model a process dying with
  // user-space buffers unflushed.
  std::string line = "failpoint: simulated crash at '" + name + "'\n";
  [[maybe_unused]] const auto n =
      ::write(STDERR_FILENO, line.data(), line.size());
  ::_exit(kCrashExitCode);
}

}  // namespace

void activate(const std::string& name, Action action, std::uint64_t nth,
              std::uint64_t delay_ms) {
  State& s = state();
  MutexLock lock(s.mu);
  Spec spec;
  spec.action = action;
  spec.nth = nth == 0 ? 1 : nth;
  spec.delay_ms = delay_ms;
  const auto [it, inserted] = s.armed.insert_or_assign(name, spec);
  (void)it;
  if (inserted)
    detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
}

void deactivate(const std::string& name) {
  State& s = state();
  MutexLock lock(s.mu);
  if (s.armed.erase(name) > 0)
    detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void reset() {
  State& s = state();
  MutexLock lock(s.mu);
  detail::g_armed_count.fetch_sub(s.armed.size(), std::memory_order_relaxed);
  s.armed.clear();
}

std::uint64_t hits(const std::string& name) {
  return obs::Registry::global().counter("failpoint." + name).value();
}

bool activate_from_spec(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string name = entry.substr(0, eq);
    std::string rhs = entry.substr(eq + 1);
    std::uint64_t nth = 1;
    if (const std::size_t at = rhs.find('@'); at != std::string::npos) {
      const std::string n = rhs.substr(at + 1);
      if (n.empty()) return false;
      nth = std::strtoull(n.c_str(), nullptr, 10);
      if (nth == 0) return false;
      rhs.resize(at);
    }
    std::uint64_t delay_ms = 0;
    if (const std::size_t colon = rhs.find(':'); colon != std::string::npos) {
      delay_ms = std::strtoull(rhs.c_str() + colon + 1, nullptr, 10);
      rhs.resize(colon);
    }
    Action action;
    if (rhs == "throw") {
      action = Action::kThrow;
    } else if (rhs == "crash") {
      action = Action::kCrash;
    } else if (rhs == "delay") {
      action = Action::kDelay;
    } else {
      return false;
    }
    activate(name, action, nth, delay_ms);
  }
  return true;
}

namespace detail {

void hit(const char* name) {
  obs::Registry::global().counter(std::string("failpoint.") + name).inc();
  Action action;
  std::uint64_t delay_ms;
  {
    State& s = state();
    MutexLock lock(s.mu);
    const auto it = s.armed.find(std::string_view(name));
    if (it == s.armed.end()) return;
    Spec& spec = it->second;
    if (++spec.hits != spec.nth) return;
    action = spec.action;
    delay_ms = spec.delay_ms;
  }
  switch (action) {
    case Action::kThrow:
      throw Injected(name);
    case Action::kCrash:
      simulated_crash(name);
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      return;
  }
}

}  // namespace detail
}  // namespace ppg::failpoint
