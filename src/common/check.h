// PPG_CHECK / PPG_DCHECK: the invariant layer of the codebase.
//
// Policy (see DESIGN.md §9):
//  * PPG_CHECK(cond, fmt, ...) — always on, in every build type. For
//    invariants whose violation means the process state is already corrupt
//    (double-completion of a request, impossible queue accounting, a tape
//    closure that vanished). Prints one diagnostic line to stderr and
//    aborts; there is no recovery path on purpose — continuing would turn
//    a loud bug into silently wrong guesses, which is worse (the paper's
//    numbers are only meaningful if generation is bit-correct).
//  * PPG_DCHECK(cond, fmt, ...) — compiled only when PPG_ENABLE_DCHECKS is
//    defined (Debug builds and every PPG_SANITIZE build; see the top-level
//    CMakeLists). For per-element hot-path checks (Tensor::at bounds,
//    kernel shape arguments) that must cost zero in release benchmarks.
//  * API misuse by callers (bad shapes passed to Graph ops, invalid
//    requests) keeps throwing std::invalid_argument — those are caller
//    errors, recoverable and testable, not corrupt-state invariants.
//
// The formatted message is optional: PPG_CHECK(p != nullptr) works, as does
// PPG_CHECK(i < n, "row %lld out of %lld", i, n). kDchecksEnabled lets
// non-macro code (e.g. the trainer's finite-values sweep) compile whole
// debug-only blocks out with `if constexpr`.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ppg {

#if defined(PPG_ENABLE_DCHECKS)
inline constexpr bool kDchecksEnabled = true;
#else
inline constexpr bool kDchecksEnabled = false;
#endif

namespace detail {

/// Formats and emits the failure line in one stdio call (concurrent
/// failing threads must not interleave mid-line), then aborts.
[[noreturn]] __attribute__((format(printf, 5, 6))) inline void check_fail(
    const char* kind, const char* expr, const char* file, int line,
    const char* fmt = nullptr, ...) {
  char msg[512];
  msg[0] = '\0';
  if (fmt != nullptr) {
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(msg, sizeof msg, fmt, args);
    va_end(args);
  }
  char buf[1024];
  std::snprintf(buf, sizeof buf, "%s failed: %s at %s:%d%s%s\n", kind, expr,
                file, line, msg[0] ? ": " : "", msg);
  std::fputs(buf, stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace ppg

/// Always-on fatal invariant. Evaluates `cond` exactly once.
#define PPG_CHECK(cond, ...)                                             \
  (static_cast<bool>(cond)                                               \
       ? static_cast<void>(0)                                            \
       : ::ppg::detail::check_fail("PPG_CHECK", #cond, __FILE__,         \
                                   __LINE__ __VA_OPT__(, ) __VA_ARGS__))

/// Debug/sanitize-only fatal invariant. Compiles to nothing (condition
/// unevaluated) in plain release builds, so hot-path bounds checks are
/// benchmark-neutral.
#if defined(PPG_ENABLE_DCHECKS)
#define PPG_DCHECK(cond, ...)                                            \
  (static_cast<bool>(cond)                                               \
       ? static_cast<void>(0)                                            \
       : ::ppg::detail::check_fail("PPG_DCHECK", #cond, __FILE__,        \
                                   __LINE__ __VA_OPT__(, ) __VA_ARGS__))
#else
#define PPG_DCHECK(cond, ...) static_cast<void>(0)
#endif
