// Clang thread-safety annotations and the annotated lock vocabulary used
// across the repo (DESIGN.md §14).
//
// The PPG_* macros expand to Clang's capability attributes under clang and
// to nothing elsewhere, so GCC builds are unaffected while the dedicated
// PPG_THREAD_SAFETY=ON clang build (-Wthread-safety
// -Werror=thread-safety-analysis) proves lock discipline at compile time:
// every field access is checked against its PPG_GUARDED_BY declaration and
// every *_locked() helper against its PPG_REQUIRES contract.
//
// Conventions:
//  - Mutex-protected members are declared with PPG_GUARDED_BY(mu_)
//    (PPG_PT_GUARDED_BY for "the pointee is guarded, the pointer is not").
//  - Private helpers that assume the lock is held are named *_locked and
//    annotated PPG_REQUIRES(mu_).
//  - Scoped acquisition uses ppg::MutexLock (never a naked lock()/unlock()
//    pair), so the analyzer sees the critical-section extent.
//  - Condition waits use ppg::CondVar with an *explicit* while loop:
//        while (!ready_) cv_.wait(lock);
//    The predicate-lambda overload of std::condition_variable is deliberately
//    not mirrored here — the analyzer cannot see the held capability inside
//    the lambda, so guarded reads in the predicate would need waivers.
//  - Waivers: a justified // comment plus, where ppg_lint is the enforcer,
//    a `// ppg-lint: allow(<rule>)` marker. PPG_NO_THREAD_SAFETY_ANALYSIS
//    is reserved for lock-free trickery the analysis cannot model; it must
//    never appear on hot-path code without a comment explaining why the
//    analysis is wrong, not merely inconvenient.
//
// This header is link-free on purpose: obs/ cannot link common/ (ppg_common
// links ppg_obs), but every layer may include these annotations.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define PPG_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PPG_THREAD_ANNOTATION
#define PPG_THREAD_ANNOTATION(x)  // expands to nothing outside clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define PPG_CAPABILITY(x) PPG_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define PPG_SCOPED_CAPABILITY PPG_THREAD_ANNOTATION(scoped_lockable)
/// Field is protected by the given mutex; access requires holding it.
#define PPG_GUARDED_BY(x) PPG_THREAD_ANNOTATION(guarded_by(x))
/// Pointer field whose *pointee* is protected by the given mutex.
#define PPG_PT_GUARDED_BY(x) PPG_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities held on entry (and keeps them).
#define PPG_REQUIRES(...) PPG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (held on return).
#define PPG_ACQUIRE(...) PPG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define PPG_RELEASE(...) PPG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function tries to acquire; first arg is the success return value.
#define PPG_TRY_ACQUIRE(...) PPG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must be called with the listed capabilities NOT held.
#define PPG_EXCLUDES(...) PPG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the capability is held (teaches the analyzer).
#define PPG_ASSERT_CAPABILITY(x) PPG_THREAD_ANNOTATION(assert_capability(x))
/// Function returns a reference to the given capability.
#define PPG_RETURN_CAPABILITY(x) PPG_THREAD_ANNOTATION(lock_returned(x))
/// Opts a function out of the analysis. See the waiver policy above.
#define PPG_NO_THREAD_SAFETY_ANALYSIS \
  PPG_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace ppg {

class CondVar;

/// std::mutex with the capability attribute, so PPG_GUARDED_BY(mu_) and
/// PPG_REQUIRES(mu_) declarations resolve to something the analyzer tracks.
/// Same cost and semantics as std::mutex.
class PPG_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PPG_ACQUIRE() { mu_.lock(); }
  void unlock() PPG_RELEASE() { mu_.unlock(); }
  bool try_lock() PPG_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped acquisition of a ppg::Mutex (the std::lock_guard of this
/// vocabulary, built on unique_lock so CondVar can wait on it). Non-movable;
/// holds the lock for exactly its lexical scope.
class PPG_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PPG_ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() PPG_RELEASE() {}

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over ppg::Mutex. Waits take the MutexLock itself, and
/// only the plain (non-predicate) forms exist: spell the predicate as an
/// explicit while loop so guarded reads stay visible to the analyzer.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `lock`, waits, and reacquires before returning.
  /// The analyzer treats the capability as held across the call (the
  /// Abseil convention): guarded state may legally change during the wait,
  /// which is exactly why callers must loop on their predicate.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace ppg
