// Fixed-size thread pool with a parallel_for helper.
//
// D&C-GEN's §III-C3 optimisation "tasks in the list can be executed
// concurrently" uses this pool. On a single-core host the pool degrades
// gracefully to near-serial execution; correctness never depends on
// parallelism.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppg {

/// A simple work-queue thread pool. Tasks are std::function<void()>.
/// drain() waits for outstanding work without ending the pool; stop()
/// drains and joins (the destructor calls it).
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { stop(); }

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Blocks until the queue is empty and no worker is mid-task, then
  /// returns with the pool still running. Tasks submitted concurrently with
  /// drain() extend the wait (the predicate is re-checked), so callers that
  /// need a quiescent point must stop their producers first.
  void drain() {
    MutexLock lock(mu_);
    while (!(queue_.empty() && active_ == 0)) idle_cv_.wait(lock);
  }

  /// Drains outstanding tasks and joins the workers. Afterwards the pool is
  /// inert: submit() throws. Idempotent; the destructor calls it.
  void stop() {
    {
      MutexLock lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_)
      if (w.joinable()) w.join();
  }

  /// Enqueues a task and returns a future for its result. Throws
  /// std::runtime_error after stop().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mu_);
      if (stopping_)
        throw std::runtime_error("ThreadPool::submit after stop()");
      queue_.emplace_back([task] { (*task)(); });
      metrics().queue_depth.set(static_cast<double>(queue_.size()));
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n), partitioned into roughly equal contiguous
  /// chunks across the pool, and blocks until all complete. The calling
  /// thread participates, so parallel_for on a 1-thread pool costs no
  /// synchronization round-trips for the caller's chunk.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn) {
    if (n == 0) return;
    const std::size_t chunks = std::min(n, size() + 1);
    const std::size_t per = (n + chunks - 1) / chunks;
    std::vector<std::future<void>> futs;
    futs.reserve(chunks - 1);
    for (std::size_t c = 1; c < chunks; ++c) {
      const std::size_t lo = c * per;
      const std::size_t hi = std::min(n, lo + per);
      if (lo >= hi) break;
      futs.push_back(submit([lo, hi, &fn] {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }));
    }
    const std::size_t hi0 = std::min(n, per);
    for (std::size_t i = 0; i < hi0; ++i) fn(i);
    for (auto& f : futs) f.get();
  }

 private:
  /// Process-wide pool metrics, shared by every pool instance (queue depth
  /// is a last-writer-wins gauge; counters are exact totals).
  struct Metrics {
    obs::Counter& tasks;
    obs::Gauge& queue_depth;
    obs::Counter& busy_us;
  };
  static Metrics& metrics() {
    static Metrics m{obs::Registry::global().counter("thread_pool.tasks"),
                     obs::Registry::global().gauge("thread_pool.queue_depth"),
                     obs::Registry::global().counter("thread_pool.busy_us")};
    return m;
  }

  void worker_loop(std::size_t index) {
    obs::trace_set_thread_name(("pool-worker-" + std::to_string(index)).c_str());
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mu_);
        while (!stopping_ && queue_.empty()) cv_.wait(lock);
        if (queue_.empty()) {
          if (stopping_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        metrics().queue_depth.set(static_cast<double>(queue_.size()));
      }
      if (obs::timing_enabled()) {
        const std::int64_t start = obs::now_ns();
        task();
        metrics().busy_us.inc(
            static_cast<std::uint64_t>((obs::now_ns() - start) / 1000));
      } else {
        task();
      }
      metrics().tasks.inc();
      {
        MutexLock lock(mu_);
        --active_;
        if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  Mutex mu_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ PPG_GUARDED_BY(mu_);
  // Lifecycle-guarded, not mutex-guarded: filled once in the constructor,
  // joined in stop(); never touched by the workers themselves.
  std::vector<std::thread> workers_;  // ppg-lint: allow(unannotated-mutex-sibling)
  std::size_t active_ PPG_GUARDED_BY(mu_) = 0;  ///< tasks currently executing
  bool stopping_ PPG_GUARDED_BY(mu_) = false;
};

}  // namespace ppg
