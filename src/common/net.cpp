#include "common/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <climits>
#include <cstring>

#include "common/failpoint.h"

namespace ppg::net {

Deadline Deadline::after_ms(double ms) {
  Deadline d;
  if (ms <= 0) return d;
  d.armed_ = true;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::microseconds(static_cast<std::int64_t>(ms * 1000.0));
  return d;
}

bool Deadline::expired() const {
  return armed_ && std::chrono::steady_clock::now() >= at_;
}

int Deadline::poll_timeout_ms() const {
  if (!armed_) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        at_ - std::chrono::steady_clock::now())
                        .count();
  if (left <= 0) return 0;
  // poll takes an int; a deadline years out clamps harmlessly (the outer
  // loop re-polls).
  return static_cast<int>(std::min<long long>(left, INT_MAX));
}

ScopedFd& ScopedFd::operator=(ScopedFd&& o) noexcept {
  if (this != &o) {
    reset(o.fd_);
    o.fd_ = -1;
  }
  return *this;
}

int ScopedFd::release() noexcept {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

const char* io_status_name(IoStatus s) noexcept {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kEof: return "eof";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kError: return "error";
  }
  return "unknown";
}

int listen_loopback(int port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    return -1;
  return ntohs(addr.sin_port);
}

int connect_loopback(int port, const Deadline& deadline) {
  for (;;) {
    PPG_FAILPOINT("net.connect");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return fd;
    }
    const int saved = errno;
    ::close(fd);
    // The listener may not be up yet (a worker still exec-ing): refused /
    // reset are retryable until the deadline.
    if (saved != ECONNREFUSED && saved != ECONNRESET && saved != ECONNABORTED) {
      errno = saved;
      return -1;
    }
    if (deadline.expired()) {
      errno = ETIMEDOUT;
      return -1;
    }
    ::usleep(2000);
  }
}

IoStatus poll_readable(int fd, const Deadline& deadline) {
  for (;;) {
    PPG_FAILPOINT("net.read");
    pollfd p{fd, POLLIN, 0};
    const int rc = ::poll(&p, 1, deadline.poll_timeout_ms());
    if (rc > 0) return IoStatus::kOk;  // readable, error or hangup: read()
                                       // will report which
    if (rc == 0) return IoStatus::kTimeout;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

IoStatus read_some(int fd, char* buf, std::size_t cap, std::size_t* n,
                   const Deadline& deadline) {
  *n = 0;
  const IoStatus ready = poll_readable(fd, deadline);
  if (ready != IoStatus::kOk) return ready;
  for (;;) {
    const ssize_t r = ::read(fd, buf, cap);
    if (r > 0) {
      *n = static_cast<std::size_t>(r);
      return IoStatus::kOk;
    }
    if (r == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    return IoStatus::kError;
  }
}

IoStatus write_all(int fd, const char* data, std::size_t n,
                   const Deadline& deadline) {
  std::size_t done = 0;
  while (done < n) {
    // Chaos site: a `crash` action here after the first chunk leaves a
    // torn line on the peer's socket, exactly like a worker dying
    // mid-response. Split point = half the remaining payload so the tear
    // lands inside the line, not at a boundary.
    if (done > 0) PPG_FAILPOINT("net.write.torn");
    pollfd p{fd, POLLOUT, 0};
    const int rc = ::poll(&p, 1, deadline.poll_timeout_ms());
    if (rc == 0) return IoStatus::kTimeout;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    // First pass writes at most half when a torn-write failpoint is armed,
    // so the site above actually sits mid-line; unarmed, write everything.
    std::size_t want = n - done;
    if (failpoint::any_active() && done == 0 && n > 1) want = n / 2;
    // MSG_NOSIGNAL: a peer that died mid-conversation must surface as
    // EPIPE here, not as a process-killing SIGPIPE in the router.
    const ssize_t w = ::send(fd, data + done, want, MSG_NOSIGNAL);
    if (w > 0) {
      done += static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK))
      continue;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

LineReader::LineReader(int fd, std::size_t max_line_bytes,
                       double idle_timeout_ms)
    : fd_(fd),
      max_line_bytes_(max_line_bytes == 0 ? (std::size_t(1) << 20)
                                          : max_line_bytes),
      idle_timeout_ms_(idle_timeout_ms) {}

LineReader::Result LineReader::next(std::string* line) {
  const Deadline deadline = Deadline::after_ms(idle_timeout_ms_);
  char chunk[4096];
  for (;;) {
    // Scan what we have for a newline (resuming where the last scan
    // stopped, so a long line is scanned once, not per chunk).
    const std::size_t nl_at = buf_.find('\n', scan_);
    if (nl_at != std::string::npos) {
      if (discarding_ || nl_at > max_line_bytes_) {
        // Tail of an overlong line: drop through the newline, report it.
        buf_.erase(0, nl_at + 1);
        scan_ = 0;
        discarding_ = false;
        return Result::kTooLong;
      }
      line->assign(buf_, 0, nl_at);
      buf_.erase(0, nl_at + 1);
      scan_ = 0;
      return Result::kLine;
    }
    scan_ = buf_.size();
    if (!discarding_ && buf_.size() > max_line_bytes_) {
      // Cap exceeded with no newline yet: free the memory now and eat the
      // rest of the line as it arrives.
      buf_.clear();
      scan_ = 0;
      discarding_ = true;
    }
    if (discarding_) {
      buf_.clear();
      scan_ = 0;
    }
    if (eof_) {
      if (discarding_) {
        discarding_ = false;
        return Result::kTooLong;
      }
      if (buf_.empty()) return Result::kEof;
      // EOF in the middle of a line: wire lines are newline-terminated by
      // protocol, so a trailing fragment is a *torn* line (the peer died
      // mid-write). Delivering it as a line would hand a half response to
      // the router as if it were real — refuse instead.
      buf_.clear();
      scan_ = 0;
      return Result::kError;
    }
    std::size_t n = 0;
    const IoStatus s = read_some(fd_, chunk, sizeof(chunk), &n, deadline);
    if (s == IoStatus::kTimeout) return Result::kTimeout;
    if (s == IoStatus::kError) return Result::kError;
    if (s == IoStatus::kEof) {
      eof_ = true;
      continue;  // emit a trailing unterminated line as an error
    }
    buf_.append(chunk, n);
  }
}

}  // namespace ppg::net
