// Named failpoints: deliberate fault-injection sites for crash-recovery
// testing (DESIGN.md §11).
//
// A failpoint is a named hook compiled into durability-critical code:
//
//   PPG_FAILPOINT("model.save.mid_write");
//
// Inactive failpoints cost one relaxed atomic load and a not-taken branch —
// cheap enough to leave in release builds, which is the point: the binary
// that passes the crash tests is the binary that ships. Activation is per
// name, via the API below or the PPG_FAILPOINTS environment variable:
//
//   PPG_FAILPOINTS="model.save.mid_write=crash;train.step=throw@7"
//
// Syntax per entry: <name>=<action>[:<ms>][@<nth>] where action is
//   throw   throw failpoint::Injected (an ordinary std::runtime_error, so
//           normal error paths and tests can observe it);
//   crash   _exit(kCrashExitCode) — a simulated hard crash: no destructors,
//           no atexit, no stream flush, so buffered writes are genuinely
//           torn the way a power cut would tear them;
//   delay   sleep <ms> milliseconds then continue (race-window widening);
// and @<nth> arms the action on the nth hit only (1-based; default 1).
// Earlier and later hits pass through, so one site inside a loop gives a
// whole family of kill points.
//
// Every hit of every named site (while any failpoint is armed) increments
// the obs registry counter "failpoint.<name>", so harnesses can assert a
// site was actually reached.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ppg::failpoint {

/// Exit code of a `crash`-action failpoint; harnesses use it to tell a
/// simulated crash from a real one.
inline constexpr int kCrashExitCode = 42;

/// What an armed failpoint does when its hit index matches.
enum class Action { kThrow, kCrash, kDelay };

/// The exception thrown by `throw`-action failpoints.
class Injected : public std::runtime_error {
 public:
  explicit Injected(const std::string& name)
      : std::runtime_error("failpoint injected: " + name) {}
};

/// Arms `name` with `action`. `nth` fires on the nth hit (1-based);
/// `delay_ms` applies to Action::kDelay. Re-arming an armed name replaces
/// its spec and resets its hit count.
void activate(const std::string& name, Action action, std::uint64_t nth = 1,
              std::uint64_t delay_ms = 0);

/// Disarms `name` (no-op if not armed).
void deactivate(const std::string& name);

/// Disarms everything and zeroes hit counts (tests).
void reset();

/// Hits `name` observed since the process started counting (the name's
/// obs counter holds the same value).
std::uint64_t hits(const std::string& name);

/// Parses a PPG_FAILPOINTS-style spec string ("a=crash;b=throw@3") and
/// arms every entry. Returns false (arming nothing further) on a malformed
/// entry. The environment variable is parsed automatically on first use.
bool activate_from_spec(const std::string& spec);

namespace detail {
/// Nonzero while any failpoint is armed (read on the hot path).
extern std::atomic<std::uint64_t> g_armed_count;
/// Slow path: count the hit, fire the action if armed and due.
void hit(const char* name);
}  // namespace detail

/// True when at least one failpoint is armed.
inline bool any_active() noexcept {
  return detail::g_armed_count.load(std::memory_order_relaxed) != 0;
}

}  // namespace ppg::failpoint

/// The injection site. A no-op branch unless some failpoint is armed.
#define PPG_FAILPOINT(name)                          \
  do {                                               \
    if (::ppg::failpoint::any_active())              \
      ::ppg::failpoint::detail::hit(name);           \
  } while (0)
