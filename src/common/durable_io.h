// Crash-safe file IO for checkpoints and job journals (DESIGN.md §11).
//
// Three layers, each usable alone:
//
//  * atomic_save — the classic durable-write sequence: write to a sibling
//    temp file, flush, fsync the file, rename() over the final path, fsync
//    the parent directory. A crash at any instant leaves either the old
//    file or the new file, never a torn hybrid; stale `*.tmp` droppings
//    are inert and swept by CheckpointManifest::prune.
//
//  * the CRC32 footer — every atomic_save appends
//        [payload][payload_size u64][crc32 u32][kFooterMagic u32]
//    and checked_load verifies all three before handing the payload to a
//    BinaryReader. rename() protects against torn writes; the footer
//    protects against everything else (bit rot, copy truncation, a tool
//    that wrote the path directly), and turns "garbage weights" into a
//    precise error naming what failed.
//
//  * CheckpointManifest — a directory of numbered generations plus a
//    MANIFEST file (itself footer-checked and atomically replaced) naming
//    them newest-first. latest_good() returns the newest generation whose
//    files all verify, silently falling back past corrupt or partial ones,
//    so "resume" always means "resume from provably intact state".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/serialize.h"

namespace ppg::durable {

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) of `n` bytes, chainable
/// via `seed` (pass the previous return value to continue a running CRC).
std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed = 0);

/// Footer magic trailing every durable file ("PPGC").
inline constexpr std::uint32_t kFooterMagic = 0x50504743;
/// Bytes appended after the payload: size u64 + crc u32 + magic u32.
inline constexpr std::size_t kFooterBytes = 16;

/// Durably replaces `path` with the payload `write` produces. The writer's
/// output is buffered, CRC-summed, written to `path + ".tmp"`, fsynced,
/// renamed over `path`, and the parent directory fsynced. Throws
/// std::runtime_error on any IO failure (the final path is untouched).
void atomic_save(const std::string& path,
                 const std::function<void(BinaryWriter&)>& write);

/// Reads `path`, verifies its CRC32 footer, and hands a BinaryReader over
/// the payload (footer excluded) to `read`. Throws std::runtime_error
/// naming the file and the exact check that failed: missing file, file
/// shorter than a footer, bad footer magic, size mismatch (truncation or
/// trailing garbage), or CRC mismatch.
void checked_load(const std::string& path,
                  const std::function<void(BinaryReader&)>& read);

/// Like checked_load, but a file with no CRC footer at all is handed to
/// `read` whole, with a warning — for formats that predate durable_io
/// (e.g. committed bench_cache checkpoints) whose parsers carry their own
/// magic/shape checks. A footer that is present is still enforced: a
/// footered file failing size/CRC is corrupt, not old. New formats must
/// use checked_load.
void checked_load_or_legacy(const std::string& path,
                            const std::function<void(BinaryReader&)>& read);

/// True when `path` exists and its footer verifies. Never throws.
bool verify_file(const std::string& path) noexcept;

/// Tracks numbered checkpoint generations in one directory.
///
/// Protocol: callers atomic_save their generation files first, then
/// publish(); the manifest therefore never names files that were not
/// already durable. A corrupt or missing MANIFEST degrades to "no
/// generations" (a warning, never garbage); a corrupt generation file is
/// skipped by latest_good() in favour of the next older intact one.
class CheckpointManifest {
 public:
  struct Entry {
    std::uint64_t generation = 0;
    std::vector<std::string> files;  ///< names relative to dir
  };

  /// Binds to `dir` (created if missing) and reads MANIFEST if present.
  explicit CheckpointManifest(std::string dir);

  /// Newest entry whose files all pass verify_file(), or nullopt.
  std::optional<Entry> latest_good() const;

  /// Appends an entry and durably rewrites MANIFEST. `files` must already
  /// be durable (atomic_save) — publish is the commit point of a
  /// generation. Generations must be strictly increasing.
  void publish(std::uint64_t generation, std::vector<std::string> files);

  /// Deletes generation files older than the newest `keep` entries and
  /// sweeps stray `*.tmp` droppings from interrupted saves. The manifest
  /// is rewritten first, so a crash mid-prune never orphans a live entry.
  void prune(std::size_t keep);

  const std::string& dir() const noexcept { return dir_; }
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// Absolute path of a file named by an entry.
  std::string file_path(const std::string& name) const;

 private:
  void write_manifest() const;

  std::string dir_;
  std::vector<Entry> entries_;  ///< oldest first
};

}  // namespace ppg::durable
