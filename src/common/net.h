// Loopback socket helpers shared by the serving layer (src/serve) and the
// fleet router (src/fleet).
//
// Everything here is deadline-aware and EINTR-safe by construction:
//  * read_some / write_all retry on EINTR and handle partial transfers;
//  * every blocking wait goes through poll_fd with an explicit Deadline,
//    so no caller can park forever on a dead peer (the ppg_lint rule
//    blocking-socket-no-timeout enforces the same discipline on direct
//    socket calls elsewhere);
//  * LineReader frames NDJSON with a hard per-line byte cap — an
//    adversarial client streaming an endless line costs one fixed buffer,
//    never unbounded memory — and an optional idle timeout.
//
// Failpoint sites (chaos hooks, DESIGN.md §16):
//   net.connect        before each connect attempt
//   net.write.torn     between the two halves of a split write: a `crash`
//                      action tears the line mid-byte exactly the way a
//                      dying worker would
//   net.read           before each poll-for-readable
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ppg::net {

/// Absolute wall-deadline for a socket operation. A default Deadline is
/// infinite; after(ms) with ms <= 0 is also infinite (0 = "no timeout" in
/// every config knob that feeds one).
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `ms` milliseconds from now (<= 0: no deadline).
  static Deadline after_ms(double ms);
  static Deadline infinite() { return Deadline(); }

  bool is_infinite() const noexcept { return !armed_; }
  bool expired() const;
  /// Milliseconds until expiry, clamped to [0, INT_MAX]; -1 if infinite
  /// (the value poll(2) expects).
  int poll_timeout_ms() const;

 private:
  bool armed_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// Owning file descriptor (close-on-destruct, move-only).
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }
  ScopedFd(ScopedFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  ScopedFd& operator=(ScopedFd&& o) noexcept;
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() noexcept;
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Outcome of a deadline-bounded socket operation.
enum class IoStatus {
  kOk,
  kEof,      ///< orderly peer close
  kTimeout,  ///< deadline expired before the operation completed
  kError,    ///< errno-level failure (connection reset, bad fd, ...)
};

const char* io_status_name(IoStatus s) noexcept;

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned). Returns
/// the listening fd or -1 (errno set).
int listen_loopback(int port, int backlog = 64);

/// The local port a bound socket actually got (resolves port 0).
int local_port(int fd);

/// Connects to 127.0.0.1:`port`, retrying (connection refused counts as
/// retryable — the listener may still be coming up) until `deadline`.
/// Returns the connected fd or -1.
int connect_loopback(int port, const Deadline& deadline);

/// EINTR-safe poll for readability. kOk = readable (or peer-closed, which
/// reads as EOF), kTimeout / kError otherwise.
IoStatus poll_readable(int fd, const Deadline& deadline);

/// Reads at most `cap` bytes into `buf` once the fd is readable. kOk sets
/// *n > 0; kEof means orderly close.
IoStatus read_some(int fd, char* buf, std::size_t cap, std::size_t* n,
                   const Deadline& deadline);

/// Writes all `n` bytes, handling partial writes and EINTR, polling for
/// writability up to `deadline`. Carries the net.write.torn failpoint.
IoStatus write_all(int fd, const char* data, std::size_t n,
                   const Deadline& deadline);
inline IoStatus write_all(int fd, const std::string& s,
                          const Deadline& deadline) {
  return write_all(fd, s.data(), s.size(), deadline);
}

/// Buffered NDJSON line framer over a socket with a hard per-line byte
/// cap and an optional per-line idle timeout.
class LineReader {
 public:
  enum class Result {
    kLine,     ///< *line holds one complete line (newline stripped)
    kEof,      ///< peer closed cleanly at a line boundary
    kTooLong,  ///< line exceeded max_line_bytes; the offending line was
               ///< consumed through its newline, so framing stays intact
               ///< and the caller can reject-with-reason and continue
    kTimeout,  ///< idle deadline passed mid-line
    kError,    ///< socket error (also: EOF in the middle of a line)
  };

  /// `max_line_bytes` caps one line's payload (excluding the newline);
  /// 0 means 1 MiB. `idle_timeout_ms` bounds the wait for each next line
  /// (<= 0: wait forever).
  LineReader(int fd, std::size_t max_line_bytes, double idle_timeout_ms);

  Result next(std::string* line);

 private:
  int fd_;
  std::size_t max_line_bytes_;
  double idle_timeout_ms_;
  std::string buf_;        ///< bytes read but not yet returned
  std::size_t scan_ = 0;   ///< newline-scan resume offset into buf_
  bool discarding_ = false;  ///< inside an overlong line, eating to '\n'
  bool eof_ = false;
};

}  // namespace ppg::net
