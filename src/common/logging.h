// Minimal leveled logger used by trainers and benches.
//
// Each message is formatted into a single buffer and written with one
// stdio call, so concurrent callers (e.g. D&C-GEN leaf workers) never
// interleave mid-line. Every line carries an ISO-8601 UTC timestamp and
// the elapsed milliseconds since the first log call:
//
//   2026-08-06T12:34:56Z +1234ms [I] message
//
// Level is process-global and settable via the PPG_LOG_LEVEL environment
// variable, by name (error|warn|info|debug) or numerically (0..3).
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <string_view>

#include "obs/clock.h"

namespace ppg {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace detail {
inline LogLevel& log_level_ref() {
  static LogLevel level = [] {
    const char* env = std::getenv("PPG_LOG_LEVEL");
    if (env == nullptr) return LogLevel::kInfo;
    const std::string_view v(env);
    if (v == "error") return LogLevel::kError;
    if (v == "warn") return LogLevel::kWarn;
    if (v == "info") return LogLevel::kInfo;
    if (v == "debug") return LogLevel::kDebug;
    // Numeric form: PPG_LOG_LEVEL=0..3 (clamped).
    if (!v.empty() && (std::isdigit(static_cast<unsigned char>(v[0])) ||
                       (v[0] == '-' && v.size() > 1))) {
      long n = std::strtol(env, nullptr, 10);
      if (n < 0) n = 0;
      if (n > 3) n = 3;
      return static_cast<LogLevel>(n);
    }
    return LogLevel::kInfo;
  }();
  return level;
}

/// Writes one fully formatted line prefix + message atomically to stderr.
inline void log_emit(LogLevel level, const char* msg) {
  const char* tag = level == LogLevel::kError  ? "E"
                    : level == LogLevel::kWarn ? "W"
                    : level == LogLevel::kInfo ? "I"
                                               : "D";
  // Wall clock for the human-readable stamp only — never generation state.
  const std::time_t now = std::time(nullptr);  // ppg-lint: allow(nondeterministic-random)
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  const long long elapsed_ms = obs::now_ns() / 1000000;
  char line[1536];
  std::snprintf(line, sizeof line, "%s +%lldms [%s] %s\n", stamp, elapsed_ms,
                tag, msg);
  // One stdio call per line: stdio locks the stream internally, so lines
  // from concurrent threads never interleave.
  std::fputs(line, stderr);
}
}  // namespace detail

/// Returns the current process-wide log level.
inline LogLevel log_level() { return detail::log_level_ref(); }

/// Overrides the process-wide log level (tests use this to silence output).
inline void set_log_level(LogLevel level) { detail::log_level_ref() = level; }

/// printf-style logging at the given level to stderr.
template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  char msg[1200];
  if constexpr (sizeof...(Args) == 0)
    std::snprintf(msg, sizeof msg, "%s", fmt);
  else
    std::snprintf(msg, sizeof msg, fmt, args...);
  detail::log_emit(level, msg);
}

template <typename... Args>
void log_info(const char* fmt, Args... args) {
  log(LogLevel::kInfo, fmt, args...);
}
template <typename... Args>
void log_warn(const char* fmt, Args... args) {
  log(LogLevel::kWarn, fmt, args...);
}
template <typename... Args>
void log_error(const char* fmt, Args... args) {
  log(LogLevel::kError, fmt, args...);
}
template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  log(LogLevel::kDebug, fmt, args...);
}

}  // namespace ppg
