// Minimal leveled logger used by trainers and benches.
//
// Not thread-aware beyond line-atomic writes; benches are effectively
// single-threaded on this target. Level is process-global and settable via
// the PPG_LOG_LEVEL environment variable (error|warn|info|debug).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace ppg {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

namespace detail {
inline LogLevel& log_level_ref() {
  static LogLevel level = [] {
    const char* env = std::getenv("PPG_LOG_LEVEL");
    if (env == nullptr) return LogLevel::kInfo;
    const std::string_view v(env);
    if (v == "error") return LogLevel::kError;
    if (v == "warn") return LogLevel::kWarn;
    if (v == "debug") return LogLevel::kDebug;
    return LogLevel::kInfo;
  }();
  return level;
}
}  // namespace detail

/// Returns the current process-wide log level.
inline LogLevel log_level() { return detail::log_level_ref(); }

/// Overrides the process-wide log level (tests use this to silence output).
inline void set_log_level(LogLevel level) { detail::log_level_ref() = level; }

/// printf-style logging at the given level to stderr.
template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  const char* tag = level == LogLevel::kError  ? "E"
                    : level == LogLevel::kWarn ? "W"
                    : level == LogLevel::kInfo ? "I"
                                               : "D";
  std::fprintf(stderr, "[%s] ", tag);
  if constexpr (sizeof...(Args) == 0)
    std::fprintf(stderr, "%s", fmt);
  else
    std::fprintf(stderr, fmt, args...);
  std::fputc('\n', stderr);
}

template <typename... Args>
void log_info(const char* fmt, Args... args) {
  log(LogLevel::kInfo, fmt, args...);
}
template <typename... Args>
void log_warn(const char* fmt, Args... args) {
  log(LogLevel::kWarn, fmt, args...);
}
template <typename... Args>
void log_error(const char* fmt, Args... args) {
  log(LogLevel::kError, fmt, args...);
}
template <typename... Args>
void log_debug(const char* fmt, Args... args) {
  log(LogLevel::kDebug, fmt, args...);
}

}  // namespace ppg
