#include "common/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/failpoint.h"
#include "common/logging.h"

namespace ppg::durable {

namespace fs = std::filesystem;

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("durable_io: " + path + ": " + what);
}

/// fsync by path. Opens read-only — on Linux fsync flushes the file's
/// dirty pages whichever fd reaches them.
void fsync_path(const std::string& path, bool directory) {
  const int flags = directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) fail(path, std::string("open for fsync: ") + std::strerror(errno));
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) fail(path, std::string("fsync: ") + std::strerror(saved));
}

std::string parent_dir(const std::string& path) {
  const fs::path parent = fs::path(path).parent_path();
  return parent.empty() ? std::string(".") : parent.string();
}

/// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// built once at first use.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void atomic_save(const std::string& path,
                 const std::function<void(BinaryWriter&)>& write) {
  // Compose the payload in memory first: the CRC needs a full pass anyway,
  // checkpoints are bounded (tens of MB), and it keeps the on-disk window
  // where a torn temp file can exist as short as possible.
  std::ostringstream buf(std::ios::binary);
  {
    BinaryWriter w(buf);
    write(w);
    w.finish();
  }
  const std::string payload = std::move(buf).str();
  const std::uint64_t size = payload.size();
  const std::uint32_t crc = crc32(payload.data(), payload.size());

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) fail(tmp, "cannot open for write");
    BinaryWriter w(out);
    // The torn-write window the rename protocol exists for: a `crash`
    // here leaves a partial .tmp and an intact final path.
    PPG_FAILPOINT("durable.mid_write");
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) fail(tmp, "payload write failed");
    w.write(size);
    w.write(crc);
    w.write(kFooterMagic);
    w.finish();
  }
  PPG_FAILPOINT("durable.before_fsync");
  fsync_path(tmp, /*directory=*/false);
  PPG_FAILPOINT("durable.before_rename");
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fail(path, "rename from " + tmp + ": " + ec.message());
  PPG_FAILPOINT("durable.before_dirsync");
  fsync_path(parent_dir(path), /*directory=*/true);
}

namespace {

void checked_load_impl(const std::string& path,
                       const std::function<void(BinaryReader&)>& read,
                       bool allow_legacy) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open");
  std::ostringstream buf(std::ios::binary);
  buf << in.rdbuf();
  if (in.bad()) fail(path, "read failed");
  const std::string bytes = std::move(buf).str();
  std::uint64_t payload_size = bytes.size();
  std::uint64_t stored_size = 0;
  std::uint32_t stored_crc = 0;
  std::uint32_t magic = 0;
  if (bytes.size() >= kFooterBytes) {
    const char* footer = bytes.data() + bytes.size() - kFooterBytes;
    std::memcpy(&stored_size, footer, sizeof stored_size);
    std::memcpy(&stored_crc, footer + 8, sizeof stored_crc);
    std::memcpy(&magic, footer + 12, sizeof magic);
  }
  if (magic != kFooterMagic) {
    // No footer at all. Either a legacy pre-durable_io file (the caller
    // opted in and its parser carries its own magic/shape checks) or
    // corruption severe enough to shear the footer off.
    if (!allow_legacy) {
      if (bytes.size() < kFooterBytes)
        fail(path, "missing CRC footer (file is " +
                       std::to_string(bytes.size()) + " bytes, footer needs " +
                       std::to_string(kFooterBytes) + ")");
      fail(path, "bad footer magic (not a durable_io file, or truncated)");
    }
    log_warn("durable_io: %s has no CRC footer; loading as a legacy file "
             "(re-save to upgrade)",
             path.c_str());
  } else {
    // A footer is present: its checks are mandatory even in legacy mode —
    // a footered file that fails them is corrupt, not old.
    payload_size = bytes.size() - kFooterBytes;
    if (stored_size != payload_size)
      fail(path, "payload size mismatch (footer claims " +
                     std::to_string(stored_size) + " bytes, file holds " +
                     std::to_string(payload_size) + ")");
    const std::uint32_t actual = crc32(bytes.data(), payload_size);
    if (actual != stored_crc)
      fail(path, "CRC mismatch (stored " + std::to_string(stored_crc) +
                     ", computed " + std::to_string(actual) + ")");
  }
  std::istringstream payload(bytes.substr(0, payload_size), std::ios::binary);
  BinaryReader r(payload);
  read(r);
  if (magic != kFooterMagic) {
    // Legacy mode has no CRC to lean on; the one structural check
    // available is that a genuine legacy file ends exactly where its
    // parser stops. Leftover bytes mean a footered file whose footer was
    // sheared off mid-truncation, not a legacy save.
    const auto consumed = payload.tellg();
    if (consumed >= 0 &&
        static_cast<std::uint64_t>(consumed) != payload_size)
      fail(path, "trailing bytes after legacy payload (parser consumed " +
                     std::to_string(consumed) + " of " +
                     std::to_string(payload_size) + ")");
  }
}

}  // namespace

void checked_load(const std::string& path,
                  const std::function<void(BinaryReader&)>& read) {
  checked_load_impl(path, read, /*allow_legacy=*/false);
}

void checked_load_or_legacy(const std::string& path,
                            const std::function<void(BinaryReader&)>& read) {
  checked_load_impl(path, read, /*allow_legacy=*/true);
}

bool verify_file(const std::string& path) noexcept {
  try {
    checked_load(path, [](BinaryReader&) {});
    return true;
  } catch (...) {
    return false;
  }
}

// ---- CheckpointManifest --------------------------------------------------

namespace {
constexpr std::uint32_t kManifestMagic = 0x50504d46;  // "PPMF"
constexpr std::uint32_t kManifestVersion = 1;
constexpr const char* kManifestName = "MANIFEST";
}  // namespace

CheckpointManifest::CheckpointManifest(std::string dir)
    : dir_(std::move(dir)) {
  fs::create_directories(dir_);
  const std::string manifest = file_path(kManifestName);
  if (!fs::exists(manifest)) return;
  try {
    checked_load(manifest, [this](BinaryReader& r) {
      if (r.read<std::uint32_t>() != kManifestMagic)
        throw std::runtime_error("bad manifest magic");
      if (r.read<std::uint32_t>() != kManifestVersion)
        throw std::runtime_error("unsupported manifest version");
      const auto n = r.read<std::uint64_t>();
      for (std::uint64_t i = 0; i < n; ++i) {
        Entry e;
        e.generation = r.read<std::uint64_t>();
        const auto nfiles = r.read<std::uint64_t>();
        for (std::uint64_t j = 0; j < nfiles; ++j)
          e.files.push_back(r.read_string());
        entries_.push_back(std::move(e));
      }
    });
  } catch (const std::exception& e) {
    // A manifest that does not verify names nothing: recovery degrades to
    // a fresh start rather than trusting a corrupt index. Loud, so an
    // operator can tell "no checkpoints" from "checkpoints discarded".
    log_warn("CheckpointManifest: discarding unreadable %s: %s",
             manifest.c_str(), e.what());
    entries_.clear();
  }
}

std::string CheckpointManifest::file_path(const std::string& name) const {
  return (fs::path(dir_) / name).string();
}

std::optional<CheckpointManifest::Entry> CheckpointManifest::latest_good()
    const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const bool ok = std::all_of(
        it->files.begin(), it->files.end(),
        [this](const std::string& f) { return verify_file(file_path(f)); });
    if (ok) return *it;
    log_warn("CheckpointManifest: generation %llu failed verification, "
             "falling back",
             static_cast<unsigned long long>(it->generation));
  }
  return std::nullopt;
}

void CheckpointManifest::write_manifest() const {
  atomic_save(file_path(kManifestName), [this](BinaryWriter& w) {
    w.write(kManifestMagic);
    w.write(kManifestVersion);
    w.write<std::uint64_t>(entries_.size());
    for (const Entry& e : entries_) {
      w.write(e.generation);
      w.write<std::uint64_t>(e.files.size());
      for (const auto& f : e.files) w.write_string(f);
    }
  });
}

void CheckpointManifest::publish(std::uint64_t generation,
                                 std::vector<std::string> files) {
  if (!entries_.empty() && generation <= entries_.back().generation)
    throw std::invalid_argument(
        "CheckpointManifest::publish: generation " +
        std::to_string(generation) + " not after " +
        std::to_string(entries_.back().generation));
  entries_.push_back(Entry{generation, std::move(files)});
  PPG_FAILPOINT("manifest.before_publish");
  write_manifest();
  PPG_FAILPOINT("manifest.after_publish");
}

void CheckpointManifest::prune(std::size_t keep) {
  std::vector<Entry> doomed;
  if (entries_.size() > keep) {
    doomed.assign(entries_.begin(),
                  entries_.end() - static_cast<std::ptrdiff_t>(keep));
    entries_.erase(entries_.begin(),
                   entries_.end() - static_cast<std::ptrdiff_t>(keep));
    // Commit the shrunk manifest before unlinking: a crash between the
    // two leaves unreferenced files (swept next prune), never a manifest
    // entry whose files are gone.
    write_manifest();
  }
  std::set<std::string> live;
  for (const Entry& e : entries_)
    for (const auto& f : e.files) live.insert(f);
  std::error_code ec;
  for (const Entry& e : doomed)
    for (const auto& f : e.files)
      if (!live.count(f)) fs::remove(file_path(f), ec);
  // Sweep droppings of interrupted atomic_saves.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0)
      fs::remove(entry.path(), ec);
  }
}

}  // namespace ppg::durable
