// Deterministic pseudo-random number generation for the whole project.
//
// Every source of randomness (data synthesis, weight init, sampling,
// shuffling) flows through ppg::Rng seeded from an explicit 64-bit seed, so
// all experiments and tests are reproducible bit-for-bit on one platform.
//
// The generator is xoshiro256**, seeded via splitmix64 as its authors
// recommend. It is not cryptographic; it is a simulation RNG.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace ppg {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stable 64-bit hash of a string; used to derive sub-seeds from names so
/// that e.g. the "rockyou" site generator and the "linkedin" one are
/// decorrelated even when built from the same master seed.
constexpr std::uint64_t hash64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // One splitmix round to improve avalanche of the FNV result.
  return splitmix64(h);
}

/// xoshiro256** deterministic RNG.
///
/// Satisfies std::uniform_random_bit_generator so it can also be plugged
/// into <random> distributions, though the member samplers below are
/// preferred (they are guaranteed stable across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 256-bit state words from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  /// Convenience: derive a seed from a master seed and a component name.
  Rng(std::uint64_t master_seed, std::string_view component) noexcept
      : Rng(master_seed ^ hash64(component)) {}

  /// Re-initialises the state deterministically from `seed`.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64 random bits.
  std::uint64_t operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t uniform_u64(std::uint64_t n) {
    if (n == 0) throw std::invalid_argument("Rng::uniform_u64: n must be > 0");
    // 128-bit multiply rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_u64(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float uniform_f() noexcept { return static_cast<float>(uniform()); }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (stateless variant; one draw per call).
  double normal() noexcept {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Samples an index from an unnormalised non-negative weight vector.
  /// Throws if weights are empty or sum to zero.
  std::size_t discrete(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (weights.empty() || total <= 0.0)
      throw std::invalid_argument("Rng::discrete: weights empty or zero-sum");
    double target = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0.0) return i;
    }
    return weights.size() - 1;  // numeric round-off fallback
  }

  /// Zipf-distributed rank in [0, n) with exponent s, via inverse-CDF over a
  /// precomputable harmonic table is avoided; uses rejection-free cumulative
  /// scan (n is small in our use) — kept O(n) per draw only when a caller
  /// has no table; prefer ZipfTable for hot paths.
  std::size_t zipf(std::size_t n, double s) {
    if (n == 0) throw std::invalid_argument("Rng::zipf: n must be > 0");
    double total = 0.0;
    for (std::size_t i = 1; i <= n; ++i) total += std::pow(double(i), -s);
    double target = uniform() * total;
    for (std::size_t i = 1; i <= n; ++i) {
      target -= std::pow(double(i), -s);
      if (target < 0.0) return i - 1;
    }
    return n - 1;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_u64(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Raw generator state, for checkpoint round-trips: restoring it with
  /// set_state() resumes the exact stream, which is what makes killed-and-
  /// resumed training bitwise identical to an uninterrupted run.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  /// Restores state captured by state().
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Precomputed Zipf sampler: O(log n) per draw via binary search over the
/// cumulative mass. Use for the synthetic-corpus hot loops.
class ZipfTable {
 public:
  /// Builds the cumulative table for ranks [0, n) with exponent s.
  ZipfTable(std::size_t n, double s) : cdf_(n) {
    if (n == 0) throw std::invalid_argument("ZipfTable: n must be > 0");
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += std::pow(double(i + 1), -s);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  /// Number of ranks.
  std::size_t size() const noexcept { return cdf_.size(); }

  /// Draws a rank using `rng`.
  std::size_t sample(Rng& rng) const noexcept {
    const double u = rng.uniform();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace ppg
