// Umbrella header for the PagPassGPT reproduction library.
//
// Include this to get the whole public API; fine-grained headers are
// available per module for faster builds:
//
//   common/     deterministic RNG, thread pool, serialization, CLI
//   nn/         tensor + autograd + layers + optimizers
//   gpt/        GPT-2-style transformer, trainer, KV-cache inference,
//               batched password sampler
//   pcfg/       L/N/S pattern structure, pattern distribution, Weir PCFG
//   tokenizer/  the paper's 136-slot vocabulary and rule encoding
//   data/       synthetic leaked-corpus substitute, cleaning, splits
//   core/       PagPassGPT (the paper's model) and D&C-GEN (Algorithm 1)
//   baselines/  PassGPT, PassGAN, VAEPass, PassFlow, Markov, rule engine
//   eval/       hit/repeat rates, Eq. 4-7 metrics, guess curves,
//               Monte-Carlo guess-number strength estimation
//
// Typical flow (see examples/quickstart.cpp for the runnable version):
//
//   auto corpus = ppg::data::clean(ppg::data::generate_site(profile, seed));
//   auto split  = ppg::data::split_712(corpus.passwords, seed);
//   ppg::core::PagPassGPT model(ppg::gpt::Config::small(), seed);
//   model.train(split.train, split.valid, train_cfg);
//   auto bulk = ppg::core::dc_generate(model.model(), model.patterns(),
//                                      dc_cfg, seed);
//   ppg::eval::TestSet test(split.test);
//   double hr = ppg::eval::hit_rate(bulk, test);
#pragma once

#include "baselines/markov.h"
#include "baselines/passflow.h"
#include "baselines/passgan.h"
#include "baselines/passgpt.h"
#include "baselines/rules.h"
#include "baselines/vaepass.h"
#include "common/cli.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/thread_pool.h"
#include "core/dcgen.h"
#include "core/masks.h"
#include "core/pagpassgpt.h"
#include "data/corpus.h"
#include "eval/generator.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/strength.h"
#include "gpt/infer.h"
#include "gpt/model.h"
#include "gpt/sampler.h"
#include "gpt/trainer.h"
#include "nn/graph.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "pcfg/pattern.h"
#include "pcfg/pcfg_model.h"
#include "tokenizer/tokenizer.h"
