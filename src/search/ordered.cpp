#include "search/ordered.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tokenizer/tokenizer.h"

namespace ppg::search {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();
/// Logits at or below this are masked out (the LogitMask convention writes
/// -1e30f; the sampler uses the same threshold).
constexpr float kMaskedLogit = -1e29f;

struct SearchMetrics {
  obs::Counter& nodes_expanded;
  obs::Counter& emitted;
  obs::Counter& truncated;
  obs::Gauge& heap_peak;
};

SearchMetrics& search_metrics() {
  auto& r = obs::Registry::global();
  static SearchMetrics m{r.counter("search.nodes_expanded"),
                         r.counter("search.emitted"),
                         r.counter("search.truncated"),
                         r.gauge("search.heap_peak")};
  return m;
}

}  // namespace

std::vector<double> masked_log_probs(std::span<const float> logits) {
  std::vector<double> out(logits.size(), kNegInf);
  float mx = kMaskedLogit;
  for (float l : logits)
    if (l > kMaskedLogit && l > mx) mx = l;
  if (mx <= kMaskedLogit) return out;  // everything masked
  double z = 0.0;
  for (float l : logits)
    if (l > kMaskedLogit) z += std::exp(static_cast<double>(l - mx));
  const double logz = std::log(z);
  for (std::size_t i = 0; i < logits.size(); ++i)
    if (logits[i] > kMaskedLogit)
      out[i] = static_cast<double>(logits[i] - mx) - logz;
  return out;
}

OrderedEnumerator::OrderedEnumerator(const gpt::GptModel& model,
                                     std::vector<int> prefix,
                                     OrderedOptions opts, gpt::LogitMask mask,
                                     const gpt::KvState* resume)
    : model_(&model),
      prefix_(std::move(prefix)),
      opts_(opts),
      mask_(std::move(mask)),
      resume_(resume),
      cache_(opts.cache_bytes),
      session_(model) {
  PPG_CHECK(!prefix_.empty(), "ordered enumeration needs a non-empty prefix");
  PPG_CHECK(static_cast<Index>(prefix_.size()) < model.config().context,
            "prefix length %zu leaves no room in context %d", prefix_.size(),
            static_cast<int>(model.config().context));
  if (opts_.max_nodes == 0) opts_.max_nodes = 1;
}

void OrderedEnumerator::push_node(Node n) {
  // push_children() batch-enforces budgets after each expansion, so the
  // frontier overfills by at most one vocabulary of children between
  // enforcements; the inline trim is a hard backstop should a future push
  // site forget that contract (never fires today: kMaxOverfill > vocab).
  constexpr std::size_t kMaxOverfill = 256;
  frontier_.push_back(std::move(n));
  std::push_heap(frontier_.begin(), frontier_.end(), worse);
  if (frontier_.size() > opts_.max_nodes + kMaxOverfill) enforce_budgets();
}

OrderedEnumerator::Node OrderedEnumerator::pop_node() {
  std::pop_heap(frontier_.begin(), frontier_.end(), worse);
  Node n = std::move(frontier_.back());
  frontier_.pop_back();
  return n;
}

void OrderedEnumerator::expand_root() {
  const Index depth =
      resume_ ? std::min<Index>(resume_->len,
                                static_cast<Index>(prefix_.size()))
              : 0;
  if (resume_ && depth > 0) {
    PPG_CHECK(resume_->len <= static_cast<Index>(prefix_.size()),
              "resume snapshot (%d) deeper than prefix (%zu)",
              static_cast<int>(resume_->len), prefix_.size());
    session_.resume(*resume_, 1, depth);
  } else {
    session_.reset(1);
  }
  stats_.prefill_saved += static_cast<std::size_t>(depth);
  for (std::size_t i = depth; i < prefix_.size(); ++i) {
    int t = prefix_[i];
    session_.step(std::span<const int>(&t, 1));
    ++stats_.prefill_tokens;
  }
  resume_ = nullptr;  // never needed again
  gpt::KvState root = session_.snapshot(0);
  std::span<const float> logits = session_.logits_row(0);
  cache_.insert(prefix_, std::move(root));
  push_children(prefix_, 0.0, logits);
}

void OrderedEnumerator::expand(Node node) {
  obs::Span span("search/expand", "search");
  const auto& seq = node.seq;
  const Index parent_len = static_cast<Index>(seq.size()) - 1;
  // The final step() of seq.back() is the scoring forward pass every
  // expansion pays regardless of caching; the prefill ledger counts only
  // the positions *before* it — restored by resume (saved) or re-fed
  // because a snapshot was evicted (tokens).
  if (node.parent && node.parent.len() == parent_len) {
    session_.resume(*node.parent.state(), 1, parent_len);
    stats_.prefill_saved += static_cast<std::size_t>(parent_len);
    int t = seq.back();
    session_.step(std::span<const int>(&t, 1));
  } else {
    // The parent snapshot was evicted before this node could pin it (tiny
    // byte budgets). Re-derive from the deepest surviving ancestor —
    // bitwise identical to the resume path by the kv_cache contract.
    auto hit = cache_.find_longest(seq);
    const Index depth = hit ? std::min(hit.len(), parent_len) : 0;
    if (hit) {
      session_.resume(*hit.state(), 1, depth);
    } else {
      session_.reset(1);
    }
    stats_.prefill_saved += static_cast<std::size_t>(depth);
    stats_.prefill_tokens +=
        static_cast<std::size_t>(parent_len) - static_cast<std::size_t>(depth);
    for (std::size_t i = static_cast<std::size_t>(depth); i < seq.size();
         ++i) {
      int t = seq[i];
      session_.step(std::span<const int>(&t, 1));
    }
  }
  node.parent.release();
  ++stats_.nodes_expanded;
  search_metrics().nodes_expanded.inc();
  gpt::KvState state = session_.snapshot(0);
  std::span<const float> logits = session_.logits_row(0);
  cache_.insert(seq, std::move(state));
  push_children(seq, node.logp, logits);
}

void OrderedEnumerator::push_children(const std::vector<int>& seq, double logp,
                                      std::span<const float> logits) {
  scratch_.assign(logits.begin(), logits.end());
  if (mask_) {
    const Index step = static_cast<Index>(seq.size() - prefix_.size());
    mask_(step, scratch_);
  }
  const std::vector<double> lps = masked_log_probs(scratch_);
  const Index context = model_->config().context;
  const Index child_len = static_cast<Index>(seq.size()) + 1;
  for (std::size_t t = 0; t < lps.size(); ++t) {
    if (lps[t] == kNegInf) continue;
    const double child_logp = logp + lps[t];
    if (child_logp < opts_.min_log_prob) continue;
    const bool terminal = static_cast<int>(t) == tok::Tokenizer::kEos;
    // A non-terminal child at the context boundary can never be stepped
    // again nor emit <EOS>; a terminal child needs no further step.
    if (!terminal && child_len >= context) continue;
    Node child;
    child.logp = child_logp;
    child.seq = seq;
    child.seq.push_back(static_cast<int>(t));
    // One pin per child; may miss when the insert above was immediately
    // evicted (budget smaller than one state) — expand() falls back.
    child.parent = cache_.find(seq);
    push_node(std::move(child));
  }
  stats_.heap_peak = std::max(stats_.heap_peak, frontier_.size());
  search_metrics().heap_peak.set(static_cast<double>(stats_.heap_peak));
  enforce_budgets();
}

void OrderedEnumerator::enforce_budgets() {
  if (frontier_.size() <= opts_.max_nodes &&
      cache_.bytes() <= opts_.cache_bytes)
    return;
  // Best-first order; drop from the tail (the worst nodes). Releasing a
  // dropped node's pin lets the trie's deferred LRU eviction reclaim its
  // parent state once no sibling still pins it.
  std::sort(frontier_.begin(), frontier_.end(),
            [](const Node& a, const Node& b) { return worse(b, a); });
  while (frontier_.size() > 1 && (frontier_.size() > opts_.max_nodes ||
                                  cache_.bytes() > opts_.cache_bytes)) {
    Node dropped = std::move(frontier_.back());
    frontier_.pop_back();
    ++stats_.truncated;
    search_metrics().truncated.inc();
    stats_.truncated_log_prob =
        std::max(stats_.truncated_log_prob, dropped.logp);
  }
  std::make_heap(frontier_.begin(), frontier_.end(), worse);
}

std::optional<ScoredGuess> OrderedEnumerator::next() {
  if (done_) return std::nullopt;
  if (opts_.max_guesses != 0 && stats_.emitted >= opts_.max_guesses) {
    done_ = true;
    return std::nullopt;
  }
  if (deadline_us_ == 0 && opts_.deadline_ms > 0.0)
    deadline_us_ = obs::now_us() +
                   static_cast<std::int64_t>(opts_.deadline_ms * 1000.0);
  if (!primed_) {
    primed_ = true;
    expand_root();
  }
  while (true) {
    if (deadline_us_ != 0 && obs::now_us() >= deadline_us_) {
      stats_.deadline_hit = true;
      done_ = true;
      return std::nullopt;
    }
    if (frontier_.empty()) {
      stats_.exhausted = true;
      done_ = true;
      return std::nullopt;
    }
    Node best = pop_node();
    if (best.seq.back() == tok::Tokenizer::kEos) {
      best.parent.release();
      auto pw = tok::Tokenizer::decode_password(best.seq);
      if (!pw.has_value() || pw->empty()) {
        ++stats_.invalid;
        continue;
      }
      ++stats_.emitted;
      search_metrics().emitted.inc();
      return ScoredGuess{std::move(*pw), best.logp};
    }
    if (opts_.max_expansions != 0 &&
        stats_.nodes_expanded >= opts_.max_expansions) {
      // The best remaining node needs an expansion we no longer have the
      // budget for. Everything emitted so far is still an exact prefix of
      // the ideal ranking; record the admissible bound for what's missing.
      stats_.expansion_capped = true;
      stats_.truncated_log_prob =
          std::max(stats_.truncated_log_prob, best.logp);
      done_ = true;
      return std::nullopt;
    }
    expand(std::move(best));
  }
}

}  // namespace ppg::search
