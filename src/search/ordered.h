// Best-first ordered password enumeration (SOPG-style search decoding).
//
// Sampling draws guesses i.i.d. from the model, so the k-th guess is only
// as good as sampling luck and duplicate draws allow. This engine instead
// *searches* the model's distribution: a max-heap frontier of partial
// token sequences keyed by cumulative log-probability, expanded best-first.
// Because extending a sequence can only lower its log-probability
// (log-probs are <= 0), the frontier key is an admissible bound on every
// completion below a node — so when an <EOS>-terminated node reaches the
// top of the heap it is *provably* the most likely remaining guess, and
// the enumerator emits guesses in exactly descending model probability
// with no duplicates.
//
// Anytime contract: next() yields one complete guess per call, best-first.
// Stopping early (by count, by min-logprob, by deadline) always leaves a
// prefix of the ideal descending-probability ranking; truncation caused by
// the heap/cache budgets is recorded as an admissible lower bound
// (stats().truncated_log_prob) — guesses with log-prob at or below that
// bound may be missing, anything above it is guaranteed complete.
//
// KV-cache integration: every frontier node pins (KvTrieCache::Handle) the
// snapshot covering its sequence minus the last token, so expansion costs
// one resume + one step — no prefix re-prime. Budget pressure is resolved
// by dropping the *lowest-priority* frontier nodes, whose released pins
// let the trie's LRU eviction reclaim bytes.
//
// Determinism: single-threaded, no RNG. Ties in cumulative log-prob are
// broken by lexicographically smaller token sequence, making the emission
// order a strict total order — bitwise reproducible across runs and
// independent of any caller thread count.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gpt/infer.h"
#include "gpt/kv_cache.h"
#include "gpt/sampler.h"

namespace ppg::search {

using gpt::Index;

/// Search budgets and stop conditions.
struct OrderedOptions {
  /// Frontier cap: when the heap exceeds this, lowest-priority nodes are
  /// dropped (recorded in stats as truncation).
  std::size_t max_nodes = 1u << 16;
  /// Byte budget for the enumerator's internal KV trie. Pinned frontier
  /// snapshots can transiently exceed it; the frontier sheds its worst
  /// nodes until the trie fits again.
  std::size_t cache_bytes = 64ull << 20;
  /// Stop after this many emitted guesses (0 = unlimited).
  std::size_t max_guesses = 0;
  /// Stop after this many node expansions (0 = unlimited). A weakly
  /// trained (near-uniform) model can force best-first search to sweep
  /// nearly its whole tree before surfacing the k-th guess; this cap
  /// bounds that work *deterministically*, where a wall-clock deadline
  /// would not be reproducible. Emitted guesses stay an exact prefix of
  /// the ideal ranking; the stop is recorded like a truncation
  /// (stats().expansion_capped, truncated_log_prob).
  std::size_t max_expansions = 0;
  /// Prune any partial sequence whose cumulative log-prob falls below
  /// this; enumeration ends when nothing above it remains.
  double min_log_prob = -std::numeric_limits<double>::infinity();
  /// Wall-clock budget measured from the first next() call (0 = none).
  double deadline_ms = 0.0;
};

/// Diagnostics of one enumeration. Monotone over the run; read any time.
struct OrderedStats {
  std::size_t nodes_expanded = 0;  ///< forward steps (one per expansion)
  std::size_t emitted = 0;         ///< complete guesses yielded
  std::size_t invalid = 0;         ///< <EOS> sequences that failed decode
  std::size_t heap_peak = 0;       ///< largest frontier seen
  std::size_t truncated = 0;       ///< frontier nodes dropped by budgets
  /// Admissible bound: the best log-prob ever dropped. Guesses scoring
  /// <= this may be missing from the output; above it the ranking is
  /// complete. -inf when no truncation happened.
  double truncated_log_prob = -std::numeric_limits<double>::infinity();
  bool exhausted = false;     ///< frontier emptied (nothing above min_log_prob)
  bool deadline_hit = false;  ///< stopped by deadline_ms
  bool expansion_capped = false;  ///< stopped by max_expansions
  /// Prefix positions recomputed through step(): root priming plus
  /// re-priming after budget evictions. Excludes each expansion's single
  /// scoring step, which is paid regardless of caching.
  std::size_t prefill_tokens = 0;
  /// Prefix positions restored from KV snapshots instead of recomputed.
  std::size_t prefill_saved = 0;
};

/// One emitted guess with its exact model score: log P(sequence after the
/// request prefix), masked-renormalized over the allowed tokens at every
/// position (identical arithmetic to the sampler's masked softmax).
struct ScoredGuess {
  std::string password;
  double log_prob = 0.0;
};

/// Per-token log-probabilities of a masked logit row: tokens whose logit
/// was forced to <= -1e29f (the LogitMask convention) get -inf; the rest
/// are renormalized over the surviving set, max-subtracted and accumulated
/// in double. This is the enumerator's exact scoring arithmetic, exposed
/// so the exactness property test can brute-force rankings bitwise
/// identically.
std::vector<double> masked_log_probs(std::span<const float> logits);

/// Best-first enumerator over one request prefix. Yields complete guesses
/// one at a time in strictly descending (log_prob, lexicographic) order.
///
/// `prefix` is the full token prefix (e.g. <BOS> pattern <SEP> or a
/// D&C-GEN task prefix) and must be non-empty and within the model
/// context. `mask` follows the sampler's LogitMask contract (step counts
/// tokens generated after the prefix). When `resume` covers a leading part
/// of the prefix (resume->len <= prefix.size()), the root expansion
/// restores those positions instead of re-priming them; the snapshot must
/// stay alive until the first next() call returns.
///
/// The model must outlive the enumerator. Not thread-safe; use one
/// enumerator per thread.
class OrderedEnumerator {
 public:
  OrderedEnumerator(const gpt::GptModel& model, std::vector<int> prefix,
                    OrderedOptions opts = {}, gpt::LogitMask mask = nullptr,
                    const gpt::KvState* resume = nullptr);

  /// The next-best complete guess, or std::nullopt when enumeration is
  /// over (budget stop, deadline, or frontier exhausted — see stats()).
  /// Once it returns nullopt it always will.
  std::optional<ScoredGuess> next();

  const OrderedStats& stats() const noexcept { return stats_; }

  /// The internal KV trie (pin/byte accounting for tests).
  const gpt::KvTrieCache& cache() const noexcept { return cache_; }

 private:
  /// A frontier entry: full token sequence (request prefix included),
  /// cumulative log-prob of the tokens after the prefix, and a pin on the
  /// cached snapshot covering seq minus its last token (empty when that
  /// snapshot was evicted before we could pin it — expansion then falls
  /// back to find_longest + re-prime, bitwise identical by the kv_cache
  /// determinism contract).
  struct Node {
    double logp = 0.0;
    std::vector<int> seq;
    gpt::KvTrieCache::Handle parent;
  };

  /// Strict-weak "worse-than" order for the max-heap: lower logp is worse;
  /// equal logp breaks toward the lexicographically smaller sequence. No
  /// two frontier nodes share a sequence, so this is a total order and the
  /// pop order is deterministic.
  static bool worse(const Node& a, const Node& b) noexcept {
    if (a.logp != b.logp) return a.logp < b.logp;
    return b.seq < a.seq;
  }

  void expand_root();
  void expand(Node node);
  /// Scores `logits` after `seq` (masked + renormalized), pushes every
  /// surviving child, then enforces the heap/byte budgets.
  void push_children(const std::vector<int>& seq, double logp,
                     std::span<const float> logits);
  void enforce_budgets();
  void push_node(Node n);
  Node pop_node();

  const gpt::GptModel* model_;
  std::vector<int> prefix_;
  OrderedOptions opts_;
  gpt::LogitMask mask_;
  const gpt::KvState* resume_;  ///< cleared after the root expansion

  // Declared before frontier_ so outstanding pins release first: the trie
  // asserts no live handles at destruction.
  gpt::KvTrieCache cache_;
  gpt::InferenceSession session_;
  std::vector<Node> frontier_;  ///< heap ordered by worse()
  std::vector<float> scratch_;  ///< masked logit row
  OrderedStats stats_;
  bool primed_ = false;
  bool done_ = false;
  std::int64_t deadline_us_ = 0;  ///< absolute, set at first next(); 0 = none
};

}  // namespace ppg::search
