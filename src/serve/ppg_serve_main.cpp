// ppg_serve: password-guess server speaking the NDJSON wire protocol
// (serve/wire.h) over stdin/stdout, or over localhost TCP with --port.
//
// With --model it serves a trained PagPassGPT checkpoint (weights +
// pattern distribution, as written by PagPassGPT::save); without one it
// serves a random-init model over a builtin pattern list — strict masks
// still force every guess to conform, which is all the smoke tests and
// load benches need.
//
// All diagnostics go to stderr; stdout carries only protocol lines.
#include <cstdio>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "common/cli.h"
#include "core/pagpassgpt.h"
#include "nn/backend.h"
#include "serve/service.h"
#include "serve/tcp.h"
#include "serve/wire.h"

namespace {

using namespace ppg;

gpt::Config config_by_name(const std::string& name) {
  if (name == "tiny") return gpt::Config::tiny();
  if (name == "small") return gpt::Config::small();
  if (name == "bench") return gpt::Config::bench();
  if (name == "paper") return gpt::Config::paper();
  throw std::invalid_argument("unknown --config '" + name +
                              "' (tiny|small|bench|paper)");
}

pcfg::PatternDistribution builtin_patterns(const std::string& csv) {
  pcfg::PatternDistribution dist;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) dist.add(item);
  dist.finalize();
  return dist;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv,
            {"config", "seed", "model", "patterns", "workers", "max-queue",
             "max-batch", "max-count", "no-batching", "attempt-factor",
             "max-ordered-top-k", "quantize", "nn-backend", "port",
             "listen-fd", "max-line-bytes", "idle-timeout-ms",
             "prefix-cache-mb", "help"});
    if (cli.get_bool("help")) {
      std::fprintf(
          stderr,
          "ppg_serve: NDJSON password-guess server (see src/serve/wire.h)\n"
          "  --model PATH        PagPassGPT checkpoint (PagPassGPT::save)\n"
          "  --config NAME       tiny|small|bench|paper (default tiny;\n"
          "                      must match the checkpoint when --model)\n"
          "  --seed N            random-init seed without --model\n"
          "  --patterns CSV      builtin pattern list without --model\n"
          "  --workers N         worker threads (default 1)\n"
          "  --max-queue N       admission-queue capacity (default 256)\n"
          "  --max-batch N       rows per model call (default 64)\n"
          "  --max-count N       per-request count cap (default 4096)\n"
          "  --no-batching       one request per model call\n"
          "  --attempt-factor N  retry budget multiplier (default 4)\n"
          "  --max-ordered-top-k N  cap on ordered-request top_k "
          "(default 512)\n"
          "  --quantize          int8 projections for sampled requests\n"
          "                      (ordered requests always run fp32)\n"
          "  --nn-backend NAME   force the SIMD kernel backend\n"
          "                      (scalar|avx2|avx512; default widest the\n"
          "                      CPU supports, or $PPG_NN_BACKEND)\n"
          "  --port N            serve localhost TCP instead of stdio\n"
          "  --listen-fd N       adopt a pre-bound listening socket (the\n"
          "                      fleet router binds before fork so a\n"
          "                      restarted worker keeps its port)\n"
          "  --max-line-bytes N  per-connection request-line cap, TCP only\n"
          "                      (default 1 MiB; overlong lines are\n"
          "                      rejected with a reason, never buffered)\n"
          "  --idle-timeout-ms N close TCP connections idle this long\n"
          "                      (default 0 = never)\n"
          "  --prefix-cache-mb N cross-request prefix KV cache budget in\n"
          "                      MiB (default 32; 0 disables)\n");
      return 0;
    }

    const auto config = config_by_name(cli.get("config", "tiny"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
    if (cli.has("nn-backend"))
      nn::set_backend(nn::parse_backend(cli.get("nn-backend")));
    std::fprintf(stderr, "ppg_serve: nn backend %s\n",
                 nn::active_backend().name);

    // Model + pattern sources: trained checkpoint, or random-init fallback.
    std::optional<core::PagPassGPT> trained;
    std::optional<gpt::GptModel> random_init;
    pcfg::PatternDistribution own_patterns;
    const gpt::GptModel* model = nullptr;
    const pcfg::PatternDistribution* patterns = nullptr;
    if (cli.has("model")) {
      trained.emplace(config, seed);
      trained->load(cli.get("model"));
      model = &trained->model();
      patterns = &trained->patterns();
      std::fprintf(stderr, "ppg_serve: loaded checkpoint %s (%zu patterns)\n",
                   cli.get("model").c_str(), patterns->distinct());
    } else {
      random_init.emplace(config, seed);
      own_patterns = builtin_patterns(
          cli.get("patterns", "L6N2,L8,N6,L4N4,N4L4,L1N6,S1L6N2"));
      model = &*random_init;
      patterns = &own_patterns;
      std::fprintf(stderr,
                   "ppg_serve: random-init model (config=%s seed=%llu, "
                   "%zu builtin patterns)\n",
                   cli.get("config", "tiny").c_str(),
                   static_cast<unsigned long long>(seed),
                   patterns->distinct());
    }

    serve::ServiceConfig scfg;
    scfg.workers = static_cast<std::size_t>(cli.get_int("workers", 1));
    scfg.max_queue = static_cast<std::size_t>(cli.get_int("max-queue", 256));
    scfg.max_batch = static_cast<std::size_t>(cli.get_int("max-batch", 64));
    scfg.max_count = static_cast<std::size_t>(cli.get_int("max-count", 4096));
    scfg.batching = !cli.get_bool("no-batching");
    scfg.max_attempt_factor =
        static_cast<int>(cli.get_int("attempt-factor", 4));
    scfg.max_ordered_top_k =
        static_cast<std::size_t>(cli.get_int("max-ordered-top-k", 512));
    if (cli.get_bool("quantize"))
      scfg.sample.precision = gpt::Precision::kInt8;
    scfg.prefix_cache_bytes =
        static_cast<std::size_t>(cli.get_int("prefix-cache-mb", 32)) << 20;
    serve::GuessService svc(*model, *patterns, scfg);

    if (cli.has("port") || cli.has("listen-fd")) {
      serve::TcpOptions topts;
      topts.port = static_cast<int>(cli.get_int("port", 0));
      topts.listen_fd = static_cast<int>(cli.get_int("listen-fd", -1));
      topts.max_line_bytes = static_cast<std::size_t>(
          cli.get_int("max-line-bytes", std::int64_t(1) << 20));
      topts.idle_timeout_ms =
          static_cast<double>(cli.get_int("idle-timeout-ms", 0));
      return serve::serve_tcp(svc, topts);
    }
    serve::serve_stream(svc, std::cin, std::cout);
    svc.shutdown();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ppg_serve: %s\n", e.what());
    return 1;
  }
}
