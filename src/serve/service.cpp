#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/check.h"
#include "core/masks.h"
#include "gpt/infer.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcfg/pattern.h"
#include "search/ordered.h"
#include "tokenizer/tokenizer.h"

namespace ppg::serve {

namespace {

using tok::Tokenizer;

/// Process-wide serving metrics (registered once, lock-free updates).
struct ServeMetrics {
  obs::Counter& submitted;
  obs::Counter& admitted;
  obs::Counter& rejected;
  obs::Counter& timeouts;
  obs::Counter& completed;
  obs::Counter& batches;
  obs::Counter& rows;
  obs::Counter& guesses;
  obs::Counter& invalid;
  obs::Gauge& queue_depth;
  obs::Histogram& batch_rows;
  obs::Histogram& request_ms;
  static ServeMetrics& get() {
    auto& r = obs::Registry::global();
    static ServeMetrics m{r.counter("serve.submitted"),
                          r.counter("serve.admitted"),
                          r.counter("serve.rejected"),
                          r.counter("serve.timeouts"),
                          r.counter("serve.completed"),
                          r.counter("serve.batches"),
                          r.counter("serve.rows"),
                          r.counter("serve.guesses"),
                          r.counter("serve.invalid"),
                          r.gauge("serve.queue_depth"),
                          r.histogram("serve.batch_rows"),
                          r.histogram("serve.request_ms")};
    return m;
  }
};

ServiceConfig normalized(ServiceConfig cfg) {
  cfg.workers = std::max<std::size_t>(cfg.workers, 1);
  cfg.max_queue = std::max<std::size_t>(cfg.max_queue, 1);
  cfg.max_batch = std::max<std::size_t>(cfg.max_batch, 1);
  cfg.max_count = std::max<std::size_t>(cfg.max_count, 1);
  cfg.max_attempt_factor = std::max(cfg.max_attempt_factor, 1);
  return cfg;
}

}  // namespace

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kTimeout: return "timeout";
  }
  return "unknown";
}

const char* reject_name(Reject r) noexcept {
  switch (r) {
    case Reject::kNone: return "";
    case Reject::kQueueFull: return "queue_full";
    case Reject::kShuttingDown: return "shutting_down";
    case Reject::kBadRequest: return "bad_request";
  }
  return "unknown";
}

/// One admitted request's full lifecycle state. Owned jointly by the
/// queue and by the batch rows currently in flight for it.
struct GuessService::Pending {
  std::uint64_t id = 0;
  std::vector<int> prefix;  ///< token prefix shared by every row
  gpt::LogitMask mask;      ///< conformance mask (may be empty)
  std::size_t target = 0;
  std::size_t unassigned = 0;    ///< rows not yet scheduled into a batch
  std::size_t inflight = 0;      ///< rows currently inside a batch
  std::size_t retries_left = 0;  ///< invalid rows that may still be retried
  std::size_t next_row = 0;      ///< next rng-stream index
  std::uint64_t seed = 0;
  bool ordered = false;            ///< kOrdered: one best-first enumeration
  double search_deadline_ms = 0.0; ///< kOrdered: anytime search budget
  std::int64_t enqueue_us = 0;
  std::int64_t first_schedule_us = -1;
  std::int64_t deadline_us = -1;  ///< obs timeline; -1 = none
  bool in_queue = false;
  bool done = false;
  Response resp;
  std::promise<Response> promise;
};

GuessService::GuessService(const gpt::GptModel& model,
                           const pcfg::PatternDistribution& patterns,
                           ServiceConfig cfg)
    : model_(model), patterns_(patterns), cfg_(normalized(cfg)) {
  if (cfg_.prefix_cache_bytes > 0)
    prefix_cache_ =
        std::make_unique<gpt::KvTrieCache>(cfg_.prefix_cache_bytes);
  workers_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

GuessService::~GuessService() { shutdown(); }

std::future<Response> GuessService::reject(Request&&, Reject why,
                                           std::string detail) {
  ServeMetrics::get().rejected.inc();
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();
  Response resp;
  resp.status = Status::kRejected;
  resp.reject = why;
  resp.error = std::move(detail);
  promise.set_value(std::move(resp));
  return fut;
}

std::future<Response> GuessService::submit(Request req) {
  ServeMetrics& m = ServeMetrics::get();
  m.submitted.inc();

  const bool ordered = req.kind == RequestKind::kOrdered;
  if (ordered) {
    // Mirrors the count/timeout validation below: bad asks are named at
    // admission, never silently clamped mid-flight.
    if (req.top_k == 0)
      return reject(std::move(req), Reject::kBadRequest,
                    "ordered request needs top_k > 0");
    if (req.top_k > cfg_.max_ordered_top_k)
      return reject(std::move(req), Reject::kBadRequest,
                    "top_k " + std::to_string(req.top_k) +
                        " exceeds max_ordered_top_k " +
                        std::to_string(cfg_.max_ordered_top_k));
    if (req.deadline_ms < 0.0)
      return reject(std::move(req), Reject::kBadRequest,
                    "deadline_ms must be >= 0 (got " +
                        std::to_string(req.deadline_ms) + ")");
  } else {
    if (req.count == 0)
      return reject(std::move(req), Reject::kBadRequest, "count must be > 0");
    if (req.count > cfg_.max_count)
      return reject(std::move(req), Reject::kBadRequest,
                    "count " + std::to_string(req.count) +
                        " exceeds max_count " +
                        std::to_string(cfg_.max_count));
  }
  if (req.timeout_ms < 0.0)
    return reject(std::move(req), Reject::kBadRequest,
                  "timeout_ms must be >= 0 (got " +
                      std::to_string(req.timeout_ms) + ")");

  auto p = std::make_shared<Pending>();
  p->prefix.push_back(Tokenizer::kBos);
  if (req.kind != RequestKind::kFree) {
    std::string pattern_str = req.pattern;
    if (pattern_str.empty()) {
      if (req.kind == RequestKind::kPrefix || patterns_.distinct() == 0)
        return reject(std::move(req), Reject::kBadRequest,
                      "request needs a pattern");
      Rng rng(req.seed, "serve.pattern");
      try {
        pattern_str = patterns_.sample(rng);
      } catch (const std::exception& e) {
        return reject(std::move(req), Reject::kBadRequest,
                      std::string("pattern distribution unusable: ") +
                          e.what());
      }
    }
    auto parsed = pcfg::parse_pattern(pattern_str);
    if (!parsed)
      return reject(std::move(req), Reject::kBadRequest,
                    "unparseable pattern '" + pattern_str + "'");
    for (const auto& seg : *parsed)
      if (seg.len > Tokenizer::kMaxSegmentLen)
        return reject(std::move(req), Reject::kBadRequest,
                      "pattern segment longer than " +
                          std::to_string(Tokenizer::kMaxSegmentLen));
    p->prefix = Tokenizer::encode_generation_prefix(*parsed);
    int offset = 0;
    if (req.kind == RequestKind::kPrefix) {
      if (req.prefix.empty())
        return reject(std::move(req), Reject::kBadRequest,
                      "prefix request needs a non-empty prefix");
      if (req.prefix.size() >
          static_cast<std::size_t>(pcfg::pattern_length(*parsed)))
        return reject(std::move(req), Reject::kBadRequest,
                      "prefix longer than its pattern");
      for (std::size_t i = 0; i < req.prefix.size(); ++i) {
        const char ch = req.prefix[i];
        const int tok_id = Tokenizer::char_token(ch);
        if (tok_id == Tokenizer::kUnk)
          return reject(std::move(req), Reject::kBadRequest,
                        "prefix contains an out-of-universe character");
        const auto cls = pcfg::class_at(*parsed, static_cast<int>(i));
        if (!cls || pcfg::classify(ch) != *cls)
          return reject(std::move(req), Reject::kBadRequest,
                        "prefix does not conform to the pattern");
        p->prefix.push_back(tok_id);
      }
      offset = static_cast<int>(req.prefix.size());
    }
    if (req.strict) p->mask = core::make_pattern_mask(std::move(*parsed), offset);
  }
  if (static_cast<gpt::Index>(p->prefix.size()) >= model_.config().context)
    return reject(std::move(req), Reject::kBadRequest,
                  "prefix fills the whole context window");

  if (ordered) {
    // One unit of schedulable work: the enumeration itself. target keeps
    // the top_k for the executor; there are no retries (an ordered run
    // never produces a row to redraw).
    p->ordered = true;
    p->search_deadline_ms = req.deadline_ms;
    p->target = req.top_k;
    p->unassigned = 1;
    p->retries_left = 0;
  } else {
    p->target = req.count;
    p->unassigned = req.count;
    p->retries_left =
        req.count * static_cast<std::size_t>(cfg_.max_attempt_factor - 1);
  }
  p->seed = req.seed;
  p->enqueue_us = obs::now_us();
  if (req.timeout_ms > 0)
    p->deadline_us =
        p->enqueue_us + static_cast<std::int64_t>(
                            std::llround(req.timeout_ms * 1000.0));

  std::future<Response> fut = p->promise.get_future();
  {
    MutexLock lock(mu_);
    if (!accepting_) {
      m.rejected.inc();
      p->resp.status = Status::kRejected;
      p->resp.reject = Reject::kShuttingDown;
      p->resp.error = "service is shutting down";
      p->promise.set_value(std::move(p->resp));
      return fut;
    }
    if (queue_.size() >= cfg_.max_queue) {
      m.rejected.inc();
      p->resp.status = Status::kRejected;
      p->resp.reject = Reject::kQueueFull;
      p->resp.error = "admission queue is full (" +
                      std::to_string(cfg_.max_queue) + " requests)";
      p->promise.set_value(std::move(p->resp));
      return fut;
    }
    p->id = next_id_++;
    queue_.push_back(p);
    p->in_queue = true;
    m.admitted.inc();
    m.queue_depth.set(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
  return fut;
}

void GuessService::complete_locked(Pending& p, Status s) {
  // Completing twice would set the promise twice (UB-adjacent throw) and
  // double-count metrics; `done` is only ever flipped here, under mu_.
  PPG_CHECK(!p.done, "request %llu completed twice",
            static_cast<unsigned long long>(p.id));
  ServeMetrics& m = ServeMetrics::get();
  p.done = true;
  p.resp.status = s;
  const std::int64_t now = obs::now_us();
  p.resp.total_ms = static_cast<double>(now - p.enqueue_us) / 1000.0;
  p.resp.queue_ms =
      static_cast<double>(
          (p.first_schedule_us < 0 ? now : p.first_schedule_us) -
          p.enqueue_us) /
      1000.0;
  if (s == Status::kTimeout)
    m.timeouts.inc();
  else if (s == Status::kRejected)
    m.rejected.inc();
  else
    m.completed.inc();
  m.guesses.inc(p.resp.passwords.size());
  m.invalid.inc(p.resp.invalid);
  if (obs::timing_enabled()) m.request_ms.observe(p.resp.total_ms);
  obs::trace_emit_complete("serve/request", "serve", p.enqueue_us,
                           now - p.enqueue_us);
  p.promise.set_value(std::move(p.resp));
}

void GuessService::assemble_batch_locked(std::vector<RowRef>& rows) {
  const std::int64_t now = obs::now_us();
  // Expire or discard requests until the front is runnable.
  while (!queue_.empty()) {
    auto& front = queue_.front();
    if (front->done) {
      front->in_queue = false;
      queue_.pop_front();
      continue;
    }
    if (front->deadline_us >= 0 && now >= front->deadline_us) {
      complete_locked(*front, Status::kTimeout);
      front->in_queue = false;
      queue_.pop_front();
      continue;
    }
    break;
  }
  if (queue_.empty() || rows.size() >= cfg_.max_batch) {
    ServeMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
    return;
  }

  const auto take = [&](const std::shared_ptr<Pending>& p) {
    PPG_DCHECK(p->unassigned > 0, "scheduling a request with no rows left");
    const std::size_t k =
        std::min(cfg_.max_batch - rows.size(), p->unassigned);
    for (std::size_t i = 0; i < k; ++i) rows.push_back({p, p->next_row++});
    p->unassigned -= k;
    p->inflight += k;
    // Attempt accounting: rows ever scheduled never exceed the admission
    // budget of count * max_attempt_factor.
    PPG_DCHECK(p->next_row <= p->target * static_cast<std::size_t>(
                                              cfg_.max_attempt_factor),
               "request %llu scheduled %zu rows, budget %zu",
               static_cast<unsigned long long>(p->id), p->next_row,
               p->target * static_cast<std::size_t>(cfg_.max_attempt_factor));
    if (p->first_schedule_us < 0) p->first_schedule_us = now;
  };

  auto it = queue_.begin();
  std::size_t len;
  if (rows.empty()) {
    // Fresh batch: the front request sets the batch's prefix length.
    len = (*it)->prefix.size();
    const bool ordered = (*it)->ordered;
    take(*it);
    it = (*it)->unassigned == 0 ? ((*it)->in_queue = false, queue_.erase(it))
                                : std::next(it);
    if (ordered) {
      // An ordered enumeration owns its worker outright: it is not a
      // lockstep row, so nothing may coalesce with it (and the formation
      // window is skipped — see worker_loop).
      ServeMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
      return;
    }
  } else {
    // Top-up after a formation-window wait: only matching lengths join.
    len = rows[0].req->prefix.size();
  }
  if (cfg_.batching) {
    // Coalesce further requests with the same prefix length (lockstep
    // compatibility) until the batch is full.
    while (it != queue_.end() && rows.size() < cfg_.max_batch) {
      auto& p = *it;
      if (p->done) {
        p->in_queue = false;
        it = queue_.erase(it);
        continue;
      }
      if (p->deadline_us >= 0 && now >= p->deadline_us) {
        complete_locked(*p, Status::kTimeout);
        p->in_queue = false;
        it = queue_.erase(it);
        continue;
      }
      if (p->ordered || p->prefix.size() != len) {
        ++it;
        continue;
      }
      take(p);
      if (p->unassigned == 0) {
        p->in_queue = false;
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  ServeMetrics::get().queue_depth.set(static_cast<double>(queue_.size()));
}

void GuessService::execute_ordered(const RowRef& row) {
  obs::Span span("serve/ordered", "serve");
  ServeMetrics& m = ServeMetrics::get();
  m.batches.inc();
  m.rows.inc(1);
  if (obs::timing_enabled()) m.batch_rows.observe(1.0);
  Pending& p = *row.req;

  search::OrderedOptions sopts;
  sopts.max_nodes = cfg_.ordered_max_nodes;
  sopts.cache_bytes = cfg_.ordered_cache_bytes;
  sopts.max_expansions = cfg_.ordered_max_expansions;
  sopts.max_guesses = p.target;  // top_k
  sopts.deadline_ms = p.search_deadline_ms;
  // The shared prefix cache seeds the enumeration root (its pin outlives
  // the first next(), which is all the resume contract asks); expansion
  // states live in the enumerator's own trie. When the service samples in
  // int8 the cached states were produced by quantized forwards, which the
  // enumerator's fp32 exactness guarantee cannot resume from — the
  // enumeration then primes from scratch instead.
  gpt::KvTrieCache::Handle hit;
  if (prefix_cache_ && cfg_.sample.precision == gpt::Precision::kFp32)
    hit = prefix_cache_->find_longest(p.prefix);
  search::OrderedEnumerator enumerator(model_, p.prefix, sopts, p.mask,
                                       hit ? hit.state() : nullptr);
  std::vector<std::string> passwords;
  std::vector<double> log_probs;
  passwords.reserve(p.target);
  log_probs.reserve(p.target);
  while (auto g = enumerator.next()) {
    passwords.push_back(std::move(g->password));
    log_probs.push_back(g->log_prob);
  }

  {
    MutexLock lock(mu_);
    PPG_DCHECK(p.inflight == 1, "ordered request with %zu rows in flight",
               p.inflight);
    --p.inflight;
    if (!p.done) {
      p.resp.passwords = std::move(passwords);
      p.resp.log_probs = std::move(log_probs);
      p.resp.invalid = enumerator.stats().invalid;
      // Anytime contract: a deadline-capped enumeration still completes
      // kOk with the provably best guesses found so far.
      complete_locked(p, Status::kOk);
    }
  }
}

void GuessService::execute_batch(gpt::InferenceSession& session,
                                 const std::vector<RowRef>& rows) {
  if (rows.size() == 1 && rows[0].req->ordered) {
    execute_ordered(rows[0]);
    return;
  }
  obs::Span span("serve/batch", "serve");
  ServeMetrics& m = ServeMetrics::get();
  m.batches.inc();
  m.rows.inc(rows.size());
  if (obs::timing_enabled())
    m.batch_rows.observe(static_cast<double>(rows.size()));

  const auto& c = model_.config();
  const auto n = static_cast<gpt::Index>(rows.size());
  const std::size_t len = rows[0].req->prefix.size();
#if defined(PPG_ENABLE_DCHECKS)
  // Lockstep decoding requires a shape-homogeneous batch; a mixed batch
  // would feed one request's pattern tokens into another's rows.
  for (const RowRef& r : rows)
    PPG_DCHECK(r.req->prefix.size() == len,
               "mixed prefix lengths in one batch (%zu vs %zu)",
               r.req->prefix.size(), len);
#endif
  // Prefill, resuming from the prefix cache where possible. Rows of one
  // request are adjacent in the batch, so one lookup per request covers
  // its whole row run. The batch resumes at the *shallowest* per-row hit
  // depth (lockstep sessions share one position); an exact full-prefix
  // hit on every row skips prefill entirely — resume_rows restores the
  // stored logits. Handles stay live past the insert below so pinned
  // states cannot be evicted mid-use.
  std::size_t depth = 0;
  std::vector<gpt::KvTrieCache::Handle> handles;  ///< one per distinct request
  std::vector<const gpt::KvState*> states;        ///< one per row
  if (prefix_cache_) {
    depth = len;
    states.reserve(rows.size());
    const Pending* prev = nullptr;
    for (const RowRef& r : rows) {
      if (r.req.get() != prev) {
        prev = r.req.get();
        handles.push_back(prefix_cache_->find_longest(r.req->prefix));
        depth = std::min(depth, static_cast<std::size_t>(handles.back().len()));
      }
      states.push_back(handles.back().state());
    }
  }
  if (depth > 0) {
    session.resume_rows(states, static_cast<gpt::Index>(depth));
  } else {
    session.reset(n);
  }
  std::vector<int> feed(rows.size());
  for (std::size_t pos = depth; pos < len; ++pos) {
    for (std::size_t i = 0; i < rows.size(); ++i)
      feed[i] = rows[i].req->prefix[pos];
    session.step(feed);
  }
  gpt::kv_cache_metrics().prefill_tokens.inc((len - depth) * rows.size());
  if (prefix_cache_ && depth < len) {
    // Memoise the post-prefix state once per distinct request in the batch
    // (first-insert-wins makes re-inserts of already-cached prefixes a
    // no-op) so future requests with the same pattern prefix resume here.
    const Pending* prev = nullptr;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].req.get() == prev) continue;
      prev = rows[i].req.get();
      prefix_cache_->insert(rows[i].req->prefix,
                            session.snapshot(static_cast<gpt::Index>(i)));
    }
  }

  // Per-row deterministic RNG streams: independent of batch composition,
  // worker count, and batching mode.
  std::vector<Rng> rngs;
  rngs.reserve(rows.size());
  for (const RowRef& r : rows)
    rngs.emplace_back(r.req->seed,
                      "serve.row/" + std::to_string(r.row_index));

  std::vector<std::vector<int>> generated(rows.size());
  std::vector<char> active(rows.size(), 1);
  std::vector<int> next(rows.size(), Tokenizer::kPad);
  std::vector<float> row_logits(static_cast<std::size_t>(c.vocab));
  gpt::Index alive = n;
  const gpt::Index max_new = c.context - static_cast<gpt::Index>(len);
  for (gpt::Index step = 0; step < max_new && alive > 0; ++step) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (!active[i]) {
        next[i] = Tokenizer::kPad;
        continue;
      }
      const auto logits = session.logits_row(static_cast<gpt::Index>(i));
      std::copy(logits.begin(), logits.end(), row_logits.begin());
      if (rows[i].req->mask) rows[i].req->mask(step, row_logits);
      const int tok_id = sample_from_logits(row_logits, rngs[i], cfg_.sample);
      if (tok_id < 0 || tok_id == Tokenizer::kEos) {
        if (tok_id == Tokenizer::kEos) generated[i].push_back(tok_id);
        active[i] = 0;
        --alive;
        next[i] = Tokenizer::kPad;
        continue;
      }
      generated[i].push_back(tok_id);
      next[i] = tok_id;
    }
    if (alive > 0 && session.position() < c.context)
      session.step(next);
    else
      break;
  }

  // Deliver rows and complete finished requests.
  bool new_work = false;
  {
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      Pending& p = *rows[i].req;
      PPG_DCHECK(p.inflight > 0, "delivering a row the scheduler never issued");
      --p.inflight;
      if (p.done) continue;
      std::vector<int> full = p.prefix;
      full.insert(full.end(), generated[i].begin(), generated[i].end());
      const auto pw = Tokenizer::decode_password(full);
      if (pw.has_value() && !pw->empty()) {
        p.resp.passwords.push_back(*pw);
      } else {
        ++p.resp.invalid;
        if (p.retries_left > 0 && !stopping_) {
          --p.retries_left;
          ++p.unassigned;
          if (!p.in_queue) {
            queue_.push_back(rows[i].req);
            p.in_queue = true;
            new_work = true;
          }
        }
      }
      if (!p.done && p.unassigned == 0 && p.inflight == 0)
        complete_locked(p, Status::kOk);
    }
  }
  if (new_work) work_cv_.notify_one();
}

void GuessService::worker_loop(std::size_t index) {
  obs::trace_set_thread_name(
      ("serve-worker-" + std::to_string(index)).c_str());
  // Sampled generation runs on the configured precision; ordered requests
  // never touch this session (execute_ordered builds its own fp32
  // enumerator — best-first bounds require the reference substrate).
  gpt::InferenceSession session(model_, cfg_.sample.precision);
  for (;;) {
    std::vector<RowRef> rows;
    {
      MutexLock lock(mu_);
      for (;;) {
        assemble_batch_locked(rows);
        if (!rows.empty()) break;
        if (draining_ && queue_.empty()) return;
        work_cv_.wait(lock);
      }
      // Batch-formation window: hold a partial batch briefly so
      // same-shape arrivals join it instead of convoying behind a full
      // generation pass. Every wake-up (new submit, retry, shutdown)
      // tops the batch up; a full batch or the deadline ends the wait.
      if (cfg_.batching && cfg_.batch_window_us > 0 &&
          rows.size() < cfg_.max_batch && !draining_ &&
          !rows[0].req->ordered) {
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::microseconds(cfg_.batch_window_us);
        while (rows.size() < cfg_.max_batch && !draining_) {
          if (work_cv_.wait_until(lock, until) == std::cv_status::timeout)
            break;
          assemble_batch_locked(rows);
        }
        assemble_batch_locked(rows);
      }
    }
    PPG_DCHECK(rows.size() <= cfg_.max_batch, "batch of %zu exceeds max %zu",
               rows.size(), cfg_.max_batch);
    execute_batch(session, rows);
  }
}

void GuessService::shutdown() {
  MutexLock shutdown_lock(shutdown_mu_);
  {
    MutexLock lock(mu_);
    accepting_ = false;
    draining_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

void GuessService::stop() {
  MutexLock shutdown_lock(shutdown_mu_);
  {
    MutexLock lock(mu_);
    accepting_ = false;
    draining_ = true;
    stopping_ = true;
    // Every queued request gets a terminal status *now* instead of being
    // served through the drain. Three cases, none of which drops work:
    //  * never scheduled  -> kRejected/kShuttingDown (the reject race this
    //    exists to close: a submit that won admission just before stop()
    //    must hear "no", not silence and not a surprise response);
    //  * scheduled, nothing in flight (re-queued for retries) -> complete
    //    kOk with the passwords it already has;
    //  * rows in flight -> leave it to the delivering worker, which
    //    completes it because unassigned drops to 0 and retries are off.
    for (auto& p : queue_) {
      p->in_queue = false;
      if (p->done) continue;
      if (p->first_schedule_us < 0) {
        p->unassigned = 0;
        p->retries_left = 0;
        p->resp.reject = Reject::kShuttingDown;
        p->resp.error = "service stopped before the request was scheduled";
        complete_locked(*p, Status::kRejected);
      } else if (p->inflight == 0) {
        p->unassigned = 0;
        p->retries_left = 0;
        complete_locked(*p, Status::kOk);
      } else {
        p->unassigned = 0;
        p->retries_left = 0;
      }
    }
    queue_.clear();
    ServeMetrics::get().queue_depth.set(0.0);
  }
  work_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

std::size_t GuessService::queued() const {
  MutexLock lock(mu_);
  return queue_.size();
}

}  // namespace ppg::serve
