// Newline-delimited JSON wire protocol for ppg_serve.
//
// Requests, one JSON object per line:
//   {"op":"guess","id":"r1","kind":"pattern","pattern":"L6N2","count":10,
//    "seed":42,"timeout_ms":500,"strict":true}
//   {"op":"guess","id":"r2","kind":"ordered","pattern":"L6N2","top_k":50,
//    "deadline_ms":200}
//   {"op":"stats","id":"s1"}
//   {"op":"shutdown","id":"x1"}
//   {"op":"dcgen","id":"shard3","patterns":["L6N2:120","L8:80"],
//    "total":200,"threshold":64,"seed":7,
//    "journal_dir":"/tmp/fleet/shard3","out":"/tmp/fleet/shard3.guess"}
// Fields: `op` defaults to "guess", `kind` to "pattern" ("prefix", "free"
// and "ordered" select the other request kinds), `count` to 1, `seed` to
// 0, `timeout_ms` to 0 (no deadline), `strict` to true. "ordered" takes
// `top_k` (required > 0, capped by the service's max_ordered_top_k) and
// `deadline_ms` (anytime search budget, 0 = none) instead of `count`.
// `id` is an opaque client string echoed back in the response.
//
// Responses, one JSON object per line, strictly in request order:
//   {"id":"r1","status":"ok","passwords":[...],"invalid":0,
//    "queue_ms":...,"total_ms":...}
//   {"id":"r2","status":"ok","passwords":[...],"log_probs":[...],...}
//   {"id":"r1","status":"rejected","reject":"queue_full","error":"..."}
//   {"id":"r1","status":"timeout","passwords":[...],...}
// Ordered responses carry `log_probs`, parallel to `passwords` and
// monotone non-increasing (descending model probability).
// A malformed line yields a bad_request rejection line (id "" when the
// line was not even an object), so every input line gets exactly one
// response line. A shutdown op drains the service and acknowledges last.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "serve/service.h"

namespace ppg::serve {

/// A D&C-GEN shard job (Op::kDcGen): the worker runs dc_generate over the
/// listed pattern:count slice, durably writes the guesses to `out`
/// (atomic_save, length-prefixed payload + CRC footer), and replies with
/// counts. With a `journal_dir` the job is crash-resumable: re-sending the
/// identical op to a restarted worker resumes from the journal and
/// reproduces `out` byte-identically (dc_generate is deterministic in
/// model × patterns × config × seed). That idempotence is what lets the
/// fleet router re-dispatch a shard after a worker death.
struct DcGenWire {
  std::vector<std::pair<std::string, std::uint64_t>> patterns;
  double total = 0;         ///< guesses to apportion across the shard
  double threshold = 64;    ///< division threshold T
  std::uint64_t seed = 0;
  std::string journal_dir;  ///< empty = no resume journal
  std::string out;          ///< required output path
  int threads = 1;
};

/// One parsed request line.
struct WireRequest {
  enum class Op { kGuess, kStats, kShutdown, kDcGen };
  Op op = Op::kGuess;
  std::string id;  ///< client-chosen correlation id, echoed back
  Request guess;   ///< payload for Op::kGuess
  DcGenWire dcgen; ///< payload for Op::kDcGen
};

/// Parses one request line. On malformed input returns std::nullopt and,
/// if `error` is non-null, a human-readable reason.
std::optional<WireRequest> parse_request_line(std::string_view line,
                                              std::string* error = nullptr);

/// Formats a guess response line (no trailing newline).
std::string format_response(const std::string& id, const Response& resp);

/// Formats a bad_request rejection line for a malformed input line.
std::string format_error_line(const std::string& id, std::string_view error);

/// Formats a stats line: queue depth plus a metrics-registry snapshot.
std::string format_stats_line(const std::string& id, const GuessService& svc);

/// Executes a kDcGen shard job synchronously on the service's model and
/// returns the response line (ok with counts, or a rejected line naming
/// the failure). Blocks its caller for the duration of the generation —
/// the fleet router dedicates a connection per shard for exactly that
/// reason.
std::string run_dcgen_op(GuessService& svc, const WireRequest& req);

/// Runs the NDJSON loop: reads request lines from `in`, writes one response
/// line per input line to `out`, in input order (a FIFO writer thread waits
/// on each guess future while the reader keeps admitting, so the service
/// batches freely underneath). Returns when `in` ends or a shutdown op is
/// read; a shutdown op also drains the service (GuessService::shutdown)
/// before its acknowledgement is written. Returns true iff shutdown ran.
bool serve_stream(GuessService& svc, std::istream& in, std::ostream& out);

}  // namespace ppg::serve
