#include "serve/wire.h"

#include <cmath>
#include <deque>
#include <future>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

#include "common/durable_io.h"
#include "common/thread_annotations.h"
#include "core/dcgen.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace ppg::serve {

using obs::JsonValue;

namespace {

void set_error(std::string* error, std::string msg) {
  if (error) *error = std::move(msg);
}

/// Reads an optional non-negative integer field; false (with *error set)
/// when the field is present but not a usable integer.
bool read_uint_field(const obs::JsonValue& v, std::string_view key,
                     double max, std::uint64_t* out, std::string* error) {
  if (!v.find(key)) return true;
  const auto n = v.get_number(key);
  if (!n || *n < 0 || *n != std::floor(*n) || *n > max) {
    set_error(error, "field '" + std::string(key) +
                         "' must be a non-negative integer");
    return false;
  }
  *out = static_cast<std::uint64_t>(*n);
  return true;
}

bool read_string_field(const obs::JsonValue& v, std::string_view key,
                       std::string* out, std::string* error) {
  if (!v.find(key)) return true;
  const auto s = v.get_string(key);
  if (!s) {
    set_error(error, "field '" + std::string(key) + "' must be a string");
    return false;
  }
  *out = *s;
  return true;
}

}  // namespace

std::optional<WireRequest> parse_request_line(std::string_view line,
                                              std::string* error) {
  std::string parse_err;
  const auto v = obs::parse_json(line, &parse_err);
  if (!v) {
    set_error(error, "malformed JSON: " + parse_err);
    return std::nullopt;
  }
  if (!v->is_object()) {
    set_error(error, "request must be a JSON object");
    return std::nullopt;
  }

  WireRequest req;
  if (!read_string_field(*v, "id", &req.id, error)) return std::nullopt;
  std::string op = "guess";
  if (!read_string_field(*v, "op", &op, error)) return std::nullopt;
  if (op == "stats") {
    req.op = WireRequest::Op::kStats;
    return req;
  }
  if (op == "shutdown") {
    req.op = WireRequest::Op::kShutdown;
    return req;
  }
  if (op == "dcgen") {
    req.op = WireRequest::Op::kDcGen;
    const JsonValue* pats = v->find("patterns");
    if (!pats || pats->type != JsonValue::Type::kArray || pats->array.empty()) {
      set_error(error, "dcgen needs a non-empty 'patterns' array");
      return std::nullopt;
    }
    for (const auto& e : pats->array) {
      if (e.type != JsonValue::Type::kString) {
        set_error(error, "dcgen patterns must be 'PATTERN:COUNT' strings");
        return std::nullopt;
      }
      const std::size_t colon = e.string.rfind(':');
      std::uint64_t count = 0;
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == e.string.size()) {
        set_error(error, "dcgen pattern '" + e.string +
                             "' is not PATTERN:COUNT");
        return std::nullopt;
      }
      for (std::size_t i = colon + 1; i < e.string.size(); ++i) {
        const char c = e.string[i];
        if (c < '0' || c > '9') {
          set_error(error, "dcgen pattern '" + e.string +
                               "' has a non-numeric count");
          return std::nullopt;
        }
        count = count * 10 + static_cast<std::uint64_t>(c - '0');
      }
      if (count == 0) {
        set_error(error, "dcgen pattern '" + e.string + "' has count 0");
        return std::nullopt;
      }
      req.dcgen.patterns.emplace_back(e.string.substr(0, colon), count);
    }
    const auto total = v->get_number("total");
    if (!total || *total <= 0 || !std::isfinite(*total)) {
      set_error(error, "dcgen needs a positive 'total'");
      return std::nullopt;
    }
    req.dcgen.total = *total;
    if (v->find("threshold")) {
      const auto t = v->get_number("threshold");
      if (!t || *t <= 0 || !std::isfinite(*t)) {
        set_error(error, "field 'threshold' must be a positive number");
        return std::nullopt;
      }
      req.dcgen.threshold = *t;
    }
    std::uint64_t seed = 0;
    if (!read_uint_field(*v, "seed", 1.8e19, &seed, error))
      return std::nullopt;
    req.dcgen.seed = seed;
    std::uint64_t threads = 1;
    if (!read_uint_field(*v, "threads", 64, &threads, error))
      return std::nullopt;
    req.dcgen.threads = static_cast<int>(threads == 0 ? 1 : threads);
    if (!read_string_field(*v, "journal_dir", &req.dcgen.journal_dir, error))
      return std::nullopt;
    if (!read_string_field(*v, "out", &req.dcgen.out, error))
      return std::nullopt;
    if (req.dcgen.out.empty()) {
      set_error(error, "dcgen needs an 'out' path");
      return std::nullopt;
    }
    return req;
  }
  if (op != "guess") {
    set_error(error, "unknown op '" + op + "'");
    return std::nullopt;
  }

  req.op = WireRequest::Op::kGuess;
  std::string kind = "pattern";
  if (!read_string_field(*v, "kind", &kind, error)) return std::nullopt;
  if (kind == "pattern")
    req.guess.kind = RequestKind::kPattern;
  else if (kind == "prefix")
    req.guess.kind = RequestKind::kPrefix;
  else if (kind == "free")
    req.guess.kind = RequestKind::kFree;
  else if (kind == "ordered")
    req.guess.kind = RequestKind::kOrdered;
  else {
    set_error(error, "unknown kind '" + kind + "'");
    return std::nullopt;
  }
  if (!read_string_field(*v, "pattern", &req.guess.pattern, error))
    return std::nullopt;
  if (!read_string_field(*v, "prefix", &req.guess.prefix, error))
    return std::nullopt;

  std::uint64_t count = req.guess.count;
  if (!read_uint_field(*v, "count", 1e15, &count, error)) return std::nullopt;
  req.guess.count = static_cast<std::size_t>(count);
  std::uint64_t seed = 0;
  if (!read_uint_field(*v, "seed", 1.8e19, &seed, error)) return std::nullopt;
  req.guess.seed = seed;
  std::uint64_t top_k = 0;
  if (!read_uint_field(*v, "top_k", 1e15, &top_k, error)) return std::nullopt;
  req.guess.top_k = static_cast<std::size_t>(top_k);
  if (v->find("deadline_ms")) {
    const auto n = v->get_number("deadline_ms");
    if (!n || *n < 0 || !std::isfinite(*n)) {
      set_error(error, "field 'deadline_ms' must be a non-negative number");
      return std::nullopt;
    }
    req.guess.deadline_ms = *n;
  }
  if (v->find("timeout_ms")) {
    const auto n = v->get_number("timeout_ms");
    if (!n || *n < 0 || !std::isfinite(*n)) {
      set_error(error, "field 'timeout_ms' must be a non-negative number");
      return std::nullopt;
    }
    req.guess.timeout_ms = *n;
  }
  if (v->find("strict")) {
    const auto b = v->get_bool("strict");
    if (!b) {
      set_error(error, "field 'strict' must be a boolean");
      return std::nullopt;
    }
    req.guess.strict = *b;
  }
  return req;
}

std::string format_response(const std::string& id, const Response& resp) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("status").value(status_name(resp.status));
  if (resp.status == Status::kRejected) {
    w.key("reject").value(reject_name(resp.reject));
    w.key("error").value(resp.error);
  } else {
    w.key("passwords").begin_array();
    for (const auto& pw : resp.passwords) w.value(pw);
    w.end_array();
    if (!resp.log_probs.empty()) {
      w.key("log_probs").begin_array();
      for (const double lp : resp.log_probs) w.value(lp);
      w.end_array();
    }
    w.key("invalid").value(static_cast<std::uint64_t>(resp.invalid));
    w.key("queue_ms").value(resp.queue_ms);
    w.key("total_ms").value(resp.total_ms);
  }
  w.end_object();
  return w.take();
}

std::string format_error_line(const std::string& id, std::string_view error) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("status").value(status_name(Status::kRejected));
  w.key("reject").value(reject_name(Reject::kBadRequest));
  w.key("error").value(error);
  w.end_object();
  return w.take();
}

std::string format_stats_line(const std::string& id, const GuessService& svc) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("status").value("ok");
  w.key("op").value("stats");
  w.key("queued").value(static_cast<std::uint64_t>(svc.queued()));
  w.key("batching").value(svc.config().batching);
  w.key("metrics");
  obs::Registry::global().write_json(w);
  w.end_object();
  return w.take();
}

std::string run_dcgen_op(GuessService& svc, const WireRequest& req) {
  const DcGenWire& job = req.dcgen;
  try {
    pcfg::PatternDistribution shard;
    for (const auto& [pattern, count] : job.patterns)
      shard.add(pattern, count);
    shard.finalize();

    core::DcGenConfig cfg;
    cfg.total = job.total;
    cfg.threshold = job.threshold;
    cfg.threads = job.threads;
    cfg.journal_dir = job.journal_dir;
    core::DcGenStats stats;
    const std::vector<std::string> guesses =
        core::dc_generate(svc.model(), shard, cfg, job.seed, &stats);

    // Durable output: a reply can race a crash, so the router trusts the
    // CRC-footered file, not the ack. One length-prefixed blob of
    // newline-joined guesses keeps the aggregate byte-comparable.
    std::string payload;
    for (const auto& g : guesses) {
      payload += g;
      payload += '\n';
    }
    durable::atomic_save(job.out,
                         [&](BinaryWriter& w) { w.write_string(payload); });

    obs::JsonWriter w;
    w.begin_object();
    w.key("id").value(req.id);
    w.key("status").value("ok");
    w.key("op").value("dcgen");
    w.key("emitted").value(static_cast<std::uint64_t>(stats.emitted));
    w.key("unique").value(static_cast<std::uint64_t>(stats.unique_emitted));
    w.key("resumed_leaves")
        .value(static_cast<std::uint64_t>(stats.resumed_leaves));
    w.key("resumed_plan").value(stats.resumed_plan);
    w.key("bytes").value(static_cast<std::uint64_t>(payload.size()));
    w.end_object();
    return w.take();
  } catch (const std::exception& e) {
    return format_error_line(req.id,
                             std::string("dcgen shard failed: ") + e.what());
  }
}

bool serve_stream(GuessService& svc, std::istream& in, std::ostream& out) {
  // FIFO of outgoing lines: pre-formatted text, or a guess future the
  // writer resolves in order. Keeps responses in request order while the
  // reader stays free to admit (and the service to batch) ahead.
  struct Outgoing {
    std::string id;
    std::string line;
    std::future<Response> fut;  ///< valid() => format on resolution
  };
  Mutex mu;
  CondVar cv;
  std::deque<Outgoing> fifo;
  bool closed = false;

  const auto push = [&](Outgoing o) {
    {
      MutexLock lock(mu);
      fifo.push_back(std::move(o));
    }
    cv.notify_one();
  };

  // Dedicated writer so response serialization never blocks request
  // parsing; joined below before the session returns.
  std::thread writer([&] {  // ppg-lint: allow(naked-thread)
    for (;;) {
      Outgoing o;
      {
        MutexLock lock(mu);
        while (fifo.empty() && !closed) cv.wait(lock);
        if (fifo.empty()) return;
        o = std::move(fifo.front());
        fifo.pop_front();
      }
      if (o.fut.valid()) o.line = format_response(o.id, o.fut.get());
      out << o.line << '\n' << std::flush;
    }
  });

  bool did_shutdown = false;
  std::string line;
  while (!did_shutdown && std::getline(in, line)) {
    if (line.empty()) continue;
    std::string err;
    auto req = parse_request_line(line, &err);
    if (!req) {
      Outgoing o;
      o.line = format_error_line("", err);
      push(std::move(o));
      continue;
    }
    switch (req->op) {
      case WireRequest::Op::kGuess: {
        Outgoing o;
        o.id = req->id;
        o.fut = svc.submit(std::move(req->guess));
        push(std::move(o));
        break;
      }
      case WireRequest::Op::kStats: {
        Outgoing o;
        o.id = req->id;
        o.line = format_stats_line(req->id, svc);
        push(std::move(o));
        break;
      }
      case WireRequest::Op::kDcGen: {
        // Runs on the reader thread: a shard job is the connection's only
        // tenant (the fleet router opens a dedicated connection per
        // shard), so blocking here is the intended backpressure.
        Outgoing o;
        o.id = req->id;
        o.line = run_dcgen_op(svc, *req);
        push(std::move(o));
        break;
      }
      case WireRequest::Op::kShutdown: {
        did_shutdown = true;
        svc.shutdown();  // drains every admitted request first
        obs::JsonWriter w;
        w.begin_object();
        w.key("id").value(req->id);
        w.key("status").value("ok");
        w.key("op").value("shutdown");
        w.end_object();
        Outgoing o;
        o.id = req->id;
        o.line = w.take();
        push(std::move(o));
        break;
      }
    }
  }
  {
    MutexLock lock(mu);
    closed = true;
  }
  cv.notify_all();
  writer.join();
  return did_shutdown;
}

}  // namespace ppg::serve
