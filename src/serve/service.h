// GuessService: the password-guess serving layer.
//
// Wraps one trained GptModel + PatternDistribution behind a submit/await
// API sized for many small concurrent guess requests:
//
//  * bounded admission queue with explicit backpressure — submit() never
//    blocks and never grows without bound; a full queue (or a draining
//    service) rejects immediately with a reason;
//  * dynamic batching — worker threads coalesce pending requests whose
//    token prefixes have equal length into single lockstep
//    InferenceSession batches (the same grouping D&C-GEN's divider uses),
//    so sixteen count-1 requests cost one model call, not sixteen;
//  * per-worker sessions — each worker owns one InferenceSession whose
//    buffers persist across batches (reset() reuse keeps shrinking tail
//    batches allocation-free);
//  * deadline enforcement — a request whose deadline passed while queued
//    completes with Status::kTimeout instead of occupying batch slots;
//  * graceful shutdown — shutdown() stops admission (late submits are
//    rejected with Reject::kShuttingDown), drains every admitted request,
//    and joins the workers; every submitted request resolves its future
//    exactly once;
//  * cross-request prefix caching — a shared KvTrieCache keyed on the
//    request's token prefix (pattern / pattern+chars). A batch whose rows
//    all have a cached ancestor resumes from it instead of re-priming;
//    an exact full-prefix hit skips prefill entirely. Responses are
//    bitwise identical to a cold-cache run (see kv_cache.h).
//
// Results are deterministic in (model, request): row r of a request draws
// from Rng(seed, "serve.row/r"), so the same request returns the same
// passwords whatever the batch composition, worker count, or batching
// mode. Password *order* within a response follows batch completion order
// and is only deterministic with a single worker.
//
// Observability: queue-depth gauge, admit/reject/timeout/complete
// counters, batch-occupancy and request-latency histograms in the global
// obs registry ("serve.*"), plus one "serve/request" trace span per
// completed request and a "serve/batch" span per model call.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "gpt/kv_cache.h"
#include "gpt/model.h"
#include "gpt/sampler.h"
#include "pcfg/pcfg_model.h"

namespace ppg::serve {

/// What the request conditions generation on.
enum class RequestKind {
  kPattern,  ///< <BOS> pattern <SEP>; empty pattern = sample one from the
             ///< service's PatternDistribution (seeded by the request)
  kPrefix,   ///< <BOS> pattern <SEP> chars: continue a fixed password prefix
  kFree,     ///< bare <BOS>: the model emits pattern, <SEP>, password itself
  kOrdered,  ///< <BOS> pattern <SEP>, best-first enumerated: the top_k most
             ///< likely passwords in descending probability (src/search),
             ///< no duplicates, log-probs returned alongside
};

/// One guess request.
struct Request {
  RequestKind kind = RequestKind::kPattern;
  std::string pattern;  ///< PCFG pattern string, e.g. "L6N2"
  std::string prefix;   ///< fixed password prefix (kPrefix only)
  std::size_t count = 1;
  std::uint64_t seed = 0;
  double timeout_ms = 0.0;  ///< 0 = no deadline
  bool strict = true;       ///< conformance mask (pattern kinds)
  /// kOrdered only: how many top guesses to enumerate. Must be > 0 and at
  /// most ServiceConfig::max_ordered_top_k; `count` is ignored.
  std::size_t top_k = 0;
  /// kOrdered only: wall-clock search budget. The anytime contract makes
  /// this a *soft* stop: the response completes kOk with the best guesses
  /// found so far (possibly fewer than top_k). 0 = no budget. Distinct
  /// from timeout_ms, which expires requests still waiting in the queue.
  double deadline_ms = 0.0;
};

/// Terminal request status. Every submitted request gets exactly one.
enum class Status {
  kOk,        ///< completed (passwords may be < count if attempts ran out)
  kRejected,  ///< never admitted; see Response::reject
  kTimeout,   ///< deadline passed while queued; partial passwords returned
};

/// Why a request was rejected at admission.
enum class Reject {
  kNone,
  kQueueFull,      ///< backpressure: admission queue at capacity
  kShuttingDown,   ///< service is draining
  kBadRequest,     ///< unparseable pattern/prefix, zero or over-limit count
};

const char* status_name(Status s) noexcept;
const char* reject_name(Reject r) noexcept;

/// One guess response.
struct Response {
  Status status = Status::kOk;
  Reject reject = Reject::kNone;
  std::string error;  ///< human-readable detail for kRejected
  std::vector<std::string> passwords;
  /// kOrdered responses: log P(passwords[i]) under the model, parallel to
  /// `passwords`, monotone non-increasing. Empty for sampled kinds.
  std::vector<double> log_probs;
  std::size_t invalid = 0;  ///< attempts that decoded to no password
  double queue_ms = 0.0;    ///< admission -> first row scheduled
  double total_ms = 0.0;    ///< admission -> terminal status
};

/// Service knobs.
struct ServiceConfig {
  std::size_t workers = 1;
  std::size_t max_queue = 256;  ///< admitted-but-unfinished request cap
  std::size_t max_count = 4096; ///< per-request count cap
  std::size_t max_batch = 64;   ///< rows per model call
  /// When false every model call serves exactly one request (the
  /// comparison baseline for bench_serve_throughput).
  bool batching = true;
  /// Give up on a request after count*max_attempt_factor generation rows.
  int max_attempt_factor = 4;
  /// Batch-formation window: a worker holding a partial batch waits up to
  /// this long for same-shape arrivals before running it. Trades a little
  /// head-of-line latency for occupancy — without it, a straggler that
  /// misses a batch by a microsecond convoys behind a full generation
  /// pass. 0 disables; ignored when batching is off.
  std::int64_t batch_window_us = 2000;
  /// Sampling knobs for all requests (batch_size is ignored; the
  /// scheduler owns batch geometry). sample.precision selects the worker
  /// sessions' numeric substrate: kInt8 serves sampled guesses through
  /// the quantized GEMM path (higher guesses/sec, bounded logits error);
  /// ordered requests always run fp32 and skip the prefix cache when the
  /// sampled side is quantized.
  gpt::SampleOptions sample{};
  /// Byte budget of the cross-request prefix KV cache (0 disables it).
  /// Hits skip re-priming repeated pattern prefixes; responses are
  /// bitwise identical either way.
  std::size_t prefix_cache_bytes = std::size_t(32) << 20;
  /// Cap on Request::top_k for kOrdered requests; larger asks are rejected
  /// at submit with a reason (ordered search holds a worker for the whole
  /// enumeration, so the cap is the operator's cost-control knob).
  std::size_t max_ordered_top_k = 512;
  /// Frontier / KV-trie / expansion budgets for each ordered enumeration
  /// (see search::OrderedOptions). The expansion cap keeps one ordered
  /// request from monopolising a worker when the model is near-uniform
  /// over a large pattern space; capped requests complete kOk with the
  /// best-first prefix found within budget.
  std::size_t ordered_max_nodes = std::size_t(1) << 16;
  std::size_t ordered_cache_bytes = std::size_t(32) << 20;
  std::size_t ordered_max_expansions = std::size_t(1) << 16;
};

/// The serving engine. The model and pattern distribution must outlive it.
class GuessService {
 public:
  GuessService(const gpt::GptModel& model,
               const pcfg::PatternDistribution& patterns, ServiceConfig cfg);
  ~GuessService();  ///< calls shutdown()

  GuessService(const GuessService&) = delete;
  GuessService& operator=(const GuessService&) = delete;

  /// Admits (or rejects) a request. Never blocks: on rejection the
  /// returned future is already satisfied with Status::kRejected.
  std::future<Response> submit(Request req);

  /// Convenience: submit and block for the response.
  Response submit_and_wait(Request req) { return submit(std::move(req)).get(); }

  /// Stops admission, drains every admitted request, joins the workers.
  /// Idempotent; safe to call concurrently with submitters.
  void shutdown();

  /// Fast shutdown: stops admission and *rejects* (Reject::kShuttingDown)
  /// every admitted request that was never scheduled, instead of serving
  /// it. Requests with rows already in flight complete with whatever they
  /// have (kOk, possibly fewer than count); nothing new is scheduled and
  /// invalid rows are not retried. Every submitted future still resolves
  /// exactly once — a stop() never silently drops work, it names it.
  /// Idempotent, safe concurrently with submitters and with shutdown().
  void stop();

  /// Requests admitted and not yet scheduled to their last batch.
  std::size_t queued() const;

  const ServiceConfig& config() const noexcept { return cfg_; }
  /// The model and pattern distribution this service serves (for wire-level
  /// ops — e.g. a D&C-GEN shard job — that need more than submit()).
  const gpt::GptModel& model() const noexcept { return model_; }
  const pcfg::PatternDistribution& patterns() const noexcept {
    return patterns_;
  }

 private:
  struct Pending;
  struct RowRef {
    std::shared_ptr<Pending> req;
    std::size_t row_index;  ///< rng-stream index of this row
  };

  std::future<Response> reject(Request&& req, Reject why, std::string detail);
  void worker_loop(std::size_t worker_id);
  /// Pops expired/finished requests and appends runnable rows to `rows`
  /// (up to max_batch). When `rows` is non-empty it only tops up with
  /// requests matching the batch's prefix length. Caller holds mu_.
  void assemble_batch_locked(std::vector<RowRef>& rows) PPG_REQUIRES(mu_);
  /// Completes `p` with `s` now. Caller holds mu_.
  void complete_locked(Pending& p, Status s) PPG_REQUIRES(mu_);
  /// Runs one assembled batch on `session` and delivers its rows.
  void execute_batch(gpt::InferenceSession& session,
                     const std::vector<RowRef>& rows);
  /// Runs one kOrdered request to completion (always a single-row batch;
  /// ordered requests never coalesce with lockstep sampling rows).
  void execute_ordered(const RowRef& row);

  const gpt::GptModel& model_;
  const pcfg::PatternDistribution& patterns_;
  const ServiceConfig cfg_;
  /// Cross-request prefix KV cache shared by all workers (null when
  /// disabled). Mutex-guarded internally; pinned states are immutable;
  /// the pointer itself is set once in the constructor.
  std::unique_ptr<gpt::KvTrieCache> prefix_cache_;  // ppg-lint: allow(unannotated-mutex-sibling)

  mutable Mutex mu_;
  Mutex shutdown_mu_;  ///< serialises concurrent shutdown() calls
  CondVar work_cv_;
  // Pending objects reachable from queue_ follow a convention the analyzer
  // cannot express across objects: their mutable fields are only touched
  // with mu_ held (see the Pending definition in service.cpp).
  std::list<std::shared_ptr<Pending>> queue_ PPG_GUARDED_BY(mu_);
  std::uint64_t next_id_ PPG_GUARDED_BY(mu_) = 1;
  bool accepting_ PPG_GUARDED_BY(mu_) = true;
  bool draining_ PPG_GUARDED_BY(mu_) = false;
  bool stopping_ PPG_GUARDED_BY(mu_) = false;  ///< stop(): no retries either
  // Workers own per-thread InferenceSessions and a drain-then-join
  // lifecycle that a generic pool cannot express; the vector is filled in
  // the constructor and joined under shutdown_mu_, never touched by the
  // workers.
  std::vector<std::thread> workers_;  // ppg-lint: allow(naked-thread, unannotated-mutex-sibling)
};

}  // namespace ppg::serve
