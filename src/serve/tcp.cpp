#include "serve/tcp.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/net.h"
#include "common/thread_annotations.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/wire.h"

namespace ppg::serve {

namespace {

struct TcpMetrics {
  obs::Counter& connections;
  obs::Counter& idle_closed;
  obs::Counter& overlong;
  obs::Counter& broken_writes;
  static TcpMetrics& get() {
    auto& r = obs::Registry::global();
    static TcpMetrics m{r.counter("serve.tcp.connections"),
                        r.counter("serve.tcp.idle_closed"),
                        r.counter("serve.tcp.overlong_lines"),
                        r.counter("serve.tcp.broken_writes")};
    return m;
  }
};

/// Runs one connection's NDJSON session. Returns true iff a shutdown op
/// was processed (the caller then stops accepting).
bool serve_connection(GuessService& svc, int fd, const TcpOptions& opts) {
  TcpMetrics::get().connections.inc();
  // Same FIFO discipline as serve_stream: responses leave in request
  // order; a dedicated writer waits on guess futures so the reader keeps
  // admitting and the service keeps batching underneath.
  struct Outgoing {
    std::string id;
    std::string line;
    std::future<Response> fut;  ///< valid() => format on resolution
  };
  Mutex mu;
  CondVar cv;
  std::deque<Outgoing> fifo;
  bool closed = false;

  const auto push = [&](Outgoing o) {
    {
      MutexLock lock(mu);
      fifo.push_back(std::move(o));
    }
    cv.notify_one();
  };

  std::thread writer([&] {  // ppg-lint: allow(naked-thread)
    // Once a write fails the connection is broken, but the queue still
    // drains: every admitted request must resolve its future exactly once
    // even when its response has nowhere to go.
    bool broken = false;
    for (;;) {
      Outgoing o;
      {
        MutexLock lock(mu);
        while (fifo.empty() && !closed) cv.wait(lock);
        if (fifo.empty()) return;
        o = std::move(fifo.front());
        fifo.pop_front();
      }
      if (o.fut.valid()) o.line = format_response(o.id, o.fut.get());
      if (broken) continue;
      o.line += '\n';
      const net::IoStatus s = net::write_all(
          fd, o.line, net::Deadline::after_ms(opts.write_timeout_ms));
      if (s != net::IoStatus::kOk) {
        broken = true;
        TcpMetrics::get().broken_writes.inc();
      }
    }
  });

  bool did_shutdown = false;
  net::LineReader reader(fd, opts.max_line_bytes, opts.idle_timeout_ms);
  std::string line;
  while (!did_shutdown) {
    const net::LineReader::Result r = reader.next(&line);
    if (r == net::LineReader::Result::kEof ||
        r == net::LineReader::Result::kError)
      break;
    if (r == net::LineReader::Result::kTimeout) {
      TcpMetrics::get().idle_closed.inc();
      std::fprintf(stderr, "ppg_serve: closing idle connection (%.0f ms)\n",
                   opts.idle_timeout_ms);
      break;
    }
    if (r == net::LineReader::Result::kTooLong) {
      TcpMetrics::get().overlong.inc();
      Outgoing o;
      o.line = format_error_line(
          "", "request line exceeds max-line-bytes (" +
                  std::to_string(opts.max_line_bytes) + " bytes)");
      push(std::move(o));
      continue;
    }
    if (line.empty()) continue;
    PPG_FAILPOINT("serve.conn.line");
    std::string err;
    auto req = parse_request_line(line, &err);
    if (!req) {
      Outgoing o;
      o.line = format_error_line("", err);
      push(std::move(o));
      continue;
    }
    switch (req->op) {
      case WireRequest::Op::kGuess: {
        Outgoing o;
        o.id = req->id;
        o.fut = svc.submit(std::move(req->guess));
        push(std::move(o));
        break;
      }
      case WireRequest::Op::kStats: {
        PPG_FAILPOINT("serve.stats.stall");
        Outgoing o;
        o.id = req->id;
        o.line = format_stats_line(req->id, svc);
        push(std::move(o));
        break;
      }
      case WireRequest::Op::kDcGen: {
        // Blocks this connection for the whole shard generation — the
        // fleet router dedicates a connection per shard on purpose, and
        // the heartbeat rides a different connection so health checks
        // stay live meanwhile.
        Outgoing o;
        o.id = req->id;
        o.line = run_dcgen_op(svc, *req);
        push(std::move(o));
        break;
      }
      case WireRequest::Op::kShutdown: {
        did_shutdown = true;
        svc.shutdown();  // drains every admitted request first
        obs::JsonWriter w;
        w.begin_object();
        w.key("id").value(req->id);
        w.key("status").value("ok");
        w.key("op").value("shutdown");
        w.end_object();
        Outgoing o;
        o.id = req->id;
        o.line = w.take();
        push(std::move(o));
        break;
      }
    }
  }
  {
    MutexLock lock(mu);
    closed = true;
  }
  cv.notify_all();
  writer.join();
  return did_shutdown;
}

}  // namespace

int serve_tcp(GuessService& svc, const TcpOptions& opts) {
  net::ScopedFd listener;
  if (opts.listen_fd >= 0) {
    listener.reset(opts.listen_fd);
  } else {
    const int fd = net::listen_loopback(opts.port);
    if (fd < 0) {
      std::perror("ppg_serve: bind/listen");
      return 1;
    }
    listener.reset(fd);
  }
  std::fprintf(stderr, "ppg_serve: listening on 127.0.0.1:%d\n",
               net::local_port(listener.get()));

  std::atomic<bool> stop{false};
  // One thread per accepted connection, joined on shutdown below.
  std::vector<std::thread> conns;  // ppg-lint: allow(naked-thread)
  for (;;) {
    // The accept loop is the one intentionally unbounded wait here: it is
    // unblocked by ::shutdown on the listener when a shutdown op lands.
    PPG_FAILPOINT("serve.accept.slow");
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stop.load()) continue;
      break;  // listener shut down by a shutdown op (or hard error)
    }
    const int listen_raw = listener.get();
    conns.emplace_back([&svc, &stop, &opts, fd, listen_raw] {
      if (serve_connection(svc, fd, opts)) {
        stop.store(true);
        ::shutdown(listen_raw, SHUT_RDWR);  // unblocks accept()
      }
      ::close(fd);
    });
  }
  for (auto& t : conns)
    if (t.joinable()) t.join();
  return 0;
}

}  // namespace ppg::serve
