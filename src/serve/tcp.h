// Hardened TCP front-end for GuessService (DESIGN.md §16).
//
// serve_stream (wire.h) trusts its iostream; a TCP byte stream earns no
// such trust. This path owns the socket directly through common/net.h:
//
//  * EINTR-safe, partial-transfer-safe reads and writes end to end;
//  * a per-connection max-line-bytes cap — an overlong request line is
//    consumed through its newline and answered with a bad_request
//    rejection naming the cap, the connection stays usable, and the
//    reader's buffer stays bounded however many bytes the peer streams;
//  * an idle timeout — a connection that sends nothing for the configured
//    window is closed, so abandoned clients cannot pin threads forever;
//  * a write deadline — a peer that stops draining responses cannot wedge
//    the writer (the connection is marked broken and every in-flight
//    request still resolves, its response simply undeliverable).
//
// Failpoint sites (chaos hooks):
//   serve.accept.slow   before each accept (delay = slow accept loop)
//   serve.conn.line     after each complete request line is framed
//                       (crash = worker dies mid-load)
//   serve.stats.stall   before a stats response is formatted
//                       (delay = stalled heartbeat)
#pragma once

#include <cstddef>

#include "serve/service.h"

namespace ppg::serve {

struct TcpOptions {
  int port = 0;        ///< bind port (0 = kernel-assigned); ignored when
                       ///< listen_fd takes precedence
  int listen_fd = -1;  ///< pre-bound listening socket to adopt (the fleet
                       ///< router binds before fork so a restarted worker
                       ///< reuses the exact same port); < 0 = bind here
  std::size_t max_line_bytes = std::size_t(1) << 20;
  double idle_timeout_ms = 0.0;       ///< 0 = connections never idle out
  double write_timeout_ms = 30000.0;  ///< per-response write deadline
};

/// Accepts connections (one thread each) and speaks the NDJSON protocol
/// on every one until a shutdown op arrives or the listen socket dies.
/// Returns 0 on orderly exit, 1 on listen/bind failure.
int serve_tcp(GuessService& svc, const TcpOptions& opts);

}  // namespace ppg::serve
