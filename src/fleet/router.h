// Fault-tolerant sharded serving fleet: the ppg_router coordinator
// (DESIGN.md §16).
//
// The Router spawns and supervises N `ppg_serve --listen-fd` worker
// processes, routes NDJSON guess traffic to them over loopback TCP with
// consistent hashing on the pattern/prefix (fleet/hash.h — each worker's
// KV trie cache stays hot for its shard), and survives any single
// failure:
//
//  * supervision — every worker has a heartbeat connection the router
//    pings on an interval; a stalled heartbeat (configurable timeout), a
//    dead data connection, or a reaped child pid all trigger the same
//    restart path: kill what is left of the process, respawn it on the
//    *same* listening socket (bound once by the router and kept across
//    restarts, so the port never moves), reconnect, and re-drive the
//    work that was queued or in flight;
//  * bounded queues + backpressure — each worker has a hard in-flight
//    cap; admission runs a degradation ladder (admit_decision below)
//    that sheds free-generation traffic first, sampled pattern traffic
//    next, and keeps ordered/strength-meter traffic admitted until the
//    queue is truly full. Every rejection names its reason on the wire;
//  * retries — requests are deterministic in (model, request) (see
//    serve/service.h), hence idempotent, hence safe to re-send. A failed
//    request retries with exponential backoff + deterministic jitter,
//    re-routed to the next distinct worker clockwise on the ring, until
//    its deadline or the retry cap;
//  * shard resume — a dcgen op dispatched to a worker that dies mid-run
//    is re-sent verbatim after the restart; the worker resumes from its
//    D&C-GEN journal and reproduces the shard output byte-identically.
//
// Every submitted request resolves exactly once: with the worker's
// response line, or with a router-level rejection naming one of
//   worker_queue_full | shed_load | no_healthy_worker |
//   retries_exhausted | shutting_down
//
// Failpoint sites: fleet.route.send (before each line is written to a
// worker), fleet.worker.restart (at the top of the restart path).
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "fleet/hash.h"
#include "serve/wire.h"

namespace ppg::fleet {

struct RouterConfig {
  std::size_t workers = 4;
  int vnodes = 64;  ///< ring virtual nodes per worker

  // Degradation ladder (fractions of queue_depth; see admit_decision).
  std::size_t queue_depth = 64;       ///< per-worker queued+inflight cap
  double shed_free_watermark = 0.50;  ///< above: shed kFree
  double shed_sampled_watermark = 0.75;  ///< above: shed kSampled too

  // Supervision.
  double heartbeat_interval_ms = 200;
  double heartbeat_timeout_ms = 2000;  ///< stalled beat => restart
  std::size_t max_restarts = 100;      ///< per worker; beyond => left dead

  // Retry policy.
  int max_retries = 3;
  double backoff_base_ms = 10;
  double backoff_cap_ms = 500;

  // Timeouts.
  double connect_timeout_ms = 10000;  ///< worker spawn -> connectable
  double write_timeout_ms = 10000;    ///< per-line send deadline
  double shard_poll_ms = 50;          ///< dcgen retry poll cadence

  // Worker spawn.
  std::string serve_bin;  ///< path to the ppg_serve binary (required)
  std::vector<std::string> worker_args;  ///< extra ppg_serve flags
  /// PPG_FAILPOINTS spec applied to incarnation 0 of every worker only —
  /// chaos runs arm a crash site, and the *replacement* worker comes up
  /// clean instead of dying the same death forever.
  std::string worker_failpoints;
};

/// Traffic classes of the degradation ladder, most sheddable first.
enum class TrafficClass {
  kFree,      ///< free-generation sampling: shed first
  kSampled,   ///< pattern-conditioned sampling
  kCritical,  ///< ordered enumeration + prefix (strength-meter) traffic:
              ///< admitted until the queue is hard-full
};

const char* traffic_class_name(TrafficClass c) noexcept;
TrafficClass classify(const serve::WireRequest& req) noexcept;

/// Admission verdict for one request against one worker queue.
enum class Admit {
  kAccept,
  kShed,       ///< degradation ladder: load shed by class
  kQueueFull,  ///< hard cap: even critical traffic bounces
};

/// The degradation ladder, as a pure function of (class, queue depth,
/// config) so tests can sweep it exhaustively.
Admit admit_decision(TrafficClass cls, std::size_t depth,
                     const RouterConfig& cfg) noexcept;

/// Exponential backoff with deterministic jitter for retry `attempt`
/// (1-based): min(cap, base * 2^(attempt-1)) + jitter in [0, base),
/// jitter drawn from fnv1a64(entry seed, attempt). Monotone bounds are
/// pinned by tests/fleet_test.cpp.
double backoff_ms(int attempt, std::uint64_t jitter_seed,
                  const RouterConfig& cfg) noexcept;

/// The consistent-hash routing key: pattern for pattern/ordered kinds,
/// pattern + 0x1f + prefix for prefix kinds (distinct strength-meter
/// prefixes spread across the fleet), a seed-salted key for free kinds.
std::string routing_key(const serve::Request& req);

/// Router-level rejection line (same wire shape as a worker rejection).
std::string format_router_reject(const std::string& id, const char* reason,
                                 const std::string& detail);

class Router {
 public:
  explicit Router(RouterConfig cfg);
  ~Router();  ///< calls stop()

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Spawns and connects every worker. False (with *error) if any worker
  /// failed to come up; already-spawned workers are torn down.
  bool start(std::string* error);

  /// Drains in-flight work (bounded wait), shuts the workers down, joins
  /// every thread. Queued work that cannot finish rejects with
  /// shutting_down. Idempotent.
  void stop();

  /// Routes one parsed guess/stats request. `raw_line` is forwarded to
  /// the worker verbatim (responses correlate FIFO per connection, so the
  /// client's id passes through untouched). The future resolves with the
  /// worker's response line or a router rejection — exactly once, always.
  std::future<std::string> submit(const serve::WireRequest& req,
                                  std::string raw_line);

  /// Runs one dcgen shard op to completion on its routed worker over a
  /// dedicated connection, re-sending the identical line after a worker
  /// death (journal resume makes that byte-identical). Blocks; returns
  /// the worker's response line or a router rejection.
  std::string run_shard(const serve::WireRequest& req, std::string raw_line);

  /// Fleet stats line: per-worker health/depth/restarts + fleet counters.
  std::string stats_line(const std::string& id);

  /// Chaos hook (also the admin "kill" op): SIGKILL worker `k` and let
  /// supervision notice. False if k is out of range or the worker is not
  /// running.
  bool kill_worker(std::size_t k);

  std::size_t worker_count() const noexcept { return cfg_.workers; }
  /// The (stable) port worker `k` listens on. Valid after start().
  int worker_port(std::size_t k) const;

 private:
  struct Entry;
  struct Worker;
  struct RetryItem {
    std::int64_t due_us;
    std::shared_ptr<Entry> entry;
  };

  std::size_t pick_worker_locked(const std::string& key, std::size_t attempt)
      PPG_REQUIRES(mu_);
  void enqueue_locked(std::size_t w, std::shared_ptr<Entry> e)
      PPG_REQUIRES(mu_);
  /// Retry-or-reject for an entry whose send/receive failed.
  void reschedule_locked(std::shared_ptr<Entry> e, const char* why)
      PPG_REQUIRES(mu_);
  void request_restart_locked(std::size_t w, const char* why)
      PPG_REQUIRES(mu_);

  bool spawn_worker(std::size_t w, std::string* error);
  void teardown_worker_threads(Worker& wk);
  void sender_loop(std::size_t w, int incarnation);
  void receiver_loop(std::size_t w, int incarnation);
  void monitor_loop(std::size_t w, int incarnation);
  void supervisor_loop();
  void retry_loop();

  const RouterConfig cfg_;
  const Ring ring_;

  mutable Mutex mu_;
  CondVar supervisor_cv_;
  CondVar retry_cv_;
  bool started_ PPG_GUARDED_BY(mu_) = false;
  bool stopping_ PPG_GUARDED_BY(mu_) = false;
  std::vector<std::unique_ptr<Worker>> workers_ PPG_GUARDED_BY(mu_);
  std::vector<RetryItem> retry_heap_ PPG_GUARDED_BY(mu_);
  std::uint64_t stats_rr_ PPG_GUARDED_BY(mu_) = 0;  ///< stats spreading

  // Supervisor + retry timer threads; joined in stop() after stopping_
  // flips, never touched elsewhere.
  std::thread supervisor_;  // ppg-lint: allow(naked-thread, unannotated-mutex-sibling)
  std::thread retry_timer_;  // ppg-lint: allow(naked-thread, unannotated-mutex-sibling)
};

}  // namespace ppg::fleet
