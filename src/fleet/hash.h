// Consistent-hash ring for prefix-affinity routing (DESIGN.md §16).
//
// The router hashes each request's routing key (pattern, or
// pattern + prefix) onto a ring of virtual nodes, many per worker, so:
//  * the same key always lands on the same worker — its KV trie cache
//    stays hot for exactly its shard of the prefix space;
//  * adding/removing one worker remaps only ~1/N of the key space
//    (vnode interleaving), instead of reshuffling everything the way
//    `hash % N` would;
//  * successor(key, k) gives a deterministic fail-over order: the k-th
//    distinct worker clockwise from the key's point, which is where a
//    retry re-routes when the home worker is down.
//
// Everything is pure and seed-free: the ring layout depends only on
// (worker count, vnodes), so router restarts and tests see identical
// routing — tests/fleet_test.cpp pins a golden routing table.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"

namespace ppg::fleet {

/// FNV-1a 64-bit — tiny and seedless, but weak in the high bits for
/// short similar strings (each input byte only reaches the top bits
/// through repeated multiplies). Fine for jitter, NOT for ring
/// placement — use ring_hash() there.
inline std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Murmur3 fmix64 finalizer: full-avalanche bijection on 64 bits.
inline std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

/// Ring position of a label/key. Raw FNV-1a clusters "worker/3#…" and
/// "key/…" style strings into narrow bands of the 64-bit space (a
/// 4-worker ring routed ZERO keys to one worker), so the ring hashes
/// through the fmix64 finalizer to spread points uniformly.
inline std::uint64_t ring_hash(std::string_view s) {
  return mix64(fnv1a64(s));
}

class Ring {
 public:
  Ring(std::size_t workers, int vnodes) : workers_(workers) {
    PPG_CHECK(workers > 0, "ring needs at least one worker");
    PPG_CHECK(vnodes > 0, "ring needs at least one vnode per worker");
    points_.reserve(workers * static_cast<std::size_t>(vnodes));
    for (std::size_t w = 0; w < workers; ++w)
      for (int v = 0; v < vnodes; ++v)
        points_.push_back({ring_hash("worker/" + std::to_string(w) + "#" +
                                     std::to_string(v)),
                           w});
    std::sort(points_.begin(), points_.end());
  }

  std::size_t workers() const noexcept { return workers_; }

  /// The key's home worker.
  std::size_t route(std::string_view key) const { return successor(key, 0); }

  /// The k-th distinct worker clockwise from the key's ring position
  /// (k = 0 is the home worker). k wraps modulo the worker count, so any
  /// k names a valid worker and retries sweep the whole fleet.
  std::size_t successor(std::string_view key, std::size_t k) const {
    const std::uint64_t h = ring_hash(key);
    auto it = std::lower_bound(points_.begin(), points_.end(),
                               std::make_pair(h, std::size_t{0}));
    k %= workers_;
    std::vector<char> seen(workers_, 0);
    std::size_t distinct = 0;
    for (std::size_t step = 0; step < points_.size() + 1; ++step, ++it) {
      if (it == points_.end()) it = points_.begin();
      if (seen[it->second]) continue;
      seen[it->second] = 1;
      if (distinct++ == k) return it->second;
    }
    return 0;  // unreachable: the loop visits every vnode
  }

 private:
  std::size_t workers_;
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

}  // namespace ppg::fleet
