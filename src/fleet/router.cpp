#include "fleet/router.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/net.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "obs/metrics.h"

extern char** environ;

namespace ppg::fleet {

namespace {

constexpr std::size_t kNoWorker = static_cast<std::size_t>(-1);

struct FleetMetrics {
  obs::Counter& dispatched;
  obs::Counter& completed;
  obs::Counter& retries;
  obs::Counter& restarts;
  obs::Counter& shed;
  obs::Counter& rejected;
  obs::Counter& shard_resends;
  obs::Gauge& healthy_workers;
  static FleetMetrics& get() {
    auto& r = obs::Registry::global();
    static FleetMetrics m{r.counter("fleet.dispatched"),
                          r.counter("fleet.completed"),
                          r.counter("fleet.retries"),
                          r.counter("fleet.restarts"),
                          r.counter("fleet.shed"),
                          r.counter("fleet.rejected"),
                          r.counter("fleet.shard_resends"),
                          r.gauge("fleet.healthy_workers")};
    return m;
  }
};

void set_cloexec(int fd) {
  // Router-held fds must not leak into forked workers: a child still
  // holding a sibling's sockets would keep connections half-alive after
  // that sibling dies, hiding the very failures supervision watches for.
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* traffic_class_name(TrafficClass c) noexcept {
  switch (c) {
    case TrafficClass::kFree: return "free";
    case TrafficClass::kSampled: return "sampled";
    case TrafficClass::kCritical: return "critical";
  }
  return "unknown";
}

TrafficClass classify(const serve::WireRequest& req) noexcept {
  if (req.op != serve::WireRequest::Op::kGuess) return TrafficClass::kCritical;
  switch (req.guess.kind) {
    case serve::RequestKind::kFree: return TrafficClass::kFree;
    case serve::RequestKind::kPattern: return TrafficClass::kSampled;
    case serve::RequestKind::kPrefix:
    case serve::RequestKind::kOrdered: return TrafficClass::kCritical;
  }
  return TrafficClass::kCritical;
}

Admit admit_decision(TrafficClass cls, std::size_t depth,
                     const RouterConfig& cfg) noexcept {
  if (depth >= cfg.queue_depth) return Admit::kQueueFull;
  const double frac =
      static_cast<double>(depth) / static_cast<double>(cfg.queue_depth);
  if (cls == TrafficClass::kFree && frac >= cfg.shed_free_watermark)
    return Admit::kShed;
  if (cls == TrafficClass::kSampled && frac >= cfg.shed_sampled_watermark)
    return Admit::kShed;
  return Admit::kAccept;
}

double backoff_ms(int attempt, std::uint64_t jitter_seed,
                  const RouterConfig& cfg) noexcept {
  if (attempt < 1) attempt = 1;
  // Cap the exponent before pow so a pathological attempt count cannot
  // overflow to inf; the cap clamps the result anyway.
  const double exp =
      cfg.backoff_base_ms * std::pow(2.0, std::min(attempt - 1, 20));
  const double capped = std::min(exp, cfg.backoff_cap_ms);
  const std::uint64_t h = fnv1a64(std::to_string(jitter_seed) + "/" +
                                  std::to_string(attempt));
  const double jitter =
      cfg.backoff_base_ms * (static_cast<double>(h % 1000) / 1000.0);
  return capped + jitter;
}

std::string routing_key(const serve::Request& req) {
  switch (req.kind) {
    case serve::RequestKind::kFree:
      // No pattern to shard on; salt with the seed so free traffic still
      // spreads across the fleet instead of convoying on one worker.
      return "free/" + std::to_string(req.seed);
    case serve::RequestKind::kPrefix:
      return req.pattern + '\x1f' + req.prefix;
    default:
      return req.pattern;
  }
}

std::string format_router_reject(const std::string& id, const char* reason,
                                 const std::string& detail) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("status").value("rejected");
  w.key("reject").value(reason);
  w.key("error").value(detail);
  w.end_object();
  return w.take();
}

/// One routed request's lifecycle state. Shared between the worker queue
/// it sits in, the retry heap, and the submit() caller's future. Mutable
/// fields are only touched with the router's mu_ held.
struct Router::Entry {
  std::string id;
  std::string line;  ///< verbatim client line, newline-terminated
  std::string key;
  TrafficClass cls = TrafficClass::kCritical;
  std::uint64_t jitter_seed = 0;
  int attempt = 0;                 ///< failed attempts so far
  std::int64_t deadline_us = -1;  ///< steady-clock; -1 = none
  bool done = false;
  std::promise<std::string> promise;
};

/// One supervised worker process and its connections. All fields are
/// guarded by the router's mu_ except where a loop holds a copied fd and
/// relies on the incarnation check to detect staleness.
struct Router::Worker {
  std::size_t index = 0;
  net::ScopedFd listen_fd;  ///< bound once by the router, kept across
                            ///< restarts so the port never moves
  int port = -1;
  pid_t pid = -1;
  int incarnation = 0;  ///< bumped on every teardown; loops exit on mismatch
  bool healthy = false;
  bool needs_restart = false;
  const char* restart_reason = "";
  bool dead_forever = false;  ///< restart budget exhausted
  std::uint64_t restarts = 0;
  std::deque<std::shared_ptr<Entry>> queue;     ///< admitted, not yet sent
  std::deque<std::shared_ptr<Entry>> inflight;  ///< sent, awaiting response
  CondVar send_cv;
  net::ScopedFd data_fd;
  net::ScopedFd hb_fd;
  std::thread sender, receiver, monitor;  // ppg-lint: allow(naked-thread)
};

Router::Router(RouterConfig cfg)
    : cfg_(std::move(cfg)), ring_(cfg_.workers, cfg_.vnodes) {
  PPG_CHECK(cfg_.workers > 0, "fleet needs at least one worker");
  // A router that dies of SIGPIPE because one worker died is a failure
  // amplifier; every socket write already reports EPIPE via MSG_NOSIGNAL,
  // this covers any stray write path.
  ::signal(SIGPIPE, SIG_IGN);
}

Router::~Router() { stop(); }

std::size_t Router::pick_worker_locked(const std::string& key,
                                       std::size_t attempt) {
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    const std::size_t cand = ring_.successor(key, attempt + i);
    if (workers_[cand]->healthy) return cand;
  }
  return kNoWorker;
}

void Router::enqueue_locked(std::size_t w, std::shared_ptr<Entry> e) {
  Worker& wk = *workers_[w];
  wk.queue.push_back(std::move(e));
  wk.send_cv.notify_one();
}

void Router::reschedule_locked(std::shared_ptr<Entry> e, const char* why) {
  if (e->done) return;
  FleetMetrics& m = FleetMetrics::get();
  ++e->attempt;
  if (stopping_) {
    e->done = true;
    m.rejected.inc();
    e->promise.set_value(format_router_reject(
        e->id, "shutting_down", "fleet stopped while the request was queued"));
    return;
  }
  const std::int64_t now = steady_now_us();
  if (e->deadline_us >= 0 && now >= e->deadline_us) {
    e->done = true;
    m.rejected.inc();
    e->promise.set_value(format_router_reject(
        e->id, "retries_exhausted",
        std::string("deadline passed after failure: ") + why));
    return;
  }
  if (e->attempt > cfg_.max_retries) {
    e->done = true;
    m.rejected.inc();
    e->promise.set_value(format_router_reject(
        e->id, "retries_exhausted",
        std::string("gave up after ") + std::to_string(e->attempt) +
            " attempts: " + why));
    return;
  }
  m.retries.inc();
  const double delay = backoff_ms(e->attempt, e->jitter_seed, cfg_);
  retry_heap_.push_back(
      {now + static_cast<std::int64_t>(delay * 1000.0), std::move(e)});
  std::push_heap(retry_heap_.begin(), retry_heap_.end(),
                 [](const RetryItem& a, const RetryItem& b) {
                   return a.due_us > b.due_us;
                 });
  retry_cv_.notify_one();
}

void Router::request_restart_locked(std::size_t w, const char* why) {
  Worker& wk = *workers_[w];
  if (!wk.healthy || wk.needs_restart) return;  // already being handled
  wk.healthy = false;
  wk.needs_restart = true;
  wk.restart_reason = why;
  FleetMetrics::get().healthy_workers.add(-1.0);
  std::fprintf(stderr, "ppg_router: worker %zu unhealthy (%s)\n", w, why);
  supervisor_cv_.notify_all();
}

bool Router::spawn_worker(std::size_t w, std::string* error) {
  int listen_raw = -1;
  int port = -1;
  int inc = 0;
  {
    MutexLock lock(mu_);
    Worker& wk = *workers_[w];
    listen_raw = wk.listen_fd.get();
    port = wk.port;
    inc = wk.incarnation;
  }

  // argv/envp are fully built before fork: between fork and exec only
  // async-signal-safe calls are legal in a multithreaded parent.
  std::vector<std::string> args;
  args.push_back(cfg_.serve_bin);
  args.push_back("--listen-fd");
  args.push_back("3");
  for (const auto& a : cfg_.worker_args) args.push_back(a);
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  std::vector<std::string> env_store;
  std::vector<char*> envp;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "PPG_FAILPOINTS=", 15) == 0) continue;
    envp.push_back(*e);
  }
  if (inc == 0 && !cfg_.worker_failpoints.empty()) {
    // Chaos spec applies to the first incarnation only: the replacement
    // worker must come up clean, not die the same scripted death forever.
    env_store.push_back("PPG_FAILPOINTS=" + cfg_.worker_failpoints);
    envp.push_back(env_store.back().data());
  }
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error) *error = "fork failed: " + std::string(std::strerror(errno));
    return false;
  }
  if (pid == 0) {
    // The listen socket may already *be* fd 3 (first socket the router
    // opened): dup2(3,3) is a no-op that leaves FD_CLOEXEC set, and exec
    // would silently close the socket. Clear the flag explicitly instead.
    if (listen_raw == 3)
      ::fcntl(3, F_SETFD, 0);
    else
      ::dup2(listen_raw, 3);
    ::execve(argv[0], argv.data(), envp.data());
    _exit(127);
  }

  const net::Deadline connect_deadline =
      net::Deadline::after_ms(cfg_.connect_timeout_ms);
  const int data = net::connect_loopback(port, connect_deadline);
  const int hb =
      data >= 0 ? net::connect_loopback(port, connect_deadline) : -1;
  if (data < 0 || hb < 0) {
    if (data >= 0) ::close(data);
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    if (error)
      *error = "worker " + std::to_string(w) + " on port " +
               std::to_string(port) + " never became connectable";
    return false;
  }
  set_cloexec(data);
  set_cloexec(hb);

  {
    MutexLock lock(mu_);
    Worker& wk = *workers_[w];
    wk.pid = pid;
    wk.data_fd.reset(data);
    wk.hb_fd.reset(hb);
    wk.healthy = true;
    wk.needs_restart = false;
    // ppg-lint: allow(naked-thread) — audited lifecycle: every loop is
    // incarnation-checked and joined by the supervisor's teardown / stop().
    wk.sender = std::thread([this, w, inc] { sender_loop(w, inc); });    // ppg-lint: allow(naked-thread)
    wk.receiver = std::thread([this, w, inc] { receiver_loop(w, inc); });  // ppg-lint: allow(naked-thread)
    wk.monitor = std::thread([this, w, inc] { monitor_loop(w, inc); });  // ppg-lint: allow(naked-thread)
    FleetMetrics::get().healthy_workers.add(1.0);
    wk.send_cv.notify_all();
  }
  return true;
}

void Router::sender_loop(std::size_t w, int incarnation) {
  for (;;) {
    std::shared_ptr<Entry> e;
    int fd = -1;
    {
      MutexLock lock(mu_);
      Worker& wk = *workers_[w];
      while (wk.incarnation == incarnation && wk.healthy &&
             wk.queue.empty() && !stopping_)
        wk.send_cv.wait(lock);
      if (wk.incarnation != incarnation || !wk.healthy) return;
      if (wk.queue.empty()) return;  // stopping with nothing left to send
      e = wk.queue.front();
      wk.queue.pop_front();
      if (e->done) continue;  // e.g. rejected during a stop()
      wk.inflight.push_back(e);
      fd = wk.data_fd.get();
    }
    PPG_FAILPOINT("fleet.route.send");
    const net::IoStatus s = net::write_all(
        fd, e->line, net::Deadline::after_ms(cfg_.write_timeout_ms));
    if (s != net::IoStatus::kOk) {
      MutexLock lock(mu_);
      if (workers_[w]->incarnation != incarnation) return;
      request_restart_locked(w, "data connection send failed");
      return;  // the restart drain re-drives the inflight entries
    }
    FleetMetrics::get().dispatched.inc();
  }
}

void Router::receiver_loop(std::size_t w, int incarnation) {
  int fd = -1;
  {
    MutexLock lock(mu_);
    fd = workers_[w]->data_fd.get();
  }
  // No idle timeout here: responses legitimately take as long as the
  // model takes. Liveness is the heartbeat connection's job; a dead
  // worker surfaces as EOF/reset, and the restart path shuts this fd
  // down to unblock the poll.
  // ppg-lint: allow(blocking-socket-no-timeout) heartbeat owns liveness;
  // the restart path shuts this fd down to unblock the read.
  net::LineReader reader(fd, std::size_t(16) << 20, 0);  // ppg-lint: allow(blocking-socket-no-timeout)
  std::string line;
  for (;;) {
    const net::LineReader::Result r = reader.next(&line);
    MutexLock lock(mu_);
    Worker& wk = *workers_[w];
    if (wk.incarnation != incarnation) return;
    if (r != net::LineReader::Result::kLine) {
      if (!stopping_) request_restart_locked(w, "data connection lost");
      return;
    }
    if (wk.inflight.empty()) continue;  // stray line; nothing to correlate
    std::shared_ptr<Entry> e = wk.inflight.front();
    wk.inflight.pop_front();
    if (e->done) continue;
    e->done = true;
    FleetMetrics::get().completed.inc();
    e->promise.set_value(line);
  }
}

void Router::monitor_loop(std::size_t w, int incarnation) {
  int fd = -1;
  {
    MutexLock lock(mu_);
    fd = workers_[w]->hb_fd.get();
  }
  // Stats responses carry a full metrics snapshot; give them room.
  net::LineReader reader(fd, std::size_t(16) << 20, cfg_.heartbeat_timeout_ms);
  const std::string beat = "{\"op\":\"stats\",\"id\":\"hb\"}\n";
  std::string line;
  for (;;) {
    {
      MutexLock lock(mu_);
      Worker& wk = *workers_[w];
      if (wk.incarnation != incarnation || !wk.healthy || stopping_) return;
    }
    const net::IoStatus s = net::write_all(
        fd, beat, net::Deadline::after_ms(cfg_.heartbeat_timeout_ms));
    const net::LineReader::Result r =
        s == net::IoStatus::kOk ? reader.next(&line)
                                : net::LineReader::Result::kError;
    if (r != net::LineReader::Result::kLine) {
      MutexLock lock(mu_);
      Worker& wk = *workers_[w];
      if (wk.incarnation != incarnation || stopping_) return;
      request_restart_locked(
          w, r == net::LineReader::Result::kTimeout ? "heartbeat stalled"
                                                    : "heartbeat lost");
      return;
    }
    ::usleep(static_cast<useconds_t>(cfg_.heartbeat_interval_ms * 1000.0));
  }
}

void Router::teardown_worker_threads(Worker& wk) {
  // Caller must NOT hold mu_: the loops being joined take it to exit.
  if (wk.sender.joinable()) wk.sender.join();
  if (wk.receiver.joinable()) wk.receiver.join();
  if (wk.monitor.joinable()) wk.monitor.join();
}

void Router::supervisor_loop() {
  for (;;) {
    std::size_t target = kNoWorker;
    {
      MutexLock lock(mu_);
      while (!stopping_) {
        for (std::size_t w = 0; w < workers_.size(); ++w) {
          if (workers_[w]->needs_restart) {
            target = w;
            break;
          }
        }
        if (target != kNoWorker) break;
        // Bounded wait doubles as the child-reap poll tick.
        supervisor_cv_.wait_for(lock, std::chrono::milliseconds(50));
        break;
      }
      if (stopping_) return;
    }

    // Reap any children the kernel has for us; a reaped pid that still
    // matches a worker means that worker crashed (chaos kill, failpoint
    // _exit, OOM...) without its sockets having failed yet.
    for (;;) {
      const pid_t p = ::waitpid(-1, nullptr, WNOHANG);
      if (p <= 0) break;
      MutexLock lock(mu_);
      for (std::size_t w = 0; w < workers_.size(); ++w) {
        if (workers_[w]->pid == p) {
          workers_[w]->pid = -1;  // already reaped
          request_restart_locked(w, "worker process exited");
          if (target == kNoWorker) target = w;
        }
      }
    }
    if (target == kNoWorker) continue;

    PPG_FAILPOINT("fleet.worker.restart");

    // Teardown: invalidate the incarnation, wake and join every loop,
    // then make sure the process is gone.
    pid_t pid = -1;
    std::uint64_t restarts = 0;
    {
      MutexLock lock(mu_);
      Worker& wk = *workers_[target];
      wk.needs_restart = false;
      ++wk.incarnation;
      pid = wk.pid;
      wk.pid = -1;
      if (wk.data_fd.valid()) ::shutdown(wk.data_fd.get(), SHUT_RDWR);
      if (wk.hb_fd.valid()) ::shutdown(wk.hb_fd.get(), SHUT_RDWR);
      wk.send_cv.notify_all();
    }
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    teardown_worker_threads(*workers_[target]);
    {
      MutexLock lock(mu_);
      Worker& wk = *workers_[target];
      wk.data_fd.reset();
      wk.hb_fd.reset();
      restarts = ++wk.restarts;
      FleetMetrics::get().restarts.inc();
      // Re-drive everything the dead incarnation owed: requests are
      // idempotent (deterministic in model x request), so a re-send can
      // only reproduce the exact response the crash swallowed.
      for (auto& e : wk.inflight) reschedule_locked(e, wk.restart_reason);
      wk.inflight.clear();
      for (auto& e : wk.queue) reschedule_locked(e, wk.restart_reason);
      wk.queue.clear();
      if (stopping_) return;
      if (restarts > cfg_.max_restarts) {
        wk.dead_forever = true;
        std::fprintf(stderr,
                     "ppg_router: worker %zu exceeded %zu restarts, "
                     "leaving it down\n",
                     target, cfg_.max_restarts);
        continue;
      }
    }
    std::string err;
    if (!spawn_worker(target, &err)) {
      MutexLock lock(mu_);
      Worker& wk = *workers_[target];
      std::fprintf(stderr, "ppg_router: respawn of worker %zu failed: %s\n",
                   target, err.c_str());
      wk.needs_restart = true;  // try again next tick
      wk.restart_reason = "respawn failed";
    } else {
      std::fprintf(stderr, "ppg_router: worker %zu restarted (restart #%llu)\n",
                   target, static_cast<unsigned long long>(restarts));
    }
  }
}

void Router::retry_loop() {
  for (;;) {
    MutexLock lock(mu_);
    if (stopping_) {
      for (auto& item : retry_heap_) {
        if (item.entry->done) continue;
        item.entry->done = true;
        FleetMetrics::get().rejected.inc();
        item.entry->promise.set_value(format_router_reject(
            item.entry->id, "shutting_down",
            "fleet stopped while the request awaited retry"));
      }
      retry_heap_.clear();
      return;
    }
    if (retry_heap_.empty()) {
      retry_cv_.wait(lock);
      continue;
    }
    const std::int64_t now = steady_now_us();
    if (retry_heap_.front().due_us > now) {
      retry_cv_.wait_for(lock, std::chrono::microseconds(
                                   retry_heap_.front().due_us - now));
      continue;
    }
    std::pop_heap(retry_heap_.begin(), retry_heap_.end(),
                  [](const RetryItem& a, const RetryItem& b) {
                    return a.due_us > b.due_us;
                  });
    std::shared_ptr<Entry> e = std::move(retry_heap_.back().entry);
    retry_heap_.pop_back();
    if (e->done) continue;
    // Re-route to the next distinct ring worker (attempt advances the
    // successor index), skipping unhealthy ones.
    const std::size_t w = pick_worker_locked(
        e->key, static_cast<std::size_t>(e->attempt));
    if (w == kNoWorker) {
      reschedule_locked(e, "no healthy worker");
      continue;
    }
    // Retries respect the hard cap but skip the shed ladder: the request
    // was already admitted once, and dropping it now would turn a worker
    // crash into silent client-visible loss.
    Worker& wk = *workers_[w];
    if (wk.queue.size() + wk.inflight.size() >= cfg_.queue_depth) {
      reschedule_locked(e, "retry target queue full");
      continue;
    }
    enqueue_locked(w, std::move(e));
  }
}

bool Router::start(std::string* error) {
  {
    MutexLock lock(mu_);
    PPG_CHECK(!started_, "Router::start called twice");
    PPG_CHECK(!cfg_.serve_bin.empty(), "RouterConfig.serve_bin is required");
    workers_.clear();
    for (std::size_t w = 0; w < cfg_.workers; ++w) {
      auto wk = std::make_unique<Worker>();
      wk->index = w;
      const int fd = net::listen_loopback(0);
      if (fd < 0) {
        if (error) *error = "listen failed for worker " + std::to_string(w);
        workers_.clear();
        return false;
      }
      set_cloexec(fd);
      wk->listen_fd.reset(fd);
      wk->port = net::local_port(fd);
      workers_.push_back(std::move(wk));
    }
  }
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    if (!spawn_worker(w, error)) {
      stop();
      return false;
    }
  }
  {
    MutexLock lock(mu_);
    started_ = true;
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });  // ppg-lint: allow(naked-thread)
  retry_timer_ = std::thread([this] { retry_loop(); });  // ppg-lint: allow(naked-thread)
  return true;
}

void Router::stop() {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    if (workers_.empty()) return;  // never started
    stopping_ = true;
  }
  supervisor_cv_.notify_all();
  retry_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  if (retry_timer_.joinable()) retry_timer_.join();

  // Bounded drain: give in-flight responses a chance to land before the
  // teardown rejects what is left.
  const std::int64_t drain_deadline = steady_now_us() + 5'000'000;
  for (;;) {
    bool empty = true;
    {
      MutexLock lock(mu_);
      for (const auto& wk : workers_)
        if (!wk->queue.empty() || !wk->inflight.empty()) empty = false;
      for (auto& wk : workers_) wk->send_cv.notify_all();
    }
    if (empty || steady_now_us() >= drain_deadline) break;
    ::usleep(10000);
  }

  for (std::size_t w = 0; w < workers_.size(); ++w) {
    pid_t pid = -1;
    {
      MutexLock lock(mu_);
      Worker& wk = *workers_[w];
      if (wk.healthy) FleetMetrics::get().healthy_workers.add(-1.0);
      wk.healthy = false;
      ++wk.incarnation;
      pid = wk.pid;
      wk.pid = -1;
      if (wk.data_fd.valid()) ::shutdown(wk.data_fd.get(), SHUT_RDWR);
      if (wk.hb_fd.valid()) ::shutdown(wk.hb_fd.get(), SHUT_RDWR);
      wk.send_cv.notify_all();
    }
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    teardown_worker_threads(*workers_[w]);
    {
      MutexLock lock(mu_);
      Worker& wk = *workers_[w];
      wk.data_fd.reset();
      wk.hb_fd.reset();
      const auto reject_all = [&](std::deque<std::shared_ptr<Entry>>& q) {
        for (auto& e : q) {
          if (e->done) continue;
          e->done = true;
          FleetMetrics::get().rejected.inc();
          e->promise.set_value(format_router_reject(
              e->id, "shutting_down", "fleet stopped before completion"));
        }
        q.clear();
      };
      reject_all(wk.inflight);
      reject_all(wk.queue);
    }
  }
}

std::future<std::string> Router::submit(const serve::WireRequest& req,
                                        std::string raw_line) {
  auto e = std::make_shared<Entry>();
  e->id = req.id;
  raw_line += '\n';
  e->line = std::move(raw_line);
  e->cls = classify(req);
  std::future<std::string> fut = e->promise.get_future();
  FleetMetrics& m = FleetMetrics::get();

  MutexLock lock(mu_);
  if (req.op == serve::WireRequest::Op::kStats) {
    // Stats are shard-agnostic; a rotating key spreads them fleet-wide.
    e->key = "stats/" + std::to_string(stats_rr_++);
  } else {
    e->key = routing_key(req.guess);
    if (req.guess.timeout_ms > 0)
      e->deadline_us =
          steady_now_us() +
          static_cast<std::int64_t>(req.guess.timeout_ms * 1000.0);
  }
  e->jitter_seed = fnv1a64(e->key) ^ req.guess.seed;

  if (!started_ || stopping_) {
    e->done = true;
    m.rejected.inc();
    e->promise.set_value(
        format_router_reject(e->id, "shutting_down", "fleet is not serving"));
    return fut;
  }
  const std::size_t w = pick_worker_locked(e->key, 0);
  if (w == kNoWorker) {
    // A fully-dark fleet is only permanent when every worker has burned
    // through its restart budget. Otherwise supervision is mid-respawn
    // (the window right after a correlated crash), so park the request in
    // the retry heap — it re-routes with backoff once a worker is back,
    // instead of bouncing clients during a sub-second blip.
    bool permanent = true;
    for (const auto& worker : workers_)
      permanent = permanent && worker->dead_forever;
    if (permanent) {
      e->done = true;
      m.rejected.inc();
      e->promise.set_value(format_router_reject(
          e->id, "no_healthy_worker", "every worker is down for good"));
      return fut;
    }
    reschedule_locked(std::move(e), "no healthy worker at admission");
    return fut;
  }
  Worker& wk = *workers_[w];
  const std::size_t depth = wk.queue.size() + wk.inflight.size();
  switch (admit_decision(e->cls, depth, cfg_)) {
    case Admit::kShed:
      e->done = true;
      m.shed.inc();
      m.rejected.inc();
      e->promise.set_value(format_router_reject(
          e->id, "shed_load",
          std::string("worker ") + std::to_string(w) + " at depth " +
              std::to_string(depth) + " sheds " +
              traffic_class_name(e->cls) + " traffic"));
      return fut;
    case Admit::kQueueFull:
      e->done = true;
      m.rejected.inc();
      e->promise.set_value(format_router_reject(
          e->id, "worker_queue_full",
          std::string("worker ") + std::to_string(w) + " queue at cap " +
              std::to_string(cfg_.queue_depth)));
      return fut;
    case Admit::kAccept:
      break;
  }
  enqueue_locked(w, std::move(e));
  return fut;
}

std::string Router::run_shard(const serve::WireRequest& req,
                              std::string raw_line) {
  raw_line += '\n';
  const std::string key =
      req.dcgen.patterns.empty() ? "" : req.dcgen.patterns.front().first;
  // Generous overall budget: every failed attempt means a worker died and
  // journal resume makes the re-run cheap, but a fleet that cannot keep a
  // worker alive long enough must eventually say so.
  const int max_sends = std::max(10, cfg_.max_retries * 10);
  int sends = 0;
  for (;;) {
    int port = -1;
    {
      MutexLock lock(mu_);
      if (stopping_ || !started_)
        return format_router_reject(req.id, "shutting_down",
                                    "fleet is not serving");
      const std::size_t w =
          pick_worker_locked(key, static_cast<std::size_t>(sends));
      if (w != kNoWorker) port = workers_[w]->port;
    }
    if (port < 0) {
      // Everyone is restarting; wait a tick for supervision to catch up.
      ::usleep(static_cast<useconds_t>(cfg_.shard_poll_ms * 1000.0));
      continue;
    }
    if (sends++ >= max_sends)
      return format_router_reject(
          req.id, "retries_exhausted",
          "shard failed after " + std::to_string(max_sends) + " dispatches");
    if (sends > 1) FleetMetrics::get().shard_resends.inc();

    // Dedicated connection per shard dispatch: a dcgen op occupies its
    // worker-side connection for the whole generation, and must not
    // head-of-line-block guess traffic on the data connection.
    const int fd = net::connect_loopback(
        port, net::Deadline::after_ms(cfg_.connect_timeout_ms));
    if (fd < 0) {
      ::usleep(static_cast<useconds_t>(cfg_.shard_poll_ms * 1000.0));
      continue;
    }
    set_cloexec(fd);
    net::ScopedFd conn(fd);
    if (net::write_all(fd, raw_line,
                       net::Deadline::after_ms(cfg_.write_timeout_ms)) !=
        net::IoStatus::kOk) {
      ::usleep(static_cast<useconds_t>(cfg_.shard_poll_ms * 1000.0));
      continue;
    }
    // ppg-lint: allow(blocking-socket-no-timeout) a shard legitimately
    // runs unbounded; supervision kills a stalled worker, EOFing this fd.
    net::LineReader reader(fd, std::size_t(16) << 20, 0);  // ppg-lint: allow(blocking-socket-no-timeout)
    std::string line;
    if (reader.next(&line) == net::LineReader::Result::kLine) return line;
    // EOF/error mid-shard: the worker died. Supervision restarts it; the
    // identical re-send resumes from the D&C-GEN journal byte-identically.
    ::usleep(static_cast<useconds_t>(cfg_.shard_poll_ms * 1000.0));
  }
}

std::string Router::stats_line(const std::string& id) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("status").value("ok");
  w.key("op").value("fleet");
  {
    MutexLock lock(mu_);
    w.key("workers").begin_array();
    for (const auto& wk : workers_) {
      w.begin_object();
      w.key("port").value(static_cast<std::int64_t>(wk->port));
      w.key("healthy").value(wk->healthy);
      w.key("depth").value(
          static_cast<std::uint64_t>(wk->queue.size() + wk->inflight.size()));
      w.key("restarts").value(static_cast<std::uint64_t>(wk->restarts));
      w.end_object();
    }
    w.end_array();
  }
  w.key("metrics");
  obs::Registry::global().write_json(w);
  w.end_object();
  return w.take();
}

bool Router::kill_worker(std::size_t k) {
  pid_t pid = -1;
  {
    MutexLock lock(mu_);
    if (k >= workers_.size()) return false;
    pid = workers_[k]->pid;
  }
  if (pid <= 0) return false;
  ::kill(pid, SIGKILL);
  supervisor_cv_.notify_all();
  return true;
}

int Router::worker_port(std::size_t k) const {
  MutexLock lock(mu_);
  PPG_CHECK(k < workers_.size(), "worker index out of range");
  return workers_[k]->port;
}

}  // namespace ppg::fleet
