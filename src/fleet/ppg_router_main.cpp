// ppg_router: fleet coordinator speaking the same NDJSON protocol as
// ppg_serve on a front-end TCP port, fanning requests out to N supervised
// ppg_serve worker processes (src/fleet/router.h, DESIGN.md §16).
//
// Extra admin ops beyond the worker protocol:
//   {"op":"stats","id":"s"}            -> fleet summary (per-worker
//                                         health/depth/restarts + metrics)
//   {"op":"kill","worker":2,"id":"k"}  -> SIGKILL worker 2 (chaos hook;
//                                         supervision restarts it)
//   {"op":"shutdown","id":"x"}         -> stop the fleet, ack, exit
// guess ops route by pattern/prefix hash; dcgen ops run on a dedicated
// worker connection with crash-resume (journal) semantics.
//
// All diagnostics go to stderr; the protocol rides TCP only.
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/net.h"
#include "common/thread_annotations.h"
#include "fleet/router.h"
#include "obs/json.h"
#include "serve/wire.h"

namespace {

using namespace ppg;

std::string default_serve_bin() {
  if (const char* env = std::getenv("PPG_SERVE_BIN")) return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    std::string p(buf);
    const auto slash = p.rfind('/');
    if (slash != std::string::npos) {
      // Build-tree sibling layout: src/fleet/ppg_router, src/serve/ppg_serve.
      const std::string guess = p.substr(0, slash) + "/../serve/ppg_serve";
      if (::access(guess.c_str(), X_OK) == 0) return guess;
    }
  }
  return "ppg_serve";
}

/// One front-end client connection: NDJSON in, FIFO-ordered responses out
/// (futures from the router resolve in submission order). Returns true iff
/// a shutdown op was processed.
bool serve_client(fleet::Router& router, int fd, std::size_t max_line_bytes) {
  struct Outgoing {
    std::string line;
    std::future<std::string> fut;  ///< valid() => wait for the router
  };
  Mutex mu;
  CondVar cv;
  std::deque<Outgoing> fifo;
  bool closed = false;

  const auto push = [&](Outgoing o) {
    {
      MutexLock lock(mu);
      fifo.push_back(std::move(o));
    }
    cv.notify_one();
  };

  std::thread writer([&] {  // ppg-lint: allow(naked-thread)
    bool broken = false;
    for (;;) {
      Outgoing o;
      {
        MutexLock lock(mu);
        while (fifo.empty() && !closed) cv.wait(lock);
        if (fifo.empty()) return;
        o = std::move(fifo.front());
        fifo.pop_front();
      }
      if (o.fut.valid()) o.line = o.fut.get();
      if (broken) continue;  // keep draining futures
      o.line += '\n';
      if (net::write_all(fd, o.line, net::Deadline::after_ms(30000)) !=
          net::IoStatus::kOk)
        broken = true;
    }
  });

  bool did_shutdown = false;
  // ppg-lint: allow(blocking-socket-no-timeout) front-end clients may
  // idle indefinitely; shutdown closes the listener and every connection.
  net::LineReader reader(fd, max_line_bytes, 0);  // ppg-lint: allow(blocking-socket-no-timeout)
  std::string line;
  while (!did_shutdown) {
    const net::LineReader::Result r = reader.next(&line);
    if (r == net::LineReader::Result::kTooLong) {
      Outgoing o;
      o.line = serve::format_error_line(
          "", "request line exceeds max-line-bytes (" +
                  std::to_string(max_line_bytes) + " bytes)");
      push(std::move(o));
      continue;
    }
    if (r != net::LineReader::Result::kLine) break;
    if (line.empty()) continue;

    // Admin ops first (they are not part of the worker wire grammar).
    std::string id;
    const auto parsed = obs::parse_json(line);
    if (parsed && parsed->is_object()) {
      if (const auto s = parsed->get_string("id")) id = *s;
      const auto op = parsed->get_string("op");
      if (op && *op == "kill") {
        const auto widx = parsed->get_number("worker");
        const bool ok =
            widx && router.kill_worker(static_cast<std::size_t>(*widx));
        obs::JsonWriter w;
        w.begin_object();
        w.key("id").value(id);
        w.key("status").value(ok ? "ok" : "rejected");
        w.key("op").value("kill");
        if (!ok) {
          w.key("reject").value("bad_request");
          w.key("error").value("no such running worker");
        }
        w.end_object();
        Outgoing o;
        o.line = w.take();
        push(std::move(o));
        continue;
      }
      if (op && *op == "stats") {
        Outgoing o;
        o.line = router.stats_line(id);
        push(std::move(o));
        continue;
      }
    }

    std::string err;
    auto req = serve::parse_request_line(line, &err);
    if (!req) {
      Outgoing o;
      o.line = serve::format_error_line(id, err);
      push(std::move(o));
      continue;
    }
    switch (req->op) {
      case serve::WireRequest::Op::kGuess: {
        Outgoing o;
        o.fut = router.submit(*req, line);
        push(std::move(o));
        break;
      }
      case serve::WireRequest::Op::kDcGen: {
        // Blocking is intentional: a shard op owns its client connection
        // the same way it owns its worker connection.
        Outgoing o;
        o.line = router.run_shard(*req, line);
        push(std::move(o));
        break;
      }
      case serve::WireRequest::Op::kStats:
        break;  // handled above
      case serve::WireRequest::Op::kShutdown: {
        did_shutdown = true;
        router.stop();
        obs::JsonWriter w;
        w.begin_object();
        w.key("id").value(req->id);
        w.key("status").value("ok");
        w.key("op").value("shutdown");
        w.end_object();
        Outgoing o;
        o.line = w.take();
        push(std::move(o));
        break;
      }
    }
  }
  {
    MutexLock lock(mu);
    closed = true;
  }
  cv.notify_all();
  writer.join();
  return did_shutdown;
}

int run_front(fleet::Router& router, int port, std::size_t max_line_bytes) {
  const int listen_fd = net::listen_loopback(port);
  if (listen_fd < 0) {
    std::perror("ppg_router: bind/listen");
    return 1;
  }
  net::ScopedFd listener(listen_fd);
  std::fprintf(stderr, "ppg_router: serving on 127.0.0.1:%d\n",
               net::local_port(listen_fd));

  std::atomic<bool> stop{false};
  std::vector<std::thread> conns;  // ppg-lint: allow(naked-thread)
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stop.load()) continue;
      break;
    }
    conns.emplace_back([&router, &stop, fd, listen_fd, max_line_bytes] {
      if (serve_client(router, fd, max_line_bytes)) {
        stop.store(true);
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      ::close(fd);
    });
  }
  for (auto& t : conns)
    if (t.joinable()) t.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv,
            {"workers", "port", "serve-bin", "config", "seed",
             "serve-workers", "prefix-cache-mb", "max-line-bytes",
             "queue-depth", "vnodes", "heartbeat-interval-ms",
             "heartbeat-timeout-ms", "max-retries", "backoff-base-ms",
             "backoff-cap-ms", "worker-failpoints", "quantize", "help"});
    if (cli.get_bool("help")) {
      std::fprintf(
          stderr,
          "ppg_router: sharded ppg_serve fleet coordinator (DESIGN.md §16)\n"
          "  --workers N              worker processes (default 4)\n"
          "  --port N                 front-end TCP port (default 0 = auto)\n"
          "  --serve-bin PATH         ppg_serve binary (default: sibling in\n"
          "                           the build tree, or $PPG_SERVE_BIN)\n"
          "  --config NAME            worker model config (tiny|small|bench|\n"
          "                           paper, default tiny)\n"
          "  --seed N                 worker model seed (default 17)\n"
          "  --serve-workers N        threads per worker (default 1)\n"
          "  --prefix-cache-mb N      per-worker prefix KV cache budget\n"
          "  --max-line-bytes N       per-connection line cap (default 1MiB)\n"
          "  --queue-depth N          per-worker queued+inflight cap\n"
          "  --vnodes N               ring virtual nodes per worker\n"
          "  --heartbeat-interval-ms / --heartbeat-timeout-ms\n"
          "  --max-retries / --backoff-base-ms / --backoff-cap-ms\n"
          "  --worker-failpoints SPEC PPG_FAILPOINTS for incarnation 0 of\n"
          "                           every worker (chaos testing)\n"
          "  --quantize               int8 workers\n");
      return 0;
    }

    fleet::RouterConfig cfg;
    cfg.workers = static_cast<std::size_t>(cli.get_int("workers", 4));
    cfg.vnodes = static_cast<int>(cli.get_int("vnodes", 64));
    cfg.queue_depth = static_cast<std::size_t>(cli.get_int("queue-depth", 64));
    cfg.heartbeat_interval_ms =
        static_cast<double>(cli.get_int("heartbeat-interval-ms", 200));
    cfg.heartbeat_timeout_ms =
        static_cast<double>(cli.get_int("heartbeat-timeout-ms", 2000));
    cfg.max_retries = static_cast<int>(cli.get_int("max-retries", 3));
    cfg.backoff_base_ms =
        static_cast<double>(cli.get_int("backoff-base-ms", 10));
    cfg.backoff_cap_ms =
        static_cast<double>(cli.get_int("backoff-cap-ms", 500));
    cfg.serve_bin = cli.get("serve-bin", default_serve_bin());
    cfg.worker_failpoints = cli.get("worker-failpoints", "");
    cfg.worker_args = {"--config", cli.get("config", "tiny"),
                       "--seed", std::to_string(cli.get_int("seed", 17)),
                       "--workers",
                       std::to_string(cli.get_int("serve-workers", 1)),
                       "--prefix-cache-mb",
                       std::to_string(cli.get_int("prefix-cache-mb", 32)),
                       "--max-line-bytes",
                       std::to_string(cli.get_int("max-line-bytes",
                                                  std::int64_t(1) << 20))};
    if (cli.get_bool("quantize")) cfg.worker_args.push_back("--quantize");

    fleet::Router router(cfg);
    std::string err;
    if (!router.start(&err)) {
      std::fprintf(stderr, "ppg_router: fleet start failed: %s\n",
                   err.c_str());
      return 1;
    }
    for (std::size_t w = 0; w < router.worker_count(); ++w)
      std::fprintf(stderr, "ppg_router: worker %zu on 127.0.0.1:%d\n", w,
                   router.worker_port(w));
    const int rc = run_front(
        router, static_cast<int>(cli.get_int("port", 0)),
        static_cast<std::size_t>(
            cli.get_int("max-line-bytes", std::int64_t(1) << 20)));
    router.stop();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ppg_router: %s\n", e.what());
    return 1;
  }
}
