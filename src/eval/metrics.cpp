#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "pcfg/pattern.h"

namespace ppg::eval {

TestSet::TestSet(std::span<const std::string> passwords) {
  set_.reserve(passwords.size() * 2);
  for (const auto& pw : passwords) {
    if (!set_.insert(pw).second) continue;
    const std::string pat = pcfg::pattern_of(pw);
    by_pattern_[pat]++;
    by_segments_[pcfg::segment_count(pat)]++;
  }
}

std::size_t TestSet::count_with_pattern(const std::string& pattern) const {
  const auto it = by_pattern_.find(pattern);
  return it == by_pattern_.end() ? 0 : it->second;
}

std::size_t TestSet::count_with_segments(int segments) const {
  const auto it = by_segments_.find(segments);
  return it == by_segments_.end() ? 0 : it->second;
}

double repeat_rate(std::span<const std::string> guesses) {
  if (guesses.empty()) return 0.0;
  std::unordered_set<std::string> unique(guesses.begin(), guesses.end());
  return 1.0 - double(unique.size()) / double(guesses.size());
}

double hit_rate(std::span<const std::string> guesses, const TestSet& test) {
  if (test.size() == 0) return 0.0;
  std::unordered_set<std::string> unique(guesses.begin(), guesses.end());
  std::size_t hits = 0;
  for (const auto& g : unique)
    if (test.contains(g)) ++hits;
  return double(hits) / double(test.size());
}

GuessCurve::GuessCurve(const TestSet& test, std::size_t top_patterns)
    : test_(&test) {
  // Length distribution of the test set over 4..12.
  const double denom = std::max<double>(1.0, double(test.size()));
  std::unordered_map<std::string, std::uint64_t> pattern_counts;
  for (const auto& pw : test.passwords()) {
    if (pw.size() < test_length_prob_.size())
      test_length_prob_[pw.size()] += 1.0;
    pattern_counts[pcfg::pattern_of(pw)]++;
  }
  for (auto& v : test_length_prob_) v /= denom;
  std::vector<std::pair<std::string, std::uint64_t>> items(
      pattern_counts.begin(), pattern_counts.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const std::size_t keep = std::min(top_patterns, items.size());
  test_top_patterns_.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i)
    test_top_patterns_.emplace_back(items[i].first,
                                    double(items[i].second) / denom);
}

void GuessCurve::feed(std::span<const std::string> guesses) {
  for (const auto& g : guesses) {
    ++total_;
    if (g.size() < gen_lengths_.size()) gen_lengths_[g.size()]++;
    gen_patterns_[pcfg::pattern_of(g)]++;
    if (seen_.insert(g).second && test_->contains(g)) ++hits_;
  }
}

CurvePoint GuessCurve::snapshot() const {
  CurvePoint p;
  p.guesses = total_;
  p.unique = seen_.size();
  p.hits = hits_;
  p.hit_rate =
      test_->size() == 0 ? 0.0 : double(hits_) / double(test_->size());
  p.repeat_rate =
      total_ == 0 ? 0.0 : 1.0 - double(p.unique) / double(total_);
  if (total_ > 0) {
    double acc = 0.0;
    for (std::size_t len = 4; len <= 12; ++len) {
      const double gp = double(gen_lengths_[len]) / double(total_);
      const double d = test_length_prob_[len] - gp;
      acc += d * d;
    }
    p.length_distance = std::sqrt(acc);
    acc = 0.0;
    for (const auto& [pat, tp] : test_top_patterns_) {
      const auto it = gen_patterns_.find(pat);
      const double gp =
          it == gen_patterns_.end() ? 0.0 : double(it->second) / double(total_);
      const double d = tp - gp;
      acc += d * d;
    }
    p.pattern_distance = std::sqrt(acc);
  }
  return p;
}

double length_distance(std::span<const std::string> generated,
                       std::span<const std::string> test) {
  std::array<double, 16> gp{}, tp{};
  for (const auto& pw : generated)
    if (pw.size() < gp.size()) gp[pw.size()] += 1.0;
  for (const auto& pw : test)
    if (pw.size() < tp.size()) tp[pw.size()] += 1.0;
  const double gd = std::max<double>(1.0, double(generated.size()));
  const double td = std::max<double>(1.0, double(test.size()));
  double acc = 0.0;
  for (std::size_t len = 4; len <= 12; ++len) {
    const double d = tp[len] / td - gp[len] / gd;
    acc += d * d;
  }
  return std::sqrt(acc);
}

double pattern_distance(std::span<const std::string> generated,
                        std::span<const std::string> test, std::size_t top) {
  std::unordered_map<std::string, std::uint64_t> gc, tc;
  for (const auto& pw : generated) gc[pcfg::pattern_of(pw)]++;
  for (const auto& pw : test) tc[pcfg::pattern_of(pw)]++;
  std::vector<std::pair<std::string, std::uint64_t>> items(tc.begin(),
                                                           tc.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const double gd = std::max<double>(1.0, double(generated.size()));
  const double td = std::max<double>(1.0, double(test.size()));
  double acc = 0.0;
  for (std::size_t i = 0; i < std::min(top, items.size()); ++i) {
    const auto it = gc.find(items[i].first);
    const double gp = it == gc.end() ? 0.0 : double(it->second) / gd;
    const double d = double(items[i].second) / td - gp;
    acc += d * d;
  }
  return std::sqrt(acc);
}

double pattern_hit_rate(std::span<const std::string> generated,
                        const TestSet& test, const std::string& pattern) {
  const std::size_t denom = test.count_with_pattern(pattern);
  if (denom == 0) return 0.0;
  std::unordered_set<std::string> unique(generated.begin(), generated.end());
  std::size_t hits = 0;
  for (const auto& pw : unique)
    if (pcfg::pattern_of(pw) == pattern && test.contains(pw)) ++hits;
  return double(hits) / double(denom);
}

double category_hit_rate(std::span<const std::string> generated,
                         const TestSet& test, int segments) {
  const std::size_t denom = test.count_with_segments(segments);
  if (denom == 0) return 0.0;
  std::unordered_set<std::string> unique(generated.begin(), generated.end());
  std::size_t hits = 0;
  for (const auto& pw : unique) {
    if (pcfg::segment_count(pcfg::pattern_of(pw)) == segments &&
        test.contains(pw))
      ++hits;
  }
  return double(hits) / double(denom);
}

}  // namespace ppg::eval
