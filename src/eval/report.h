// Plain-text table rendering for the bench binaries: every bench prints
// the same rows/series as the paper's corresponding table or figure.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ppg::eval {

/// A fixed-column text table with an ASCII separator header, printed to
/// stdout. Cells are strings; callers format numbers themselves.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  /// Appends one row (must match the header count).
  void add_row(std::vector<std::string> row) {
    rows_.push_back(std::move(row));
  }

  /// Renders the table to stdout.
  void print(const std::string& title = "") const {
    if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = headers_[c].size();
    for (const auto& row : rows_)
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
        widths[c] = std::max(widths[c], row[c].size());
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf("| %-*s ", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("|\n");
    };
    print_row(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::printf("|");
      for (std::size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    }
    std::printf("|\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a ratio as a percent string like "12.34%".
inline std::string pct(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f%%", x * 100.0);
  return buf;
}

/// Formats a double with the given precision.
inline std::string num(double x, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, x);
  return buf;
}

/// Formats an integer count.
inline std::string count(std::uint64_t x) { return std::to_string(x); }

}  // namespace ppg::eval
