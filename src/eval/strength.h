// Monte-Carlo guess-number estimation (Dell'Amico & Filippone, CCS 2015).
//
// Given any password model that can (a) sample passwords and (b) score
// log-probabilities, estimate the *guess number* of a password — how many
// guesses an attacker enumerating the model in descending-probability
// order would need before reaching it. This is the standard way to turn a
// generative password model into a strength meter, and the defensive
// counterpart of the paper's trawling attack: a password is safe against a
// 10^14-guess attacker (paper §III-A) iff its estimated guess number
// exceeds that budget.
//
// Method: draw m samples x_i from the model; the guess number of a
// password with log-probability ℓ is estimated by
//   G(ℓ) ≈ Σ_{i : log p(x_i) > ℓ} 1 / (m · p(x_i)),
// an unbiased estimator of the number of passwords more probable than ℓ.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"

namespace ppg::eval {

/// Precomputed Monte-Carlo estimator over one model.
class StrengthEstimator {
 public:
  /// Model interface: a sampler and a log-probability scorer.
  using Sampler = std::function<std::string(Rng&)>;
  using LogProb = std::function<double(std::string_view)>;

  /// Draws `samples` passwords and builds the cumulative table.
  /// Degenerate samples (log-prob ≤ -1e29) are dropped.
  StrengthEstimator(const Sampler& sample, LogProb log_prob,
                    std::size_t samples, Rng& rng);

  /// Estimated guess number of a password; +inf-like large value
  /// (1e30) when the model assigns it (effectively) zero probability.
  double guess_number(std::string_view password) const;

  /// Estimated guess number for a given log-probability.
  double guess_number_for_log_prob(double log_prob) const;

  /// Number of usable Monte-Carlo samples.
  std::size_t sample_count() const noexcept { return points_.size(); }

  /// Human-readable strength band for a guess number, using the paper's
  /// threat-model budget (§III-A: up to 10^14 guesses) as the top band.
  static std::string band(double guess_number);

 private:
  struct Point {
    double log_prob;       // descending
    double cumulative;     // Σ 1/(m·p) over samples with higher log-prob
  };
  LogProb log_prob_;
  std::vector<Point> points_;
};

}  // namespace ppg::eval
