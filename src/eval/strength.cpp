#include "eval/strength.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ppg::eval {

StrengthEstimator::StrengthEstimator(const Sampler& sample, LogProb log_prob,
                                     std::size_t samples, Rng& rng)
    : log_prob_(std::move(log_prob)) {
  if (samples == 0)
    throw std::invalid_argument("StrengthEstimator: samples must be > 0");
  std::vector<double> lps;
  lps.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const std::string pw = sample(rng);
    const double lp = log_prob_(pw);
    if (lp > -1e29) lps.push_back(lp);
  }
  if (lps.empty())
    throw std::runtime_error(
        "StrengthEstimator: every sample scored zero probability — the "
        "sampler and scorer disagree about the model");
  std::sort(lps.begin(), lps.end(), std::greater<>());
  points_.reserve(lps.size());
  const double inv_m = 1.0 / double(lps.size());
  double acc = 0.0;
  for (const double lp : lps) {
    // cumulative strictly *before* this sample: number of more-probable
    // passwords estimated so far.
    points_.push_back({lp, acc});
    acc += inv_m * std::exp(-lp);
  }
}

double StrengthEstimator::guess_number_for_log_prob(double log_prob) const {
  if (log_prob <= -1e29) return 1e30;
  // First point with log_prob <= target (points_ sorted descending).
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), log_prob,
      [](const Point& p, double target) { return p.log_prob > target; });
  if (it == points_.begin()) return 1.0;  // more probable than every sample
  if (it == points_.end()) {
    // Less probable than every sample: extrapolate past the last point.
    const Point& last = points_.back();
    return last.cumulative + std::exp(-last.log_prob) / double(points_.size());
  }
  return std::max(1.0, it->cumulative);
}

double StrengthEstimator::guess_number(std::string_view password) const {
  return guess_number_for_log_prob(log_prob_(password));
}

std::string StrengthEstimator::band(double guess_number) {
  if (guess_number < 1e4) return "very weak (< 10^4 guesses)";
  if (guess_number < 1e6) return "weak (< 10^6)";
  if (guess_number < 1e10) return "moderate (< 10^10)";
  if (guess_number < 1e14) return "strong (< 10^14, paper threat budget)";
  return "very strong (beyond the paper's 10^14-guess attacker)";
}

}  // namespace ppg::eval
