// Evaluation metrics of the paper's §IV: hit rate, repeat rate, per-
// category and per-pattern hit rates (Eqs. 4-5), and length/pattern
// distribution distances (Eqs. 6-7), plus an incremental guess-curve
// evaluator that produces Table IV and Fig. 10/11 series in one pass.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ppg::eval {

/// A deduplicated test set with pattern/category indexes precomputed.
class TestSet {
 public:
  /// Builds from cleaned test passwords (deduplicates defensively).
  explicit TestSet(std::span<const std::string> passwords);

  /// Number of distinct test passwords.
  std::size_t size() const noexcept { return set_.size(); }

  /// Membership test.
  bool contains(const std::string& pw) const { return set_.contains(pw); }

  /// Count of test passwords whose pattern is exactly `pattern`.
  std::size_t count_with_pattern(const std::string& pattern) const;

  /// Count of test passwords whose pattern has `segments` segments.
  std::size_t count_with_segments(int segments) const;

  /// All distinct test passwords.
  const std::unordered_set<std::string>& passwords() const noexcept {
    return set_;
  }

 private:
  std::unordered_set<std::string> set_;
  std::unordered_map<std::string, std::size_t> by_pattern_;
  std::unordered_map<int, std::size_t> by_segments_;
};

/// Fraction of duplicate entries among `guesses` (paper §IV-D2):
/// 1 - unique/total.
double repeat_rate(std::span<const std::string> guesses);

/// Simple one-shot hit rate: |unique(guesses) ∩ test| / |test|.
double hit_rate(std::span<const std::string> guesses, const TestSet& test);

/// One checkpoint of an incremental guessing run.
struct CurvePoint {
  std::uint64_t guesses = 0;     ///< total guesses consumed so far
  std::uint64_t unique = 0;      ///< distinct guesses so far
  std::uint64_t hits = 0;        ///< distinct test passwords hit so far
  double hit_rate = 0.0;         ///< hits / |test|
  double repeat_rate = 0.0;      ///< 1 - unique/guesses
  double length_distance = 0.0;  ///< Eq. 6 over guesses so far
  double pattern_distance = 0.0; ///< Eq. 7 over guesses so far
};

/// Streaming evaluator: feed guesses in any chunking, snapshot at chosen
/// budgets. Tracks the distinct-guess set, hits against the test set, and
/// the running length/pattern histograms for the distance metrics.
class GuessCurve {
 public:
  /// `top_patterns` is the number of most-common test patterns entering the
  /// pattern-distance sum (paper uses 150).
  explicit GuessCurve(const TestSet& test, std::size_t top_patterns = 150);

  /// Consumes a batch of guesses (duplicates allowed; that is the point).
  void feed(std::span<const std::string> guesses);

  /// Current metrics.
  CurvePoint snapshot() const;

  /// Total guesses consumed.
  std::uint64_t consumed() const noexcept { return total_; }

 private:
  const TestSet* test_;
  std::unordered_set<std::string> seen_;
  std::uint64_t total_ = 0;
  std::uint64_t hits_ = 0;
  // Length histogram over guesses (indices 4..12 used; others = invalid).
  std::array<std::uint64_t, 16> gen_lengths_{};
  std::unordered_map<std::string, std::uint64_t> gen_patterns_;
  // Test-side reference distributions.
  std::array<double, 16> test_length_prob_{};
  std::vector<std::pair<std::string, double>> test_top_patterns_;
};

/// Eq. 6: Euclidean distance between the length distributions (lengths
/// 4..12) of two password multisets.
double length_distance(std::span<const std::string> generated,
                       std::span<const std::string> test);

/// Eq. 7: Euclidean distance between the distributions of the `top`
/// most-common test patterns in two password multisets.
double pattern_distance(std::span<const std::string> generated,
                        std::span<const std::string> test,
                        std::size_t top = 150);

/// Eq. 5: hit rate restricted to one pattern — generated passwords are
/// matched against test passwords conforming to `pattern`.
double pattern_hit_rate(std::span<const std::string> generated,
                        const TestSet& test, const std::string& pattern);

/// Eq. 4: hit rate restricted to one segment-count category.
double category_hit_rate(std::span<const std::string> generated,
                         const TestSet& test, int segments);

}  // namespace ppg::eval
