// Uniform password-generator interface used by the guess-curve benches so
// Table IV / Fig. 10 can iterate one loop over six heterogeneous models.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace ppg::eval {

/// A named batch-generation callback: produce up to `count` guesses.
struct NamedGenerator {
  std::string name;
  std::function<std::vector<std::string>(std::size_t count, Rng& rng)> generate;
};

/// Runs one generator along a ladder of guess budgets, feeding a
/// GuessCurve-compatible sink in chunks so memory stays bounded.
/// `sink(chunk)` is called with successive guess batches; `checkpoint(b)`
/// after the cumulative count reaches budget b (in ladder order).
template <typename Sink, typename Checkpoint>
void run_guess_ladder(const NamedGenerator& gen,
                      const std::vector<std::uint64_t>& ladder,
                      std::size_t chunk_size, Rng& rng, Sink&& sink,
                      Checkpoint&& checkpoint) {
  std::uint64_t produced = 0;
  for (const std::uint64_t budget : ladder) {
    while (produced < budget) {
      const std::size_t want = static_cast<std::size_t>(
          std::min<std::uint64_t>(chunk_size, budget - produced));
      auto chunk = gen.generate(want, rng);
      if (chunk.empty()) {
        // Generator exhausted / refuses to produce; pad accounting with
        // empty guesses so budgets stay comparable.
        chunk.assign(want, std::string());
      }
      produced += chunk.size();
      sink(chunk);
    }
    checkpoint(budget);
  }
}

}  // namespace ppg::eval
