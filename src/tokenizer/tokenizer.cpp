#include "tokenizer/tokenizer.h"

#include <stdexcept>

namespace ppg::tok {

namespace {
constexpr int class_block(pcfg::CharClass cls) noexcept {
  switch (cls) {
    case pcfg::CharClass::kLetter: return 0;
    case pcfg::CharClass::kDigit: return 1;
    default: return 2;
  }
}
}  // namespace

int Tokenizer::pattern_token(pcfg::CharClass cls, int len) {
  if (len < 1 || len > kMaxSegmentLen)
    throw std::out_of_range("Tokenizer::pattern_token: segment length " +
                            std::to_string(len) + " outside [1,12]");
  return kPatternBase + class_block(cls) * kMaxSegmentLen + (len - 1);
}

int Tokenizer::char_token(char c) noexcept {
  if (!pcfg::in_universe(c)) return kUnk;
  return kCharBase + (static_cast<unsigned char>(c) - 0x21);
}

pcfg::Segment Tokenizer::token_segment(int id) noexcept {
  const int rel = id - kPatternBase;
  const int block = rel / kMaxSegmentLen;
  const int len = rel % kMaxSegmentLen + 1;
  const pcfg::CharClass cls = block == 0   ? pcfg::CharClass::kLetter
                              : block == 1 ? pcfg::CharClass::kDigit
                                           : pcfg::CharClass::kSpecial;
  return {cls, len};
}

std::string Tokenizer::token_name(int id) {
  switch (id) {
    case kBos: return "<BOS>";
    case kSep: return "<SEP>";
    case kEos: return "<EOS>";
    case kUnk: return "<UNK>";
    case kPad: return "<PAD>";
    case kReserved: return "<RES>";
    default: break;
  }
  if (is_pattern_token(id)) {
    const auto seg = token_segment(id);
    return std::string(1, pcfg::class_tag(seg.cls)) + std::to_string(seg.len);
  }
  if (is_char_token(id)) return std::string(1, token_char(id));
  return "<BAD:" + std::to_string(id) + ">";
}

std::optional<std::vector<int>> Tokenizer::encode_training(
    std::string_view password, int max_password_len) {
  if (password.empty() ||
      password.size() > static_cast<std::size_t>(max_password_len))
    return std::nullopt;
  const auto segs = pcfg::segment(password);
  if (segs.empty()) return std::nullopt;  // out-of-universe character
  std::vector<int> ids;
  ids.reserve(2 + segs.size() + password.size() + 1);
  ids.push_back(kBos);
  for (const auto& s : segs) {
    if (s.len > kMaxSegmentLen) return std::nullopt;
    ids.push_back(pattern_token(s.cls, s.len));
  }
  ids.push_back(kSep);
  for (const char c : password) ids.push_back(char_token(c));
  ids.push_back(kEos);
  return ids;
}

std::vector<int> Tokenizer::encode_generation_prefix(
    const std::vector<pcfg::Segment>& pattern) {
  std::vector<int> ids;
  ids.reserve(pattern.size() + 2);
  ids.push_back(kBos);
  for (const auto& s : pattern) {
    if (s.len < 1 || s.len > kMaxSegmentLen)
      throw std::invalid_argument(
          "Tokenizer::encode_generation_prefix: segment length outside [1,12]");
    ids.push_back(pattern_token(s.cls, s.len));
  }
  ids.push_back(kSep);
  return ids;
}

std::optional<std::vector<int>> Tokenizer::encode_password_only(
    std::string_view password, int max_password_len) {
  if (password.empty() ||
      password.size() > static_cast<std::size_t>(max_password_len))
    return std::nullopt;
  std::vector<int> ids;
  ids.reserve(password.size() + 2);
  ids.push_back(kBos);
  for (const char c : password) {
    if (!pcfg::in_universe(c)) return std::nullopt;
    ids.push_back(char_token(c));
  }
  ids.push_back(kEos);
  return ids;
}

std::optional<std::string> Tokenizer::decode_password(
    std::span<const int> ids) {
  // Find the password region start: after <SEP> when present, else after
  // <BOS>, else the whole sequence.
  std::size_t start = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == kSep) {
      start = i + 1;
      break;
    }
  }
  if (start == 0 && !ids.empty() && ids[0] == kBos) start = 1;
  std::string pw;
  for (std::size_t i = start; i < ids.size(); ++i) {
    if (ids[i] == kEos) return pw;
    if (!is_char_token(ids[i])) return std::nullopt;
    pw += token_char(ids[i]);
  }
  return std::nullopt;  // no <EOS>
}

std::string Tokenizer::decode_debug(std::span<const int> ids) {
  std::string s;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i) s += ' ';
    s += token_name(ids[i]);
  }
  return s;
}

}  // namespace ppg::tok
