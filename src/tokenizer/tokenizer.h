// The PagPassGPT tokenizer (paper §III-B1, Figs. 4–5).
//
// Vocabulary, exactly as the paper specifies:
//   * 5 special tokens: <BOS> <SEP> <EOS> <UNK> <PAD>
//   * 36 pattern tokens: L1..L12, N1..N12, S1..S12
//   * 94 printable-ASCII character tokens (0x21..0x7e; space excluded)
// The paper reports a 136-token total (94+5+36 = 135); we reserve index 135
// as an unused <RES> slot so the embedding width matches the published
// figure while keeping the three published categories intact.
//
// Rules (token sequences):
//   training     <BOS> ‖ pattern ‖ <SEP> ‖ password ‖ <EOS>
//   generation   <BOS> ‖ pattern ‖ <SEP>
// where `pattern` is the PCFG pattern of the password, one token per
// segment (e.g. "Pass123$" → L4 N3 S1).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pcfg/pattern.h"

namespace ppg::tok {

/// Stateless encoder/decoder between rules and token-index lists.
class Tokenizer {
 public:
  // Special token indices.
  static constexpr int kBos = 0;
  static constexpr int kSep = 1;
  static constexpr int kEos = 2;
  static constexpr int kUnk = 3;
  static constexpr int kPad = 4;
  /// First pattern token (L1); pattern tokens span [5, 41).
  static constexpr int kPatternBase = 5;
  /// Maximum per-segment length representable (L12/N12/S12).
  static constexpr int kMaxSegmentLen = 12;
  /// First character token; character tokens span [41, 135).
  static constexpr int kCharBase = 41;
  /// Reserved tail slot; total matches the paper's reported 136.
  static constexpr int kReserved = 135;
  /// Embedding-table width.
  static constexpr int kVocabSize = 136;

  /// Token for one pattern segment (e.g. {kLetter, 4} → "L4").
  /// Throws std::out_of_range when len is outside [1, 12].
  static int pattern_token(pcfg::CharClass cls, int len);

  /// Token for an in-universe character; <UNK> otherwise.
  static int char_token(char c) noexcept;

  /// True when id denotes a password character.
  static bool is_char_token(int id) noexcept {
    return id >= kCharBase && id < kCharBase + 94;
  }

  /// The character a char token denotes. Precondition: is_char_token(id).
  static char token_char(int id) noexcept {
    return static_cast<char>(id - kCharBase + 0x21);
  }

  /// True when id denotes a pattern segment.
  static bool is_pattern_token(int id) noexcept {
    return id >= kPatternBase && id < kPatternBase + 36;
  }

  /// The segment a pattern token denotes. Precondition: is_pattern_token.
  static pcfg::Segment token_segment(int id) noexcept;

  /// Human-readable token name ("<BOS>", "L4", "a", …).
  static std::string token_name(int id);

  /// Encodes the training rule for a password. Returns std::nullopt when
  /// the password is empty, exceeds max_password_len, contains
  /// out-of-universe characters, or has a segment longer than 12.
  static std::optional<std::vector<int>> encode_training(
      std::string_view password, int max_password_len = 12);

  /// Encodes the generation prefix <BOS> ‖ pattern ‖ <SEP> for a pattern.
  /// Throws std::invalid_argument when a segment length exceeds 12.
  static std::vector<int> encode_generation_prefix(
      const std::vector<pcfg::Segment>& pattern);

  /// PassGPT-style rule without pattern conditioning: <BOS> ‖ pw ‖ <EOS>.
  static std::optional<std::vector<int>> encode_password_only(
      std::string_view password, int max_password_len = 12);

  /// Extracts the password characters from a full generated sequence:
  /// everything after the (first) <SEP> — or after <BOS> when no <SEP>
  /// exists (password-only rules) — up to <EOS>. Returns std::nullopt when
  /// the region contains a non-character token or no terminating <EOS>.
  static std::optional<std::string> decode_password(std::span<const int> ids);

  /// Renders a whole token sequence for diagnostics, e.g.
  /// "<BOS> L4 N3 S1 <SEP> P a s s 1 2 3 $ <EOS>".
  static std::string decode_debug(std::span<const int> ids);

  /// Longest rule an encode_training can produce for the given password
  /// limit: <BOS> + ceil-many pattern tokens + <SEP> + chars + <EOS>.
  static constexpr int max_rule_len(int max_password_len = 12) {
    return 1 + max_password_len + 1 + max_password_len + 1;
  }
};

}  // namespace ppg::tok
