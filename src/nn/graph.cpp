#include "nn/graph.h"

#include "nn/kernels.h"

#include <cmath>
#include <stdexcept>

namespace ppg::nn {
namespace {

void require(bool cond, const char* msg) {
  if (!cond) throw std::invalid_argument(msg);
}

constexpr float kInvSqrt2 = 0.7071067811865475f;
constexpr float kInvSqrt2Pi = 0.3989422804014327f;

}  // namespace

// ---- core linear algebra ---------------------------------------------

Tensor Graph::matmul(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank-2 tensors required");
  require(a.dim(1) == b.dim(0), "matmul: inner dimensions differ");
  const Index m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  kernels::gemm_nn(m, n, k, a.data().data(), b.data().data(), out.data().data());
  record([a, b, out, m, n, k]() mutable {
    // dA += dC · Bᵀ ; dB += Aᵀ · dC
    kernels::gemm_nt(m, k, n, out.grad().data(), b.data().data(), a.grad().data());
    kernels::gemm_tn(k, n, m, a.data().data(), out.grad().data(), b.grad().data());
  });
  return out;
}

Tensor Graph::linear(const Tensor& x, const Tensor& w, const Tensor& bias) {
  require(x.rank() == 2 && w.rank() == 2 && bias.rank() == 1,
          "linear: x,W rank-2 and bias rank-1 required");
  require(x.dim(1) == w.dim(0), "linear: x/W inner dimensions differ");
  require(bias.dim(0) == w.dim(1), "linear: bias length != output width");
  const Index m = x.dim(0), k = x.dim(1), n = w.dim(1);
  Tensor out({m, n});
  float* o = out.data().data();
  const float* bv = bias.data().data();
  for (Index i = 0; i < m; ++i)
    for (Index j = 0; j < n; ++j) o[i * n + j] = bv[j];
  kernels::gemm_nn(m, n, k, x.data().data(), w.data().data(), o);
  record([x, w, bias, out, m, n, k]() mutable {
    kernels::gemm_nt(m, k, n, out.grad().data(), w.data().data(), x.grad().data());
    kernels::gemm_tn(k, n, m, x.data().data(), out.grad().data(), w.grad().data());
    float* db = bias.grad().data();
    const float* dout = out.grad().data();
    for (Index i = 0; i < m; ++i)
      for (Index j = 0; j < n; ++j) db[j] += dout[i * n + j];
  });
  return out;
}

// ---- elementwise -------------------------------------------------------

namespace {
void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.shape() != b.shape()) throw std::invalid_argument(std::string(op) + ": shape mismatch");
}
}  // namespace

Tensor Graph::add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add");
  Tensor out(a.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] + b.data()[i];
  record([a, b, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = out.grad()[i];
      a.grad()[i] += g;
      b.grad()[i] += g;
    }
  });
  return out;
}

Tensor Graph::sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub");
  Tensor out(a.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] - b.data()[i];
  record([a, b, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = out.grad()[i];
      a.grad()[i] += g;
      b.grad()[i] -= g;
    }
  });
  return out;
}

Tensor Graph::mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor out(a.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = a.data()[i] * b.data()[i];
  record([a, b, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i) {
      const float g = out.grad()[i];
      a.grad()[i] += g * b.data()[i];
      b.grad()[i] += g * a.data()[i];
    }
  });
  return out;
}

Tensor Graph::mul_row(const Tensor& x, const Tensor& v) {
  require(x.rank() == 2 && v.rank() == 1, "mul_row: need rank-2 x, rank-1 v");
  require(x.dim(1) == v.dim(0), "mul_row: width mismatch");
  const Index m = x.dim(0), n = x.dim(1);
  Tensor out({m, n});
  for (Index i = 0; i < m; ++i)
    for (Index j = 0; j < n; ++j) out.at(i, j) = x.at(i, j) * v.at(j);
  record([x, v, out, m, n]() mutable {
    for (Index i = 0; i < m; ++i) {
      for (Index j = 0; j < n; ++j) {
        const float g = out.grad()[i * n + j];
        x.grad()[i * n + j] += g * v.at(j);
        v.grad()[j] += g * x.at(i, j);
      }
    }
  });
  return out;
}

Tensor Graph::scale(const Tensor& x, float c) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = x.data()[i] * c;
  record([x, out, n, c]() mutable {
    for (std::size_t i = 0; i < n; ++i) x.grad()[i] += out.grad()[i] * c;
  });
  return out;
}

Tensor Graph::add_scalar(const Tensor& x, float c) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = x.data()[i] + c;
  record([x, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i) x.grad()[i] += out.grad()[i];
  });
  return out;
}

Tensor Graph::gelu(const Tensor& x) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) {
    const float v = x.data()[i];
    out.data()[i] = 0.5f * v * (1.f + std::erf(v * kInvSqrt2));
  }
  record([x, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i) {
      const float v = x.data()[i];
      const float cdf = 0.5f * (1.f + std::erf(v * kInvSqrt2));
      const float pdf = kInvSqrt2Pi * std::exp(-0.5f * v * v);
      x.grad()[i] += out.grad()[i] * (cdf + v * pdf);
    }
  });
  return out;
}

Tensor Graph::relu(const Tensor& x) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i)
    out.data()[i] = x.data()[i] > 0.f ? x.data()[i] : 0.f;
  record([x, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i)
      if (x.data()[i] > 0.f) x.grad()[i] += out.grad()[i];
  });
  return out;
}

Tensor Graph::tanh_op(const Tensor& x) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = std::tanh(x.data()[i]);
  record([x, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i) {
      const float t = out.data()[i];
      x.grad()[i] += out.grad()[i] * (1.f - t * t);
    }
  });
  return out;
}

Tensor Graph::sigmoid(const Tensor& x) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i)
    out.data()[i] = 1.f / (1.f + std::exp(-x.data()[i]));
  record([x, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i) {
      const float s = out.data()[i];
      x.grad()[i] += out.grad()[i] * s * (1.f - s);
    }
  });
  return out;
}

Tensor Graph::exp_op(const Tensor& x) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = std::exp(x.data()[i]);
  record([x, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i)
      x.grad()[i] += out.grad()[i] * out.data()[i];
  });
  return out;
}

Tensor Graph::log_op(const Tensor& x) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i) out.data()[i] = std::log(x.data()[i]);
  record([x, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i)
      x.grad()[i] += out.grad()[i] / x.data()[i];
  });
  return out;
}

Tensor Graph::square(const Tensor& x) {
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  for (std::size_t i = 0; i < n; ++i)
    out.data()[i] = x.data()[i] * x.data()[i];
  record([x, out, n]() mutable {
    for (std::size_t i = 0; i < n; ++i)
      x.grad()[i] += out.grad()[i] * 2.f * x.data()[i];
  });
  return out;
}

Tensor Graph::dropout(const Tensor& x, float p, Rng& rng) {
  require(p >= 0.f && p < 1.f, "dropout: p must be in [0,1)");
  if (p == 0.f) return x;  // identity; no tape entry needed
  Tensor out(x.shape());
  const std::size_t n = out.numel();
  auto mask = std::make_shared<std::vector<float>>(n);
  const float keep_scale = 1.f / (1.f - p);
  for (std::size_t i = 0; i < n; ++i) {
    const float m = rng.uniform_f() >= p ? keep_scale : 0.f;
    (*mask)[i] = m;
    out.data()[i] = x.data()[i] * m;
  }
  record([x, out, mask, n]() mutable {
    for (std::size_t i = 0; i < n; ++i)
      x.grad()[i] += out.grad()[i] * (*mask)[i];
  });
  return out;
}

// ---- reductions ----------------------------------------------------------

Tensor Graph::sum_all(const Tensor& x) {
  Tensor out({1});
  float acc = 0.f;
  for (const float v : x.data()) acc += v;
  out.at(0) = acc;
  record([x, out]() mutable {
    const float g = out.grad()[0];
    for (auto& gx : x.grad()) gx += g;
  });
  return out;
}

Tensor Graph::mean_all(const Tensor& x) {
  Tensor out({1});
  float acc = 0.f;
  for (const float v : x.data()) acc += v;
  const float inv = 1.f / static_cast<float>(x.numel());
  out.at(0) = acc * inv;
  record([x, out, inv]() mutable {
    const float g = out.grad()[0] * inv;
    for (auto& gx : x.grad()) gx += g;
  });
  return out;
}

// ---- shape surgery --------------------------------------------------------

Tensor Graph::slice_cols(const Tensor& x, Index lo, Index hi) {
  require(x.rank() == 2, "slice_cols: rank-2 tensor required");
  require(0 <= lo && lo < hi && hi <= x.dim(1), "slice_cols: bad range");
  const Index m = x.dim(0), w = x.dim(1), out_w = hi - lo;
  Tensor out({m, out_w});
  for (Index i = 0; i < m; ++i)
    for (Index j = 0; j < out_w; ++j) out.at(i, j) = x.at(i, lo + j);
  record([x, out, m, w, lo, out_w]() mutable {
    float* gx = x.grad().data();
    const float* go = out.grad().data();
    for (Index i = 0; i < m; ++i)
      for (Index j = 0; j < out_w; ++j)
        gx[i * w + lo + j] += go[i * out_w + j];
  });
  return out;
}

Tensor Graph::concat_cols(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "concat_cols: rank-2 required");
  require(a.dim(0) == b.dim(0), "concat_cols: row counts differ");
  const Index m = a.dim(0), wa = a.dim(1), wb = b.dim(1);
  Tensor out({m, wa + wb});
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < wa; ++j) out.at(i, j) = a.at(i, j);
    for (Index j = 0; j < wb; ++j) out.at(i, wa + j) = b.at(i, j);
  }
  record([a, b, out, m, wa, wb]() mutable {
    const float* go = out.grad().data();
    float* ga = a.grad().data();
    float* gb = b.grad().data();
    const Index w = wa + wb;
    for (Index i = 0; i < m; ++i) {
      for (Index j = 0; j < wa; ++j) ga[i * wa + j] += go[i * w + j];
      for (Index j = 0; j < wb; ++j) gb[i * wb + j] += go[i * w + wa + j];
    }
  });
  return out;
}

// ---- fused neural ops ------------------------------------------------------

Tensor Graph::softmax_rows(const Tensor& x) {
  require(x.rank() == 2, "softmax_rows: rank-2 tensor required");
  const Index m = x.dim(0), n = x.dim(1);
  Tensor out({m, n});
  // Forward through the dispatched kernel (backend-invariant bits); the
  // backward below only needs out, which softmax_rows fully determines.
  kernels::softmax_rows(m, n, x.data().data(), out.data().data());
  record([x, out, m, n]() mutable {
    for (Index i = 0; i < m; ++i) {
      float dot = 0.f;
      for (Index j = 0; j < n; ++j) dot += out.grad()[i * n + j] * out.at(i, j);
      for (Index j = 0; j < n; ++j)
        x.grad()[i * n + j] +=
            out.at(i, j) * (out.grad()[i * n + j] - dot);
    }
  });
  return out;
}

Tensor Graph::layernorm(const Tensor& x, const Tensor& gain,
                        const Tensor& bias, float eps) {
  require(x.rank() == 2, "layernorm: rank-2 tensor required");
  const Index m = x.dim(0), d = x.dim(1);
  require(gain.rank() == 1 && gain.dim(0) == d, "layernorm: bad gain shape");
  require(bias.rank() == 1 && bias.dim(0) == d, "layernorm: bad bias shape");
  Tensor out({m, d});
  auto rstd = std::make_shared<std::vector<float>>(m);
  auto xhat = std::make_shared<std::vector<float>>(m * d);
  const float invd = 1.f / static_cast<float>(d);
  for (Index i = 0; i < m; ++i) {
    const float* xr = x.data().data() + i * d;
    float mean = 0.f;
    for (Index j = 0; j < d; ++j) mean += xr[j];
    mean *= invd;
    float var = 0.f;
    for (Index j = 0; j < d; ++j) {
      const float c = xr[j] - mean;
      var += c * c;
    }
    var *= invd;
    const float rs = 1.f / std::sqrt(var + eps);
    (*rstd)[i] = rs;
    float* xh = xhat->data() + i * d;
    float* o = out.data().data() + i * d;
    for (Index j = 0; j < d; ++j) {
      xh[j] = (xr[j] - mean) * rs;
      o[j] = xh[j] * gain.at(j) + bias.at(j);
    }
  }
  record([x, gain, bias, out, rstd, xhat, m, d, invd]() mutable {
    for (Index i = 0; i < m; ++i) {
      const float* go = out.grad().data() + i * d;
      const float* xh = xhat->data() + i * d;
      float* gx = x.grad().data() + i * d;
      const float rs = (*rstd)[i];
      // dxhat_j = go_j * gain_j; dx follows the standard layernorm backward.
      float sum_dxhat = 0.f, sum_dxhat_xhat = 0.f;
      for (Index j = 0; j < d; ++j) {
        const float dxh = go[j] * gain.at(j);
        sum_dxhat += dxh;
        sum_dxhat_xhat += dxh * xh[j];
        gain.grad()[j] += go[j] * xh[j];
        bias.grad()[j] += go[j];
      }
      for (Index j = 0; j < d; ++j) {
        const float dxh = go[j] * gain.at(j);
        gx[j] += rs * (dxh - invd * sum_dxhat - invd * xh[j] * sum_dxhat_xhat);
      }
    }
  });
  return out;
}

Tensor Graph::embedding(const std::vector<int>& ids, const Tensor& table) {
  require(table.rank() == 2, "embedding: table must be rank-2");
  const Index v = table.dim(0), d = table.dim(1);
  const Index m = static_cast<Index>(ids.size());
  for (const int id : ids)
    require(id >= 0 && id < v, "embedding: id out of range");
  Tensor out({m, d});
  for (Index i = 0; i < m; ++i) {
    const float* row = table.data().data() + static_cast<Index>(ids[i]) * d;
    float* o = out.data().data() + i * d;
    for (Index j = 0; j < d; ++j) o[j] = row[j];
  }
  record([ids, table, out, m, d]() mutable {
    for (Index i = 0; i < m; ++i) {
      float* grow = table.grad().data() + static_cast<Index>(ids[i]) * d;
      const float* go = out.grad().data() + i * d;
      for (Index j = 0; j < d; ++j) grow[j] += go[j];
    }
  });
  return out;
}

Tensor Graph::causal_self_attention(const Tensor& qkv, Index batch, Index time,
                                    Index heads) {
  require(qkv.rank() == 2, "attention: qkv must be rank-2");
  require(qkv.dim(0) == batch * time, "attention: rows != batch*time");
  require(qkv.dim(1) % 3 == 0, "attention: width must be 3*d_model");
  const Index d = qkv.dim(1) / 3;
  require(d % heads == 0, "attention: d_model not divisible by heads");
  const Index dh = d / heads;
  const float scale = 1.f / std::sqrt(static_cast<float>(dh));
  Tensor out({batch * time, d});
  // Attention probabilities saved per (batch, head): time x time, full
  // square with zeros above the diagonal.
  auto probs =
      std::make_shared<std::vector<float>>(batch * heads * time * time, 0.f);

  const Index w = 3 * d;
  const float* qkv_p = qkv.data().data();
  float* out_p = out.data().data();
  for (Index b = 0; b < batch; ++b) {
    for (Index h = 0; h < heads; ++h) {
      float* pmat = probs->data() + (b * heads + h) * time * time;
      const Index qoff = h * dh, koff = d + h * dh, voff = 2 * d + h * dh;
      for (Index t = 0; t < time; ++t) {
        const float* qrow = qkv_p + (b * time + t) * w + qoff;
        float* prow = pmat + t * time;
        float mx = -1e30f;
        for (Index s = 0; s <= t; ++s) {
          const float* krow = qkv_p + (b * time + s) * w + koff;
          float acc = 0.f;
          for (Index j = 0; j < dh; ++j) acc += qrow[j] * krow[j];
          prow[s] = acc * scale;
          mx = std::max(mx, prow[s]);
        }
        float z = 0.f;
        for (Index s = 0; s <= t; ++s) {
          prow[s] = std::exp(prow[s] - mx);
          z += prow[s];
        }
        const float inv = 1.f / z;
        float* orow = out_p + (b * time + t) * d + h * dh;
        for (Index j = 0; j < dh; ++j) orow[j] = 0.f;
        for (Index s = 0; s <= t; ++s) {
          prow[s] *= inv;
          const float p = prow[s];
          const float* vrow = qkv_p + (b * time + s) * w + voff;
          for (Index j = 0; j < dh; ++j) orow[j] += p * vrow[j];
        }
      }
    }
  }

  record([qkv, out, probs, batch, time, heads, d, dh, scale, w]() mutable {
    const float* qkv_p = qkv.data().data();
    float* gqkv = qkv.grad().data();
    const float* gout = out.grad().data();
    std::vector<float> dp(time);  // scratch: dP row
    for (Index b = 0; b < batch; ++b) {
      for (Index h = 0; h < heads; ++h) {
        const float* pmat = probs->data() + (b * heads + h) * time * time;
        const Index qoff = h * dh, koff = d + h * dh, voff = 2 * d + h * dh;
        for (Index t = 0; t < time; ++t) {
          const float* prow = pmat + t * time;
          const float* gorow = gout + (b * time + t) * d + h * dh;
          // dV[s] += P[t,s] * dOut[t]; dP[t,s] = dOut[t]·V[s]
          for (Index s = 0; s <= t; ++s) {
            const float* vrow = qkv_p + (b * time + s) * w + voff;
            float* gvrow = gqkv + (b * time + s) * w + voff;
            float acc = 0.f;
            const float p = prow[s];
            for (Index j = 0; j < dh; ++j) {
              gvrow[j] += p * gorow[j];
              acc += gorow[j] * vrow[j];
            }
            dp[s] = acc;
          }
          // softmax backward: dS = P ∘ (dP - Σ dP∘P)
          float dot = 0.f;
          for (Index s = 0; s <= t; ++s) dot += dp[s] * prow[s];
          const float* qrow = qkv_p + (b * time + t) * w + qoff;
          float* gqrow = gqkv + (b * time + t) * w + qoff;
          for (Index s = 0; s <= t; ++s) {
            const float ds = prow[s] * (dp[s] - dot) * scale;
            const float* krow = qkv_p + (b * time + s) * w + koff;
            float* gkrow = gqkv + (b * time + s) * w + koff;
            for (Index j = 0; j < dh; ++j) {
              gqrow[j] += ds * krow[j];
              gkrow[j] += ds * qrow[j];
            }
          }
        }
      }
    }
  });
  return out;
}

Tensor Graph::cross_entropy(const Tensor& logits,
                            const std::vector<int>& targets,
                            int ignore_index) {
  require(logits.rank() == 2, "cross_entropy: logits must be rank-2");
  const Index m = logits.dim(0), v = logits.dim(1);
  require(static_cast<Index>(targets.size()) == m,
          "cross_entropy: target count != rows");
  Tensor out({1});
  auto probs = std::make_shared<std::vector<float>>(m * v);
  Index counted = 0;
  double loss = 0.0;
  for (Index i = 0; i < m; ++i) {
    const float* row = logits.data().data() + i * v;
    float* prow = probs->data() + i * v;
    float mx = row[0];
    for (Index j = 1; j < v; ++j) mx = std::max(mx, row[j]);
    float z = 0.f;
    for (Index j = 0; j < v; ++j) {
      prow[j] = std::exp(row[j] - mx);
      z += prow[j];
    }
    const float inv = 1.f / z;
    for (Index j = 0; j < v; ++j) prow[j] *= inv;
    const int t = targets[i];
    if (t == ignore_index) continue;
    require(t >= 0 && t < v, "cross_entropy: target out of range");
    loss += -std::log(std::max(prow[t], 1e-30f));
    ++counted;
  }
  require(counted > 0, "cross_entropy: every target was ignored");
  out.at(0) = static_cast<float>(loss / counted);
  record([logits, out, probs, targets, ignore_index, m, v, counted]() mutable {
    const float g = out.grad()[0] / static_cast<float>(counted);
    float* gl = logits.grad().data();
    for (Index i = 0; i < m; ++i) {
      const int t = targets[i];
      if (t == ignore_index) continue;
      const float* prow = probs->data() + i * v;
      float* grow = gl + i * v;
      for (Index j = 0; j < v; ++j) grow[j] += g * prow[j];
      grow[t] -= g;
    }
  });
  return out;
}

// ---- engine ------------------------------------------------------------

void Graph::backward(const Tensor& loss) {
  // A null loss handle means the caller never ran a forward pass on this
  // graph — replaying the tape would scribble gradients into freed or
  // unrelated storage, so this is a fatal invariant, not an API throw.
  PPG_CHECK(loss.valid(), "Graph::backward: loss tensor has no storage");
  if (loss.numel() != 1)
    throw std::invalid_argument("Graph::backward: loss must be a scalar");
  loss.grad()[0] += 1.f;
  for (auto it = tape_.rbegin(); it != tape_.rend(); ++it) {
    PPG_DCHECK(*it != nullptr, "tape entry lost its closure");
    (*it)();
  }
}

}  // namespace ppg::nn
