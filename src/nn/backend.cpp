// Backend resolution: which KernelBackend table the process dispatches
// through (see backend.h for the contract that makes the choice
// output-invariant in fp32 and int8 alike).
#include "nn/backend.h"

#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "common/logging.h"
#include "nn/kernels_impl.h"

namespace ppg::nn {

namespace {

namespace kd = kernels_detail;

constexpr KernelBackend kScalarTable = {
    BackendKind::kScalar,   "scalar",
    kd::scalar::gemm_nn,    kd::scalar::gemm_nt,
    kd::scalar::gemm_tn,    kd::scalar::affine,
    kd::scalar::layernorm_rows, kd::scalar::softmax_rows,
    kd::scalar::quantize_rows,  kd::scalar::qaffine,
};

#if defined(PPG_X86_BACKENDS)
constexpr KernelBackend kAvx2Table = {
    BackendKind::kAvx2,   "avx2",
    kd::avx2::gemm_nn,    kd::avx2::gemm_nt,
    kd::avx2::gemm_tn,    kd::avx2::affine,
    kd::avx2::layernorm_rows, kd::avx2::softmax_rows,
    kd::scalar::quantize_rows, kd::avx2::qaffine,
};

// gemm_nt / layernorm / softmax are reduction kernels: the AVX-512 table
// borrows their AVX2 implementations so the canonical 8-lane geometry
// never changes (kernels_impl.h).
constexpr KernelBackend kAvx512Table = {
    BackendKind::kAvx512, "avx512",
    kd::avx512::gemm_nn,  kd::avx2::gemm_nt,
    kd::avx512::gemm_tn,  kd::avx512::affine,
    kd::avx2::layernorm_rows, kd::avx2::softmax_rows,
    kd::scalar::quantize_rows, kd::avx512::qaffine,
};
#endif

bool cpu_supports(BackendKind kind) noexcept {
#if defined(PPG_X86_BACKENDS)
  switch (kind) {
    case BackendKind::kScalar:
      return true;
    case BackendKind::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case BackendKind::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw");
  }
  return false;
#else
  return kind == BackendKind::kScalar;
#endif
}

const KernelBackend* table_for(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kScalar:
      return &kScalarTable;
#if defined(PPG_X86_BACKENDS)
    case BackendKind::kAvx2:
      return &kAvx2Table;
    case BackendKind::kAvx512:
      return &kAvx512Table;
#endif
    default:
      return nullptr;
  }
}

std::atomic<const KernelBackend*> g_active{nullptr};

/// First-use resolution: PPG_NN_BACKEND wins, else the widest table the
/// CPU supports. Throws on a bad env value — better a loud failure at
/// the first kernel call than silently serving from the wrong backend.
const KernelBackend& resolve() {
  const char* env = std::getenv("PPG_NN_BACKEND");
  BackendKind kind;
  if (env != nullptr && env[0] != '\0') {
    kind = parse_backend(env);
    if (!backend_available(kind))
      throw std::invalid_argument(
          std::string("PPG_NN_BACKEND=") + env +
          ": backend not available on this CPU/build");
  } else {
    kind = BackendKind::kScalar;
    if (backend_available(BackendKind::kAvx2)) kind = BackendKind::kAvx2;
    if (backend_available(BackendKind::kAvx512)) kind = BackendKind::kAvx512;
  }
  const KernelBackend* table = table_for(kind);
  const KernelBackend* expected = nullptr;
  // One racing winner; all candidates resolve to the same table, so a
  // lost race only wastes the cpuid probe.
  if (g_active.compare_exchange_strong(expected, table,
                                       std::memory_order_acq_rel))
    log_debug("nn: kernel backend %s (%s)", table->name,
              env != nullptr && env[0] != '\0' ? "PPG_NN_BACKEND" : "cpuid");
  return *g_active.load(std::memory_order_acquire);
}

}  // namespace

const KernelBackend& active_backend() {
  const KernelBackend* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  return resolve();
}

void set_backend(BackendKind kind) {
  if (!backend_available(kind))
    throw std::invalid_argument(
        std::string("set_backend: backend '") + backend_name(kind) +
        "' not available on this CPU/build");
  g_active.store(table_for(kind), std::memory_order_release);
}

bool backend_available(BackendKind kind) noexcept {
  return table_for(kind) != nullptr && cpu_supports(kind);
}

std::vector<BackendKind> available_backends() {
  std::vector<BackendKind> out;
  for (const BackendKind k :
       {BackendKind::kScalar, BackendKind::kAvx2, BackendKind::kAvx512})
    if (backend_available(k)) out.push_back(k);
  return out;
}

const char* backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kScalar:
      return "scalar";
    case BackendKind::kAvx2:
      return "avx2";
    case BackendKind::kAvx512:
      return "avx512";
  }
  return "?";
}

BackendKind parse_backend(std::string_view name) {
  if (name == "scalar") return BackendKind::kScalar;
  if (name == "avx2") return BackendKind::kAvx2;
  if (name == "avx512") return BackendKind::kAvx512;
  throw std::invalid_argument("unknown kernel backend '" + std::string(name) +
                              "' (scalar|avx2|avx512)");
}

}  // namespace ppg::nn
