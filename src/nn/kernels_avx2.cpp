// AVX2+FMA kernel backend. Dispatched only after cpuid confirms AVX2+FMA
// (src/nn/backend.cpp); this TU is compiled with -mavx2 -mfma regardless
// of the host, plus -ffp-contract=off -fno-unsafe-math-optimizations so
// the intrinsic sequences below are exactly what executes.
//
// Bitwise equality with the scalar oracle (kernels_impl.h contract):
//  * gemm/affine hold a 6-row × 16-column register tile of C across the
//    whole p loop — per output element that is still "initial value, then
//    fmadd in ascending p", the scalar order, while eliminating the k×
//    C-row memory traffic that bounds the unblocked form. The hot loop is
//    branch-free: the contract has no data-dependent zero skips in
//    gemm_nn/affine (a 4-way scalar compare per p costs ~2× throughput).
//  * reductions keep ONE 8-lane ymm accumulator and fold it with the
//    extract-hi/movehl/shuffle tree that dot8/sum8/sumsq8 spell out in
//    scalar form; tails run scalar fmaf after the tree, as in dot8.
//  * the int8 qaffine accumulates in int32 (exact: |q| ≤ 127 and
//    k_pad ≤ 2^15 keep Σ far below 2^31), so any summation order works;
//    the dequant fmaf matches the scalar expression.
#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "nn/kernels_impl.h"

namespace ppg::nn::kernels_detail::avx2 {

namespace {

/// The canonical lane-combining tree: l0..l7 -> ((l0+l4)+(l2+l6)) +
/// ((l1+l5)+(l3+l7)). movehl pairs lanes {0,1}+{2,3}; the final shuffle
/// adds lane 1. Matches dot8/sum8's scalar parenthesization bit for bit.
inline float reduce8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);           // l0 l1 l2 l3
  const __m128 hi = _mm256_extractf128_ps(v, 1);         // l4 l5 l6 l7
  __m128 s = _mm_add_ps(lo, hi);                         // l0+l4 .. l3+l7
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));                // (l0+l4)+(l2+l6), ...
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

inline std::int32_t hsum_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x1));
  return _mm_cvtsi128_si32(s);
}

/// dot8 with intrinsics: one ymm accumulator, canonical tree, scalar tail.
inline float dot8v(Index n, const float* x, const float* y) {
  __m256 acc = _mm256_setzero_ps();
  Index j = 0;
  for (; j + 8 <= n; j += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + j), _mm256_loadu_ps(y + j), acc);
  float s = reduce8(acc);
  for (; j < n; ++j) s = std::fmaf(x[j], y[j], s);
  return s;
}

inline float sum8v(Index n, const float* x) {
  __m256 acc = _mm256_setzero_ps();
  Index j = 0;
  for (; j + 8 <= n; j += 8)
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + j));
  float s = reduce8(acc);
  for (; j < n; ++j) s += x[j];
  return s;
}

inline float sumsq8v(Index n, const float* x, float mean) {
  const __m256 mv = _mm256_set1_ps(mean);
  __m256 acc = _mm256_setzero_ps();
  Index j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 c = _mm256_sub_ps(_mm256_loadu_ps(x + j), mv);
    acc = _mm256_fmadd_ps(c, c, acc);
  }
  float s = reduce8(acc);
  for (; j < n; ++j) {
    const float c = x[j] - mean;
    s = std::fmaf(c, c, s);
  }
  return s;
}

/// Shared core of gemm_nn / affine (bias != nullptr selects the affine
/// "start from bias, no accumulate" initialization).
void gemm_bias(Index m, Index n, Index k, const float* a, const float* b,
               const float* bias, float* c) {
  Index i = 0;
  for (; i + 6 <= m; i += 6) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    const float* a4 = a3 + k;
    const float* a5 = a4 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    float* c4 = c3 + n;
    float* c5 = c4 + n;
    Index j = 0;
    // 6×16 register tile: 12 ymm accumulators live across the whole k
    // loop (+2 for the B stream, +1 broadcast = 15 of 16 ymm regs).
    for (; j + 16 <= n; j += 16) {
      __m256 i0, i1;
      if (bias != nullptr) {
        i0 = _mm256_loadu_ps(bias + j);
        i1 = _mm256_loadu_ps(bias + j + 8);
      } else {
        i0 = _mm256_loadu_ps(c0 + j);
        i1 = _mm256_loadu_ps(c0 + j + 8);
      }
      __m256 s00 = i0, s01 = i1;
      __m256 s10 = bias != nullptr ? i0 : _mm256_loadu_ps(c1 + j);
      __m256 s11 = bias != nullptr ? i1 : _mm256_loadu_ps(c1 + j + 8);
      __m256 s20 = bias != nullptr ? i0 : _mm256_loadu_ps(c2 + j);
      __m256 s21 = bias != nullptr ? i1 : _mm256_loadu_ps(c2 + j + 8);
      __m256 s30 = bias != nullptr ? i0 : _mm256_loadu_ps(c3 + j);
      __m256 s31 = bias != nullptr ? i1 : _mm256_loadu_ps(c3 + j + 8);
      __m256 s40 = bias != nullptr ? i0 : _mm256_loadu_ps(c4 + j);
      __m256 s41 = bias != nullptr ? i1 : _mm256_loadu_ps(c4 + j + 8);
      __m256 s50 = bias != nullptr ? i0 : _mm256_loadu_ps(c5 + j);
      __m256 s51 = bias != nullptr ? i1 : _mm256_loadu_ps(c5 + j + 8);
      for (Index p = 0; p < k; ++p) {
        const float* brow = b + p * n + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 w = _mm256_set1_ps(a0[p]);
        s00 = _mm256_fmadd_ps(w, b0, s00);
        s01 = _mm256_fmadd_ps(w, b1, s01);
        w = _mm256_set1_ps(a1[p]);
        s10 = _mm256_fmadd_ps(w, b0, s10);
        s11 = _mm256_fmadd_ps(w, b1, s11);
        w = _mm256_set1_ps(a2[p]);
        s20 = _mm256_fmadd_ps(w, b0, s20);
        s21 = _mm256_fmadd_ps(w, b1, s21);
        w = _mm256_set1_ps(a3[p]);
        s30 = _mm256_fmadd_ps(w, b0, s30);
        s31 = _mm256_fmadd_ps(w, b1, s31);
        w = _mm256_set1_ps(a4[p]);
        s40 = _mm256_fmadd_ps(w, b0, s40);
        s41 = _mm256_fmadd_ps(w, b1, s41);
        w = _mm256_set1_ps(a5[p]);
        s50 = _mm256_fmadd_ps(w, b0, s50);
        s51 = _mm256_fmadd_ps(w, b1, s51);
      }
      _mm256_storeu_ps(c0 + j, s00);
      _mm256_storeu_ps(c0 + j + 8, s01);
      _mm256_storeu_ps(c1 + j, s10);
      _mm256_storeu_ps(c1 + j + 8, s11);
      _mm256_storeu_ps(c2 + j, s20);
      _mm256_storeu_ps(c2 + j + 8, s21);
      _mm256_storeu_ps(c3 + j, s30);
      _mm256_storeu_ps(c3 + j + 8, s31);
      _mm256_storeu_ps(c4 + j, s40);
      _mm256_storeu_ps(c4 + j + 8, s41);
      _mm256_storeu_ps(c5 + j, s50);
      _mm256_storeu_ps(c5 + j + 8, s51);
    }
    for (; j + 8 <= n; j += 8) {
      const __m256 i0 = bias != nullptr ? _mm256_loadu_ps(bias + j)
                                        : _mm256_loadu_ps(c0 + j);
      __m256 s0 = i0;
      __m256 s1 = bias != nullptr ? i0 : _mm256_loadu_ps(c1 + j);
      __m256 s2 = bias != nullptr ? i0 : _mm256_loadu_ps(c2 + j);
      __m256 s3 = bias != nullptr ? i0 : _mm256_loadu_ps(c3 + j);
      __m256 s4 = bias != nullptr ? i0 : _mm256_loadu_ps(c4 + j);
      __m256 s5 = bias != nullptr ? i0 : _mm256_loadu_ps(c5 + j);
      for (Index p = 0; p < k; ++p) {
        const __m256 bv = _mm256_loadu_ps(b + p * n + j);
        s0 = _mm256_fmadd_ps(_mm256_set1_ps(a0[p]), bv, s0);
        s1 = _mm256_fmadd_ps(_mm256_set1_ps(a1[p]), bv, s1);
        s2 = _mm256_fmadd_ps(_mm256_set1_ps(a2[p]), bv, s2);
        s3 = _mm256_fmadd_ps(_mm256_set1_ps(a3[p]), bv, s3);
        s4 = _mm256_fmadd_ps(_mm256_set1_ps(a4[p]), bv, s4);
        s5 = _mm256_fmadd_ps(_mm256_set1_ps(a5[p]), bv, s5);
      }
      _mm256_storeu_ps(c0 + j, s0);
      _mm256_storeu_ps(c1 + j, s1);
      _mm256_storeu_ps(c2 + j, s2);
      _mm256_storeu_ps(c3 + j, s3);
      _mm256_storeu_ps(c4 + j, s4);
      _mm256_storeu_ps(c5 + j, s5);
    }
    for (; j < n; ++j) {
      float s0 = bias != nullptr ? bias[j] : c0[j];
      float s1 = bias != nullptr ? bias[j] : c1[j];
      float s2 = bias != nullptr ? bias[j] : c2[j];
      float s3 = bias != nullptr ? bias[j] : c3[j];
      float s4 = bias != nullptr ? bias[j] : c4[j];
      float s5 = bias != nullptr ? bias[j] : c5[j];
      for (Index p = 0; p < k; ++p) {
        const float bv = b[p * n + j];
        s0 = std::fmaf(a0[p], bv, s0);
        s1 = std::fmaf(a1[p], bv, s1);
        s2 = std::fmaf(a2[p], bv, s2);
        s3 = std::fmaf(a3[p], bv, s3);
        s4 = std::fmaf(a4[p], bv, s4);
        s5 = std::fmaf(a5[p], bv, s5);
      }
      c0[j] = s0;
      c1[j] = s1;
      c2[j] = s2;
      c3[j] = s3;
      c4[j] = s4;
      c5[j] = s5;
    }
  }
  for (; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    Index j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 s = bias != nullptr ? _mm256_loadu_ps(bias + j)
                                 : _mm256_loadu_ps(crow + j);
      for (Index p = 0; p < k; ++p)
        s = _mm256_fmadd_ps(_mm256_set1_ps(arow[p]),
                            _mm256_loadu_ps(b + p * n + j), s);
      _mm256_storeu_ps(crow + j, s);
    }
    for (; j < n; ++j) {
      float s = bias != nullptr ? bias[j] : crow[j];
      for (Index p = 0; p < k; ++p) s = std::fmaf(arow[p], b[p * n + j], s);
      crow[j] = s;
    }
  }
}

}  // namespace

void gemm_nn(Index m, Index n, Index k, const float* a, const float* b,
             float* c) {
  gemm_bias(m, n, k, a, b, nullptr, c);
}

void affine(Index m, Index n, Index k, const float* x, const float* w,
            const float* bias, float* y) {
  gemm_bias(m, n, k, x, w, bias, y);
}

void gemm_nt(Index m, Index n, Index k, const float* a, const float* b,
             float* c) {
  for (Index i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (Index j = 0; j < n; ++j) crow[j] += dot8v(k, arow, b + j * k);
  }
}

void gemm_tn(Index m, Index n, Index k, const float* a, const float* b,
             float* c) {
  for (Index p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (Index i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* crow = c + i * n;
      const __m256 w = _mm256_set1_ps(av);
      Index j = 0;
      for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(
            crow + j,
            _mm256_fmadd_ps(w, _mm256_loadu_ps(brow + j),
                            _mm256_loadu_ps(crow + j)));
      for (; j < n; ++j) crow[j] = std::fmaf(av, brow[j], crow[j]);
    }
  }
}

void layernorm_rows(Index rows, Index d, const float* x, const float* gain,
                    const float* bias, float* y) {
  const float invd = 1.f / static_cast<float>(d);
  for (Index i = 0; i < rows; ++i) {
    const float* xr = x + i * d;
    float* yr = y + i * d;
    const float mean = sum8v(d, xr) * invd;
    const float var = sumsq8v(d, xr, mean);
    const float rs = 1.f / std::sqrt(var * invd + 1e-5f);
    const __m256 mv = _mm256_set1_ps(mean);
    const __m256 rv = _mm256_set1_ps(rs);
    Index j = 0;
    for (; j + 8 <= d; j += 8) {
      const __m256 t =
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(xr + j), mv), rv);
      _mm256_storeu_ps(
          yr + j,
          _mm256_fmadd_ps(t, _mm256_loadu_ps(gain + j),
                          _mm256_loadu_ps(bias + j)));
    }
    for (; j < d; ++j)
      yr[j] = std::fmaf((xr[j] - mean) * rs, gain[j], bias[j]);
  }
}

void softmax_rows(Index rows, Index n, const float* x, float* y) {
  for (Index i = 0; i < rows; ++i) {
    const float* xr = x + i * n;
    float* yr = y + i * n;
    float mx = xr[0];
    for (Index j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
    // expf stays a scalar libm call in every backend (contract).
    for (Index j = 0; j < n; ++j) yr[j] = std::exp(xr[j] - mx);
    const float inv = 1.f / sum8v(n, yr);
    const __m256 iv = _mm256_set1_ps(inv);
    Index j = 0;
    for (; j + 8 <= n; j += 8)
      _mm256_storeu_ps(yr + j, _mm256_mul_ps(_mm256_loadu_ps(yr + j), iv));
    for (; j < n; ++j) yr[j] *= inv;
  }
}

void qaffine(Index m, Index n, Index k_pad, const std::int8_t* qx,
             const float* sx, const std::int8_t* qw, const float* sw,
             const float* bias, float* y) {
  // maddubs sign trick: x·w = |x| · copysign(w, x) elementwise, with |x|
  // in [0,127] fitting maddubs' unsigned operand. Each s16 pair-sum is at
  // most 2·127·127 = 32258 < 2^15, so the saturating add never saturates
  // and the product chain stays integer-exact (hence backend-invariant).
  // Four output channels per pass share the |x| vectors, quartering the
  // activation-side work next to the unavoidable weight-row streams.
  const __m256i ones16 = _mm256_set1_epi16(1);
  for (Index i = 0; i < m; ++i) {
    const std::int8_t* xr = qx + i * k_pad;
    const float si = sx[i];
    float* yr = y + i * n;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* w0 = qw + j * k_pad;
      const std::int8_t* w1 = w0 + k_pad;
      const std::int8_t* w2 = w1 + k_pad;
      const std::int8_t* w3 = w2 + k_pad;
      __m256i a0 = _mm256_setzero_si256(), a1 = a0, a2 = a0, a3 = a0;
      // k_pad is a multiple of 32 (quant.h pads weights and activations),
      // so the 32-byte step never needs a tail.
      for (Index p = 0; p < k_pad; p += 32) {
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xr + p));
        const __m256i xabs = _mm256_abs_epi8(xv);
        const auto lane = [&](const std::int8_t* wr, __m256i acc) {
          const __m256i wv = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wr + p));
          const __m256i prod =
              _mm256_maddubs_epi16(xabs, _mm256_sign_epi8(wv, xv));
          return _mm256_add_epi32(acc, _mm256_madd_epi16(prod, ones16));
        };
        a0 = lane(w0, a0);
        a1 = lane(w1, a1);
        a2 = lane(w2, a2);
        a3 = lane(w3, a3);
      }
      // Joint 4-channel reduction (hadd tree) + vector dequant. Integer
      // adds commute, and cvt/mul/fmadd here are the same correctly
      // rounded operations as the scalar fmaf(float(acc), si*sw[j],
      // bias[j]) expression, so results stay bitwise backend-invariant.
      const __m256i t01 = _mm256_hadd_epi32(a0, a1);
      const __m256i t23 = _mm256_hadd_epi32(a2, a3);
      const __m256i t = _mm256_hadd_epi32(t01, t23);
      const __m128i sums = _mm_add_epi32(_mm256_castsi256_si128(t),
                                         _mm256_extracti128_si256(t, 1));
      const __m128 scale =
          _mm_mul_ps(_mm_set1_ps(si), _mm_loadu_ps(sw + j));
      _mm_storeu_ps(yr + j, _mm_fmadd_ps(_mm_cvtepi32_ps(sums), scale,
                                         _mm_loadu_ps(bias + j)));
    }
    for (; j < n; ++j) {
      const std::int8_t* wr = qw + j * k_pad;
      __m256i acc = _mm256_setzero_si256();
      for (Index p = 0; p < k_pad; p += 32) {
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xr + p));
        const __m256i wv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(wr + p));
        const __m256i prod = _mm256_maddubs_epi16(_mm256_abs_epi8(xv),
                                                  _mm256_sign_epi8(wv, xv));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod, ones16));
      }
      yr[j] = std::fmaf(static_cast<float>(hsum_epi32(acc)), si * sw[j],
                        bias[j]);
    }
  }
}

}  // namespace ppg::nn::kernels_detail::avx2
