// Raw float kernels shared by the autograd ops (graph.cpp) and the
// no-autograd inference engine (gpt/infer.cpp).
//
// All GEMMs accumulate into C (C += ...) so backward passes can reuse them
// for gradient accumulation; call them on zeroed buffers for plain products.
// Loop orders are chosen so the innermost loop is a contiguous stream the
// compiler auto-vectorises.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace ppg::nn::kernels {

using Index = std::int64_t;

/// Shared argument DCHECKs for the GEMM family: dimensions non-negative,
/// buffers present whenever their extent is non-zero. Callers (graph.cpp,
/// infer.cpp) own shape *compatibility*; what a raw-pointer kernel can
/// still verify is that nobody handed it a null or negative-extent view.
inline void dcheck_gemm_args([[maybe_unused]] Index m,
                             [[maybe_unused]] Index n,
                             [[maybe_unused]] Index k,
                             [[maybe_unused]] const float* a,
                             [[maybe_unused]] const float* b,
                             [[maybe_unused]] const float* c) {
  PPG_DCHECK(m >= 0 && n >= 0 && k >= 0,
             "gemm: negative extent m=%lld n=%lld k=%lld",
             static_cast<long long>(m), static_cast<long long>(n),
             static_cast<long long>(k));
  PPG_DCHECK(a != nullptr || m * k == 0, "gemm: null A with m*k > 0");
  PPG_DCHECK(b != nullptr || n * k == 0, "gemm: null B with n*k > 0");
  PPG_DCHECK(c != nullptr || m * n == 0, "gemm: null C with m*n > 0");
}

/// C[m,n] += A[m,k] · B[k,n]  (ikj order, 4-row register blocking).
///
/// Rows are processed four at a time so each streamed B row feeds four
/// output rows: B (the weight matrix in every inference/affine call) is
/// read m/4 times instead of m, and each pass over the C rows retires 4×
/// the MACs. That amortisation is what makes batched inference cheaper per
/// row than repeated single-row calls (the serve layer's dynamic batching
/// and the bench_serve_throughput speedup rest on it). Per output element
/// the accumulation order over p is unchanged, so results are identical to
/// the unblocked form.
///
/// The innermost j-loops are the throughput-critical streams; they MUST
/// vectorise. GCC's -O2 default "very-cheap" vector cost model refuses
/// loops whose trip count isn't a compile-time constant, silently dropping
/// them to scalar (~10x) — the build sets -fvect-cost-model=dynamic to
/// restore SIMD. Keep the j-loops branch-free, the pointers __restrict,
/// and the row pointers as distinct named locals (an array of row pointers
/// measured ~10x slower: the vectoriser gives up on it).
inline void gemm_nn(Index m, Index n, Index k, const float* __restrict a,
                    const float* __restrict b, float* __restrict c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  Index i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    for (Index p = 0; p < k; ++p) {
      const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      if (v0 == 0.f && v1 == 0.f && v2 == 0.f && v3 == 0.f) continue;
      const float* brow = b + p * n;
      for (Index j = 0; j < n; ++j) {
        const float bv = brow[j];
        c0[j] += v0 * bv;
        c1[j] += v1 * bv;
        c2[j] += v2 * bv;
        c3[j] += v3 * bv;
      }
    }
  }
  for (; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (Index p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* brow = b + p * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[m,n] += A[m,k] · B[n,k]ᵀ  (dot-product form).
inline void gemm_nt(Index m, Index n, Index k, const float* __restrict a,
                    const float* __restrict b, float* __restrict c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  for (Index i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (Index j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.f;
      for (Index p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

/// C[m,n] += A[k,m]ᵀ · B[k,n]  (rank-1 update form).
inline void gemm_tn(Index m, Index n, Index k, const float* __restrict a,
                    const float* __restrict b, float* __restrict c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  for (Index p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (Index i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* crow = c + i * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// y[m,n] = x[m,k] · W[k,n] + bias[n] (no accumulate; bias broadcast).
inline void affine(Index m, Index n, Index k, const float* x, const float* w,
                   const float* bias, float* y) {
  dcheck_gemm_args(m, n, k, x, w, y);
  PPG_DCHECK(bias != nullptr || n == 0, "affine: null bias with n > 0");
  for (Index i = 0; i < m; ++i) {
    float* yrow = y + i * n;
    for (Index j = 0; j < n; ++j) yrow[j] = bias[j];
  }
  gemm_nn(m, n, k, x, w, y);
}

}  // namespace ppg::nn::kernels
