// Raw float kernels shared by the autograd ops (graph.cpp) and the
// no-autograd inference engine (gpt/infer.cpp).
//
// All GEMMs accumulate into C (C += ...) so backward passes can reuse them
// for gradient accumulation; call them on zeroed buffers for plain products.
// Loop orders are chosen so the innermost loop is a contiguous stream the
// compiler auto-vectorises.
#pragma once

#include <cstdint>

namespace ppg::nn::kernels {

using Index = std::int64_t;

/// C[m,n] += A[m,k] · B[k,n]  (ikj order).
inline void gemm_nn(Index m, Index n, Index k, const float* a, const float* b,
                    float* c) {
  for (Index i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (Index p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.f) continue;
      const float* brow = b + p * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[m,n] += A[m,k] · B[n,k]ᵀ  (dot-product form).
inline void gemm_nt(Index m, Index n, Index k, const float* a, const float* b,
                    float* c) {
  for (Index i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (Index j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.f;
      for (Index p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

/// C[m,n] += A[k,m]ᵀ · B[k,n]  (rank-1 update form).
inline void gemm_tn(Index m, Index n, Index k, const float* a, const float* b,
                    float* c) {
  for (Index p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (Index i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* crow = c + i * n;
      for (Index j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// y[m,n] = x[m,k] · W[k,n] + bias[n] (no accumulate; bias broadcast).
inline void affine(Index m, Index n, Index k, const float* x, const float* w,
                   const float* bias, float* y) {
  for (Index i = 0; i < m; ++i) {
    float* yrow = y + i * n;
    for (Index j = 0; j < n; ++j) yrow[j] = bias[j];
  }
  gemm_nn(m, n, k, x, w, y);
}

}  // namespace ppg::nn::kernels
