// Raw float kernels shared by the autograd ops (graph.cpp) and the
// no-autograd inference engine (gpt/infer.cpp).
//
// Since the backend-dispatch refactor these are thin wrappers: argument
// DCHECKs here, then one indirect call through the process-wide
// KernelBackend table (backend.h) into explicitly vectorized scalar /
// AVX2 / AVX-512 implementations (kernels_scalar.cpp & friends). All
// backends obey the accumulation contract in kernels_impl.h, so fp32
// results are bitwise identical whichever table is active — callers can
// treat the dispatch as invisible.
//
// All GEMMs accumulate into C (C += ...) so backward passes can reuse them
// for gradient accumulation; call them on zeroed buffers for plain products.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "nn/backend.h"

namespace ppg::nn::kernels {

using Index = std::int64_t;

/// Shared argument DCHECKs for the GEMM family: dimensions non-negative,
/// buffers present whenever their extent is non-zero. Callers (graph.cpp,
/// infer.cpp) own shape *compatibility*; what a raw-pointer kernel can
/// still verify is that nobody handed it a null or negative-extent view.
inline void dcheck_gemm_args([[maybe_unused]] Index m,
                             [[maybe_unused]] Index n,
                             [[maybe_unused]] Index k,
                             [[maybe_unused]] const float* a,
                             [[maybe_unused]] const float* b,
                             [[maybe_unused]] const float* c) {
  PPG_DCHECK(m >= 0 && n >= 0 && k >= 0,
             "gemm: negative extent m=%lld n=%lld k=%lld",
             static_cast<long long>(m), static_cast<long long>(n),
             static_cast<long long>(k));
  PPG_DCHECK(a != nullptr || m * k == 0, "gemm: null A with m*k > 0");
  PPG_DCHECK(b != nullptr || n * k == 0, "gemm: null B with n*k > 0");
  PPG_DCHECK(c != nullptr || m * n == 0, "gemm: null C with m*n > 0");
}

/// C[m,n] += A[m,k] · B[k,n].
inline void gemm_nn(Index m, Index n, Index k, const float* a, const float* b,
                    float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  active_backend().gemm_nn(m, n, k, a, b, c);
}

/// C[m,n] += A[m,k] · B[n,k]ᵀ  (dot-product form).
inline void gemm_nt(Index m, Index n, Index k, const float* a, const float* b,
                    float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  active_backend().gemm_nt(m, n, k, a, b, c);
}

/// C[m,n] += A[k,m]ᵀ · B[k,n]  (rank-1 update form).
inline void gemm_tn(Index m, Index n, Index k, const float* a, const float* b,
                    float* c) {
  dcheck_gemm_args(m, n, k, a, b, c);
  active_backend().gemm_tn(m, n, k, a, b, c);
}

/// y[m,n] = x[m,k] · W[k,n] + bias[n] (no accumulate; bias broadcast).
inline void affine(Index m, Index n, Index k, const float* x, const float* w,
                   const float* bias, float* y) {
  dcheck_gemm_args(m, n, k, x, w, y);
  PPG_DCHECK(bias != nullptr || n == 0, "affine: null bias with n > 0");
  active_backend().affine(m, n, k, x, w, bias, y);
}

/// y[r,d] = layernorm(x[r,d]) * gain[d] + bias[d], eps 1e-5 (forward only;
/// the autograd layernorm in graph.cpp keeps its own fused form because it
/// must also save xhat/rstd for backward).
inline void layernorm_rows(Index rows, Index d, const float* x,
                           const float* gain, const float* bias, float* y) {
  PPG_DCHECK(rows >= 0 && d >= 0, "layernorm_rows: negative extent");
  PPG_DCHECK((x != nullptr && y != nullptr) || rows * d == 0,
             "layernorm_rows: null buffer");
  PPG_DCHECK((gain != nullptr && bias != nullptr) || d == 0,
             "layernorm_rows: null gain/bias");
  active_backend().layernorm_rows(rows, d, x, gain, bias, y);
}

/// y[r,n] = softmax(x[r,n]) per row (max-subtracted, eps-free).
inline void softmax_rows(Index rows, Index n, const float* x, float* y) {
  PPG_DCHECK(rows >= 0 && n >= 0, "softmax_rows: negative extent");
  PPG_DCHECK((x != nullptr && y != nullptr) || rows * n == 0,
             "softmax_rows: null buffer");
  active_backend().softmax_rows(rows, n, x, y);
}

/// Per-row absmax int8 quantization of x[rows,k] into q[rows,k_pad]
/// (zero-padded) + per-row dequant scales. See quant.h for the scheme.
inline void quantize_rows(Index rows, Index k, Index k_pad, const float* x,
                          std::int8_t* q, float* scale) {
  PPG_DCHECK(rows >= 0 && k >= 0 && k_pad >= k, "quantize_rows: bad extents");
  PPG_DCHECK(k_pad % 32 == 0, "quantize_rows: k_pad not a multiple of 32");
  active_backend().quantize_rows(rows, k, k_pad, x, q, scale);
}

/// y[m,n] = dequant(qx[m,k_pad] · qw[n,k_pad]ᵀ) + bias[n]; int32-exact
/// dot products, so bitwise identical across backends. bias is required.
inline void qaffine(Index m, Index n, Index k_pad, const std::int8_t* qx,
                    const float* sx, const std::int8_t* qw, const float* sw,
                    const float* bias, float* y) {
  PPG_DCHECK(m >= 0 && n >= 0 && k_pad >= 0 && k_pad % 32 == 0,
             "qaffine: bad extents");
  PPG_DCHECK(bias != nullptr || n == 0, "qaffine: null bias with n > 0");
  active_backend().qaffine(m, n, k_pad, qx, sx, qw, sw, bias, y);
}

}  // namespace ppg::nn::kernels
