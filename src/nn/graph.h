// Reverse-mode autograd over Tensors.
//
// A Graph is a tape: every op creates its output tensor, computes the
// forward values immediately, and records a closure that propagates
// gradients from the output's grad buffer into the inputs' grad buffers.
// Graph::backward(loss) seeds d(loss)=1 and replays the tape in reverse.
//
// Usage per training step:
//   graph.clear();
//   Tensor loss = model.loss(graph, batch);
//   graph.backward(loss);
//   optimizer.step();   // parameters' grads were accumulated
//
// Ops validate shapes eagerly and throw std::invalid_argument on misuse.
// All kernels are single-threaded; parallelism lives above this layer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/tensor.h"

namespace ppg::nn {

/// Autograd tape. Not thread-safe; one Graph per training thread.
class Graph {
 public:
  // ---- core linear algebra -------------------------------------------

  /// C = A·B for A:[m,k], B:[k,n] → [m,n].
  Tensor matmul(const Tensor& a, const Tensor& b);

  /// y = x·W + bias for x:[m,k], w:[k,n], bias:[n] → [m,n].
  Tensor linear(const Tensor& x, const Tensor& w, const Tensor& bias);

  // ---- elementwise ----------------------------------------------------

  /// Elementwise a + b (identical shapes).
  Tensor add(const Tensor& a, const Tensor& b);

  /// Elementwise a - b (identical shapes).
  Tensor sub(const Tensor& a, const Tensor& b);

  /// Elementwise Hadamard product (identical shapes).
  Tensor mul(const Tensor& a, const Tensor& b);

  /// Row-broadcast product: out[i,j] = x[i,j] * v[j] for x:[m,n], v:[n].
  Tensor mul_row(const Tensor& x, const Tensor& v);

  /// x * c for scalar constant c.
  Tensor scale(const Tensor& x, float c);

  /// x + c elementwise for scalar constant c.
  Tensor add_scalar(const Tensor& x, float c);

  /// Exact GELU: x·Φ(x).
  Tensor gelu(const Tensor& x);

  /// max(x, 0).
  Tensor relu(const Tensor& x);

  /// tanh(x).
  Tensor tanh_op(const Tensor& x);

  /// Logistic sigmoid.
  Tensor sigmoid(const Tensor& x);

  /// exp(x).
  Tensor exp_op(const Tensor& x);

  /// log(x); inputs must be positive for meaningful gradients.
  Tensor log_op(const Tensor& x);

  /// x².
  Tensor square(const Tensor& x);

  /// Inverted dropout with keep-prob (1-p); identity when p == 0.
  Tensor dropout(const Tensor& x, float p, Rng& rng);

  // ---- reductions ------------------------------------------------------

  /// Sum of all elements → [1].
  Tensor sum_all(const Tensor& x);

  /// Mean of all elements → [1].
  Tensor mean_all(const Tensor& x);

  // ---- shape surgery ---------------------------------------------------

  /// Column slice x[:, lo:hi) of a rank-2 tensor → [m, hi-lo].
  Tensor slice_cols(const Tensor& x, Index lo, Index hi);

  /// Horizontal concatenation of two rank-2 tensors with equal row counts.
  Tensor concat_cols(const Tensor& a, const Tensor& b);

  // ---- fused neural ops ------------------------------------------------

  /// Row-wise softmax of a rank-2 tensor.
  Tensor softmax_rows(const Tensor& x);

  /// LayerNorm over the last dim of x:[m,d] with gain/bias [d].
  Tensor layernorm(const Tensor& x, const Tensor& gain, const Tensor& bias,
                   float eps = 1e-5f);

  /// Row gather: out[i,:] = table[ids[i],:]. Gradient scatters into table.
  Tensor embedding(const std::vector<int>& ids, const Tensor& table);

  /// Fused causal multi-head self-attention.
  /// qkv is [B*T, 3*d] with row layout [q | k | v]; heads split d into H
  /// equal slices. Returns [B*T, d]. Rows are ordered batch-major
  /// (row = b*T + t). Applies the causal mask (position t attends to <= t).
  Tensor causal_self_attention(const Tensor& qkv, Index batch, Index time,
                               Index heads);

  /// Mean softmax cross-entropy over rows whose target != ignore_index.
  /// logits:[m, V], targets.size() == m. Returns a [1] scalar.
  Tensor cross_entropy(const Tensor& logits, const std::vector<int>& targets,
                       int ignore_index = -1);

  // ---- engine ----------------------------------------------------------

  /// Seeds grad(loss) = 1 (loss must be a [1] tensor) and replays the tape
  /// in reverse, accumulating into every participating tensor's grad.
  void backward(const Tensor& loss);

  /// Drops all recorded tape entries (start of a new step).
  void clear() noexcept { tape_.clear(); }

  /// Number of recorded ops (diagnostics/tests).
  std::size_t size() const noexcept { return tape_.size(); }

 private:
  void record(std::function<void()> fn) {
    PPG_DCHECK(fn != nullptr, "recording an empty backward closure");
    tape_.push_back(std::move(fn));
  }

  std::vector<std::function<void()>> tape_;
};

}  // namespace ppg::nn
