// Optimizers: AdamW (used by all neural models, matching the paper's choice)
// and plain SGD (used for tests and the WGAN critic).
#pragma once

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/serialize.h"
#include "nn/layers.h"

namespace ppg::nn {

/// AdamW with decoupled weight decay. Matches the paper's training setup
/// (AdamW, initial LR 5e-5) modulo our scaled-down schedule.
struct AdamWConfig {
  float lr = 5e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
};

class AdamW {
 public:
  using Config = AdamWConfig;

  /// Binds to a parameter list; allocates first/second moment buffers.
  explicit AdamW(ParamList& params, Config cfg = {})
      : params_(&params), cfg_(cfg) {
    for (const auto& p : params.items()) {
      m_.emplace_back(p.tensor.numel(), 0.f);
      v_.emplace_back(p.tensor.numel(), 0.f);
    }
  }

  /// Current learning rate (mutable so schedules can drive it).
  float& lr() noexcept { return cfg_.lr; }

  /// Applies one update from accumulated gradients, then zeroes them.
  void step() {
    ++t_;
    const double bc1 = 1.0 - std::pow(cfg_.beta1, t_);
    const double bc2 = 1.0 - std::pow(cfg_.beta2, t_);
    std::size_t idx = 0;
    for (auto& p : params_->items()) {
      auto data = p.tensor.data();
      auto grad = p.tensor.grad();
      auto& m = m_[idx];
      auto& v = v_[idx];
      for (std::size_t i = 0; i < data.size(); ++i) {
        const float g = grad[i];
        m[i] = cfg_.beta1 * m[i] + (1.f - cfg_.beta1) * g;
        v[i] = cfg_.beta2 * v[i] + (1.f - cfg_.beta2) * g * g;
        const double mhat = m[i] / bc1;
        const double vhat = v[i] / bc2;
        data[i] -= static_cast<float>(
            cfg_.lr * (mhat / (std::sqrt(vhat) + cfg_.eps) +
                       cfg_.weight_decay * data[i]));
        grad[i] = 0.f;
      }
      ++idx;
    }
  }

  /// Update count so far.
  long steps() const noexcept { return t_; }

  /// Serialises the full optimizer state (step count + both moment
  /// buffers). Resuming training without the moments silently restarts
  /// Adam's bias correction and changes every subsequent update, so
  /// checkpoints must round-trip this alongside the parameters.
  void save(BinaryWriter& w) const {
    w.write<std::int64_t>(t_);
    w.write<std::uint64_t>(m_.size());
    for (std::size_t i = 0; i < m_.size(); ++i) {
      w.write_vector(m_[i]);
      w.write_vector(v_[i]);
    }
  }

  /// Restores state written by save(). Throws if the checkpoint's buffer
  /// shapes do not match the bound parameter list.
  void load(BinaryReader& r) {
    const auto t = r.read<std::int64_t>();
    const auto n = r.read<std::uint64_t>();
    if (n != m_.size())
      throw std::runtime_error("AdamW::load: checkpoint has " +
                               std::to_string(n) + " tensors, optimizer has " +
                               std::to_string(m_.size()));
    for (std::size_t i = 0; i < m_.size(); ++i) {
      auto m = r.read_vector<float>();
      auto v = r.read_vector<float>();
      if (m.size() != m_[i].size() || v.size() != v_[i].size())
        throw std::runtime_error(
            "AdamW::load: moment shape mismatch at tensor " +
            std::to_string(i));
      m_[i] = std::move(m);
      v_[i] = std::move(v);
    }
    t_ = static_cast<long>(t);
  }

 private:
  ParamList* params_;
  Config cfg_;
  std::vector<std::vector<float>> m_, v_;
  long t_ = 0;
};

/// Vanilla SGD (optionally with momentum). Used by gradient-check tests and
/// by the WGAN critic where Adam's preconditioning hurts Lipschitz control.
class Sgd {
 public:
  explicit Sgd(ParamList& params, float lr, float momentum = 0.f)
      : params_(&params), lr_(lr), momentum_(momentum) {
    if (momentum_ > 0.f)
      for (const auto& p : params.items())
        vel_.emplace_back(p.tensor.numel(), 0.f);
  }

  float& lr() noexcept { return lr_; }

  /// Applies one update from accumulated gradients, then zeroes them.
  void step() {
    std::size_t idx = 0;
    for (auto& p : params_->items()) {
      auto data = p.tensor.data();
      auto grad = p.tensor.grad();
      for (std::size_t i = 0; i < data.size(); ++i) {
        float update = grad[i];
        if (momentum_ > 0.f) {
          auto& v = vel_[idx];
          v[i] = momentum_ * v[i] + update;
          update = v[i];
        }
        data[i] -= lr_ * update;
        grad[i] = 0.f;
      }
      ++idx;
    }
  }

 private:
  ParamList* params_;
  float lr_;
  float momentum_;
  std::vector<std::vector<float>> vel_;
};

}  // namespace ppg::nn
