// Int8 per-row absmax quantization for the serving fast path
// (DESIGN.md §15). Dynamic, symmetric, no calibration:
//
//   scale = absmax(row) / 127,  q = clamp(round_nearest(x / scale), ±127)
//
// Weights are quantized once per matrix, per OUTPUT channel, and stored
// transposed ([n, k_pad] with k zero-padded to a multiple of 32) so the
// int8 GEMM is pure contiguous dot products. Activations are quantized
// per row at each step. The int32 accumulation is exact (|q| ≤ 127,
// k ≤ 2^15 keeps Σ < 2^31), so the quantized forward is bitwise
// identical across all SIMD backends; only fp32-vs-int8 differ, by a
// bounded rounding error of |y_q − y_f| ≤ k·(s_x·|w|_max + s_w·|x|_max)/2
// per element (each operand is off by at most half a quantization step).
//
// fp32 stays the training substrate; quantization is read-only over the
// trained weights (gpt::GptModel::quantized()).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/backend.h"

namespace ppg::nn::quant {

/// Rows of the int8 weight layout are padded to this many elements so
/// vector int8 dot kernels never need a tail (zeros contribute nothing).
inline constexpr Index kPadAlign = 32;

inline Index padded_k(Index k) {
  return (k + kPadAlign - 1) / kPadAlign * kPadAlign;
}

/// One weight matrix, quantized per output channel and stored transposed.
struct QuantizedMatrix {
  Index n = 0;      ///< output channels (rows of the transposed layout)
  Index k = 0;      ///< input width before padding
  Index k_pad = 0;  ///< row stride, padded_k(k)
  std::vector<std::int8_t> data;  ///< [n, k_pad], row j = channel j
  std::vector<float> scales;      ///< [n] per-channel dequant scales

  std::size_t bytes() const {
    return data.size() * sizeof(std::int8_t) + scales.size() * sizeof(float);
  }
};

/// Quantizes a row-major fp32 weight W[k, n] (the nn::Linear layout) into
/// the transposed int8 form above.
QuantizedMatrix quantize_weights(const float* w, Index k, Index n);

}  // namespace ppg::nn::quant
