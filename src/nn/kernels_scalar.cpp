// Scalar kernel backend: the oracle every SIMD backend is differentially
// tested against (tests/kernel_backend_test.cpp), and the fallback on
// CPUs without AVX2. It spells out the canonical accumulation contract
// of kernels_impl.h in plain loops: std::fmaf per multiply-accumulate,
// dot8/sum8/sumsq8 for reductions. Under the release flags the fmaf
// loops still auto-vectorize to hardware FMA, so "scalar" here means
// "reference semantics", not "unvectorized".
//
// This TU is compiled with -ffp-contract=off
// -fno-unsafe-math-optimizations (see src/nn/CMakeLists.txt); edits must
// preserve the per-element accumulation order documented in
// kernels_impl.h or the cross-backend bitwise tests will fail.
#include <cmath>
#include <cstdint>

#include "nn/kernels_impl.h"

namespace ppg::nn::kernels_detail::scalar {

namespace {

/// Shared core of gemm_nn / affine: when `bias` is non-null every output
/// element starts from bias[j] (no accumulate); when null it accumulates
/// into the existing C. Straight-line p loop, no zero skips — the
/// contract (kernels_impl.h) forbids data-dependent branches here so the
/// SIMD tiles stay branch-free in their hot loops.
void gemm_bias(Index m, Index n, Index k, const float* __restrict a,
               const float* __restrict b, const float* __restrict bias,
               float* __restrict c) {
  if (bias != nullptr)
    for (Index i = 0; i < m; ++i) {
      float* crow = c + i * n;
      for (Index j = 0; j < n; ++j) crow[j] = bias[j];
    }
  Index i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    for (Index p = 0; p < k; ++p) {
      const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      const float* brow = b + p * n;
      for (Index j = 0; j < n; ++j) {
        const float bv = brow[j];
        c0[j] = std::fmaf(v0, bv, c0[j]);
        c1[j] = std::fmaf(v1, bv, c1[j]);
        c2[j] = std::fmaf(v2, bv, c2[j]);
        c3[j] = std::fmaf(v3, bv, c3[j]);
      }
    }
  }
  for (; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (Index p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (Index j = 0; j < n; ++j) crow[j] = std::fmaf(av, brow[j], crow[j]);
    }
  }
}

}  // namespace

void gemm_nn(Index m, Index n, Index k, const float* a, const float* b,
             float* c) {
  gemm_bias(m, n, k, a, b, nullptr, c);
}

void affine(Index m, Index n, Index k, const float* x, const float* w,
            const float* bias, float* y) {
  gemm_bias(m, n, k, x, w, bias, y);
}

void gemm_nt(Index m, Index n, Index k, const float* __restrict a,
             const float* __restrict b, float* __restrict c) {
  for (Index i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (Index j = 0; j < n; ++j)
      crow[j] += dot8(k, arow, b + j * k);
  }
}

void gemm_tn(Index m, Index n, Index k, const float* __restrict a,
             const float* __restrict b, float* __restrict c) {
  for (Index p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (Index i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* crow = c + i * n;
      for (Index j = 0; j < n; ++j) crow[j] = std::fmaf(av, brow[j], crow[j]);
    }
  }
}

void layernorm_rows(Index rows, Index d, const float* x, const float* gain,
                    const float* bias, float* y) {
  const float invd = 1.f / static_cast<float>(d);
  for (Index i = 0; i < rows; ++i) {
    const float* xr = x + i * d;
    float* yr = y + i * d;
    const float mean = sum8(d, xr) * invd;
    const float var = sumsq8(d, xr, mean);
    const float rs = 1.f / std::sqrt(var * invd + 1e-5f);
    for (Index j = 0; j < d; ++j)
      yr[j] = std::fmaf((xr[j] - mean) * rs, gain[j], bias[j]);
  }
}

void softmax_rows(Index rows, Index n, const float* x, float* y) {
  for (Index i = 0; i < rows; ++i) {
    const float* xr = x + i * n;
    float* yr = y + i * n;
    float mx = xr[0];
    for (Index j = 1; j < n; ++j) mx = std::max(mx, xr[j]);
    for (Index j = 0; j < n; ++j) yr[j] = std::exp(xr[j] - mx);
    const float inv = 1.f / sum8(n, yr);
    for (Index j = 0; j < n; ++j) yr[j] *= inv;
  }
}

void quantize_rows(Index rows, Index k, Index k_pad, const float* x,
                   std::int8_t* q, float* scale) {
  for (Index i = 0; i < rows; ++i) {
    const float* xr = x + i * k;
    std::int8_t* qr = q + i * k_pad;
    float amax = 0.f;
    for (Index j = 0; j < k; ++j) amax = std::max(amax, std::fabs(xr[j]));
    scale[i] = amax / 127.f;
    // lrintf rounds to nearest-even under the default mode — the same
    // rule _mm256_cvtps_epi32 hardwires, so a vector requantizer could
    // never disagree. Clamp to ±127 keeps q symmetric (−128 unused).
    const float inv = amax > 0.f ? 127.f / amax : 0.f;
    for (Index j = 0; j < k; ++j) {
      long r = std::lrintf(xr[j] * inv);
      if (r > 127) r = 127;
      if (r < -127) r = -127;
      qr[j] = static_cast<std::int8_t>(r);
    }
    for (Index j = k; j < k_pad; ++j) qr[j] = 0;
  }
}

void qaffine(Index m, Index n, Index k_pad, const std::int8_t* qx,
             const float* sx, const std::int8_t* qw, const float* sw,
             const float* bias, float* y) {
  for (Index i = 0; i < m; ++i) {
    const std::int8_t* xr = qx + i * k_pad;
    const float si = sx[i];
    float* yr = y + i * n;
    for (Index j = 0; j < n; ++j) {
      const std::int8_t* wr = qw + j * k_pad;
      std::int32_t acc = 0;
      for (Index p = 0; p < k_pad; ++p)
        acc += static_cast<std::int32_t>(xr[p]) *
               static_cast<std::int32_t>(wr[p]);
      yr[j] = std::fmaf(static_cast<float>(acc), si * sw[j], bias[j]);
    }
  }
}

}  // namespace ppg::nn::kernels_detail::scalar
