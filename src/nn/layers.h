// Parameterised layer modules on top of the autograd Graph.
//
// A module owns its parameter Tensors and exposes forward(Graph&, ...).
// Parameters are registered into a flat list (see Module::params) that the
// optimizer and the checkpoint (de)serializers walk in declaration order.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "nn/graph.h"
#include "nn/tensor.h"

namespace ppg::nn {

/// A named parameter handle used for optimizer walks and checkpoints.
struct Param {
  std::string name;
  Tensor tensor;
};

/// Collects parameters of a model in a stable order.
class ParamList {
 public:
  /// Registers a parameter; returns the same tensor for chaining.
  Tensor& add(std::string name, Tensor& t) {
    params_.push_back({std::move(name), t});
    return t;
  }

  /// All registered parameters in registration order.
  const std::vector<Param>& items() const noexcept { return params_; }

  /// Mutable access for optimizers.
  std::vector<Param>& items() noexcept { return params_; }

  /// Zeroes every parameter gradient.
  void zero_grad() {
    for (auto& p : params_) p.tensor.zero_grad();
  }

  /// Total scalar parameter count.
  std::size_t count() const noexcept {
    std::size_t n = 0;
    for (const auto& p : params_) n += p.tensor.numel();
    return n;
  }

  /// Global L2 gradient clipping; returns the pre-clip norm.
  double clip_grad_norm(double max_norm) {
    double sq = 0.0;
    for (auto& p : params_)
      for (const float g : p.tensor.grad()) sq += double(g) * g;
    const double norm = std::sqrt(sq);
    if (norm > max_norm && norm > 0.0) {
      const float s = static_cast<float>(max_norm / norm);
      for (auto& p : params_)
        for (auto& g : p.tensor.grad()) g *= s;
    }
    return norm;
  }

  /// Serializes all parameter values (not grads) in order.
  void save(BinaryWriter& w) const {
    w.write<std::uint64_t>(params_.size());
    for (const auto& p : params_) {
      w.write_string(p.name);
      const auto d = p.tensor.data();
      w.write_vector(std::vector<float>(d.begin(), d.end()));
    }
  }

  /// Restores parameter values; names and sizes must match exactly. Errors
  /// name the offending parameter so corrupt checkpoints are diagnosable.
  void load(BinaryReader& r) {
    const auto n = r.read<std::uint64_t>();
    if (n != params_.size())
      throw std::runtime_error(
          "ParamList::load: parameter count mismatch (stored " +
          std::to_string(n) + ", model has " +
          std::to_string(params_.size()) + ")");
    for (auto& p : params_) {
      const std::string name = r.read_string();
      if (name != p.name)
        throw std::runtime_error("ParamList::load: expected parameter '" +
                                 p.name + "', found '" + name + "'");
      const auto values = r.read_vector<float>();
      if (values.size() != p.tensor.numel())
        throw std::runtime_error(
            "ParamList::load: parameter '" + name + "' has " +
            std::to_string(values.size()) + " values, model expects " +
            std::to_string(p.tensor.numel()));
      auto dst = p.tensor.data();
      std::copy(values.begin(), values.end(), dst.begin());
    }
  }

 private:
  std::vector<Param> params_;
};

/// Affine layer y = xW + b with scaled-normal init (GPT-2 style).
class Linear {
 public:
  Linear() = default;

  /// Creates a [in, out] weight and [out] bias; registers both in `params`.
  Linear(ParamList& params, const std::string& name, Index in, Index out,
         Rng& rng, float init_scale = 1.0f)
      : w_({in, out}), b_({out}) {
    w_.fill_normal(rng, 0.02f * init_scale);
    b_.fill(0.f);
    params.add(name + ".weight", w_);
    params.add(name + ".bias", b_);
  }

  /// Applies the affine map.
  Tensor forward(Graph& g, const Tensor& x) const {
    return g.linear(x, w_, b_);
  }

  /// Weight tensor (e.g. for weight clipping in WGAN critics).
  Tensor& weight() noexcept { return w_; }
  Tensor& bias() noexcept { return b_; }
  const Tensor& weight() const noexcept { return w_; }
  const Tensor& bias() const noexcept { return b_; }

 private:
  Tensor w_, b_;
};

/// LayerNorm with learned gain/bias.
class LayerNorm {
 public:
  LayerNorm() = default;

  LayerNorm(ParamList& params, const std::string& name, Index dim)
      : g_({dim}), b_({dim}) {
    g_.fill(1.f);
    b_.fill(0.f);
    params.add(name + ".gain", g_);
    params.add(name + ".bias", b_);
  }

  Tensor forward(Graph& g, const Tensor& x) const {
    return g.layernorm(x, g_, b_);
  }

  const Tensor& gain() const noexcept { return g_; }
  const Tensor& bias() const noexcept { return b_; }

 private:
  Tensor g_, b_;
};

/// Token/position embedding table.
class Embedding {
 public:
  Embedding() = default;

  Embedding(ParamList& params, const std::string& name, Index vocab, Index dim,
            Rng& rng)
      : table_({vocab, dim}) {
    table_.fill_normal(rng, 0.02f);
    params.add(name + ".table", table_);
  }

  Tensor forward(Graph& g, const std::vector<int>& ids) const {
    return g.embedding(ids, table_);
  }

  const Tensor& table() const noexcept { return table_; }
  Tensor& table() noexcept { return table_; }

 private:
  Tensor table_;
};

}  // namespace ppg::nn
