// AVX-512 kernel backend. Provides only the "j-lane" kernels — gemm_nn,
// gemm_tn, affine and the int8 qaffine — where widening the vector is
// free of reordering hazards: each output element's fmadd chain keeps the
// scalar order whatever the lane count, and int32 dot products are exact.
// The reduction kernels (gemm_nt, layernorm_rows, softmax_rows) would
// need 16 accumulation lanes, which breaks the canonical 8-lane contract
// of kernels_impl.h, so the AVX-512 dispatch table borrows the AVX2
// implementations for those instead (see backend.cpp).
//
// Compiled with -mavx512{f,bw,dq,vl} -mfma regardless of host; dispatched
// only after cpuid confirms avx512f+bw (backend.cpp). Same FP flags as
// the other backend TUs: -ffp-contract=off -fno-unsafe-math-optimizations.
#include <immintrin.h>

#include <cmath>
#include <cstdint>

#include "nn/kernels_impl.h"

namespace ppg::nn::kernels_detail::avx512 {

namespace {

/// Shared core of gemm_nn / affine, 4-row × 32-column zmm register tile.
/// Tails narrow to 16 via a masked zmm (masked lanes never touch memory
/// or the accumulator chain), then to the scalar contract loop.
void gemm_bias(Index m, Index n, Index k, const float* a, const float* b,
               const float* bias, float* c) {
  Index i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    Index j = 0;
    for (; j + 32 <= n; j += 32) {
      __m512 i0, i1;
      if (bias != nullptr) {
        i0 = _mm512_loadu_ps(bias + j);
        i1 = _mm512_loadu_ps(bias + j + 16);
      } else {
        i0 = _mm512_loadu_ps(c0 + j);
        i1 = _mm512_loadu_ps(c0 + j + 16);
      }
      __m512 s00 = i0, s01 = i1;
      __m512 s10 = bias != nullptr ? i0 : _mm512_loadu_ps(c1 + j);
      __m512 s11 = bias != nullptr ? i1 : _mm512_loadu_ps(c1 + j + 16);
      __m512 s20 = bias != nullptr ? i0 : _mm512_loadu_ps(c2 + j);
      __m512 s21 = bias != nullptr ? i1 : _mm512_loadu_ps(c2 + j + 16);
      __m512 s30 = bias != nullptr ? i0 : _mm512_loadu_ps(c3 + j);
      __m512 s31 = bias != nullptr ? i1 : _mm512_loadu_ps(c3 + j + 16);
      for (Index p = 0; p < k; ++p) {
        const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
        const float* brow = b + p * n + j;
        const __m512 b0 = _mm512_loadu_ps(brow);
        const __m512 b1 = _mm512_loadu_ps(brow + 16);
        const __m512 w0 = _mm512_set1_ps(v0);
        s00 = _mm512_fmadd_ps(w0, b0, s00);
        s01 = _mm512_fmadd_ps(w0, b1, s01);
        const __m512 w1 = _mm512_set1_ps(v1);
        s10 = _mm512_fmadd_ps(w1, b0, s10);
        s11 = _mm512_fmadd_ps(w1, b1, s11);
        const __m512 w2 = _mm512_set1_ps(v2);
        s20 = _mm512_fmadd_ps(w2, b0, s20);
        s21 = _mm512_fmadd_ps(w2, b1, s21);
        const __m512 w3 = _mm512_set1_ps(v3);
        s30 = _mm512_fmadd_ps(w3, b0, s30);
        s31 = _mm512_fmadd_ps(w3, b1, s31);
      }
      _mm512_storeu_ps(c0 + j, s00);
      _mm512_storeu_ps(c0 + j + 16, s01);
      _mm512_storeu_ps(c1 + j, s10);
      _mm512_storeu_ps(c1 + j + 16, s11);
      _mm512_storeu_ps(c2 + j, s20);
      _mm512_storeu_ps(c2 + j + 16, s21);
      _mm512_storeu_ps(c3 + j, s30);
      _mm512_storeu_ps(c3 + j + 16, s31);
    }
    if (j < n) {
      // Masked 16-wide tail covers the remaining 1..31 columns in at most
      // two passes; inactive lanes are never loaded or stored.
      for (; j < n; j += 16) {
        const Index w = std::min<Index>(16, n - j);
        const __mmask16 mask =
            static_cast<__mmask16>((1u << w) - 1u);
        const __m512 i0 = bias != nullptr
                              ? _mm512_maskz_loadu_ps(mask, bias + j)
                              : _mm512_maskz_loadu_ps(mask, c0 + j);
        __m512 s0 = i0;
        __m512 s1 =
            bias != nullptr ? i0 : _mm512_maskz_loadu_ps(mask, c1 + j);
        __m512 s2 =
            bias != nullptr ? i0 : _mm512_maskz_loadu_ps(mask, c2 + j);
        __m512 s3 =
            bias != nullptr ? i0 : _mm512_maskz_loadu_ps(mask, c3 + j);
        for (Index p = 0; p < k; ++p) {
          const __m512 bv = _mm512_maskz_loadu_ps(mask, b + p * n + j);
          s0 = _mm512_fmadd_ps(_mm512_set1_ps(a0[p]), bv, s0);
          s1 = _mm512_fmadd_ps(_mm512_set1_ps(a1[p]), bv, s1);
          s2 = _mm512_fmadd_ps(_mm512_set1_ps(a2[p]), bv, s2);
          s3 = _mm512_fmadd_ps(_mm512_set1_ps(a3[p]), bv, s3);
        }
        _mm512_mask_storeu_ps(c0 + j, mask, s0);
        _mm512_mask_storeu_ps(c1 + j, mask, s1);
        _mm512_mask_storeu_ps(c2 + j, mask, s2);
        _mm512_mask_storeu_ps(c3 + j, mask, s3);
      }
    }
  }
  for (; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (Index j = 0; j < n; j += 16) {
      const Index w = std::min<Index>(16, n - j);
      const __mmask16 mask = static_cast<__mmask16>((1u << w) - 1u);
      __m512 s = bias != nullptr ? _mm512_maskz_loadu_ps(mask, bias + j)
                                 : _mm512_maskz_loadu_ps(mask, crow + j);
      for (Index p = 0; p < k; ++p)
        s = _mm512_fmadd_ps(_mm512_set1_ps(arow[p]),
                            _mm512_maskz_loadu_ps(mask, b + p * n + j), s);
      _mm512_mask_storeu_ps(crow + j, mask, s);
    }
  }
}

}  // namespace

void gemm_nn(Index m, Index n, Index k, const float* a, const float* b,
             float* c) {
  gemm_bias(m, n, k, a, b, nullptr, c);
}

void affine(Index m, Index n, Index k, const float* x, const float* w,
            const float* bias, float* y) {
  gemm_bias(m, n, k, x, w, bias, y);
}

void gemm_tn(Index m, Index n, Index k, const float* a, const float* b,
             float* c) {
  for (Index p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (Index i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* crow = c + i * n;
      const __m512 w = _mm512_set1_ps(av);
      for (Index j = 0; j < n; j += 16) {
        const Index cols = std::min<Index>(16, n - j);
        const __mmask16 mask = static_cast<__mmask16>((1u << cols) - 1u);
        _mm512_mask_storeu_ps(
            crow + j, mask,
            _mm512_fmadd_ps(w, _mm512_maskz_loadu_ps(mask, brow + j),
                            _mm512_maskz_loadu_ps(mask, crow + j)));
      }
    }
  }
}

void qaffine(Index m, Index n, Index k_pad, const std::int8_t* qx,
             const float* sx, const std::int8_t* qw, const float* sw,
             const float* bias, float* y) {
  // Same maddubs sign trick as the AVX2 table (see kernels_avx2.cpp):
  // |x|·copysign(w,x) pairs stay below the s16 saturation line, so the
  // whole chain is integer-exact and backend-invariant. Four output
  // channels share the |x| vectors; the 32-byte remainder of an odd
  // k_pad multiple runs the identical ymm step under AVX-512VL.
  const __m512i ones16 = _mm512_set1_epi16(1);
  const __m256i yones16 = _mm256_set1_epi16(1);
  for (Index i = 0; i < m; ++i) {
    const std::int8_t* xr = qx + i * k_pad;
    const float si = sx[i];
    float* yr = y + i * n;
    Index j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* w0 = qw + j * k_pad;
      const std::int8_t* w1 = w0 + k_pad;
      const std::int8_t* w2 = w1 + k_pad;
      const std::int8_t* w3 = w2 + k_pad;
      __m256i a0 = _mm256_setzero_si256(), a1 = a0, a2 = a0, a3 = a0;
      Index p = 0;
      for (; p + 64 <= k_pad; p += 64) {
        const __m512i xv = _mm512_loadu_si512(xr + p);
        const __m512i xabs = _mm512_abs_epi8(xv);
        // AVX-512BW has no vpsignb; copysign(w,x) spelled via a mask of
        // x's negative bytes: w, negated where x < 0 (x == 0 never
        // matters — its |x| lane multiplies to 0 either way).
        const __mmask64 neg =
            _mm512_movepi8_mask(xv);  // sign bits of each byte
        const auto lane = [&](const std::int8_t* wr, __m256i acc) {
          const __m512i wv = _mm512_loadu_si512(wr + p);
          const __m512i wsigned =
              _mm512_mask_sub_epi8(wv, neg, _mm512_setzero_si512(), wv);
          const __m512i prod = _mm512_maddubs_epi16(xabs, wsigned);
          const __m512i dots = _mm512_madd_epi16(prod, ones16);
          // Fold the zmm into the ymm accumulator so all widths share one
          // per-channel accumulator (integer adds commute; still exact).
          return _mm256_add_epi32(
              acc, _mm256_add_epi32(_mm512_castsi512_si256(dots),
                                    _mm512_extracti64x4_epi64(dots, 1)));
        };
        a0 = lane(w0, a0);
        a1 = lane(w1, a1);
        a2 = lane(w2, a2);
        a3 = lane(w3, a3);
      }
      for (; p < k_pad; p += 32) {
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(xr + p));
        const __m256i xabs = _mm256_abs_epi8(xv);
        const auto lane = [&](const std::int8_t* wr, __m256i acc) {
          const __m256i wv = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(wr + p));
          const __m256i prod =
              _mm256_maddubs_epi16(xabs, _mm256_sign_epi8(wv, xv));
          return _mm256_add_epi32(acc, _mm256_madd_epi16(prod, yones16));
        };
        a0 = lane(w0, a0);
        a1 = lane(w1, a1);
        a2 = lane(w2, a2);
        a3 = lane(w3, a3);
      }
      // Joint 4-channel hadd-tree reduction + vector dequant; identical
      // operation sequence to the AVX2 table's epilogue, and the same
      // correctly rounded ops as the scalar fmaf expression.
      const __m256i t01 = _mm256_hadd_epi32(a0, a1);
      const __m256i t23 = _mm256_hadd_epi32(a2, a3);
      const __m256i t = _mm256_hadd_epi32(t01, t23);
      const __m128i sums = _mm_add_epi32(_mm256_castsi256_si128(t),
                                         _mm256_extracti128_si256(t, 1));
      const __m128 scale =
          _mm_mul_ps(_mm_set1_ps(si), _mm_loadu_ps(sw + j));
      _mm_storeu_ps(yr + j, _mm_fmadd_ps(_mm_cvtepi32_ps(sums), scale,
                                         _mm_loadu_ps(bias + j)));
    }
    for (; j < n; ++j) {
      const std::int8_t* wr = qw + j * k_pad;
      std::int64_t acc = 0;
      for (Index p = 0; p < k_pad; ++p)
        acc += std::int32_t(xr[p]) * std::int32_t(wr[p]);
      yr[j] = std::fmaf(static_cast<float>(acc), si * sw[j], bias[j]);
    }
  }
}

}  // namespace ppg::nn::kernels_detail::avx512
