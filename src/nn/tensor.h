// Tensor: the storage type of the nn substrate.
//
// A Tensor is a cheap value-semantic handle (shallow copy) over shared
// float storage plus a gradient buffer of the same size. Shapes are dense
// row-major. The autograd engine (graph.h) creates tensors for op outputs
// and accumulates into `grad` during the backward pass; optimizers
// (optimizer.h) consume and zero parameter gradients.
//
// This project only ever needs rank-1/2 tensors at the op interface —
// batched sequence data is handled as [batch*time, features] and the fused
// attention op carries (B, T, H) as explicit arguments — which keeps every
// kernel a simple 2-D loop the compiler can vectorise.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace ppg::nn {

using Index = std::int64_t;

/// Dense row-major float tensor handle. Copies are shallow (shared storage);
/// use clone() for a deep copy.
class Tensor {
 public:
  /// Empty (null) tensor; most APIs reject it.
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(std::vector<Index> shape)
      : shape_(std::move(shape)),
        data_(std::make_shared<std::vector<float>>(checked_numel(shape_), 0.f)),
        grad_(std::make_shared<std::vector<float>>(data_->size(), 0.f)) {}

  /// Convenience: Tensor({m, n}).
  Tensor(std::initializer_list<Index> shape)
      : Tensor(std::vector<Index>(shape)) {}

  /// Builds a tensor wrapping a copy of `values` with the given shape.
  static Tensor from(std::vector<Index> shape, std::vector<float> values) {
    Tensor t(std::move(shape));
    if (values.size() != t.numel())
      throw std::invalid_argument("Tensor::from: value count != numel");
    *t.data_ = std::move(values);
    return t;
  }

  /// True when this handle owns storage.
  bool valid() const noexcept { return data_ != nullptr; }

  /// The shape vector.
  const std::vector<Index>& shape() const noexcept { return shape_; }

  /// Tensor rank.
  std::size_t rank() const noexcept { return shape_.size(); }

  /// Extent of dimension i.
  Index dim(std::size_t i) const {
    PPG_CHECK(i < shape_.size(), "dim %zu of a rank-%zu tensor", i,
              shape_.size());
    return shape_[i];
  }

  /// Total element count.
  std::size_t numel() const noexcept { return data_ ? data_->size() : 0; }

  // Constness of a Tensor handle is shallow (like shared_ptr): a const
  // Tensor means "this handle won't rebind", while the shared storage stays
  // writable. The autograd tape relies on this — backward closures capture
  // handles by value and accumulate into the shared grad buffers.

  /// View of the values (shared, writable).
  std::span<float> data() const noexcept {
    return {data_->data(), data_->size()};
  }

  /// View of the gradient buffer (shared, writable).
  std::span<float> grad() const noexcept {
    return {grad_->data(), grad_->size()};
  }

  // The at() accessors carry rank and bounds DCHECKs: free in release
  // builds (the macros compile out; bench_micro_nn confirmed identical
  // numbers), fatal with a precise diagnostic in Debug/sanitize builds —
  // an out-of-range offset here would otherwise read another tensor's
  // storage and surface as silently wrong numerics far away.

  /// Element access for rank-2 tensors.
  float& at(Index r, Index c) const {
    PPG_DCHECK(rank() == 2, "at(r,c) on a rank-%zu tensor", rank());
    PPG_DCHECK(r >= 0 && r < shape_[0], "row %lld outside [0, %lld)",
               static_cast<long long>(r), static_cast<long long>(shape_[0]));
    PPG_DCHECK(c >= 0 && c < shape_[1], "col %lld outside [0, %lld)",
               static_cast<long long>(c), static_cast<long long>(shape_[1]));
    return (*data_)[static_cast<std::size_t>(r * shape_[1] + c)];
  }

  /// Element access for rank-1 tensors.
  float& at(Index i) const {
    PPG_DCHECK(rank() == 1, "at(i) on a rank-%zu tensor", rank());
    PPG_DCHECK(i >= 0 && i < shape_[0], "index %lld outside [0, %lld)",
               static_cast<long long>(i), static_cast<long long>(shape_[0]));
    return (*data_)[static_cast<std::size_t>(i)];
  }

  /// Zeroes the gradient buffer.
  void zero_grad() const noexcept {
    for (auto& g : *grad_) g = 0.f;
  }

  /// Fills values with a constant.
  void fill(float v) const noexcept {
    for (auto& x : *data_) x = v;
  }

  /// Fills values with N(0, stddev) draws from `rng`.
  void fill_normal(Rng& rng, float stddev) const {
    for (auto& x : *data_) x = static_cast<float>(rng.normal(0.0, stddev));
  }

  /// Fills values with U(-limit, limit) draws from `rng`.
  void fill_uniform(Rng& rng, float limit) const {
    for (auto& x : *data_)
      x = (2.f * rng.uniform_f() - 1.f) * limit;
  }

  /// Deep copy (fresh storage, gradients zeroed).
  Tensor clone() const {
    Tensor t(shape_);
    *t.data_ = *data_;
    return t;
  }

  /// Returns a handle sharing this storage but presenting `shape` (numel
  /// must match). Gradients are shared too, so reshape is autograd-neutral.
  Tensor reshaped(std::vector<Index> shape) const {
    if (checked_numel(shape) != numel())
      throw std::invalid_argument("Tensor::reshaped: numel mismatch");
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = data_;
    t.grad_ = grad_;
    return t;
  }

  /// True when two handles share storage.
  bool shares_storage_with(const Tensor& other) const noexcept {
    return data_ == other.data_;
  }

  /// Debug string like "[2, 3]".
  std::string shape_str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(shape_[i]);
    }
    return s + "]";
  }

 private:
  static std::size_t checked_numel(const std::vector<Index>& shape) {
    std::size_t n = 1;
    for (const Index d : shape) {
      if (d <= 0) throw std::invalid_argument("Tensor: nonpositive dimension");
      n *= static_cast<std::size_t>(d);
    }
    return n;
  }

  std::vector<Index> shape_;
  std::shared_ptr<std::vector<float>> data_;
  std::shared_ptr<std::vector<float>> grad_;
};

}  // namespace ppg::nn
