#include "nn/quant.h"

#include <stdexcept>

namespace ppg::nn::quant {

QuantizedMatrix quantize_weights(const float* w, Index k, Index n) {
  if (k <= 0 || n <= 0)
    throw std::invalid_argument("quantize_weights: empty matrix");
  QuantizedMatrix q;
  q.n = n;
  q.k = k;
  q.k_pad = padded_k(k);
  q.data.resize(static_cast<std::size_t>(n * q.k_pad));
  q.scales.resize(static_cast<std::size_t>(n));
  // Transpose W[k, n] into per-output-channel rows, then reuse the one
  // shared quantize_rows kernel (identical in every backend table).
  std::vector<float> wt(static_cast<std::size_t>(n * k));
  for (Index p = 0; p < k; ++p)
    for (Index j = 0; j < n; ++j) wt[j * k + p] = w[p * n + j];
  active_backend().quantize_rows(n, k, q.k_pad, wt.data(), q.data.data(),
                                 q.scales.data());
  return q;
}

}  // namespace ppg::nn::quant
