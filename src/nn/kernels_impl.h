// Internal: per-backend kernel entry points and the canonical accumulation
// contract every backend must reproduce bit for bit.
//
// The contract (enforced by tests/kernel_backend_test.cpp):
//
//  * Every multiply-accumulate is a correctly rounded fused multiply-add
//    (std::fmaf in the scalar backend — glibc's fmaf is correctly rounded
//    even without hardware FMA — and vfmadd in the vector backends), so
//    one madd produces identical bits on every backend.
//  * Elementwise ("j-lane") kernels — gemm_nn, affine, gemm_tn and the
//    layernorm/softmax normalization loops — fix a per-OUTPUT-element
//    order: the initial value (0, C, or bias) followed by madds in
//    ascending p. Vectorizing across outputs never reorders any single
//    output's chain, so these match at any vector width by construction.
//    gemm_nn/affine hot loops are BRANCH-FREE: no data-dependent zero
//    skips (a per-p scalar compare costs ~2× GEMM throughput; fmaf with
//    a zero multiplier is value-preserving for finite data anyway). Only
//    gemm_tn keeps its av == 0.f row skip — rank-1 updates over sparse
//    gradients are its reason to exist — and every backend replicates
//    that one rule so the madd COUNT stays equal across tables.
//  * Reductions (gemm_nt dots, softmax's Σexp, layernorm's mean/var) use
//    dot8/sum8/sumsq8 below: eight accumulation lanes (lane t takes
//    elements j ≡ t mod 8 of the first ⌊n/8⌋·8), combined by the fixed
//    tree ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)) — exactly one ymm
//    accumulator reduced by the extract-hi/movehl/shuffle sequence — then
//    the tail folded in sequentially. The AVX-512 backend reuses the
//    AVX2 reduction kernels rather than widening to sixteen lanes.
//  * expf stays a scalar libm call in every backend (the same symbol →
//    the same bits); max reductions are order-free over finite floats.
//
// Backend TUs are compiled with -ffp-contract=off and
// -fno-unsafe-math-optimizations appended after the global -ffast-math,
// so the compiler may neither contract a*b+c into an fma nor reassociate
// the trees above: the source-level order IS the executed order.
#pragma once

#include <cmath>
#include <cstdint>

namespace ppg::nn::kernels_detail {

using Index = std::int64_t;

/// Canonical 8-lane fused-multiply-add dot product (see contract above).
inline float dot8(Index n, const float* x, const float* y) {
  float l[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  Index j = 0;
  for (; j + 8 <= n; j += 8)
    for (int t = 0; t < 8; ++t) l[t] = std::fmaf(x[j + t], y[j + t], l[t]);
  float s = ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
  for (; j < n; ++j) s = std::fmaf(x[j], y[j], s);
  return s;
}

/// Canonical 8-lane sum.
inline float sum8(Index n, const float* x) {
  float l[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  Index j = 0;
  for (; j + 8 <= n; j += 8)
    for (int t = 0; t < 8; ++t) l[t] += x[j + t];
  float s = ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
  for (; j < n; ++j) s += x[j];
  return s;
}

/// Canonical 8-lane sum of squared deviations: Σ (x[j] - mean)².
inline float sumsq8(Index n, const float* x, float mean) {
  float l[8] = {0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f, 0.f};
  Index j = 0;
  for (; j + 8 <= n; j += 8)
    for (int t = 0; t < 8; ++t) {
      const float c = x[j + t] - mean;
      l[t] = std::fmaf(c, c, l[t]);
    }
  float s = ((l[0] + l[4]) + (l[2] + l[6])) + ((l[1] + l[5]) + (l[3] + l[7]));
  for (; j < n; ++j) {
    const float c = x[j] - mean;
    s = std::fmaf(c, c, s);
  }
  return s;
}

// Entry points each backend TU defines. The AVX-512 table deliberately
// borrows the AVX2 reduction kernels (gemm_nt, layernorm_rows,
// softmax_rows) so lane geometry never differs; quantize_rows has a
// single scalar definition shared by every table (it is O(rows·k) next
// to the O(rows·k·n) GEMMs, and sharing removes a whole class of
// rounding-mode mismatches).
namespace scalar {
void gemm_nn(Index m, Index n, Index k, const float* a, const float* b,
             float* c);
void gemm_nt(Index m, Index n, Index k, const float* a, const float* b,
             float* c);
void gemm_tn(Index m, Index n, Index k, const float* a, const float* b,
             float* c);
void affine(Index m, Index n, Index k, const float* x, const float* w,
            const float* bias, float* y);
void layernorm_rows(Index rows, Index d, const float* x, const float* gain,
                    const float* bias, float* y);
void softmax_rows(Index rows, Index n, const float* x, float* y);
void quantize_rows(Index rows, Index k, Index k_pad, const float* x,
                   std::int8_t* q, float* scale);
void qaffine(Index m, Index n, Index k_pad, const std::int8_t* qx,
             const float* sx, const std::int8_t* qw, const float* sw,
             const float* bias, float* y);
}  // namespace scalar

namespace avx2 {
void gemm_nn(Index m, Index n, Index k, const float* a, const float* b,
             float* c);
void gemm_nt(Index m, Index n, Index k, const float* a, const float* b,
             float* c);
void gemm_tn(Index m, Index n, Index k, const float* a, const float* b,
             float* c);
void affine(Index m, Index n, Index k, const float* x, const float* w,
            const float* bias, float* y);
void layernorm_rows(Index rows, Index d, const float* x, const float* gain,
                    const float* bias, float* y);
void softmax_rows(Index rows, Index n, const float* x, float* y);
void qaffine(Index m, Index n, Index k_pad, const std::int8_t* qx,
             const float* sx, const std::int8_t* qw, const float* sw,
             const float* bias, float* y);
}  // namespace avx2

namespace avx512 {
void gemm_nn(Index m, Index n, Index k, const float* a, const float* b,
             float* c);
void gemm_tn(Index m, Index n, Index k, const float* a, const float* b,
             float* c);
void affine(Index m, Index n, Index k, const float* x, const float* w,
            const float* bias, float* y);
void qaffine(Index m, Index n, Index k_pad, const std::int8_t* qx,
             const float* sx, const std::int8_t* qw, const float* sw,
             const float* bias, float* y);
}  // namespace avx512

}  // namespace ppg::nn::kernels_detail
