// Runtime-dispatched SIMD kernel backends (DESIGN.md §15).
//
// Every float kernel in nn/kernels.h routes through one KernelBackend
// function table. Three tables exist: a scalar oracle, an AVX2 table and
// an AVX-512 table (x86-64 builds only; other targets get scalar alone).
// The active table is resolved once, lazily: the PPG_NN_BACKEND
// environment variable ("scalar" | "avx2" | "avx512") wins when set,
// otherwise cpuid picks the widest table the running CPU supports.
// `ppg_serve --nn-backend` and tests override it via set_backend().
//
// The backend choice is NOT allowed to change results: every fp32 kernel
// follows one canonical accumulation contract (fused multiply-adds in a
// fixed per-element order; reductions decompose into eight accumulation
// lanes combined by a fixed tree — see kernels_impl.h), so all backends
// produce bitwise identical output for identical input. The int8 path is
// integer-exact and therefore trivially backend-invariant. The
// cross-backend differential harness (tests/kernel_backend_test.cpp)
// pins both properties; because of them, dispatch is free to follow the
// hardware without entering any reproducibility fingerprint.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppg::nn {

using Index = std::int64_t;

enum class BackendKind : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// One backend's kernel entry points. All pointers are always non-null.
/// Shapes/layouts match the wrappers in nn/kernels.h, which own the
/// argument DCHECKs; these raw entries assume validated arguments.
struct KernelBackend {
  BackendKind kind;
  const char* name;
  // fp32 GEMM family (C += ..., row-major, contiguous).
  void (*gemm_nn)(Index m, Index n, Index k, const float* a, const float* b,
                  float* c);
  void (*gemm_nt)(Index m, Index n, Index k, const float* a, const float* b,
                  float* c);
  void (*gemm_tn)(Index m, Index n, Index k, const float* a, const float* b,
                  float* c);
  // y[m,n] = x[m,k]·W[k,n] + bias[n] (no accumulate).
  void (*affine)(Index m, Index n, Index k, const float* x, const float* w,
                 const float* bias, float* y);
  // Fused row ops.
  void (*layernorm_rows)(Index rows, Index d, const float* x,
                         const float* gain, const float* bias, float* y);
  void (*softmax_rows)(Index rows, Index n, const float* x, float* y);
  // int8 path (per-row absmax, see nn/quant.h).
  void (*quantize_rows)(Index rows, Index k, Index k_pad, const float* x,
                        std::int8_t* q, float* scale);
  void (*qaffine)(Index m, Index n, Index k_pad, const std::int8_t* qx,
                  const float* sx, const std::int8_t* qw, const float* sw,
                  const float* bias, float* y);
};

/// The active table. First call resolves PPG_NN_BACKEND / cpuid; a bad
/// PPG_NN_BACKEND value (unknown name, or a backend this CPU lacks)
/// throws std::invalid_argument from that first call.
const KernelBackend& active_backend();

/// Forces the active backend. Throws std::invalid_argument when `kind`
/// is not available (not compiled in, or missing CPU support). Intended
/// for startup flags and tests; do not race it against in-flight kernels.
void set_backend(BackendKind kind);

/// Whether `kind` was compiled in AND the running CPU supports it.
bool backend_available(BackendKind kind) noexcept;

/// Every available backend, widest last (kScalar is always present).
std::vector<BackendKind> available_backends();

const char* backend_name(BackendKind kind) noexcept;

/// "scalar" | "avx2" | "avx512" -> kind; anything else throws
/// std::invalid_argument naming the valid spellings.
BackendKind parse_backend(std::string_view name);

/// RAII backend override for tests: set on construction, restore the
/// previously active table on destruction.
class ScopedBackend {
 public:
  explicit ScopedBackend(BackendKind kind)
      : previous_(active_backend().kind) {
    set_backend(kind);
  }
  ~ScopedBackend() { set_backend(previous_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  BackendKind previous_;
};

}  // namespace ppg::nn
