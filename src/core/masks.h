// Logit masks enforcing pattern conformance during sampling.
//
// Two consumers:
//  * PassGPT's guided generation (paper §I-A1): the model is trained on
//    bare passwords and the mask *forces* each sampled token into the
//    pattern's character class — exactly the filtering scheme the paper
//    criticises for word truncation.
//  * D&C-GEN leaf tasks and PagPassGPT's strict mode: the model already
//    conditions on the pattern; the mask merely guarantees conformance of
//    the remaining suffix.
#pragma once

#include <vector>

#include "gpt/sampler.h"
#include "pcfg/pattern.h"
#include "tokenizer/tokenizer.h"

namespace ppg::core {

/// Precomputed per-class token allowlists (indices into the vocabulary).
struct ClassTokenSets {
  std::vector<bool> letter, digit, special;

  ClassTokenSets() {
    letter.assign(tok::Tokenizer::kVocabSize, false);
    digit.assign(tok::Tokenizer::kVocabSize, false);
    special.assign(tok::Tokenizer::kVocabSize, false);
    for (int id = tok::Tokenizer::kCharBase; id < tok::Tokenizer::kCharBase + 94;
         ++id) {
      switch (pcfg::classify(tok::Tokenizer::token_char(id))) {
        case pcfg::CharClass::kLetter: letter[id] = true; break;
        case pcfg::CharClass::kDigit: digit[id] = true; break;
        case pcfg::CharClass::kSpecial: special[id] = true; break;
      }
    }
  }

  const std::vector<bool>& of(pcfg::CharClass c) const {
    switch (c) {
      case pcfg::CharClass::kLetter: return letter;
      case pcfg::CharClass::kDigit: return digit;
      default: return special;
    }
  }

  /// Process-wide instance.
  static const ClassTokenSets& instance() {
    static const ClassTokenSets sets;
    return sets;
  }
};

/// Builds a LogitMask that, at generation step s, permits only characters
/// of pattern position `offset + s` — and only <EOS> once the pattern is
/// exhausted. `offset` is how many password characters the prefix already
/// contains (nonzero for D&C-GEN subtasks).
inline gpt::LogitMask make_pattern_mask(std::vector<pcfg::Segment> pattern,
                                        int offset = 0) {
  return [pattern = std::move(pattern), offset](gpt::Index step,
                                                std::span<float> logits) {
    const auto cls =
        pcfg::class_at(pattern, offset + static_cast<int>(step));
    if (!cls.has_value()) {
      // Pattern complete: only <EOS> may follow.
      for (std::size_t i = 0; i < logits.size(); ++i)
        if (static_cast<int>(i) != tok::Tokenizer::kEos) logits[i] = -1e30f;
      return;
    }
    const auto& allowed = ClassTokenSets::instance().of(*cls);
    for (std::size_t i = 0; i < logits.size(); ++i)
      if (!allowed[i]) logits[i] = -1e30f;
  };
}

}  // namespace ppg::core
