#include "core/dcgen.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/durable_io.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/serialize.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/masks.h"
#include "gpt/infer.h"
#include "gpt/kv_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "search/ordered.h"
#include "tokenizer/tokenizer.h"

namespace ppg::core {

namespace {

using tok::Tokenizer;

namespace fs = std::filesystem;

/// Process-wide D&C-GEN metrics. The per-run DcGenStats struct stays the
/// caller-facing snapshot; these accumulate across runs and are exact for
/// any DcGenConfig::threads (the thread-invariance test relies on it).
struct DcMetrics {
  obs::Counter& runs;
  obs::Counter& divisions;
  obs::Counter& model_calls;
  obs::Counter& leaves;
  obs::Counter& dropped;
  obs::Counter& forced;
  obs::Counter& emitted;
  obs::Gauge& capacity_capped;
  static DcMetrics& get() {
    auto& r = obs::Registry::global();
    static DcMetrics m{r.counter("dcgen.runs"),
                       r.counter("dcgen.divisions"),
                       r.counter("dcgen.model_calls"),
                       r.counter("dcgen.leaves"),
                       r.counter("dcgen.dropped"),
                       r.counter("dcgen.forced"),
                       r.counter("dcgen.emitted"),
                       r.gauge("dcgen.capacity_capped")};
    return m;
  }
};

/// One pending unit of work: generate `n` passwords whose rule starts with
/// `prefix` (token form) under `pattern`, `chars_done` characters of which
/// are already fixed by the prefix.
struct Task {
  std::vector<int> prefix;
  const std::vector<pcfg::Segment>* pattern;
  int chars_done;
  double n;
};

/// Capacity of the *unfilled* suffix of a pattern (optimisation 2, applied
/// recursively to every subtask, not only whole patterns).
double remaining_capacity(const std::vector<pcfg::Segment>& pattern,
                          int chars_done, double cap) {
  double total = 1.0;
  const int len = pcfg::pattern_length(pattern);
  for (int pos = chars_done; pos < len; ++pos) {
    total *= pcfg::class_size(*pcfg::class_at(pattern, pos));
    if (total >= cap) return cap;
  }
  return total;
}

// ---- resumable job journal -------------------------------------------
//
// Two files under DcGenConfig::journal_dir:
//  * plan.bin   — written once (atomic_save) after the deterministic
//    division phase: run fingerprint, forced outputs, and every leaf task.
//  * ledger.bin — append-only, one fsynced CRC-framed record per completed
//    leaf. A crash can only tear the final record; resume truncates the
//    torn tail and re-runs that leaf (its independent per-leaf RNG makes
//    the re-run byte-identical).

constexpr std::uint32_t kPlanMagic = 0x50504450;    // "PPDP"
constexpr std::uint32_t kPlanVersion = 1;
constexpr std::uint32_t kLedgerMagic = 0x5050444c;  // "PPDL"
/// Sanity cap on a single ledger record's payload (1 GiB).
constexpr std::uint64_t kMaxRecordBytes = 1ULL << 30;

std::uint64_t jmix(std::uint64_t h, std::uint64_t v) noexcept {
  std::uint64_t s = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return splitmix64(s);
}

std::uint64_t jmix_double(std::uint64_t h, double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return jmix(h, bits);
}

/// Fingerprint of everything that determines the guess stream: the output-
/// relevant config knobs, the seed, the pattern distribution, and the model
/// weights. threads / kv_cache / division_batch are deliberately excluded —
/// they never change the output (dcgen_test asserts this), so a journal may
/// be resumed with a different parallelism setup. A fingerprint mismatch
/// means the journal belongs to a different run and must be discarded.
std::uint64_t dc_fingerprint(const gpt::GptModel& model,
                             const pcfg::PatternDistribution& patterns,
                             const DcGenConfig& cfg, std::uint64_t seed) {
  std::uint64_t h = 0xD0C6E4ULL;
  h = jmix(h, seed);
  h = jmix_double(h, cfg.total);
  h = jmix_double(h, cfg.threshold);
  h = jmix_double(h, cfg.min_task);
  h = jmix(h, cfg.max_patterns);
  h = jmix(h, cfg.strict_leaves ? 1 : 0);
  // Ordered-leaf knobs are output-relevant: the mode picks the leaf
  // algorithm outright, and the search budgets decide what truncation (if
  // any) drops from each leaf's top-n.
  h = jmix(h, cfg.leaf_mode == LeafMode::kOrdered ? 1 : 0);
  if (cfg.leaf_mode == LeafMode::kOrdered) {
    h = jmix(h, cfg.ordered_max_nodes);
    h = jmix(h, cfg.ordered_cache_bytes);
    h = jmix(h, cfg.ordered_max_expansions);
  }
  h = jmix_double(h, cfg.sample.temperature);
  h = jmix(h, static_cast<std::uint64_t>(cfg.sample.top_k));
  h = jmix_double(h, cfg.sample.top_p);
  h = jmix(h, static_cast<std::uint64_t>(cfg.sample.batch_size));
  h = jmix(h, static_cast<std::uint64_t>(cfg.sample.max_attempt_factor));
  // Numeric precision changes every sampled guess (int8 logits differ from
  // fp32 by the quantization error), so it is output-relevant. The SIMD
  // backend is deliberately NOT mixed: the kernel contract makes fp32
  // bitwise identical and int8 integer-exact across backends, so a journal
  // written on one machine resumes on another with different vector units.
  h = jmix(h, static_cast<std::uint64_t>(cfg.sample.precision));
  for (const auto& [pat, prob] : patterns.sorted()) {
    h = jmix(h, hash64(pat));
    h = jmix_double(h, prob);
  }
  const auto& mc = model.config();
  h = jmix(h, static_cast<std::uint64_t>(mc.vocab));
  h = jmix(h, static_cast<std::uint64_t>(mc.d_model));
  h = jmix(h, static_cast<std::uint64_t>(mc.n_layers));
  h = jmix(h, static_cast<std::uint64_t>(mc.n_heads));
  h = jmix(h, static_cast<std::uint64_t>(mc.context));
  for (const auto& p : model.params().items()) {
    h = jmix(h, hash64(p.name));
    const auto data = p.tensor.data();
    h = jmix(h, durable::crc32(reinterpret_cast<const char*>(data.data()),
                               data.size() * sizeof(float)));
  }
  return h;
}

/// Append-only leaf-completion ledger with per-record CRC framing:
/// [magic u32][payload bytes u64][payload][crc32(payload) u32].
class Ledger {
 public:
  explicit Ledger(std::string path) : path_(std::move(path)) {}
  ~Ledger() {
    // Destruction is single-threaded (the generate pass has joined); the
    // lock only keeps the fd_ read well-defined for the analysis.
    MutexLock lock(mu_);
    if (fd_ >= 0) ::close(fd_);
  }

  /// Replays the ledger: returns completed leaves' outputs and truncates
  /// any torn trailing record so subsequent appends start on a clean frame.
  std::unordered_map<std::uint64_t, std::vector<std::string>> load_completed(
      std::size_t leaf_count) {
    std::unordered_map<std::uint64_t, std::vector<std::string>> done;
    std::ifstream in(path_, std::ios::binary);
    if (!in) return done;
    std::stringstream whole;
    whole << in.rdbuf();
    const std::string bytes = whole.str();
    std::size_t off = 0;
    std::size_t good = 0;
    while (bytes.size() - off >= sizeof(std::uint32_t) + sizeof(std::uint64_t)) {
      std::uint32_t magic;
      std::uint64_t payload_bytes;
      std::memcpy(&magic, bytes.data() + off, sizeof magic);
      std::memcpy(&payload_bytes, bytes.data() + off + sizeof magic,
                  sizeof payload_bytes);
      if (magic != kLedgerMagic || payload_bytes > kMaxRecordBytes) break;
      const std::size_t header = sizeof magic + sizeof payload_bytes;
      const std::size_t need = header + payload_bytes + sizeof(std::uint32_t);
      if (bytes.size() - off < need) break;  // torn tail
      std::uint32_t stored_crc;
      std::memcpy(&stored_crc, bytes.data() + off + header + payload_bytes,
                  sizeof stored_crc);
      if (durable::crc32(bytes.data() + off + header, payload_bytes) !=
          stored_crc)
        break;
      std::istringstream payload(
          bytes.substr(off + header, payload_bytes));
      BinaryReader r(payload);
      const auto leaf_idx = r.read<std::uint64_t>();
      const auto count = r.read<std::uint64_t>();
      std::vector<std::string> out;
      out.reserve(count);
      for (std::uint64_t i = 0; i < count; ++i)
        out.push_back(r.read_string());
      if (leaf_idx < leaf_count) done[leaf_idx] = std::move(out);
      off += need;
      good = off;
    }
    if (good < bytes.size()) {
      log_warn("dcgen journal: truncating torn ledger tail (%zu of %zu bytes)",
               bytes.size() - good, bytes.size());
      std::error_code ec;
      fs::resize_file(path_, good, ec);
    }
    return done;
  }

  /// Appends one completed leaf's output and fsyncs. Serialised across
  /// worker threads; the mid_append failpoint sits between the two halves
  /// of the write so a simulated crash leaves a genuinely torn record.
  void append(std::uint64_t leaf_idx, const std::vector<std::string>& out) {
    std::ostringstream payload_s;
    BinaryWriter w(payload_s);
    w.write(leaf_idx);
    w.write<std::uint64_t>(out.size());
    for (const auto& s : out) w.write_string(s);
    const std::string payload = payload_s.str();
    std::string record;
    record.reserve(payload.size() + 16);
    const std::uint32_t magic = kLedgerMagic;
    const std::uint64_t payload_bytes = payload.size();
    const std::uint32_t crc = durable::crc32(payload.data(), payload.size());
    record.append(reinterpret_cast<const char*>(&magic), sizeof magic);
    record.append(reinterpret_cast<const char*>(&payload_bytes),
                  sizeof payload_bytes);
    record += payload;
    record.append(reinterpret_cast<const char*>(&crc), sizeof crc);

    // Held across the write+fsync on purpose: interleaving two appends
    // would tear *both* records, and the crash-recovery contract (replay
    // up to the last whole frame) depends on records hitting the file one
    // at a time. This is the durability point, not an accidental stall.
    MutexLock lock(mu_);
    if (fd_ < 0) {
      fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd_ < 0)
        throw std::runtime_error("dcgen journal: cannot open ledger " + path_);
    }
    PPG_FAILPOINT("dcgen.ledger.before_append");
    const std::size_t half = record.size() / 2;
    write_all(record.data(), half);
    PPG_FAILPOINT("dcgen.ledger.mid_append");
    write_all(record.data() + half, record.size() - half);
    if (::fsync(fd_) != 0)  // ppg-lint: allow(blocking-under-lock)
      throw std::runtime_error("dcgen journal: fsync failed on " + path_);
    PPG_FAILPOINT("dcgen.ledger.after_append");
  }

 private:
  void write_all(const char* data, std::size_t n) PPG_REQUIRES(mu_) {
    while (n > 0) {
      const ssize_t written = ::write(fd_, data, n);
      if (written < 0)
        throw std::runtime_error("dcgen journal: write failed on " + path_);
      data += written;
      n -= static_cast<std::size_t>(written);
    }
  }

  const std::string path_;
  Mutex mu_;
  int fd_ PPG_GUARDED_BY(mu_) = -1;
};

}  // namespace

std::vector<std::string> dc_generate(const gpt::GptModel& model,
                                     const pcfg::PatternDistribution& patterns,
                                     const DcGenConfig& cfg,
                                     std::uint64_t seed, DcGenStats* stats) {
  if (cfg.total <= 0 || cfg.threshold <= 0)
    throw std::invalid_argument("dc_generate: total and threshold must be > 0");
  if (cfg.leaf_mode == LeafMode::kOrdered &&
      cfg.sample.precision != gpt::Precision::kFp32)
    throw std::invalid_argument(
        "dc_generate: ordered leaves require fp32 (the best-first search's "
        "probability bounds are derived from fp32 logits; mixing them with "
        "int8 division states would break its exactness guarantee)");
  obs::Span run_span("dcgen/run", "dcgen");
  DcMetrics& metrics = DcMetrics::get();
  metrics.runs.inc();
  DcGenStats local;

  // Parsed pattern storage must be address-stable for Task::pattern.
  std::vector<std::unique_ptr<std::vector<pcfg::Segment>>> parsed_patterns;
  std::vector<Task> leaves;
  std::vector<std::string> forced;  // fully-determined outputs
  // Pending division tasks grouped by prefix length so divisions batch into
  // lockstep InferenceSession calls (optimisation 3).
  std::map<std::size_t, std::vector<Task>> pending;

  auto route = [&](Task t) {
    // Cap by the capacity of what is still free (optimisation 2).
    const double capacity =
        remaining_capacity(*t.pattern, t.chars_done, cfg.total * 2 + 1);
    if (t.n > capacity) {
      local.capacity_capped += t.n - capacity;
      t.n = capacity;
    }
    if (t.n < cfg.min_task) {
      ++local.dropped;
      return;
    }
    if (t.chars_done >= pcfg::pattern_length(*t.pattern)) {
      // Prefix fully determines the password; emit it once.
      std::vector<int> full = t.prefix;
      full.push_back(Tokenizer::kEos);
      if (auto pw = Tokenizer::decode_password(full); pw && !pw->empty()) {
        forced.push_back(std::move(*pw));
        ++local.forced;
      }
      return;
    }
    if (t.n <= cfg.threshold) {
      leaves.push_back(std::move(t));
      return;
    }
    const std::size_t len = t.prefix.size();
    pending[len].push_back(std::move(t));
  };

  // Journal setup: with a matching plan on disk the whole division phase is
  // skipped — the plan *is* the division, saved from a previous run of this
  // exact (model, patterns, cfg, seed).
  const bool journaled = !cfg.journal_dir.empty();
  std::string plan_path, ledger_path;
  std::uint64_t fingerprint = 0;
  bool have_plan = false;
  if (journaled) {
    fs::create_directories(cfg.journal_dir);
    plan_path = cfg.journal_dir + "/plan.bin";
    ledger_path = cfg.journal_dir + "/ledger.bin";
    fingerprint = dc_fingerprint(model, patterns, cfg, seed);
    if (fs::exists(plan_path)) {
      try {
        durable::checked_load(plan_path, [&](BinaryReader& r) {
          if (r.read<std::uint32_t>() != kPlanMagic)
            throw std::runtime_error("not a dcgen plan");
          if (r.read<std::uint32_t>() != kPlanVersion)
            throw std::runtime_error("unsupported dcgen plan version");
          if (r.read<std::uint64_t>() != fingerprint)
            throw std::runtime_error(
                "fingerprint mismatch (different run); replanning");
          const auto forced_count = r.read<std::uint64_t>();
          forced.reserve(forced_count);
          for (std::uint64_t i = 0; i < forced_count; ++i)
            forced.push_back(r.read_string());
          const auto pat_count = r.read<std::uint64_t>();
          std::vector<const std::vector<pcfg::Segment>*> pats;
          pats.reserve(pat_count);
          for (std::uint64_t i = 0; i < pat_count; ++i) {
            auto parsed = pcfg::parse_pattern(r.read_string());
            if (!parsed)
              throw std::runtime_error("unparseable pattern in plan");
            parsed_patterns.push_back(
                std::make_unique<std::vector<pcfg::Segment>>(
                    std::move(*parsed)));
            pats.push_back(parsed_patterns.back().get());
          }
          const auto leaf_count = r.read<std::uint64_t>();
          leaves.reserve(leaf_count);
          for (std::uint64_t i = 0; i < leaf_count; ++i) {
            Task t;
            const auto pat_idx = r.read<std::uint64_t>();
            if (pat_idx >= pats.size())
              throw std::runtime_error("pattern index out of range in plan");
            t.pattern = pats[pat_idx];
            t.chars_done = r.read<std::int32_t>();
            t.n = r.read<double>();
            t.prefix = r.read_vector<int>();
            leaves.push_back(std::move(t));
          }
        });
        have_plan = true;
        local.resumed_plan = true;
        local.forced = forced.size();
        log_info("dcgen journal: resumed plan with %zu leaves, %zu forced",
                 leaves.size(), forced.size());
      } catch (const std::exception& e) {
        log_warn("dcgen journal: discarding plan: %s", e.what());
        forced.clear();
        leaves.clear();
        parsed_patterns.clear();
        have_plan = false;
      }
    }
  }

  // Root division by the pattern distribution (Alg. 1 lines 2-9).
  const auto& sorted = patterns.sorted();
  const std::size_t pattern_limit =
      have_plan ? 0
      : cfg.max_patterns == 0
          ? sorted.size()
          : std::min(cfg.max_patterns, sorted.size());
  for (std::size_t i = 0; i < pattern_limit; ++i) {
    const auto& [pattern_str, prob] = sorted[i];
    auto parsed = pcfg::parse_pattern(pattern_str);
    if (!parsed) continue;
    bool representable = true;
    for (const auto& s : *parsed)
      if (s.len > Tokenizer::kMaxSegmentLen) representable = false;
    if (!representable) continue;
    parsed_patterns.push_back(
        std::make_unique<std::vector<pcfg::Segment>>(std::move(*parsed)));
    Task t;
    t.pattern = parsed_patterns.back().get();
    t.prefix = Tokenizer::encode_generation_prefix(*t.pattern);
    t.chars_done = 0;
    t.n = cfg.total * prob;
    route(std::move(t));
  }

  // Recursive division (Alg. 1 lines 10-22), batched by prefix length.
  // With the KV cache on, a divided task's post-prefix state is snapshotted
  // into a per-run prefix trie; its children (division or leaf) later
  // resume from it instead of re-priming from <BOS>. Values are bitwise
  // identical either way (kv_cache.h), so the cache may be toggled, sized,
  // or evicted freely without changing a single emitted guess.
  std::unique_ptr<gpt::KvTrieCache> cache;
  if (cfg.kv_cache)
    cache = std::make_unique<gpt::KvTrieCache>(cfg.kv_cache_bytes);
  gpt::InferenceSession session(model, cfg.sample.precision);
  const auto& class_sets = ClassTokenSets::instance();
  std::vector<int> feed;
  std::vector<float> task_logits;  ///< [group_size, vocab] scratch
  const gpt::Index vocab = model.config().vocab;
  while (!pending.empty()) {
    obs::Span division_span("dcgen/division_batch", "dcgen");
    auto bucket_it = pending.begin();
    auto& bucket = bucket_it->second;
    const std::size_t take =
        std::min(std::max<std::size_t>(cfg.division_batch, 1), bucket.size());
    std::vector<Task> group(std::make_move_iterator(bucket.end() - take),
                            std::make_move_iterator(bucket.end()));
    bucket.resize(bucket.size() - take);
    if (bucket.empty()) pending.erase(bucket_it);

    const std::size_t len = group.front().prefix.size();

    // Phase 1: compute each task's last-prefix-token logits. Sub-batches
    // group tasks whose deepest cached ancestor sits at the same depth so
    // every sub-batch stays a lockstep session; with the cache off there
    // is exactly one sub-batch at depth 0 (the original full prime).
    task_logits.assign(group.size() * static_cast<std::size_t>(vocab), 0.f);
    const auto run_subbatch = [&](const std::vector<std::size_t>& idxs,
                                  std::span<const gpt::KvState* const> states,
                                  std::size_t depth) {
      if (depth > 0)
        session.resume_rows(states, static_cast<gpt::Index>(depth));
      else
        session.reset(static_cast<gpt::Index>(idxs.size()));
      feed.resize(idxs.size());
      for (std::size_t p = depth; p < len; ++p) {
        for (std::size_t j = 0; j < idxs.size(); ++j)
          feed[j] = group[idxs[j]].prefix[p];
        session.step(feed);
      }
      ++local.model_calls;
      const std::size_t primed = (len - depth) * idxs.size();
      local.prefill_tokens += primed;
      local.prefill_saved += depth * idxs.size();
      gpt::kv_cache_metrics().prefill_tokens.inc(primed);
      for (std::size_t j = 0; j < idxs.size(); ++j) {
        const auto row = session.logits_row(static_cast<gpt::Index>(j));
        std::copy(row.begin(), row.end(),
                  task_logits.begin() +
                      static_cast<std::ptrdiff_t>(idxs[j]) * vocab);
        if (cache)
          cache->insert(group[idxs[j]].prefix,
                        session.snapshot(static_cast<gpt::Index>(j)));
      }
    };
    if (!cache) {
      std::vector<std::size_t> all(group.size());
      for (std::size_t i = 0; i < group.size(); ++i) all[i] = i;
      run_subbatch(all, {}, 0);
    } else {
      std::vector<gpt::KvTrieCache::Handle> handles(group.size());
      std::map<std::size_t, std::vector<std::size_t>> by_depth;
      for (std::size_t i = 0; i < group.size(); ++i) {
        handles[i] = cache->find_longest(group[i].prefix);
        by_depth[static_cast<std::size_t>(handles[i].len())].push_back(i);
      }
      for (const auto& [depth, idxs] : by_depth) {
        std::vector<const gpt::KvState*> states;
        if (depth > 0) {
          states.reserve(idxs.size());
          for (const std::size_t i : idxs)
            states.push_back(handles[i].state());
        }
        run_subbatch(idxs, states, depth);
      }
    }

    // Phase 2: route children in the group's original order — identical to
    // the uncached path, so the leaf list (and thus the output order) never
    // depends on how phase 1 was sub-batched.
    for (std::size_t i = 0; i < group.size(); ++i) {
      Task& t = group[i];
      ++local.divisions;
      const auto cls = pcfg::class_at(*t.pattern, t.chars_done);
      const auto& allowed = class_sets.of(*cls);
      const std::span<const float> logits(
          task_logits.data() + static_cast<std::ptrdiff_t>(i) * vocab,
          static_cast<std::size_t>(vocab));
      // Softmax restricted to the candidate tokens (paper: c = 52/10/32).
      float mx = -1e30f;
      for (std::size_t v = 0; v < logits.size(); ++v)
        if (allowed[v]) mx = std::max(mx, logits[v]);
      double z = 0.0;
      thread_local std::vector<std::pair<int, double>> cand;
      cand.clear();
      for (std::size_t v = 0; v < logits.size(); ++v) {
        if (!allowed[v]) continue;
        const double e = std::exp(double(logits[v] - mx));
        cand.emplace_back(static_cast<int>(v), e);
        z += e;
      }
      for (auto& [tok_id, weight] : cand) {
        const double n_child = t.n * (weight / z);
        Task child;
        child.pattern = t.pattern;
        child.prefix = t.prefix;
        child.prefix.push_back(tok_id);
        child.chars_done = t.chars_done + 1;
        child.n = n_child;
        route(std::move(child));
      }
    }
  }

  // Persist the freshly computed plan. The stale ledger (if any) belongs
  // to a different plan and is removed *first*: a crash between the two
  // steps then leaves no ledger at all rather than one that indexes into
  // the wrong leaf list.
  if (journaled && !have_plan) {
    std::error_code ec;
    fs::remove(ledger_path, ec);
    PPG_FAILPOINT("dcgen.before_plan");
    durable::atomic_save(plan_path, [&](BinaryWriter& w) {
      w.write(kPlanMagic);
      w.write(kPlanVersion);
      w.write(fingerprint);
      w.write<std::uint64_t>(forced.size());
      for (const auto& s : forced) w.write_string(s);
      std::unordered_map<const std::vector<pcfg::Segment>*, std::uint64_t>
          pat_idx;
      std::vector<std::string> pat_strs;
      for (const auto& t : leaves)
        if (pat_idx.emplace(t.pattern, pat_strs.size()).second)
          pat_strs.push_back(pcfg::pattern_string(*t.pattern));
      w.write<std::uint64_t>(pat_strs.size());
      for (const auto& s : pat_strs) w.write_string(s);
      w.write<std::uint64_t>(leaves.size());
      for (const auto& t : leaves) {
        w.write<std::uint64_t>(pat_idx.at(t.pattern));
        w.write<std::int32_t>(t.chars_done);
        w.write<double>(t.n);
        w.write_vector(t.prefix);
      }
    });
  }

  // Execute leaves (Alg. 1 lines 5 and 13). Each leaf draws from its own
  // seeded RNG and results are concatenated in task order, so the output
  // is identical for any thread count (§III-C3 optimisation 3).
  local.leaves = leaves.size();
  std::vector<std::vector<std::string>> leaf_out(leaves.size());
  std::vector<gpt::SampleStats> leaf_stats(leaves.size());
  std::vector<char> leaf_done(leaves.size(), 0);
  std::unique_ptr<Ledger> ledger;
  if (journaled) {
    ledger = std::make_unique<Ledger>(ledger_path);
    auto completed = ledger->load_completed(leaves.size());
    for (auto& [idx, pws] : completed) {
      leaf_out[idx] = std::move(pws);
      leaf_done[idx] = 1;
      ++local.resumed_leaves;
    }
    if (local.resumed_leaves > 0)
      log_info("dcgen journal: %zu of %zu leaves already complete",
               local.resumed_leaves, leaves.size());
  }
  const auto run_leaf = [&](std::size_t leaf_idx) {
    if (leaf_done[leaf_idx]) return;
    obs::Span leaf_span("dcgen/leaf", "dcgen");
    const Task& t = leaves[leaf_idx];
    const auto count = static_cast<std::size_t>(std::llround(t.n));
    if (count == 0) return;
    Rng rng(seed ^ hash64("dcgen-leaf"), std::to_string(leaf_idx));
    const gpt::LogitMask mask =
        cfg.strict_leaves ? make_pattern_mask(*t.pattern, t.chars_done)
                          : gpt::LogitMask{};
    // A leaf's parent prefix was snapshotted when it was divided, so the
    // deepest cached ancestor usually covers all but the last token. The
    // handle pins the state for the duration of the sampling call.
    gpt::KvTrieCache::Handle hit;
    if (cache) hit = cache->find_longest(t.prefix);
    if (cfg.leaf_mode == LeafMode::kOrdered) {
      // Best-first leaf: the quota becomes "the leaf's top-`count` most
      // likely passwords". No RNG touches the output, so thread-count
      // invariance holds trivially; the run-level cache hit only changes
      // prefill work (bitwise resume contract), never the guesses.
      search::OrderedOptions sopts;
      sopts.max_nodes = cfg.ordered_max_nodes;
      sopts.cache_bytes = cfg.ordered_cache_bytes;
      sopts.max_expansions = cfg.ordered_max_expansions;
      sopts.max_guesses = count;
      search::OrderedEnumerator enumerator(model, t.prefix, sopts, mask,
                                           hit ? hit.state() : nullptr);
      auto& out = leaf_out[leaf_idx];
      out.reserve(count);
      while (auto g = enumerator.next()) out.push_back(std::move(g->password));
      leaf_stats[leaf_idx].sequences_run = enumerator.stats().nodes_expanded;
      leaf_stats[leaf_idx].invalid = enumerator.stats().invalid;
      leaf_stats[leaf_idx].prefill_tokens = enumerator.stats().prefill_tokens;
      leaf_stats[leaf_idx].prefill_saved = enumerator.stats().prefill_saved;
    } else {
      leaf_out[leaf_idx] =
          gpt::sample_passwords(model, t.prefix, count, rng, cfg.sample, mask,
                                &leaf_stats[leaf_idx],
                                hit ? hit.state() : nullptr);
    }
    DcMetrics::get().emitted.inc(leaf_out[leaf_idx].size());
    if (ledger) ledger->append(leaf_idx, leaf_out[leaf_idx]);
    PPG_FAILPOINT("dcgen.leaf.done");
  };
  {
    obs::Span leaves_span("dcgen/leaves", "dcgen");
    if (cfg.threads > 1 && leaves.size() > 1) {
      ThreadPool pool(static_cast<std::size_t>(cfg.threads));
      pool.parallel_for(leaves.size(), run_leaf);
    } else {
      for (std::size_t i = 0; i < leaves.size(); ++i) run_leaf(i);
    }
  }
  // Leaf prefill accounting is summed after the pool joins so the totals
  // are exact and identical for any thread count.
  for (const auto& s : leaf_stats) {
    local.prefill_tokens += s.prefill_tokens;
    local.prefill_saved += s.prefill_saved;
  }
  // Mirror the per-run snapshot into the process-wide registry. The counts
  // were accumulated single-threaded during division (route/model loop);
  // emitted passwords were counted atomically inside the leaf workers.
  metrics.divisions.inc(local.divisions);
  metrics.model_calls.inc(local.model_calls);
  metrics.leaves.inc(local.leaves);
  metrics.dropped.inc(local.dropped);
  metrics.forced.inc(local.forced);
  metrics.emitted.inc(forced.size());
  metrics.capacity_capped.add(local.capacity_capped);

  std::vector<std::string> out = std::move(forced);
  for (auto& pws : leaf_out)
    out.insert(out.end(), std::make_move_iterator(pws.begin()),
               std::make_move_iterator(pws.end()));
  // Dedupe-aware accounting: sampled leaves repeat, ordered leaves cannot,
  // and cross-leaf duplicates are impossible with strict conformance
  // (prefix-free leaves). unique_emitted is what honest per-guess hit-rate
  // comparisons divide by.
  local.emitted = out.size();
  {
    std::unordered_set<std::string_view> uniq;
    uniq.reserve(out.size());
    for (const auto& pw : out) uniq.insert(pw);
    local.unique_emitted = uniq.size();
  }
  if (stats) *stats = local;
  return out;
}

}  // namespace ppg::core
