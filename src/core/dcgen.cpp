#include "core/dcgen.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>

#include "common/thread_pool.h"
#include "core/masks.h"
#include "gpt/infer.h"
#include "gpt/kv_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tokenizer/tokenizer.h"

namespace ppg::core {

namespace {

using tok::Tokenizer;

/// Process-wide D&C-GEN metrics. The per-run DcGenStats struct stays the
/// caller-facing snapshot; these accumulate across runs and are exact for
/// any DcGenConfig::threads (the thread-invariance test relies on it).
struct DcMetrics {
  obs::Counter& runs;
  obs::Counter& divisions;
  obs::Counter& model_calls;
  obs::Counter& leaves;
  obs::Counter& dropped;
  obs::Counter& forced;
  obs::Counter& emitted;
  obs::Gauge& capacity_capped;
  static DcMetrics& get() {
    auto& r = obs::Registry::global();
    static DcMetrics m{r.counter("dcgen.runs"),
                       r.counter("dcgen.divisions"),
                       r.counter("dcgen.model_calls"),
                       r.counter("dcgen.leaves"),
                       r.counter("dcgen.dropped"),
                       r.counter("dcgen.forced"),
                       r.counter("dcgen.emitted"),
                       r.gauge("dcgen.capacity_capped")};
    return m;
  }
};

/// One pending unit of work: generate `n` passwords whose rule starts with
/// `prefix` (token form) under `pattern`, `chars_done` characters of which
/// are already fixed by the prefix.
struct Task {
  std::vector<int> prefix;
  const std::vector<pcfg::Segment>* pattern;
  int chars_done;
  double n;
};

/// Capacity of the *unfilled* suffix of a pattern (optimisation 2, applied
/// recursively to every subtask, not only whole patterns).
double remaining_capacity(const std::vector<pcfg::Segment>& pattern,
                          int chars_done, double cap) {
  double total = 1.0;
  const int len = pcfg::pattern_length(pattern);
  for (int pos = chars_done; pos < len; ++pos) {
    total *= pcfg::class_size(*pcfg::class_at(pattern, pos));
    if (total >= cap) return cap;
  }
  return total;
}

}  // namespace

std::vector<std::string> dc_generate(const gpt::GptModel& model,
                                     const pcfg::PatternDistribution& patterns,
                                     const DcGenConfig& cfg,
                                     std::uint64_t seed, DcGenStats* stats) {
  if (cfg.total <= 0 || cfg.threshold <= 0)
    throw std::invalid_argument("dc_generate: total and threshold must be > 0");
  obs::Span run_span("dcgen/run", "dcgen");
  DcMetrics& metrics = DcMetrics::get();
  metrics.runs.inc();
  DcGenStats local;

  // Parsed pattern storage must be address-stable for Task::pattern.
  std::vector<std::unique_ptr<std::vector<pcfg::Segment>>> parsed_patterns;
  std::vector<Task> leaves;
  std::vector<std::string> forced;  // fully-determined outputs
  // Pending division tasks grouped by prefix length so divisions batch into
  // lockstep InferenceSession calls (optimisation 3).
  std::map<std::size_t, std::vector<Task>> pending;

  auto route = [&](Task t) {
    // Cap by the capacity of what is still free (optimisation 2).
    const double capacity =
        remaining_capacity(*t.pattern, t.chars_done, cfg.total * 2 + 1);
    if (t.n > capacity) {
      local.capacity_capped += t.n - capacity;
      t.n = capacity;
    }
    if (t.n < cfg.min_task) {
      ++local.dropped;
      return;
    }
    if (t.chars_done >= pcfg::pattern_length(*t.pattern)) {
      // Prefix fully determines the password; emit it once.
      std::vector<int> full = t.prefix;
      full.push_back(Tokenizer::kEos);
      if (auto pw = Tokenizer::decode_password(full); pw && !pw->empty()) {
        forced.push_back(std::move(*pw));
        ++local.forced;
      }
      return;
    }
    if (t.n <= cfg.threshold) {
      leaves.push_back(std::move(t));
      return;
    }
    const std::size_t len = t.prefix.size();
    pending[len].push_back(std::move(t));
  };

  // Root division by the pattern distribution (Alg. 1 lines 2-9).
  const auto& sorted = patterns.sorted();
  const std::size_t pattern_limit =
      cfg.max_patterns == 0 ? sorted.size()
                            : std::min(cfg.max_patterns, sorted.size());
  for (std::size_t i = 0; i < pattern_limit; ++i) {
    const auto& [pattern_str, prob] = sorted[i];
    auto parsed = pcfg::parse_pattern(pattern_str);
    if (!parsed) continue;
    bool representable = true;
    for (const auto& s : *parsed)
      if (s.len > Tokenizer::kMaxSegmentLen) representable = false;
    if (!representable) continue;
    parsed_patterns.push_back(
        std::make_unique<std::vector<pcfg::Segment>>(std::move(*parsed)));
    Task t;
    t.pattern = parsed_patterns.back().get();
    t.prefix = Tokenizer::encode_generation_prefix(*t.pattern);
    t.chars_done = 0;
    t.n = cfg.total * prob;
    route(std::move(t));
  }

  // Recursive division (Alg. 1 lines 10-22), batched by prefix length.
  // With the KV cache on, a divided task's post-prefix state is snapshotted
  // into a per-run prefix trie; its children (division or leaf) later
  // resume from it instead of re-priming from <BOS>. Values are bitwise
  // identical either way (kv_cache.h), so the cache may be toggled, sized,
  // or evicted freely without changing a single emitted guess.
  std::unique_ptr<gpt::KvTrieCache> cache;
  if (cfg.kv_cache)
    cache = std::make_unique<gpt::KvTrieCache>(cfg.kv_cache_bytes);
  gpt::InferenceSession session(model);
  const auto& class_sets = ClassTokenSets::instance();
  std::vector<int> feed;
  std::vector<float> task_logits;  ///< [group_size, vocab] scratch
  const gpt::Index vocab = model.config().vocab;
  while (!pending.empty()) {
    obs::Span division_span("dcgen/division_batch", "dcgen");
    auto bucket_it = pending.begin();
    auto& bucket = bucket_it->second;
    const std::size_t take =
        std::min(std::max<std::size_t>(cfg.division_batch, 1), bucket.size());
    std::vector<Task> group(std::make_move_iterator(bucket.end() - take),
                            std::make_move_iterator(bucket.end()));
    bucket.resize(bucket.size() - take);
    if (bucket.empty()) pending.erase(bucket_it);

    const std::size_t len = group.front().prefix.size();

    // Phase 1: compute each task's last-prefix-token logits. Sub-batches
    // group tasks whose deepest cached ancestor sits at the same depth so
    // every sub-batch stays a lockstep session; with the cache off there
    // is exactly one sub-batch at depth 0 (the original full prime).
    task_logits.assign(group.size() * static_cast<std::size_t>(vocab), 0.f);
    const auto run_subbatch = [&](const std::vector<std::size_t>& idxs,
                                  std::span<const gpt::KvState* const> states,
                                  std::size_t depth) {
      if (depth > 0)
        session.resume_rows(states, static_cast<gpt::Index>(depth));
      else
        session.reset(static_cast<gpt::Index>(idxs.size()));
      feed.resize(idxs.size());
      for (std::size_t p = depth; p < len; ++p) {
        for (std::size_t j = 0; j < idxs.size(); ++j)
          feed[j] = group[idxs[j]].prefix[p];
        session.step(feed);
      }
      ++local.model_calls;
      const std::size_t primed = (len - depth) * idxs.size();
      local.prefill_tokens += primed;
      local.prefill_saved += depth * idxs.size();
      gpt::kv_cache_metrics().prefill_tokens.inc(primed);
      for (std::size_t j = 0; j < idxs.size(); ++j) {
        const auto row = session.logits_row(static_cast<gpt::Index>(j));
        std::copy(row.begin(), row.end(),
                  task_logits.begin() +
                      static_cast<std::ptrdiff_t>(idxs[j]) * vocab);
        if (cache)
          cache->insert(group[idxs[j]].prefix,
                        session.snapshot(static_cast<gpt::Index>(j)));
      }
    };
    if (!cache) {
      std::vector<std::size_t> all(group.size());
      for (std::size_t i = 0; i < group.size(); ++i) all[i] = i;
      run_subbatch(all, {}, 0);
    } else {
      std::vector<gpt::KvTrieCache::Handle> handles(group.size());
      std::map<std::size_t, std::vector<std::size_t>> by_depth;
      for (std::size_t i = 0; i < group.size(); ++i) {
        handles[i] = cache->find_longest(group[i].prefix);
        by_depth[static_cast<std::size_t>(handles[i].len())].push_back(i);
      }
      for (const auto& [depth, idxs] : by_depth) {
        std::vector<const gpt::KvState*> states;
        if (depth > 0) {
          states.reserve(idxs.size());
          for (const std::size_t i : idxs)
            states.push_back(handles[i].state());
        }
        run_subbatch(idxs, states, depth);
      }
    }

    // Phase 2: route children in the group's original order — identical to
    // the uncached path, so the leaf list (and thus the output order) never
    // depends on how phase 1 was sub-batched.
    for (std::size_t i = 0; i < group.size(); ++i) {
      Task& t = group[i];
      ++local.divisions;
      const auto cls = pcfg::class_at(*t.pattern, t.chars_done);
      const auto& allowed = class_sets.of(*cls);
      const std::span<const float> logits(
          task_logits.data() + static_cast<std::ptrdiff_t>(i) * vocab,
          static_cast<std::size_t>(vocab));
      // Softmax restricted to the candidate tokens (paper: c = 52/10/32).
      float mx = -1e30f;
      for (std::size_t v = 0; v < logits.size(); ++v)
        if (allowed[v]) mx = std::max(mx, logits[v]);
      double z = 0.0;
      thread_local std::vector<std::pair<int, double>> cand;
      cand.clear();
      for (std::size_t v = 0; v < logits.size(); ++v) {
        if (!allowed[v]) continue;
        const double e = std::exp(double(logits[v] - mx));
        cand.emplace_back(static_cast<int>(v), e);
        z += e;
      }
      for (auto& [tok_id, weight] : cand) {
        const double n_child = t.n * (weight / z);
        Task child;
        child.pattern = t.pattern;
        child.prefix = t.prefix;
        child.prefix.push_back(tok_id);
        child.chars_done = t.chars_done + 1;
        child.n = n_child;
        route(std::move(child));
      }
    }
  }

  // Execute leaves (Alg. 1 lines 5 and 13). Each leaf draws from its own
  // seeded RNG and results are concatenated in task order, so the output
  // is identical for any thread count (§III-C3 optimisation 3).
  local.leaves = leaves.size();
  std::vector<std::vector<std::string>> leaf_out(leaves.size());
  std::vector<gpt::SampleStats> leaf_stats(leaves.size());
  const auto run_leaf = [&](std::size_t leaf_idx) {
    obs::Span leaf_span("dcgen/leaf", "dcgen");
    const Task& t = leaves[leaf_idx];
    const auto count = static_cast<std::size_t>(std::llround(t.n));
    if (count == 0) return;
    Rng rng(seed ^ hash64("dcgen-leaf"), std::to_string(leaf_idx));
    const gpt::LogitMask mask =
        cfg.strict_leaves ? make_pattern_mask(*t.pattern, t.chars_done)
                          : gpt::LogitMask{};
    // A leaf's parent prefix was snapshotted when it was divided, so the
    // deepest cached ancestor usually covers all but the last token. The
    // handle pins the state for the duration of the sampling call.
    gpt::KvTrieCache::Handle hit;
    if (cache) hit = cache->find_longest(t.prefix);
    leaf_out[leaf_idx] =
        gpt::sample_passwords(model, t.prefix, count, rng, cfg.sample, mask,
                              &leaf_stats[leaf_idx], hit ? hit.state() : nullptr);
    DcMetrics::get().emitted.inc(leaf_out[leaf_idx].size());
  };
  {
    obs::Span leaves_span("dcgen/leaves", "dcgen");
    if (cfg.threads > 1 && leaves.size() > 1) {
      ThreadPool pool(static_cast<std::size_t>(cfg.threads));
      pool.parallel_for(leaves.size(), run_leaf);
    } else {
      for (std::size_t i = 0; i < leaves.size(); ++i) run_leaf(i);
    }
  }
  // Leaf prefill accounting is summed after the pool joins so the totals
  // are exact and identical for any thread count.
  for (const auto& s : leaf_stats) {
    local.prefill_tokens += s.prefill_tokens;
    local.prefill_saved += s.prefill_saved;
  }
  // Mirror the per-run snapshot into the process-wide registry. The counts
  // were accumulated single-threaded during division (route/model loop);
  // emitted passwords were counted atomically inside the leaf workers.
  metrics.divisions.inc(local.divisions);
  metrics.model_calls.inc(local.model_calls);
  metrics.leaves.inc(local.leaves);
  metrics.dropped.inc(local.dropped);
  metrics.forced.inc(local.forced);
  metrics.emitted.inc(forced.size());
  metrics.capacity_capped.add(local.capacity_capped);

  std::vector<std::string> out = std::move(forced);
  for (auto& pws : leaf_out)
    out.insert(out.end(), std::make_move_iterator(pws.begin()),
               std::make_move_iterator(pws.end()));
  if (stats) *stats = local;
  return out;
}

}  // namespace ppg::core
