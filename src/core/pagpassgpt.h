// PagPassGPT: the paper's primary contribution (§III-B).
//
// A GPT-2-style LM trained on rules <BOS>‖pattern‖<SEP>‖password‖<EOS>, so
// the pattern acts as conditioning context (Eq. 1) instead of a hard filter.
// Exposes the two published generation modes:
//   * pattern-guided: prefix = <BOS>‖pattern‖<SEP> (§III-B2);
//   * free-running:   prefix = <BOS>; the model emits its own pattern,
//     separator, password and terminator (§IV-D).
// The learned pattern distribution of the training set is retained for
// D&C-GEN (dcgen.h) and for the evaluation harness.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <string>
#include <vector>

#include "gpt/model.h"
#include "gpt/sampler.h"
#include "gpt/trainer.h"
#include "pcfg/pcfg_model.h"

namespace ppg::core {

/// The pattern-conditioned password LM.
class PagPassGPT {
 public:
  /// Creates an untrained model with the given transformer config.
  PagPassGPT(gpt::Config cfg, std::uint64_t seed);

  /// Encodes rules from cleaned passwords, fits the pattern distribution,
  /// and trains the LM. Passwords that cannot be encoded (length/charset)
  /// are skipped.
  gpt::TrainReport train(std::span<const std::string> train_passwords,
                         std::span<const std::string> valid_passwords,
                         const gpt::TrainConfig& cfg);

  /// True once train() (or load()) has run.
  bool trained() const noexcept { return trained_; }

  /// Pattern distribution of the training corpus. Requires trained().
  const pcfg::PatternDistribution& patterns() const;

  /// Pattern-guided generation. When `strict`, a conformance mask removes
  /// the (rare) generations that drift off-pattern; when false this is the
  /// paper's plain conditional sampling.
  std::vector<std::string> generate_with_pattern(
      const std::vector<pcfg::Segment>& pattern, std::size_t count, Rng& rng,
      const gpt::SampleOptions& opts = {}, bool strict = false,
      gpt::SampleStats* stats = nullptr) const;

  /// Free-running trawling generation from a bare <BOS>.
  std::vector<std::string> generate_free(
      std::size_t count, Rng& rng, const gpt::SampleOptions& opts = {},
      gpt::SampleStats* stats = nullptr) const;

  /// Joint log-probability log P(pattern, password) of a password under the
  /// model (the full-rule sequence probability, Eq. 1 composed with Eq. 3).
  /// ~-1e30 for passwords the tokenizer cannot encode. Enables guess-number
  /// strength estimation (eval::StrengthEstimator) on the neural model.
  double log_prob(std::string_view password) const;

  /// Underlying transformer (shared with D&C-GEN and the benches).
  const gpt::GptModel& model() const noexcept { return model_; }
  gpt::GptModel& model() noexcept { return model_; }

  /// Checkpoints weights and the pattern distribution.
  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  gpt::GptModel model_;
  pcfg::PatternDistribution patterns_;
  bool trained_ = false;
};

}  // namespace ppg::core
