#include "core/pagpassgpt.h"

#include <stdexcept>

#include "common/durable_io.h"
#include "common/logging.h"
#include "gpt/infer.h"
#include "core/masks.h"
#include "tokenizer/tokenizer.h"

namespace ppg::core {

PagPassGPT::PagPassGPT(gpt::Config cfg, std::uint64_t seed)
    : model_(cfg, seed) {}

gpt::TrainReport PagPassGPT::train(
    std::span<const std::string> train_passwords,
    std::span<const std::string> valid_passwords,
    const gpt::TrainConfig& cfg) {
  if (trained_) throw std::logic_error("PagPassGPT::train: already trained");
  std::vector<std::vector<int>> train_seqs, valid_seqs;
  train_seqs.reserve(train_passwords.size());
  std::size_t skipped = 0;
  for (const auto& pw : train_passwords) {
    auto ids = tok::Tokenizer::encode_training(pw);
    if (!ids) {
      ++skipped;
      continue;
    }
    patterns_.add(pcfg::pattern_of(pw));
    train_seqs.push_back(std::move(*ids));
  }
  for (const auto& pw : valid_passwords) {
    if (auto ids = tok::Tokenizer::encode_training(pw))
      valid_seqs.push_back(std::move(*ids));
  }
  if (train_seqs.empty())
    throw std::invalid_argument("PagPassGPT::train: no encodable passwords");
  if (skipped > 0)
    log_debug("PagPassGPT::train: skipped %zu unencodable passwords", skipped);
  patterns_.finalize();
  auto report = gpt::train_lm(model_, train_seqs, valid_seqs, cfg,
                              tok::Tokenizer::kPad);
  trained_ = true;
  return report;
}

const pcfg::PatternDistribution& PagPassGPT::patterns() const {
  if (!trained_)
    throw std::logic_error("PagPassGPT::patterns: untrained model");
  return patterns_;
}

std::vector<std::string> PagPassGPT::generate_with_pattern(
    const std::vector<pcfg::Segment>& pattern, std::size_t count, Rng& rng,
    const gpt::SampleOptions& opts, bool strict,
    gpt::SampleStats* stats) const {
  const auto prefix = tok::Tokenizer::encode_generation_prefix(pattern);
  if (strict) {
    const auto mask = make_pattern_mask(pattern);
    return gpt::sample_passwords(model_, prefix, count, rng, opts, mask,
                                 stats);
  }
  return gpt::sample_passwords(model_, prefix, count, rng, opts, nullptr,
                               stats);
}

std::vector<std::string> PagPassGPT::generate_free(
    std::size_t count, Rng& rng, const gpt::SampleOptions& opts,
    gpt::SampleStats* stats) const {
  const std::vector<int> prefix = {tok::Tokenizer::kBos};
  return gpt::sample_passwords(model_, prefix, count, rng, opts, nullptr,
                               stats);
}

double PagPassGPT::log_prob(std::string_view password) const {
  const auto ids = tok::Tokenizer::encode_training(password);
  if (!ids) return -1e30;
  return gpt::sequence_log_prob(model_, *ids);
}

void PagPassGPT::save(const std::string& path) const {
  if (!trained_) throw std::logic_error("PagPassGPT::save: untrained model");
  model_.save(path);
  durable::atomic_save(path + ".patterns",
                       [this](BinaryWriter& w) { patterns_.save(w); });
}

void PagPassGPT::load(const std::string& path) {
  model_.load(path);
  durable::checked_load_or_legacy(path + ".patterns", [this](BinaryReader& r) {
    patterns_ = pcfg::PatternDistribution::load(r);
  });
  trained_ = true;
}

}  // namespace ppg::core
