// D&C-GEN: divide-and-conquer password generation (paper §III-C, Alg. 1).
//
// The guessing task of N passwords is split by the training-set pattern
// distribution into per-pattern tasks (N_Pi = N · Pr(Pi)); any task bigger
// than the threshold T is recursively divided by the model's next-token
// distribution — filtered to the candidate tokens the pattern permits at
// that position (52 letters / 10 digits / 32 specials) — into subtasks with
// one-character-longer prefixes. Tasks at or below T are executed as leaf
// generations. Because sibling prefixes differ and an ancestor is never
// also a leaf, leaf prefixes are prefix-free, so (with conformance masking)
// no two distinct tasks can emit the same password — duplicates only arise
// inside a single leaf (§III-C2); tests/dcgen_test.cpp asserts this.
//
// All three §III-C3 optimisations are implemented:
//  1. T sized to the generation batch the backend executes in parallel;
//  2. per-task counts capped by the remaining pattern capacity
//     (52^letters · 10^digits · 32^specials of the unfilled suffix);
//  3. divisions are batched across tasks of equal prefix length, and
//     prefixes stay in token form end-to-end (no re-encoding).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpt/model.h"
#include "gpt/sampler.h"
#include "pcfg/pcfg_model.h"

namespace ppg::core {

/// How a leaf task turns its guess quota into passwords.
enum class LeafMode {
  /// Autoregressive sampling (paper §III-C): i.i.d. draws, may repeat.
  kSampled,
  /// Best-first ordered enumeration (src/search): the leaf's quota is
  /// filled with its top-n most likely passwords, descending, no
  /// duplicates. Deterministic — the run seed does not affect leaf output.
  kOrdered,
};

/// D&C-GEN knobs.
struct DcGenConfig {
  /// N: total number of guesses to apportion.
  double total = 100000;
  /// T: division threshold (paper used 4000 = one GPU batch; our CPU
  /// default matches the sampler batch). Degenerate boundary: with T at or
  /// below min_task, a divided task's children (mass ~n/52 each)
  /// almost all fall below min_task and are deleted per the paper's rule,
  /// so the run terminates quickly emitting mostly forced outputs.
  double threshold = 64;
  /// Leaf-generation sampling options.
  gpt::SampleOptions sample;
  /// Leaf strategy. kOrdered routes every leaf through an
  /// OrderedEnumerator capped at the leaf's quota; output order within a
  /// leaf becomes descending model probability.
  LeafMode leaf_mode = LeafMode::kSampled;
  /// Ordered-leaf frontier cap (see search::OrderedOptions::max_nodes).
  /// Unlike kv_cache_bytes, the ordered budgets *can* change which guesses
  /// are emitted (budget truncation), so they are part of the journal
  /// fingerprint.
  std::size_t ordered_max_nodes = std::size_t(1) << 16;
  /// Ordered-leaf KV-trie byte budget (per leaf, not shared with the
  /// run-level cache below).
  std::size_t ordered_cache_bytes = std::size_t(32) << 20;
  /// Per-leaf expansion budget (0 = unlimited). Best-first search under a
  /// near-uniform model can sweep nearly the whole pattern tree before
  /// surfacing a leaf's quota; the cap bounds each leaf's forward passes
  /// deterministically (a deadline would not be reproducible). Capped
  /// leaves emit fewer guesses than their quota — an exact prefix of the
  /// leaf's ideal ranking.
  std::size_t ordered_max_expansions = std::size_t(1) << 14;
  /// Subtasks with fewer expected passwords than this are dropped
  /// ("generation number less than 1 → the subtask is deleted", Fig. 7).
  double min_task = 1.0;
  /// Only divide the top-K patterns (0 = all patterns).
  std::size_t max_patterns = 0;
  /// Maximum number of same-length tasks divided per batched model call.
  std::size_t division_batch = 64;
  /// Enforce pattern conformance at leaves (required for the cross-task
  /// no-duplicate invariant; off reproduces unconstrained drift).
  bool strict_leaves = true;
  /// Worker threads for leaf execution (§III-C3 optimisation 3: "tasks in
  /// the list can be executed concurrently"). Results are identical for
  /// any thread count: each leaf draws from its own seeded RNG and outputs
  /// are concatenated in task order.
  int threads = 1;
  /// Prefix-trie KV cache (src/gpt/kv_cache.h): division batches and leaf
  /// generations resume from the deepest cached ancestor prefix instead of
  /// re-priming from <BOS>. Guess output is bitwise identical either way,
  /// for any thread count and any byte budget (tests/kv_cache_test.cpp);
  /// only the prefill work and the model_calls count change.
  bool kv_cache = true;
  /// Byte budget for the per-run cache. LRU eviction of unpinned nodes;
  /// a tiny budget degrades hit depth, never correctness.
  std::size_t kv_cache_bytes = std::size_t(256) << 20;
  /// Directory for the resumable job journal (empty = off). With a journal,
  /// the run saves its division plan once (the division phase is
  /// deterministic) and appends a fsynced ledger record per completed leaf.
  /// A killed run relaunched with the same journal_dir skips the division,
  /// skips completed leaves, re-runs only unfinished ones (each leaf has an
  /// independent RNG), and returns byte-identical output — no guess is ever
  /// duplicated or dropped. A journal whose config/model fingerprint does
  /// not match the current run is discarded, never trusted.
  std::string journal_dir;
};

/// Run diagnostics.
struct DcGenStats {
  std::size_t divisions = 0;    ///< tasks expanded into children
  std::size_t model_calls = 0;  ///< batched division forwards
  std::size_t leaves = 0;       ///< executed leaf tasks
  std::size_t dropped = 0;      ///< subtasks below min_task
  std::size_t forced = 0;       ///< fully-determined prefixes emitted directly
  double capacity_capped = 0;   ///< guesses saved by the capacity cap
  /// Prefix positions fed through the model during division priming and
  /// leaf prefill (the work the KV cache exists to avoid).
  std::size_t prefill_tokens = 0;
  /// Prefix positions restored from cached KV states instead of computed.
  std::size_t prefill_saved = 0;
  /// Leaves restored from the journal ledger instead of regenerated.
  std::size_t resumed_leaves = 0;
  /// True when the division phase was skipped via a journaled plan.
  bool resumed_plan = false;
  /// Passwords in the returned vector (forced + all leaf outputs).
  std::size_t emitted = 0;
  /// Distinct passwords among them. Sampled leaves repeat (the paper's
  /// repeat-rate phenomenon), so unique_emitted < emitted is normal there;
  /// ordered leaves emit no duplicates by construction, making this the
  /// honest denominator for hit-rate-per-guess comparisons.
  std::size_t unique_emitted = 0;
};

/// Generates ~cfg.total passwords with the divide-and-conquer scheme.
/// Deterministic in (model, patterns, cfg, seed). The result may contain
/// duplicates only within a single leaf's output.
std::vector<std::string> dc_generate(const gpt::GptModel& model,
                                     const pcfg::PatternDistribution& patterns,
                                     const DcGenConfig& cfg,
                                     std::uint64_t seed,
                                     DcGenStats* stats = nullptr);

}  // namespace ppg::core
