// Table IV reproduction: trawling-attack hit rates of all six models along
// the guess-budget ladder.
//
// Paper values at 10^6..10^9 guesses:
//   PassGAN        0.80  3.11  8.24 16.32 (%)
//   VAEPass        0.49  2.24  6.24 12.23
//   PassFlow       0.26  1.62  7.03 14.10
//   PassGPT        0.73  5.60 21.43 41.93
//   PagPassGPT     1.00  7.68 27.23 48.75
//   PagPassGPT-D&C 1.05  8.48 31.38 53.63
// The reproduced shape: GPT-family >> continuous-space baselines at large
// budgets; PagPassGPT > PassGPT; D&C-GEN on top.
#include <cinttypes>
#include <cstdio>

#include "common.h"
#include "eval/report.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(env,
                        "== Table IV: hit rates in the trawling attack test ==");

  const auto sweep = bench::trawling_sweep(env);
  std::vector<std::string> headers = {"Model"};
  for (const auto b : sweep.ladder) headers.push_back(std::to_string(b));
  eval::Table table(std::move(headers));
  // Paper row order.
  for (const auto& name :
       {"PassGAN", "VAEPass", "PassFlow", "PassGPT", "PagPassGPT",
        "PagPassGPT-D&C"}) {
    const auto it = sweep.curves.find(name);
    if (it == sweep.curves.end()) continue;
    std::vector<std::string> row = {name};
    for (const auto& p : it->second) row.push_back(eval::pct(p.hit_rate));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nTest set size: %zu unique passwords. Budgets are the "
              "paper's 10^6..10^9 scaled by 10^-3 (CPU substrate).\n",
              sweep.test_size);
  return 0;
}
