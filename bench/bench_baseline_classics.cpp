// Extra bench (background §II-B): the pre-neural baselines — wordlist+rules
// (Hashcat-family), order-3 Markov (OMEN-family), and Weir PCFG — on the
// same trawling task as Table IV. Gives the classic reference points the
// paper's related-work section describes but does not re-measure.
#include <cstdio>

#include "baselines/markov.h"
#include "baselines/rules.h"
#include "common.h"
#include "eval/report.h"
#include "pcfg/pcfg_model.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(
      env, "== Extra: classic baselines on the trawling task ==");

  const auto site = bench::load_site(env, data::rockyou_profile());
  const eval::TestSet test(site.split.test);
  const auto train = bench::capped_train(env, site.split.train);

  // Rules: dictionary = lowercase alpha cores of training passwords.
  std::vector<std::string> dictionary;
  {
    std::unordered_map<std::string, std::size_t> seen;
    for (const auto& pw : train) {
      std::string core;
      for (const char c : pw)
        if (std::isalpha(static_cast<unsigned char>(c)))
          core += static_cast<char>(std::tolower(c));
      if (core.size() >= 3) seen[core]++;
    }
    std::vector<std::pair<std::string, std::size_t>> items(seen.begin(),
                                                           seen.end());
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (const auto& [word, cnt] : items) dictionary.push_back(word);
  }
  const baselines::RuleAttack rules(baselines::RuleAttack::stock_rules(),
                                    dictionary);

  baselines::MarkovModel markov(3);
  markov.train(train);
  pcfg::PcfgModel pcfg_model;
  pcfg_model.train(train);

  std::vector<std::string> headers = {"Model"};
  for (const auto b : env.ladder()) headers.push_back(std::to_string(b));
  eval::Table table(std::move(headers));
  struct Entry {
    std::string name;
    std::function<std::vector<std::string>(std::size_t)> enumerate;
  };
  const std::vector<Entry> entries = {
      {"Wordlist+rules", [&](std::size_t n) { return rules.enumerate(n); }},
      {"Markov-3 (OMEN-style)",
       [&](std::size_t n) { return markov.enumerate(n); }},
      {"PCFG (Weir)", [&](std::size_t n) { return pcfg_model.enumerate(n); }},
  };
  for (const auto& entry : entries) {
    std::vector<std::string> row = {entry.name};
    for (const auto budget : env.ladder()) {
      const auto guesses = entry.enumerate(budget);
      row.push_back(eval::pct(eval::hit_rate(guesses, test)));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nDeterministic enumerations (no sampling): repeat rate is "
              "zero by construction for all three models.\n");
  std::printf("Note: the synthetic corpus is generated from a segment-"
              "structured process, which flatters PCFG-style enumeration "
              "relative to real leaks; treat these rows as upper bounds.\n");
  return 0;
}
