// Table III reproduction: qualitative samples of pattern-guided guessing —
// ten passwords per model for patterns L5N2 and L5S1N2.
//
// The paper's point: PassGPT's token filtering truncates words
// ("polic#10"), while PagPassGPT's conditioning yields intact words
// ("sweet@74").
#include <cstdio>

#include "common.h"
#include "eval/report.h"
#include "pcfg/pattern.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(
      env, "== Table III: passwords generated in pattern guided guessing ==");

  const auto site = bench::load_site(env, data::rockyou_profile());
  const auto pag = bench::get_pagpassgpt(env, "rockyou", site);
  const auto passgpt = bench::get_passgpt(env, "rockyou", site);

  const std::vector<std::string> patterns = {"L5N2", "L5S1N2"};
  std::vector<std::vector<std::string>> columns;
  for (const auto& model : {std::string("PassGPT"), std::string("PagPassGPT")}) {
    for (const auto& pattern_str : patterns) {
      const auto segs = *pcfg::parse_pattern(pattern_str);
      Rng rng(env.seed, "table3-" + model + pattern_str);
      gpt::SampleOptions opts;
      opts.batch_size = 16;
      std::vector<std::string> pws;
      if (model == "PassGPT")
        pws = passgpt->generate_with_pattern(segs, 10, rng, opts);
      else
        pws = pag->generate_with_pattern(segs, 10, rng, opts, true);
      pws.resize(10);
      columns.push_back(std::move(pws));
    }
  }

  eval::Table table({"PassGPT L5N2", "PassGPT L5S1N2", "PagPassGPT L5N2",
                     "PagPassGPT L5S1N2"});
  for (int i = 0; i < 10; ++i)
    table.add_row({columns[0][i], columns[1][i], columns[2][i],
                   columns[3][i]});
  table.print();
  std::printf(
      "\nLook for word truncation in the PassGPT columns (filtering cuts "
      "words to meet the pattern) vs. intact words under PagPassGPT.\n");
  return 0;
}
