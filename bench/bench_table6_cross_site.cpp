// Table VI reproduction: cross-site attack test — models trained on the
// RockYou-like and LinkedIn-like corpora, evaluated on the phpBB-, MySpace-
// and Yahoo!-like corpora at the 10^8-equivalent budget.
//
// Paper shape: PagPassGPT > PassGPT on every pair; PagPassGPT-D&C adds a
// further 3-10 points.
#include <cinttypes>
#include <cstdio>

#include "common.h"
#include "core/dcgen.h"
#include "eval/report.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(env, "== Table VI: cross-site attack hit rates ==");

  const std::uint64_t budget = env.ladder().back();
  const std::vector<data::SiteProfile> eval_profiles = {
      data::phpbb_profile(), data::myspace_profile(), data::yahoo_profile()};

  for (const auto& train_profile :
       {data::rockyou_profile(), data::linkedin_profile()}) {
    const auto train_site = bench::load_site(env, train_profile);
    const auto pag = bench::get_pagpassgpt(env, train_profile.name, train_site);
    const auto passgpt =
        bench::get_passgpt(env, train_profile.name, train_site);

    // Generate each model's guess set once; evaluate against all sites.
    gpt::SampleOptions opts;
    opts.batch_size = 128;
    Rng r1(env.seed, "t6-passgpt-" + train_profile.name);
    Rng r2(env.seed, "t6-pag-" + train_profile.name);
    std::printf("\ngenerating %" PRIu64 " guesses per model (trained on %s)...\n",
                budget, train_profile.name.c_str());
    const auto gpt_guesses = passgpt->generate(budget, r1, opts);
    const auto pag_guesses = pag->generate_free(budget, r2, opts);
    core::DcGenConfig dcfg;
    dcfg.total = double(budget);
    dcfg.threshold = std::max(64.0, double(budget) / 1024.0);
    dcfg.sample.batch_size = 128;
    const auto dc_guesses =
        core::dc_generate(pag->model(), pag->patterns(), dcfg,
                          env.seed ^ hash64("t6-dc-" + train_profile.name));

    eval::Table table({"Model (trained on " + train_profile.name + ")",
                       "phpbb", "myspace", "yahoo"});
    std::vector<std::pair<std::string, const std::vector<std::string>*>>
        models = {{"PassGPT", &gpt_guesses},
                  {"PagPassGPT", &pag_guesses},
                  {"PagPassGPT-D&C", &dc_guesses}};
    std::vector<std::vector<std::string>> rows(models.size());
    for (std::size_t m = 0; m < models.size(); ++m)
      rows[m].push_back(models[m].first);
    for (const auto& eval_profile : eval_profiles) {
      // Entire cross-site corpus is the test set (paper §IV-A2).
      const auto corpus = bench::load_site(env, eval_profile).corpus;
      const eval::TestSet test(corpus.passwords);
      for (std::size_t m = 0; m < models.size(); ++m)
        rows[m].push_back(eval::pct(eval::hit_rate(*models[m].second, test)));
    }
    for (auto& row : rows) table.add_row(std::move(row));
    table.print();
  }
  return 0;
}
