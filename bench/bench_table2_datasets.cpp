// Table II reproduction: key characteristics of the applied datasets —
// unique raw entries, cleaned count, and retention rate per site.
//
// Paper values (for shape comparison):
//   RockYou  14,344,391 / 13,265,184 / 92.5%
//   LinkedIn 60,525,521 / 49,776,665 / 82.2%
//   phpBB       255,376 /    251,283 / 98.4%
//   MySpace      37,126 /     36,369 / 98.0%
//   Yahoo!      442,836 /    436,015 / 98.5%
#include <cstdio>

#include "common.h"
#include "eval/report.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(env, "== Table II: key characteristics of applied datasets ==");

  struct Row {
    data::SiteProfile profile;
    double paper_retention;
  };
  const std::vector<Row> rows = {
      {data::rockyou_profile(), 0.925},  {data::linkedin_profile(), 0.822},
      {data::phpbb_profile(), 0.984},    {data::myspace_profile(), 0.980},
      {data::yahoo_profile(), 0.985},
  };

  eval::Table table({"Name", "Unique", "Cleaned", "Retention rate",
                     "Paper retention"});
  for (auto row : rows) {
    row.profile.unique_target = static_cast<std::size_t>(
        double(row.profile.unique_target) * env.scale);
    const auto cleaned = data::clean(data::generate_site(row.profile, env.seed));
    table.add_row({row.profile.name, eval::count(cleaned.stats.unique_raw),
                   eval::count(cleaned.stats.cleaned),
                   eval::pct(cleaned.stats.retention()),
                   eval::pct(row.paper_retention)});
  }
  table.print();
  std::printf(
      "\nNote: sizes are scaled synthetic substitutes (~1/100 of the real "
      "leaks at scale=1); retention rates are the reproduced quantity.\n");
  return 0;
}
