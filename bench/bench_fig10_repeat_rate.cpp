// Fig. 10 reproduction: repeat rate of generated passwords vs number of
// guesses, for all six models.
//
// Paper shape: PassGAN worst (66% at 10^9), then VAEPass/PassFlow, then
// PassGPT (34.5%), then PagPassGPT, with PagPassGPT-D&C lowest (9.28%).
#include <cstdio>

#include "common.h"
#include "eval/report.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(env,
                        "== Fig. 10: repeat rate vs number of guesses ==");

  const auto sweep = bench::trawling_sweep(env);
  std::vector<std::string> headers = {"Model"};
  for (const auto b : sweep.ladder) headers.push_back(std::to_string(b));
  eval::Table table(std::move(headers));
  for (const auto& name :
       {"PassGAN", "VAEPass", "PassFlow", "PassGPT", "PagPassGPT",
        "PagPassGPT-D&C"}) {
    const auto it = sweep.curves.find(name);
    if (it == sweep.curves.end()) continue;
    std::vector<std::string> row = {name};
    for (const auto& p : it->second) row.push_back(eval::pct(p.repeat_rate));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nExpected ordering at the largest budget: PassGAN highest, "
              "PagPassGPT-D&C lowest (paper: 66%% vs 9.28%% at 10^9).\n");
  return 0;
}
