// Closed-loop load bench for the serve layer (src/serve).
//
// Sweeps client count × batching mode against one GuessService (1 worker:
// on a single core, batching's win is per-call amortisation — one weight
// pass feeds N rows — not parallelism). Each client thread runs a closed
// loop of count-1 pattern requests; all patterns in the mix have the same
// segment count, so every request shares a prefix length and the dynamic
// batcher can coalesce up to max_batch of them into one model call.
//
// Reports guesses/sec, p50/p99 request latency, scheduler occupancy
// (mean rows per model call), and the batched/unbatched throughput ratio
// per client count. The serving design targets >= 2x at 16 concurrent
// clients with the paper-size model — the regime where the weight matrices
// (~38 MB) exceed cache, so one weight pass feeding N rows beats N passes
// feeding one. Tiny configs whose weights stay cache-resident show ~1x:
// there is no memory traffic to amortise and one core's FLOPs are the
// bottleneck either way.
//
// Flags:
//   --config=tiny|small|bench|paper  model size (default paper)
//   --clients=CSV   client counts to sweep (default 1,4,16)
//   --requests=N    requests per client per cell (default 32)
//   --repeats=N     runs per cell, best kept (default 3) — scheduler noise
//                   only ever slows a run down, so best-of approximates
//                   the machine's true throughput
//   --max-batch=N   scheduler batch cap (default 64)
//   --quantize      serve sampled requests through the int8 projection
//                   path (ServiceConfig::sample.precision = kInt8); the
//                   default fp32 run is the comparison baseline
//   --seed=N        base seed (default 2024)
//   --report=FILE   write the cell table as JSON
//   --track-dir=DIR append a perf-trajectory record (BENCH_serve_throughput
//                   .json) with the batched-vs-unbatched headline numbers
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/thread_pool.h"
#include "obs/bench_track.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace {

using namespace ppg;

gpt::Config config_by_name(const std::string& name) {
  if (name == "tiny") return gpt::Config::tiny();
  if (name == "small") return gpt::Config::small();
  if (name == "bench") return gpt::Config::bench();
  if (name == "paper") return gpt::Config::paper();
  throw std::invalid_argument("unknown --config '" + name + "'");
}

std::vector<int> parse_csv_ints(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoi(item));
  return out;
}

/// Equal-segment-count pattern mix: every prefix is 4 tokens
/// (<BOS> seg seg <SEP>), so all requests are batch-compatible.
const char* kPatterns[] = {"L6N2", "L4N4", "N4L4", "N6L2"};

struct Cell {
  int clients = 0;
  bool batching = false;
  double wall_s = 0.0;
  std::size_t requests = 0;
  std::size_t guesses = 0;
  double guesses_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t batches = 0;   ///< model calls this cell issued
  double mean_batch_rows = 0;  ///< scheduler occupancy (rows per call)
  std::uint64_t invalid = 0;   ///< undecodable rows (each forces a retry)
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

Cell run_cell(const gpt::GptModel& model,
              const pcfg::PatternDistribution& patterns, int clients,
              bool batching, int requests, std::size_t max_batch,
              gpt::Precision precision, std::uint64_t seed) {
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = max_batch;
  cfg.max_queue = static_cast<std::size_t>(clients) * 2 + 8;
  cfg.batching = batching;
  cfg.sample.precision = precision;
  serve::GuessService svc(model, patterns, cfg);

  std::vector<std::vector<double>> lat(static_cast<std::size_t>(clients));
  std::vector<std::size_t> got(static_cast<std::size_t>(clients), 0);
  // The serve counters are cumulative across cells; difference them to get
  // this cell's scheduler occupancy.
  auto& ctr_batches = obs::Registry::global().counter("serve.batches");
  auto& ctr_rows = obs::Registry::global().counter("serve.rows");
  auto& ctr_invalid = obs::Registry::global().counter("serve.invalid");
  const std::uint64_t batches0 = ctr_batches.value();
  const std::uint64_t rows0 = ctr_rows.value();
  const std::uint64_t invalid0 = ctr_invalid.value();
  const std::int64_t t0 = obs::now_us();
  {
    ThreadPool pool(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c)
      (void)pool.submit([&, c] {
        auto& mine = lat[static_cast<std::size_t>(c)];
        mine.reserve(static_cast<std::size_t>(requests));
        for (int i = 0; i < requests; ++i) {
          serve::Request r;
          r.kind = serve::RequestKind::kPattern;
          r.pattern = kPatterns[(c + i) % 4];
          r.count = 1;
          r.seed = seed + std::uint64_t(c) * 100003 + std::uint64_t(i);
          const std::int64_t s0 = obs::now_us();
          const serve::Response resp = svc.submit_and_wait(std::move(r));
          mine.push_back(double(obs::now_us() - s0) / 1000.0);
          if (resp.status == serve::Status::kOk)
            got[static_cast<std::size_t>(c)] += resp.passwords.size();
        }
      });
    pool.drain();  // closed loop: wait for every client to finish
  }
  const double wall_s = double(obs::now_us() - t0) / 1e6;
  svc.shutdown();

  Cell cell;
  cell.clients = clients;
  cell.batching = batching;
  cell.wall_s = wall_s;
  cell.requests = static_cast<std::size_t>(clients) *
                  static_cast<std::size_t>(requests);
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  for (const auto g : got) cell.guesses += g;
  cell.guesses_per_sec = wall_s > 0 ? double(cell.guesses) / wall_s : 0.0;
  cell.p50_ms = percentile(all, 0.50);
  cell.p99_ms = percentile(all, 0.99);
  cell.batches = ctr_batches.value() - batches0;
  const std::uint64_t rows = ctr_rows.value() - rows0;
  cell.mean_batch_rows =
      cell.batches > 0 ? double(rows) / double(cell.batches) : 0.0;
  cell.invalid = ctr_invalid.value() - invalid0;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv, {"config", "clients", "requests", "repeats",
                         "max-batch", "quantize", "seed", "report",
                         "track-dir"});
    const auto config = config_by_name(cli.get("config", "paper"));
    const auto clients = parse_csv_ints(cli.get("clients", "1,4,16"));
    const int requests = static_cast<int>(cli.get_int("requests", 32));
    const int repeats = static_cast<int>(cli.get_int("repeats", 3));
    if (repeats < 1) throw std::invalid_argument("--repeats must be >= 1");
    const auto max_batch =
        static_cast<std::size_t>(cli.get_int("max-batch", 64));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2024));
    const gpt::Precision precision = cli.get_bool("quantize")
                                         ? gpt::Precision::kInt8
                                         : gpt::Precision::kFp32;
    // Random-init weights: strict masks make every guess decodable, and
    // the serving cost (the thing measured) is identical to a trained
    // model of the same config.
    gpt::GptModel model(config, seed);
    pcfg::PatternDistribution patterns;
    for (const char* p : kPatterns) patterns.add(p);
    patterns.finalize();

    std::printf("bench_serve_throughput: config=%s requests/client=%d "
                "repeats=%d max_batch=%zu precision=%s seed=%llu\n",
                cli.get("config", "paper").c_str(), requests, repeats,
                max_batch, gpt::precision_name(precision),
                static_cast<unsigned long long>(seed));
    std::printf("%8s  %9s  %10s  %9s  %9s  %9s  %8s\n", "clients", "batching",
                "guess/sec", "p50 ms", "p99 ms", "occupancy", "invalid");

    // Repeats are the OUTER loop so the unbatched/batched cells of one
    // client count interleave in time: machine-noise epochs (this bench
    // runs on shared hardware) hit both modes alike instead of swallowing
    // one cell's every repeat.
    std::vector<Cell> cells;
    for (int r = 0; r < repeats; ++r) {
      std::size_t idx = 0;
      for (const int n : clients)
        for (const bool batching : {false, true}) {
          const Cell run = run_cell(model, patterns, n, batching, requests,
                                    max_batch, precision, seed);
          if (r == 0)
            cells.push_back(run);
          else if (run.guesses_per_sec > cells[idx].guesses_per_sec)
            cells[idx] = run;
          ++idx;
        }
    }
    for (const Cell& cell : cells)
      std::printf("%8d  %9s  %10.1f  %9.3f  %9.3f  %9.2f  %8llu\n",
                  cell.clients, cell.batching ? "on" : "off",
                  cell.guesses_per_sec, cell.p50_ms, cell.p99_ms,
                  cell.mean_batch_rows,
                  static_cast<unsigned long long>(cell.invalid));

    std::printf("\nbatched/unbatched throughput:\n");
    for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
      const double speedup =
          cells[i].guesses_per_sec > 0
              ? cells[i + 1].guesses_per_sec / cells[i].guesses_per_sec
              : 0.0;
      std::printf("%8d clients: %.2fx\n", cells[i].clients, speedup);
    }

    if (cli.has("report")) {
      obs::JsonWriter w;
      w.begin_object();
      w.key("bench").value("bench_serve_throughput");
      w.key("config").begin_object();
      w.key("model").value(cli.get("config", "paper"));
      w.key("requests_per_client").value(std::int64_t{requests});
      w.key("repeats").value(std::int64_t{repeats});
      w.key("max_batch").value(std::uint64_t{max_batch});
      w.key("precision").value(gpt::precision_name(precision));
      w.key("seed").value(std::uint64_t{seed});
      w.end_object();
      w.key("cells").begin_array();
      for (const Cell& c : cells) {
        w.begin_object();
        w.key("clients").value(std::int64_t{c.clients});
        w.key("batching").value(c.batching);
        w.key("wall_s").value(c.wall_s);
        w.key("requests").value(std::uint64_t{c.requests});
        w.key("guesses").value(std::uint64_t{c.guesses});
        w.key("guesses_per_sec").value(c.guesses_per_sec);
        w.key("p50_ms").value(c.p50_ms);
        w.key("p99_ms").value(c.p99_ms);
        w.key("batches").value(c.batches);
        w.key("mean_batch_rows").value(c.mean_batch_rows);
        w.key("invalid").value(c.invalid);
        w.end_object();
      }
      w.end_array();
      w.key("speedup").begin_object();
      for (std::size_t i = 0; i + 1 < cells.size(); i += 2)
        w.key(std::to_string(cells[i].clients))
            .value(cells[i].guesses_per_sec > 0
                       ? cells[i + 1].guesses_per_sec /
                             cells[i].guesses_per_sec
                       : 0.0);
      w.end_object();
      w.end_object();
      std::ofstream out(cli.get("report"));
      out << w.str() << "\n";
      std::fprintf(stderr, "report written to %s\n",
                   cli.get("report").c_str());
    }

    if (cli.has("track-dir")) {
      // Headline = the batched cell at the highest client count (the regime
      // the serving design targets), plus the cross-cell request-latency
      // histogram percentiles.
      const Cell* best = nullptr;
      double speedup = 0.0;
      for (std::size_t i = 0; i + 1 < cells.size(); i += 2) {
        best = &cells[i + 1];
        speedup = cells[i].guesses_per_sec > 0
                      ? cells[i + 1].guesses_per_sec / cells[i].guesses_per_sec
                      : 0.0;
      }
      std::map<std::string, std::string> config;
      config["bench"] = "bench_serve_throughput";
      config["model"] = cli.get("config", "paper");
      config["clients"] = cli.get("clients", "1,4,16");
      config["requests_per_client"] = std::to_string(requests);
      config["repeats"] = std::to_string(repeats);
      config["max_batch"] = std::to_string(max_batch);
      config["precision"] = gpt::precision_name(precision);
      config["seed"] = std::to_string(seed);
      std::map<std::string, double> metrics;
      if (best != nullptr) {
        metrics["serve.batched_guesses_per_sec"] = best->guesses_per_sec;
        metrics["serve.p50_ms"] = best->p50_ms;
        metrics["serve.p99_ms"] = best->p99_ms;
        metrics["serve.occupancy"] = best->mean_batch_rows;
        metrics["serve.batching_speedup"] = speedup;
      }
      // serve.request_ms histogram percentiles are deliberately NOT
      // tracked: the log2 buckets are coarse at this request count and
      // the histogram mixes warm-up + unbatched cells, so a single
      // cold-start outlier swings p99 by an order of magnitude between
      // identical runs. The bench's own per-cell p50/p99 above are the
      // stable latency signal.
      const auto rec = obs::make_bench_record(
          "bench_serve_throughput", std::move(config), std::move(metrics));
      const std::string path =
          obs::trajectory_path(cli.get("track-dir"), rec.bench);
      std::string error;
      if (obs::append_trajectory(path, rec, &error))
        std::fprintf(stderr, "trajectory record appended to %s\n",
                     path.c_str());
      else
        std::fprintf(stderr, "FAILED to append trajectory %s: %s\n",
                     path.c_str(), error.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve_throughput: %s\n", e.what());
    return 1;
  }
}
