// Fig. 11 reproduction: PagPassGPT's length and pattern distances as a
// function of the number of generated passwords.
//
// Paper shape: both distances grow with the guess count, with a sharper
// rise at the top end as the repeat rate climbs.
#include <cstdio>

#include "common.h"
#include "eval/report.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(
      env, "== Fig. 11: PagPassGPT distances vs generated count ==");

  const auto sweep = bench::trawling_sweep(env);
  const auto it = sweep.curves.find("PagPassGPT");
  if (it == sweep.curves.end()) {
    std::printf("sweep did not include PagPassGPT\n");
    return 1;
  }
  eval::Table table({"Generated", "Length Distance", "Pattern Distance",
                     "Repeat Rate"});
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    const auto& p = it->second[i];
    table.add_row({std::to_string(sweep.ladder[i]),
                   eval::pct(p.length_distance), eval::pct(p.pattern_distance),
                   eval::pct(p.repeat_rate)});
  }
  table.print();
  return 0;
}
