// Microbenchmarks of the nn/gpt substrate (google-benchmark): GEMM kernels,
// fused attention forward+backward, full training steps, and decode
// throughput of the KV-cache inference path.
//
// `--track-dir=DIR` (consumed before google-benchmark sees argv) appends
// one perf-trajectory record to DIR/BENCH_micro_nn.json with every
// benchmark's per-iteration wall time (_ms) and items/sec — the trajectory
// ppg_perfgate gates against. All other flags pass through to
// google-benchmark (--benchmark_filter, --benchmark_min_time, ...).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "gpt/infer.h"
#include "gpt/model.h"
#include "nn/backend.h"
#include "nn/graph.h"
#include "nn/kernels.h"
#include "nn/quant.h"
#include "obs/bench_track.h"
#include "tokenizer/tokenizer.h"

namespace {

using namespace ppg;

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<nn::Index>(state.range(0));
  std::vector<float> a(n * n, 1.f), b(n * n, 1.f), c(n * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.f);
    nn::kernels::gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<nn::Index>(state.range(0));
  std::vector<float> a(n * n, 1.f), b(n * n, 1.f), c(n * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.f);
    nn::kernels::gemm_nt(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void BM_AttentionForwardBackward(benchmark::State& state) {
  const nn::Index B = 8, T = 32, d = 64, H = 4;
  Rng rng(1);
  nn::Tensor qkv({B * T, 3 * d});
  qkv.fill_normal(rng, 0.5f);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor out = g.causal_self_attention(qkv, B, T, H);
    const nn::Tensor loss = g.mean_all(out);
    g.backward(loss);
    benchmark::DoNotOptimize(qkv.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * B * T);
}
BENCHMARK(BM_AttentionForwardBackward);

void BM_LayerNormForwardBackward(benchmark::State& state) {
  const nn::Index m = 512, d = 64;
  Rng rng(2);
  nn::Tensor x({m, d}), gain({d}), bias({d});
  x.fill_normal(rng, 1.f);
  gain.fill(1.f);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor loss = g.mean_all(g.layernorm(x, gain, bias));
    g.backward(loss);
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LayerNormForwardBackward);

void BM_TrainStep(benchmark::State& state) {
  // One full forward+backward of the bench transformer on a batch.
  gpt::GptModel model(gpt::Config::small(), 3);
  const nn::Index batch = 32, time = 20;
  std::vector<int> inputs(batch * time, 41), targets(batch * time, 42);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor loss = model.loss(g, inputs, targets, batch, time, -1);
    g.backward(loss);
    model.params().zero_grad();
    benchmark::DoNotOptimize(loss.at(0));
  }
  state.SetItemsProcessed(state.iterations() * batch * time);
}
BENCHMARK(BM_TrainStep);

void BM_InferenceDecode(benchmark::State& state) {
  // Tokens/second of the KV-cache decode path at the given batch size.
  const gpt::GptModel model(gpt::Config::small(), 4);
  const auto batch = static_cast<nn::Index>(state.range(0));
  gpt::InferenceSession session(model);
  const std::vector<int> tokens(static_cast<std::size_t>(batch),
                                tok::Tokenizer::kBos);
  session.reset(batch);
  for (auto _ : state) {
    if (session.position() >= model.config().context) session.reset(batch);
    benchmark::DoNotOptimize(session.step(tokens).data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InferenceDecode)->Arg(1)->Arg(16)->Arg(128);

void BM_InferenceDecodeInt8(benchmark::State& state) {
  // The serve fast path: same decode loop, int8 projections. The fp32
  // BM_InferenceDecode rows above are the comparison baseline.
  const gpt::GptModel model(gpt::Config::small(), 4);
  const auto batch = static_cast<nn::Index>(state.range(0));
  gpt::InferenceSession session(model, gpt::Precision::kInt8);
  const std::vector<int> tokens(static_cast<std::size_t>(batch),
                                tok::Tokenizer::kBos);
  session.reset(batch);
  for (auto _ : state) {
    if (session.position() >= model.config().context) session.reset(batch);
    benchmark::DoNotOptimize(session.step(tokens).data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InferenceDecodeInt8)->Arg(1)->Arg(16)->Arg(128);

/// Per-backend variants, registered at startup for whatever tables this
/// machine can run (scalar always; avx2/avx512 when the CPU has them).
/// Names carry the backend (BM_GemmNN_avx2/128) so the perf trajectory
/// tracks each backend's curve separately.
void register_backend_benchmarks() {
  for (const nn::BackendKind kind : nn::available_backends()) {
    const std::string suffix = nn::backend_name(kind);
    benchmark::RegisterBenchmark(
        ("BM_GemmNN_" + suffix).c_str(),
        [kind](benchmark::State& state) {
          nn::ScopedBackend forced(kind);
          const auto n = static_cast<nn::Index>(state.range(0));
          std::vector<float> a(n * n, 1.f), b(n * n, 1.f), c(n * n);
          for (auto _ : state) {
            std::fill(c.begin(), c.end(), 0.f);
            nn::kernels::gemm_nn(n, n, n, a.data(), b.data(), c.data());
            benchmark::DoNotOptimize(c.data());
          }
          state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
        })
        ->Arg(64)
        ->Arg(128)
        ->Arg(256);
    benchmark::RegisterBenchmark(
        ("BM_LayerNormRows_" + suffix).c_str(),
        [kind](benchmark::State& state) {
          nn::ScopedBackend forced(kind);
          const nn::Index rows = 512, d = 64;
          std::vector<float> x(rows * d, 0.5f), gain(d, 1.f), bias(d, 0.f),
              y(rows * d);
          for (auto _ : state) {
            nn::kernels::layernorm_rows(rows, d, x.data(), gain.data(),
                                        bias.data(), y.data());
            benchmark::DoNotOptimize(y.data());
          }
          state.SetItemsProcessed(state.iterations() * rows);
        });
    benchmark::RegisterBenchmark(
        ("BM_SoftmaxRows_" + suffix).c_str(),
        [kind](benchmark::State& state) {
          nn::ScopedBackend forced(kind);
          const nn::Index rows = 512, d = 96;
          std::vector<float> x(rows * d, 0.25f), y(rows * d);
          for (auto _ : state) {
            nn::kernels::softmax_rows(rows, d, x.data(), y.data());
            benchmark::DoNotOptimize(y.data());
          }
          state.SetItemsProcessed(state.iterations() * rows);
        });
    // The full int8 serving step for one matrix: quantize activations,
    // int8 GEMM, dequant+bias. items/sec is MACs*2, directly comparable
    // to the fp32 BM_GemmNN_<backend> rows.
    benchmark::RegisterBenchmark(
        ("BM_QAffine_" + suffix).c_str(),
        [kind](benchmark::State& state) {
          nn::ScopedBackend forced(kind);
          const auto n = static_cast<nn::Index>(state.range(0));
          const nn::Index k_pad = nn::quant::padded_k(n);
          std::vector<float> x(n * n, 0.5f), w(n * n, 0.25f), bias(n, 0.f),
              y(n * n), sx(n);
          const auto qw = nn::quant::quantize_weights(w.data(), n, n);
          std::vector<std::int8_t> qx(n * k_pad, 0);
          for (auto _ : state) {
            nn::kernels::quantize_rows(n, n, k_pad, x.data(), qx.data(),
                                       sx.data());
            nn::kernels::qaffine(n, n, k_pad, qx.data(), sx.data(),
                                 qw.data.data(), qw.scales.data(), bias.data(),
                                 y.data());
            benchmark::DoNotOptimize(y.data());
          }
          state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
        })
        ->Arg(64)
        ->Arg(128);
  }
}

/// Console reporter that additionally collects each benchmark's headline
/// numbers for the trajectory record. Aggregate rows (_mean/_median from
/// --benchmark_repetitions) are skipped: the gate medians across runs
/// itself.
class TrackingReporter : public benchmark::ConsoleReporter {
 public:
  std::map<std::string, double> metrics;

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string key = run.benchmark_name();
      for (char& c : key)
        if (c == '/' || c == ':') c = '_';
      if (run.iterations > 0)
        metrics[key + "_ms"] =
            run.real_accumulated_time * 1e3 / double(run.iterations);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end())
        metrics[key + "_items_per_sec"] = double(items->second);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --track-dir; everything else belongs to google-benchmark.
  std::string track_dir;
  std::vector<char*> fwd;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--track-dir=", 12) == 0)
      track_dir = argv[i] + 12;
    else if (std::strcmp(argv[i], "--track-dir") == 0 && i + 1 < argc)
      track_dir = argv[++i];
    else
      fwd.push_back(argv[i]);
  }
  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 1;
  register_backend_benchmarks();

  TrackingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!track_dir.empty()) {
    if (reporter.metrics.empty()) {
      std::fprintf(stderr, "bench_micro_nn: no runs, trajectory skipped\n");
      return 0;
    }
    const auto rec = ppg::obs::make_bench_record(
        "bench_micro_nn", {{"bench", "bench_micro_nn"}},
        std::move(reporter.metrics));
    const std::string path = ppg::obs::trajectory_path(track_dir, rec.bench);
    std::string error;
    if (ppg::obs::append_trajectory(path, rec, &error))
      std::fprintf(stderr, "trajectory record appended to %s\n", path.c_str());
    else
      std::fprintf(stderr, "FAILED to append trajectory %s: %s\n",
                   path.c_str(), error.c_str());
  }
  return 0;
}
