// Microbenchmarks of the nn/gpt substrate (google-benchmark): GEMM kernels,
// fused attention forward+backward, full training steps, and decode
// throughput of the KV-cache inference path.
#include <benchmark/benchmark.h>

#include "gpt/infer.h"
#include "gpt/model.h"
#include "nn/graph.h"
#include "nn/kernels.h"
#include "tokenizer/tokenizer.h"

namespace {

using namespace ppg;

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<nn::Index>(state.range(0));
  std::vector<float> a(n * n, 1.f), b(n * n, 1.f), c(n * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.f);
    nn::kernels::gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<nn::Index>(state.range(0));
  std::vector<float> a(n * n, 1.f), b(n * n, 1.f), c(n * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.f);
    nn::kernels::gemm_nt(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void BM_AttentionForwardBackward(benchmark::State& state) {
  const nn::Index B = 8, T = 32, d = 64, H = 4;
  Rng rng(1);
  nn::Tensor qkv({B * T, 3 * d});
  qkv.fill_normal(rng, 0.5f);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor out = g.causal_self_attention(qkv, B, T, H);
    const nn::Tensor loss = g.mean_all(out);
    g.backward(loss);
    benchmark::DoNotOptimize(qkv.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * B * T);
}
BENCHMARK(BM_AttentionForwardBackward);

void BM_LayerNormForwardBackward(benchmark::State& state) {
  const nn::Index m = 512, d = 64;
  Rng rng(2);
  nn::Tensor x({m, d}), gain({d}), bias({d});
  x.fill_normal(rng, 1.f);
  gain.fill(1.f);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor loss = g.mean_all(g.layernorm(x, gain, bias));
    g.backward(loss);
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LayerNormForwardBackward);

void BM_TrainStep(benchmark::State& state) {
  // One full forward+backward of the bench transformer on a batch.
  gpt::GptModel model(gpt::Config::small(), 3);
  const nn::Index batch = 32, time = 20;
  std::vector<int> inputs(batch * time, 41), targets(batch * time, 42);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor loss = model.loss(g, inputs, targets, batch, time, -1);
    g.backward(loss);
    model.params().zero_grad();
    benchmark::DoNotOptimize(loss.at(0));
  }
  state.SetItemsProcessed(state.iterations() * batch * time);
}
BENCHMARK(BM_TrainStep);

void BM_InferenceDecode(benchmark::State& state) {
  // Tokens/second of the KV-cache decode path at the given batch size.
  const gpt::GptModel model(gpt::Config::small(), 4);
  const auto batch = static_cast<nn::Index>(state.range(0));
  gpt::InferenceSession session(model);
  const std::vector<int> tokens(static_cast<std::size_t>(batch),
                                tok::Tokenizer::kBos);
  session.reset(batch);
  for (auto _ : state) {
    if (session.position() >= model.config().context) session.reset(batch);
    benchmark::DoNotOptimize(session.step(tokens).data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InferenceDecode)->Arg(1)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
