// Microbenchmarks of the nn/gpt substrate (google-benchmark): GEMM kernels,
// fused attention forward+backward, full training steps, and decode
// throughput of the KV-cache inference path.
//
// `--track-dir=DIR` (consumed before google-benchmark sees argv) appends
// one perf-trajectory record to DIR/BENCH_micro_nn.json with every
// benchmark's per-iteration wall time (_ms) and items/sec — the trajectory
// ppg_perfgate gates against. All other flags pass through to
// google-benchmark (--benchmark_filter, --benchmark_min_time, ...).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "gpt/infer.h"
#include "gpt/model.h"
#include "nn/graph.h"
#include "nn/kernels.h"
#include "obs/bench_track.h"
#include "tokenizer/tokenizer.h"

namespace {

using namespace ppg;

void BM_GemmNN(benchmark::State& state) {
  const auto n = static_cast<nn::Index>(state.range(0));
  std::vector<float> a(n * n, 1.f), b(n * n, 1.f), c(n * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.f);
    nn::kernels::gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const auto n = static_cast<nn::Index>(state.range(0));
  std::vector<float> a(n * n, 1.f), b(n * n, 1.f), c(n * n);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.f);
    nn::kernels::gemm_nt(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Arg(64)->Arg(128);

void BM_AttentionForwardBackward(benchmark::State& state) {
  const nn::Index B = 8, T = 32, d = 64, H = 4;
  Rng rng(1);
  nn::Tensor qkv({B * T, 3 * d});
  qkv.fill_normal(rng, 0.5f);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor out = g.causal_self_attention(qkv, B, T, H);
    const nn::Tensor loss = g.mean_all(out);
    g.backward(loss);
    benchmark::DoNotOptimize(qkv.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * B * T);
}
BENCHMARK(BM_AttentionForwardBackward);

void BM_LayerNormForwardBackward(benchmark::State& state) {
  const nn::Index m = 512, d = 64;
  Rng rng(2);
  nn::Tensor x({m, d}), gain({d}), bias({d});
  x.fill_normal(rng, 1.f);
  gain.fill(1.f);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor loss = g.mean_all(g.layernorm(x, gain, bias));
    g.backward(loss);
    benchmark::DoNotOptimize(x.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * m);
}
BENCHMARK(BM_LayerNormForwardBackward);

void BM_TrainStep(benchmark::State& state) {
  // One full forward+backward of the bench transformer on a batch.
  gpt::GptModel model(gpt::Config::small(), 3);
  const nn::Index batch = 32, time = 20;
  std::vector<int> inputs(batch * time, 41), targets(batch * time, 42);
  for (auto _ : state) {
    nn::Graph g;
    const nn::Tensor loss = model.loss(g, inputs, targets, batch, time, -1);
    g.backward(loss);
    model.params().zero_grad();
    benchmark::DoNotOptimize(loss.at(0));
  }
  state.SetItemsProcessed(state.iterations() * batch * time);
}
BENCHMARK(BM_TrainStep);

void BM_InferenceDecode(benchmark::State& state) {
  // Tokens/second of the KV-cache decode path at the given batch size.
  const gpt::GptModel model(gpt::Config::small(), 4);
  const auto batch = static_cast<nn::Index>(state.range(0));
  gpt::InferenceSession session(model);
  const std::vector<int> tokens(static_cast<std::size_t>(batch),
                                tok::Tokenizer::kBos);
  session.reset(batch);
  for (auto _ : state) {
    if (session.position() >= model.config().context) session.reset(batch);
    benchmark::DoNotOptimize(session.step(tokens).data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_InferenceDecode)->Arg(1)->Arg(16)->Arg(128);

/// Console reporter that additionally collects each benchmark's headline
/// numbers for the trajectory record. Aggregate rows (_mean/_median from
/// --benchmark_repetitions) are skipped: the gate medians across runs
/// itself.
class TrackingReporter : public benchmark::ConsoleReporter {
 public:
  std::map<std::string, double> metrics;

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      std::string key = run.benchmark_name();
      for (char& c : key)
        if (c == '/' || c == ':') c = '_';
      if (run.iterations > 0)
        metrics[key + "_ms"] =
            run.real_accumulated_time * 1e3 / double(run.iterations);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end())
        metrics[key + "_items_per_sec"] = double(items->second);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --track-dir; everything else belongs to google-benchmark.
  std::string track_dir;
  std::vector<char*> fwd;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--track-dir=", 12) == 0)
      track_dir = argv[i] + 12;
    else if (std::strcmp(argv[i], "--track-dir") == 0 && i + 1 < argc)
      track_dir = argv[++i];
    else
      fwd.push_back(argv[i]);
  }
  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 1;

  TrackingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (!track_dir.empty()) {
    if (reporter.metrics.empty()) {
      std::fprintf(stderr, "bench_micro_nn: no runs, trajectory skipped\n");
      return 0;
    }
    const auto rec = ppg::obs::make_bench_record(
        "bench_micro_nn", {{"bench", "bench_micro_nn"}},
        std::move(reporter.metrics));
    const std::string path = ppg::obs::trajectory_path(track_dir, rec.bench);
    std::string error;
    if (ppg::obs::append_trajectory(path, rec, &error))
      std::fprintf(stderr, "trajectory record appended to %s\n", path.c_str());
    else
      std::fprintf(stderr, "FAILED to append trajectory %s: %s\n",
                   path.c_str(), error.c_str());
  }
  return 0;
}
