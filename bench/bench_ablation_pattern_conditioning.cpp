// Ablation: what does pattern conditioning itself buy? Same transformer,
// same training data, same sampler — the only difference is whether rules
// carry the pattern prefix (PagPassGPT) or not (PassGPT), plus the strict/
// non-strict conformance mode of conditioned generation.
#include <cstdio>

#include "common.h"
#include "eval/report.h"
#include "pcfg/pcfg_model.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(env,
                        "== Ablation: pattern conditioning on/off ==");

  const auto site = bench::load_site(env, data::rockyou_profile());
  const auto pag = bench::get_pagpassgpt(env, "rockyou", site);
  const auto passgpt = bench::get_passgpt(env, "rockyou", site);
  const eval::TestSet test(site.split.test);

  pcfg::PatternDistribution test_patterns;
  for (const auto& pw : site.split.test) test_patterns.add(pcfg::pattern_of(pw));
  test_patterns.finalize();

  const auto per_pattern = static_cast<std::size_t>(2000 * env.scale);
  gpt::SampleOptions opts;
  opts.batch_size = 128;

  eval::Table table({"Pattern", "Test count", "PassGPT(filter)",
                     "PagPassGPT(free)", "PagPassGPT(strict)",
                     "Conformance(free)"});
  for (const auto& [pattern_str, prob] : test_patterns.top_k(8)) {
    const auto segs = pcfg::parse_pattern(pattern_str);
    if (!segs) continue;
    Rng r1(env.seed, "ab-f-" + pattern_str);
    Rng r2(env.seed, "ab-u-" + pattern_str);
    Rng r3(env.seed, "ab-s-" + pattern_str);
    const auto filtered =
        passgpt->generate_with_pattern(*segs, per_pattern, r1, opts);
    const auto unstrict =
        pag->generate_with_pattern(*segs, per_pattern, r2, opts, false);
    const auto strict =
        pag->generate_with_pattern(*segs, per_pattern, r3, opts, true);
    std::size_t conforming = 0;
    for (const auto& pw : unstrict)
      if (pcfg::matches_pattern(pw, *segs)) ++conforming;
    table.add_row(
        {pattern_str, eval::count(test.count_with_pattern(pattern_str)),
         eval::pct(eval::pattern_hit_rate(filtered, test, pattern_str)),
         eval::pct(eval::pattern_hit_rate(unstrict, test, pattern_str)),
         eval::pct(eval::pattern_hit_rate(strict, test, pattern_str)),
         unstrict.empty()
             ? "-"
             : eval::pct(double(conforming) / double(unstrict.size()))});
  }
  table.print();
  std::printf("\nConditioning should dominate filtering on multi-segment "
              "patterns; the conformance column shows how often the "
              "conditioned model stays on-pattern without any mask.\n");
  return 0;
}
