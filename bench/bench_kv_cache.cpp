// Prefix-trie KV cache effectiveness (DESIGN.md §10).
//
// Runs the same D&C-GEN job twice — cache disabled, cache enabled — with
// identical config and seed, verifies the guess lists are byte-identical
// (the determinism contract of kv_cache.h), and reports the prefill
// ledger: token positions fed through the model while priming division
// batches and leaf generations, versus positions restored from cached
// states. The savings are structural — they depend on the division tree,
// not on the weights — so the bench uses a randomly initialised model of
// the requested size and a pattern distribution fitted to the synthetic
// rockyou-like corpus; no training step keeps even the paper config
// runnable in minutes.
//
// Flags beyond the standard bench set (common.h):
//   --model=tiny|small|bench|paper  transformer size (default small)
//   --total=<n>                     guess budget N (default 20000)
//   --threshold=<t>                 division threshold T (default 64)
//   --threads=<n>                   leaf worker threads (default 1)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common.h"
#include "common/check.h"
#include "common/cli.h"
#include "core/dcgen.h"
#include "eval/report.h"
#include "pcfg/pcfg_model.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

using namespace ppg;

namespace {

gpt::Config model_config(const std::string& name) {
  if (name == "tiny") return gpt::Config::tiny();
  if (name == "small") return gpt::Config::small();
  if (name == "bench") return gpt::Config::bench();
  if (name == "paper") return gpt::Config::paper();
  std::fprintf(stderr, "bench_kv_cache: unknown --model '%s'\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  // Split argv into this bench's own flags and the standard set parse_env
  // understands (its Cli rejects unknown flags).
  const std::set<std::string> own = {"model", "total", "threshold", "threads"};
  std::vector<char*> fwd{argv[0]}, mine{argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string name(argv[i]);
    if (name.rfind("--", 0) == 0) name = name.substr(2);
    if (const auto eq = name.find('='); eq != std::string::npos)
      name = name.substr(0, eq);
    auto& dst = own.contains(name) ? mine : fwd;
    dst.push_back(argv[i]);
    if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0)
      dst.push_back(argv[++i]);
  }
  const auto env = bench::parse_env(static_cast<int>(fwd.size()), fwd.data());
  const Cli cli(static_cast<int>(mine.size()), mine.data(),
                {"model", "total", "threshold", "threads"});
  const std::string model_name = cli.get("model", "small");
  const auto total = static_cast<double>(cli.get_int("total", 20000));
  const double threshold = cli.get_double("threshold", 64.0);
  const int threads = static_cast<int>(cli.get_int("threads", 1));

  bench::print_preamble(env, "== KV cache: prefill reuse across the D&C-GEN "
                             "tree ==");
  std::printf("model=%s total=%.0f threshold=%.0f threads=%d\n",
              model_name.c_str(), total, threshold, threads);

  // Pattern distribution from the synthetic corpus; random-init weights
  // (see header comment — savings are structural, training is not needed).
  const auto site = bench::load_site(env, data::rockyou_profile());
  pcfg::PcfgModel pcfg_model;
  pcfg_model.train(site.split.train);
  const gpt::Config cfg_model = model_config(model_name);
  const gpt::GptModel model(cfg_model, env.seed ^ hash64("kv-bench"));

  core::DcGenConfig cfg;
  cfg.total = total;
  cfg.threshold = threshold;
  cfg.threads = threads;
  cfg.sample.batch_size = 128;

  const auto run = [&](bool cached, core::DcGenStats& stats, double& secs) {
    cfg.kv_cache = cached;
    obs::StageTimer stage(cached ? "dcgen/cached" : "dcgen/uncached");
    const auto start = std::chrono::steady_clock::now();
    auto out = core::dc_generate(model, pcfg_model.patterns(), cfg,
                                 env.seed ^ hash64("kv-bench-run"), &stats);
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
    stage.set_items(double(out.size()));
    return out;
  };

  core::DcGenStats off_stats, on_stats;
  double off_secs = 0, on_secs = 0;
  const auto off = run(false, off_stats, off_secs);
  const auto on = run(true, on_stats, on_secs);

  PPG_CHECK(off == on,
            "cached and uncached guess lists differ (%zu vs %zu guesses) — "
            "the kv_cache.h determinism contract is broken",
            off.size(), on.size());
  std::printf("determinism: %zu guesses byte-identical cached vs uncached\n",
              off.size());

  const double reduction =
      off_stats.prefill_tokens == 0
          ? 0.0
          : 1.0 - double(on_stats.prefill_tokens) /
                      double(off_stats.prefill_tokens);
  eval::Table table({"Cache", "Prefill tokens", "Saved", "Model calls",
                     "Seconds"});
  table.add_row({"off", eval::count(off_stats.prefill_tokens),
                 eval::count(off_stats.prefill_saved),
                 eval::count(off_stats.model_calls), eval::num(off_secs, 2)});
  table.add_row({"on", eval::count(on_stats.prefill_tokens),
                 eval::count(on_stats.prefill_saved),
                 eval::count(on_stats.model_calls), eval::num(on_secs, 2)});
  table.print();
  std::printf("\nprefill-token reduction: %.1f%% (%zu -> %zu)\n",
              reduction * 100.0, off_stats.prefill_tokens,
              on_stats.prefill_tokens);

  // Knobs that shape the work are config (they feed the trajectory's
  // fingerprint); the ledger and timings are headline metrics.
  auto& report = obs::RunReport::global();
  report.add_config("kv.model", model_name);
  report.add_config("kv.total", total);
  report.add_config("kv.threshold", threshold);
  report.add_config("kv.threads", std::uint64_t(threads));
  bench::track_metric("kv.prefill_tokens", double(on_stats.prefill_tokens));
  bench::track_metric("kv.prefill_saved", double(on_stats.prefill_saved));
  bench::track_metric("kv.reduction_pct", reduction * 100.0);
  bench::track_metric("kv.model_calls", double(on_stats.model_calls));
  bench::track_metric("kv.uncached_secs", off_secs);
  bench::track_metric("kv.cached_secs", on_secs);
  if (on_secs > 0.0)
    bench::track_metric("kv.guesses_per_sec", double(on.size()) / on_secs);
  return 0;
}
