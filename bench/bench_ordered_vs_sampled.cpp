// Ordered (best-first) vs sampled leaf generation: hit-rate per guess
// budget (DESIGN.md §13).
//
// Trains (or loads from cache) a PagPassGPT on the rockyou-like corpus,
// then runs the same D&C-GEN job at each guess budget twice — once with
// sampled leaves (the paper's scheme) and once with ordered leaves
// (best-first enumeration, src/search) — and scores both guess lists
// against the held-out test split. Best-first emits each leaf's guesses in
// exactly descending model probability with no duplicates, so its hit rate
// must dominate i.i.d. sampling at every budget; the bench aborts if it
// ever doesn't. The per-budget curve points land in the perf trajectory
// (BENCH_ordered.json) that ppg_perfgate gates CI against.
//
// Flags beyond the standard bench set (common.h):
//   --model=tiny|small|bench|paper  transformer size (default small)
//   --budgets=<csv>                 guess budgets (default 250,500,1000,2000)
//   --threshold=<t>                 division threshold T (default 64)
//   --threads=<n>                   leaf worker threads (default 1)
//   --max-expansions=<n>            per-leaf forward-pass cap (default 2048;
//                                   0 = unlimited — can be very slow on a
//                                   weakly trained model, see DESIGN.md §13)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common.h"
#include "common/check.h"
#include "common/cli.h"
#include "core/dcgen.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "obs/metrics.h"
#include "obs/run_report.h"

using namespace ppg;

namespace {

gpt::Config model_config(const std::string& name) {
  if (name == "tiny") return gpt::Config::tiny();
  if (name == "small") return gpt::Config::small();
  if (name == "bench") return gpt::Config::bench();
  if (name == "paper") return gpt::Config::paper();
  std::fprintf(stderr, "bench_ordered_vs_sampled: unknown --model '%s'\n",
               name.c_str());
  std::exit(2);
}

std::vector<std::size_t> parse_budgets(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoull(item));
  PPG_CHECK(!out.empty(), "empty --budgets");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Split argv into this bench's own flags and the standard set parse_env
  // understands (its Cli rejects unknown flags).
  const std::set<std::string> own = {"model", "budgets", "threshold",
                                     "threads", "max-expansions"};
  std::vector<char*> fwd{argv[0]}, mine{argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string name(argv[i]);
    if (name.rfind("--", 0) == 0) name = name.substr(2);
    if (const auto eq = name.find('='); eq != std::string::npos)
      name = name.substr(0, eq);
    auto& dst = own.contains(name) ? mine : fwd;
    dst.push_back(argv[i]);
    if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc &&
        std::strncmp(argv[i + 1], "--", 2) != 0)
      dst.push_back(argv[++i]);
  }
  auto env = bench::parse_env(static_cast<int>(fwd.size()), fwd.data());
  const Cli cli(static_cast<int>(mine.size()), mine.data(),
                {"model", "budgets", "threshold", "threads", "max-expansions"});
  const std::string model_name = cli.get("model", "small");
  env.model_cfg = model_config(model_name);
  const auto budgets = parse_budgets(cli.get("budgets", "250,500,1000,2000"));
  const double threshold = cli.get_double("threshold", 64.0);
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  const auto max_expansions =
      static_cast<std::size_t>(cli.get_int("max-expansions", 2048));

  // The trajectory file is named after the report, not argv[0]:
  // "bench_ordered" -> BENCH_ordered.json (the committed baseline).
  obs::RunReport::global().set_name("bench_ordered");

  bench::print_preamble(env,
                        "== Ordered vs sampled decoding: hit rate per guess "
                        "budget ==");
  std::printf("model=%s threshold=%.0f threads=%d budgets=%s "
              "max_expansions=%zu\n",
              model_name.c_str(), threshold, threads,
              cli.get("budgets", "250,500,1000,2000").c_str(),
              max_expansions);

  const auto site = bench::load_site(env, data::rockyou_profile());
  const auto pag = bench::get_pagpassgpt(env, "rockyou", site);
  const eval::TestSet test(site.split.test);
  std::printf("test set: %zu unique passwords\n", test.size());

  eval::Table table({"Budget", "Sampled HR", "Ordered HR", "Sampled uniq",
                     "Ordered uniq", "Sampled s", "Ordered s"});
  double min_advantage = 1.0;
  for (const std::size_t budget : budgets) {
    core::DcGenConfig cfg;
    cfg.total = static_cast<double>(budget);
    cfg.threshold = threshold;
    cfg.threads = threads;
    cfg.ordered_max_expansions = max_expansions;

    const auto run = [&](core::LeafMode mode, core::DcGenStats& stats,
                         double& secs) {
      cfg.leaf_mode = mode;
      const bool ordered = mode == core::LeafMode::kOrdered;
      obs::StageTimer stage((ordered ? "dcgen/ordered_" : "dcgen/sampled_") +
                            std::to_string(budget));
      const auto start = std::chrono::steady_clock::now();
      auto out = core::dc_generate(pag->model(), pag->patterns(), cfg,
                                   env.seed ^ hash64("ordered-bench"), &stats);
      secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
                 .count();
      stage.set_items(double(out.size()));
      return out;
    };

    core::DcGenStats s_stats, o_stats;
    double s_secs = 0, o_secs = 0;
    const auto sampled = run(core::LeafMode::kSampled, s_stats, s_secs);
    const auto ordered = run(core::LeafMode::kOrdered, o_stats, o_secs);
    const double s_hr = eval::hit_rate(sampled, test);
    const double o_hr = eval::hit_rate(ordered, test);

    table.add_row({eval::count(budget), eval::pct(s_hr), eval::pct(o_hr),
                   eval::count(s_stats.unique_emitted),
                   eval::count(o_stats.unique_emitted), eval::num(s_secs, 2),
                   eval::num(o_secs, 2)});
    PPG_CHECK(o_hr >= s_hr,
              "ordered decoding lost to sampling at budget %zu "
              "(%.4f < %.4f) — best-first enumeration is broken",
              budget, o_hr, s_hr);
    PPG_CHECK(o_stats.unique_emitted == o_stats.emitted,
              "ordered run emitted duplicates (%zu unique of %zu)",
              o_stats.unique_emitted, o_stats.emitted);
    min_advantage = std::min(min_advantage, o_hr - s_hr);

    const std::string suffix = std::to_string(budget);
    bench::track_metric("ordered.hit_rate_" + suffix, o_hr);
    bench::track_metric("sampled.hit_rate_" + suffix, s_hr);
    if (o_secs > 0.0)
      bench::track_metric("ordered.guesses_per_sec_" + suffix,
                          double(ordered.size()) / o_secs);
    if (s_secs > 0.0)
      bench::track_metric("sampled.guesses_per_sec_" + suffix,
                          double(sampled.size()) / s_secs);
    if (s_stats.emitted > 0)
      bench::track_metric("sampled.unique_frac_" + suffix,
                          double(s_stats.unique_emitted) /
                              double(s_stats.emitted));
  }
  table.print();
  std::printf("\nordered-over-sampled hit-rate advantage (min over budgets): "
              "%+.4f\n",
              min_advantage);

  auto& report = obs::RunReport::global();
  report.add_config("ordered.model", model_name);
  report.add_config("ordered.threshold", threshold);
  report.add_config("ordered.threads", std::uint64_t(threads));
  report.add_config("ordered.max_expansions", std::uint64_t(max_expansions));
  report.add_config("ordered.budgets",
                    cli.get("budgets", "250,500,1000,2000"));
  bench::track_metric("ordered.min_advantage", min_advantage);
  return 0;
}
