// Shared workbench for the reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper. They all
// share: a scaled synthetic-corpus environment, cached trained checkpoints
// (training is the expensive step — a checkpoint trained by one bench is
// reused by the rest), and a cached "trawling sweep" whose per-budget curve
// points feed Table IV, Table V, Fig. 10 and Fig. 11.
//
// Flags accepted by every bench (see parse_env):
//   --scale=<f>      multiplies corpus sizes and guess budgets (default 1)
//   --seed=<n>       master seed (default 2024)
//   --cache-dir=<p>  checkpoint/sweep cache (default ./bench_cache)
//   --epochs=<n>     GPT training epochs (default 10)
//   --fresh          ignore caches, retrain/regenerate everything
//   --report=<file>  write a structured JSON run report (config echo, stage
//                    wall-clocks, metrics snapshot) at process exit; also
//                    enables timed instrumentation (obs::set_timing_enabled)
//   --track-dir=<p>  append one perf-trajectory record (commit, build,
//                    config fingerprint, headline metrics) to
//                    <p>/BENCH_<name>.json at process exit — the file
//                    ppg_perfgate gates CI against (default: no tracking)
// Setting PPG_TRACE=<file> additionally records a Chrome-trace timeline of
// the run (open in chrome://tracing or Perfetto). When both PPG_TRACE and
// --report are given, the report embeds a ranked hot-kernel atlas built
// from the trace (see tools/ppg_atlas).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/passgan.h"
#include "baselines/passflow.h"
#include "baselines/passgpt.h"
#include "baselines/vaepass.h"
#include "core/pagpassgpt.h"
#include "data/corpus.h"
#include "eval/metrics.h"

namespace ppg::bench {

/// Environment shared by all benches.
struct BenchEnv {
  double scale = 1.0;
  std::uint64_t seed = 2024;
  std::string cache_dir = "bench_cache";
  int epochs = 10;
  bool fresh = false;
  /// Destination for the structured JSON run report (empty = no report).
  std::string report;
  /// Directory receiving the perf-trajectory append (empty = no tracking).
  std::string track_dir;
  /// Cap on training passwords per model (wall-clock guard; the remainder
  /// of the split is simply unused).
  std::size_t train_cap = 12000;
  /// Transformer size for all GPT-family models in benches.
  gpt::Config model_cfg = gpt::Config::small();

  /// Guess-budget ladder for trawling benches: {1e3, 1e4, 1e5} × scale,
  /// mirroring the paper's 10^6..10^9 at a CPU-sized offset.
  std::vector<std::uint64_t> ladder() const;

  /// Fraction of the full Table-II corpus sizes used for model training
  /// environments (Table II itself reports full sizes).
  double corpus_frac = 0.2;
};

/// Parses common bench flags; unknown flags abort with a message.
BenchEnv parse_env(int argc, char** argv);

/// Records one headline metric for the perf-trajectory record appended at
/// process exit (no-op unless --track-dir was given). Use flat dotted names
/// ("dcgen.guesses_per_sec"); last write wins on duplicates. The record also
/// picks up derived stage.<name>_per_sec metrics from the run report's
/// stages automatically.
void track_metric(const std::string& name, double value);

/// One site's cleaned corpus and split under the environment's scaling.
struct SiteData {
  data::CleanCorpus corpus;
  data::Split split;
};

/// Generates, cleans, and splits one site at env scale.
SiteData load_site(const BenchEnv& env, data::SiteProfile profile);

/// Capped view of a training split.
std::vector<std::string> capped_train(const BenchEnv& env,
                                      const std::vector<std::string>& train);

/// Trains (or loads from cache) a PagPassGPT for a site's split.
std::unique_ptr<core::PagPassGPT> get_pagpassgpt(const BenchEnv& env,
                                                 const std::string& site,
                                                 const SiteData& data);

/// Trains (or loads from cache) the PassGPT baseline for a site's split.
std::unique_ptr<baselines::PassGpt> get_passgpt(const BenchEnv& env,
                                                const std::string& site,
                                                const SiteData& data);

/// Trains the continuous-space baselines (no disk cache; they are cheap at
/// bench scale relative to the GPTs).
std::unique_ptr<baselines::PassGan> get_passgan(const BenchEnv& env,
                                                const SiteData& data);
std::unique_ptr<baselines::VaePass> get_vaepass(const BenchEnv& env,
                                                const SiteData& data);
std::unique_ptr<baselines::PassFlow> get_passflow(const BenchEnv& env,
                                                  const SiteData& data);

/// One model's metric curve along the guess ladder.
using Curve = std::vector<eval::CurvePoint>;

/// The full trawling sweep: every model of Table IV evaluated at every
/// ladder budget against the rockyou-like test set. Cached as a TSV in the
/// cache dir so the four benches that consume it pay for it once.
struct SweepResult {
  std::vector<std::uint64_t> ladder;
  /// Model name → curve (one CurvePoint per ladder budget). Model names:
  /// PassGAN, VAEPass, PassFlow, PassGPT, PagPassGPT, PagPassGPT-D&C.
  std::map<std::string, Curve> curves;
  std::size_t test_size = 0;
};

/// Runs or loads the sweep.
SweepResult trawling_sweep(const BenchEnv& env);

/// Prints the standard bench preamble (seed, scale, substitution note).
void print_preamble(const BenchEnv& env, const std::string& what);

}  // namespace ppg::bench
