// Fig. 9 reproduction: per-pattern hit rate HR_P (Eq. 5) of PassGPT vs
// PagPassGPT for the top-5 patterns of each category s = 1..6.
#include <cstdio>

#include "common.h"
#include "eval/report.h"
#include "pcfg/pcfg_model.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(
      env, "== Fig. 9: hit rate HR_P for top-5 patterns per category ==");

  const auto site = bench::load_site(env, data::rockyou_profile());
  const auto pag = bench::get_pagpassgpt(env, "rockyou", site);
  const auto passgpt = bench::get_passgpt(env, "rockyou", site);
  const eval::TestSet test(site.split.test);

  pcfg::PatternDistribution test_patterns;
  for (const auto& pw : site.split.test) test_patterns.add(pcfg::pattern_of(pw));
  test_patterns.finalize();

  const auto guesses_per_pattern =
      static_cast<std::size_t>(2000 * env.scale);
  gpt::SampleOptions opts;
  opts.batch_size = 128;

  eval::Table table({"s", "Pattern", "Test count", "PassGPT HR_P",
                     "PagPassGPT HR_P"});
  for (int s = 1; s <= 6; ++s) {
    for (const auto& [pattern_str, prob] :
         test_patterns.top_k_with_segments(5, s)) {
      const auto segs = pcfg::parse_pattern(pattern_str);
      if (!segs) continue;
      Rng r1(env.seed, "fig9-pag-" + pattern_str);
      Rng r2(env.seed, "fig9-gpt-" + pattern_str);
      const auto a = pag->generate_with_pattern(*segs, guesses_per_pattern,
                                                r1, opts, true);
      const auto b = passgpt->generate_with_pattern(*segs, guesses_per_pattern,
                                                    r2, opts);
      table.add_row({std::to_string(s), pattern_str,
                     eval::count(test.count_with_pattern(pattern_str)),
                     eval::pct(eval::pattern_hit_rate(b, test, pattern_str)),
                     eval::pct(eval::pattern_hit_rate(a, test, pattern_str))});
    }
  }
  table.print();
  return 0;
}
