// Ablation (paper §V discussion): the D&C-GEN division threshold T trades
// repeat rate against division work. Small T → more divisions, fewer
// duplicates; large T → few divisions, sampling-like repeat behaviour.
#include <chrono>
#include <cstdio>

#include "common.h"
#include "core/dcgen.h"
#include "eval/report.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(env,
                        "== Ablation: D&C-GEN threshold T trade-off ==");

  const auto site = bench::load_site(env, data::rockyou_profile());
  const auto pag = bench::get_pagpassgpt(env, "rockyou", site);
  const eval::TestSet test(site.split.test);
  const auto budget = static_cast<double>(env.ladder()[1]);  // mid budget

  eval::Table table({"T", "Generated", "Repeat rate", "Hit rate", "Divisions",
                     "Leaves", "Model calls", "Seconds"});
  for (const double t : {4.0, 16.0, 64.0, 256.0, 1024.0, budget}) {
    core::DcGenConfig cfg;
    cfg.total = budget;
    cfg.threshold = t;
    cfg.sample.batch_size = 128;
    core::DcGenStats stats;
    const auto start = std::chrono::steady_clock::now();
    const auto guesses = core::dc_generate(pag->model(), pag->patterns(), cfg,
                                           env.seed ^ hash64("ablation-dc"),
                                           &stats);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    table.add_row({eval::num(t, 0), eval::count(guesses.size()),
                   eval::pct(eval::repeat_rate(guesses)),
                   eval::pct(eval::hit_rate(guesses, test)),
                   eval::count(stats.divisions), eval::count(stats.leaves),
                   eval::count(stats.model_calls), eval::num(secs, 2)});
  }
  table.print();
  std::printf("\nExpected: repeat rate falls as T shrinks while division "
              "work (divisions/model calls/time) grows — the §III-C2 "
              "trade-off the paper describes.\n");
  return 0;
}
