// Fleet scaling bench: aggregate guesses/sec vs worker count, plus p99
// under a 1-worker-kill fault schedule (DESIGN.md §16).
//
// The workload is the fleet's design regime: a fixed population of
// distinct (pattern, prefix) keys cycled round-robin by closed-loop
// clients. Each worker's cross-request prefix KV cache is byte-budgeted
// (--cache-mb); the key population is sized so that ONE worker's budget
// cannot hold the whole working set (cyclic LRU access over a too-large
// set hits 0%: every request re-prefills its full prefix), while a
// 4-worker fleet's consistent-hash shards each fit (every request after
// warm-up is an exact cache hit that skips prefill and only decodes the
// few remaining tokens). That — not core count, this is a 1-core bench —
// is where the >= 3x aggregate throughput at 4 workers comes from: the
// prefix-affinity router turns one thrashing cache into four resident
// ones. Prefix requests only take the cached path at fp32, so there is
// deliberately no --quantize here.
//
// The fault cell re-runs the widest fleet and SIGKILLs one worker partway
// through: supervision restarts it, retries re-route its in-flight keys,
// and the cell reports the p99 the schedule actually saw plus the restart
// count. Every request in every cell must end status=ok — a single lost
// or rejected request fails the bench.
//
// Flags:
//   --config=tiny|small|bench|paper  worker model size (default paper)
//   --workers=CSV   worker counts to sweep (default 1,2,4)
//   --keys=N        distinct (pattern, prefix) keys (default 64)
//   --passes=N      measured round-robin passes over the keys (default 3)
//   --clients=N     closed-loop client threads (default 1: single-file
//                   requests keep the 1-worker cell honest — more clients
//                   let its batcher amortise the thrashing cache's
//                   prefills across rows, understating the affinity win)
//   --cache-mb=N    per-worker prefix KV cache budget (default 14: at the
//                   paper config 64 keys × ~0.37 MB cannot fit one worker
//                   but every 4-worker shard fits, even the skewed ones)
//   --kill-pct=P    fault cell: kill one worker P% into the run
//                   (default 30; 0 skips the fault cell)
//   --seed=N        base seed (default 2024)
//   --serve-bin=P   ppg_serve binary (default: the build's own)
//   --report=FILE   write the cell table as JSON
//   --track-dir=DIR append a perf-trajectory record (BENCH_fleet.json)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "fleet/router.h"
#include "obs/bench_track.h"
#include "obs/clock.h"
#include "obs/json.h"
#include "serve/wire.h"

namespace {

using namespace ppg;

std::vector<int> parse_csv_ints(const std::string& csv) {
  std::vector<int> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoi(item));
  return out;
}

/// One pattern for every key: equal prefix geometry keeps the per-request
/// cost identical across keys, so throughput differences are pure cache
/// behaviour. 12 prefix letters + 2 decoded digits maximises the
/// prefill-skipped-over-decode ratio an exact hit buys.
constexpr const char* kPattern = "L12N2";
constexpr int kPrefixLen = 12;

/// Deterministic distinct letter prefixes (tiny LCG, no global RNG).
std::string prefix_of_key(int key) {
  std::string p;
  std::uint64_t s = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(key + 1);
  for (int i = 0; i < kPrefixLen; ++i) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    p.push_back(static_cast<char>('a' + (s >> 33) % 26));
  }
  return p;
}

std::string request_line(int key, int pass, std::uint64_t seed) {
  return "{\"op\":\"guess\",\"id\":\"k" + std::to_string(key) + "p" +
         std::to_string(pass) + "\",\"kind\":\"prefix\",\"pattern\":\"" +
         kPattern + "\",\"prefix\":\"" + prefix_of_key(key) +
         "\",\"count\":1,\"seed\":" +
         std::to_string(seed + static_cast<std::uint64_t>(key)) + "}";
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct Cell {
  int workers = 0;
  bool fault = false;
  double wall_s = 0.0;
  std::size_t requests = 0;
  std::size_t guesses = 0;
  double guesses_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t restarts = 0;  ///< fleet restarts the schedule caused
  std::size_t not_ok = 0;      ///< must be 0: nothing may be lost or shed
};

struct Options {
  std::string config = "paper";
  std::string serve_bin;
  int keys = 64;
  int passes = 3;
  int clients = 1;
  int cache_mb = 14;
  std::uint64_t seed = 2024;
};

fleet::RouterConfig fleet_config(const Options& opt, int workers) {
  fleet::RouterConfig cfg;
  cfg.workers = static_cast<std::size_t>(workers);
  cfg.serve_bin = opt.serve_bin;
  cfg.worker_args = {"--config",          opt.config,
                     "--seed",            std::to_string(opt.seed),
                     "--workers",         "1",
                     "--patterns",        kPattern,
                     "--prefix-cache-mb", std::to_string(opt.cache_mb)};
  cfg.queue_depth = 256;
  cfg.max_retries = 20;
  cfg.backoff_base_ms = 5;
  cfg.backoff_cap_ms = 100;
  // Paper-config workers saturate the core; a heartbeat answered 3 s late
  // is CPU starvation, not death. The default 2 s timeout (tuned for
  // interactive fleets with headroom) causes spurious restarts here that
  // cold the very caches the bench measures.
  cfg.heartbeat_timeout_ms = 10000;
  return cfg;
}

std::uint64_t total_restarts(fleet::Router& router) {
  const auto v = obs::parse_json(router.stats_line("bench"));
  std::uint64_t restarts = 0;
  if (v) {
    if (const auto* ws = v->find("workers");
        ws && ws->type == obs::JsonValue::Type::kArray)
      for (const auto& w : ws->array)
        restarts +=
            static_cast<std::uint64_t>(w.get_number("restarts").value_or(0));
  }
  return restarts;
}

/// Submits one line and returns (ok, passwords-returned).
std::pair<bool, std::size_t> submit_one(fleet::Router& router,
                                        const std::string& line) {
  std::string err;
  const auto req = serve::parse_request_line(line, &err);
  if (!req) {
    std::fprintf(stderr, "bench_fleet_scaling: bad line: %s\n", err.c_str());
    return {false, 0};
  }
  const std::string resp = router.submit(*req, line).get();
  const auto v = obs::parse_json(resp);
  if (!v || v->get_string("status").value_or("?") != "ok") return {false, 0};
  std::size_t n = 0;
  if (const auto* pw = v->find("passwords");
      pw && pw->type == obs::JsonValue::Type::kArray)
    n = pw->array.size();
  return {true, n};
}

/// Runs one cell: warm pass (uncounted), then `passes` round-robin passes
/// over the keys from `clients` closed-loop threads. When `kill_after_s`
/// is positive, a chaos thread SIGKILLs worker (workers - 1) that many
/// seconds in.
Cell run_cell(const Options& opt, int workers, double kill_after_s) {
  fleet::Router router(fleet_config(opt, workers));
  std::string err;
  if (!router.start(&err)) {
    std::fprintf(stderr, "bench_fleet_scaling: router start failed: %s\n",
                 err.c_str());
    std::exit(1);
  }

  Cell cell;
  cell.workers = workers;
  cell.fault = kill_after_s > 0;

  // Warm pass: populate every shard's cache (and, in the 1-worker cell,
  // prove the budget cannot hold it). Uncounted.
  for (int k = 0; k < opt.keys; ++k)
    if (!submit_one(router, request_line(k, -1, opt.seed)).first) ++cell.not_ok;

  std::vector<std::string> schedule;
  schedule.reserve(static_cast<std::size_t>(opt.keys) *
                   static_cast<std::size_t>(opt.passes));
  for (int pass = 0; pass < opt.passes; ++pass)
    for (int k = 0; k < opt.keys; ++k)
      schedule.push_back(request_line(k, pass, opt.seed));

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> guesses{0}, failures{0};
  std::vector<std::vector<double>> lat(
      static_cast<std::size_t>(opt.clients));
  const std::int64_t t0 = obs::now_us();

  std::thread chaos;
  if (cell.fault)
    chaos = std::thread([&router, workers, kill_after_s] {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::int64_t>(kill_after_s * 1e6)));
      router.kill_worker(static_cast<std::size_t>(workers - 1));
    });

  {
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(opt.clients));
    for (int c = 0; c < opt.clients; ++c)
      clients.emplace_back([&, c] {
        auto& mine = lat[static_cast<std::size_t>(c)];
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= schedule.size()) return;
          const std::int64_t s0 = obs::now_us();
          const auto [ok, n] = submit_one(router, schedule[i]);
          mine.push_back(double(obs::now_us() - s0) / 1000.0);
          if (ok)
            guesses.fetch_add(n);
          else
            failures.fetch_add(1);
        }
      });
    for (auto& c : clients) c.join();
  }
  cell.wall_s = double(obs::now_us() - t0) / 1e6;
  if (chaos.joinable()) chaos.join();

  cell.requests = schedule.size();
  cell.guesses = guesses.load();
  cell.not_ok += failures.load();
  cell.guesses_per_sec =
      cell.wall_s > 0 ? double(cell.guesses) / cell.wall_s : 0.0;
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  cell.p50_ms = percentile(all, 0.50);
  cell.p99_ms = percentile(all, 0.99);
  cell.restarts = total_restarts(router);
  router.stop();
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv,
            {"config", "workers", "keys", "passes", "clients", "cache-mb",
             "kill-pct", "seed", "serve-bin", "report", "track-dir"});
    Options opt;
    opt.config = cli.get("config", "paper");
    opt.serve_bin = cli.get("serve-bin", PPG_SERVE_BIN);
    opt.keys = static_cast<int>(cli.get_int("keys", 64));
    opt.passes = static_cast<int>(cli.get_int("passes", 3));
    opt.clients = static_cast<int>(cli.get_int("clients", 1));
    opt.cache_mb = static_cast<int>(cli.get_int("cache-mb", 14));
    opt.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2024));
    const int kill_pct = static_cast<int>(cli.get_int("kill-pct", 30));
    const auto worker_counts = parse_csv_ints(cli.get("workers", "1,2,4"));
    if (worker_counts.empty())
      throw std::invalid_argument("--workers must name at least one count");

    std::printf("bench_fleet_scaling: config=%s keys=%d passes=%d clients=%d "
                "cache-mb=%d kill-pct=%d seed=%llu\n",
                opt.config.c_str(), opt.keys, opt.passes, opt.clients,
                opt.cache_mb, kill_pct,
                static_cast<unsigned long long>(opt.seed));
    std::printf("%8s  %6s  %10s  %9s  %9s  %9s  %7s\n", "workers", "fault",
                "guess/sec", "p50 ms", "p99 ms", "restarts", "not_ok");

    std::vector<Cell> cells;
    for (const int w : worker_counts) {
      cells.push_back(run_cell(opt, w, 0.0));
      const Cell& c = cells.back();
      std::printf("%8d  %6s  %10.2f  %9.2f  %9.2f  %9llu  %7zu\n", c.workers,
                  "no", c.guesses_per_sec, c.p50_ms, c.p99_ms,
                  static_cast<unsigned long long>(c.restarts), c.not_ok);
    }
    if (kill_pct > 0) {
      // Fault schedule: the widest clean cell tells us how long a run
      // takes; kill one worker kill_pct% of the way into a fresh one.
      const Cell& widest = cells.back();
      cells.push_back(run_cell(opt, widest.workers,
                               widest.wall_s * double(kill_pct) / 100.0));
      const Cell& c = cells.back();
      std::printf("%8d  %6s  %10.2f  %9.2f  %9.2f  %9llu  %7zu\n", c.workers,
                  "kill1", c.guesses_per_sec, c.p50_ms, c.p99_ms,
                  static_cast<unsigned long long>(c.restarts), c.not_ok);
      if (c.restarts == 0) {
        std::fprintf(stderr,
                     "bench_fleet_scaling: fault cell saw no restart — the "
                     "kill missed the run\n");
        return 1;
      }
    }

    std::size_t lost = 0;
    for (const Cell& c : cells) lost += c.not_ok;
    if (lost > 0) {
      std::fprintf(stderr,
                   "bench_fleet_scaling: %zu requests did not end ok — the "
                   "fleet lost or shed load it must not\n",
                   lost);
      return 1;
    }

    const Cell* base = &cells.front();
    const Cell* widest = nullptr;
    for (const Cell& c : cells)
      if (!c.fault && (widest == nullptr || c.workers > widest->workers))
        widest = &c;
    const double scaling = base->guesses_per_sec > 0 && widest != nullptr
                               ? widest->guesses_per_sec /
                                     base->guesses_per_sec
                               : 0.0;
    std::printf("\naggregate scaling %dw/%dw: %.2fx\n", widest->workers,
                base->workers, scaling);

    if (cli.has("report")) {
      obs::JsonWriter w;
      w.begin_object();
      w.key("bench").value("bench_fleet_scaling");
      w.key("config").begin_object();
      w.key("model").value(opt.config);
      w.key("keys").value(std::int64_t{opt.keys});
      w.key("passes").value(std::int64_t{opt.passes});
      w.key("clients").value(std::int64_t{opt.clients});
      w.key("cache_mb").value(std::int64_t{opt.cache_mb});
      w.key("kill_pct").value(std::int64_t{kill_pct});
      w.key("seed").value(std::uint64_t{opt.seed});
      w.end_object();
      w.key("cells").begin_array();
      for (const Cell& c : cells) {
        w.begin_object();
        w.key("workers").value(std::int64_t{c.workers});
        w.key("fault").value(c.fault);
        w.key("wall_s").value(c.wall_s);
        w.key("requests").value(std::uint64_t{c.requests});
        w.key("guesses").value(std::uint64_t{c.guesses});
        w.key("guesses_per_sec").value(c.guesses_per_sec);
        w.key("p50_ms").value(c.p50_ms);
        w.key("p99_ms").value(c.p99_ms);
        w.key("restarts").value(c.restarts);
        w.end_object();
      }
      w.end_array();
      w.key("scaling").value(scaling);
      w.end_object();
      std::ofstream out(cli.get("report"));
      out << w.str() << "\n";
      std::fprintf(stderr, "report written to %s\n",
                   cli.get("report").c_str());
    }

    if (cli.has("track-dir")) {
      std::map<std::string, std::string> config;
      config["bench"] = "bench_fleet_scaling";
      config["model"] = opt.config;
      config["workers"] = cli.get("workers", "1,2,4");
      config["keys"] = std::to_string(opt.keys);
      config["passes"] = std::to_string(opt.passes);
      config["clients"] = std::to_string(opt.clients);
      config["cache_mb"] = std::to_string(opt.cache_mb);
      config["kill_pct"] = std::to_string(kill_pct);
      std::map<std::string, double> metrics;
      for (const Cell& c : cells) {
        const std::string tag = c.fault
                                    ? "fleet.faulted"
                                    : "fleet.w" + std::to_string(c.workers);
        metrics[tag + ".guesses_per_sec"] = c.guesses_per_sec;
        metrics[tag + ".p99_ms"] = c.p99_ms;
      }
      metrics["fleet.scaling_speedup"] = scaling;
      const auto rec = obs::make_bench_record(
          "bench_fleet", std::move(config), std::move(metrics));
      const std::string path =
          obs::trajectory_path(cli.get("track-dir"), rec.bench);
      std::string error;
      if (obs::append_trajectory(path, rec, &error))
        std::fprintf(stderr, "trajectory record appended to %s\n",
                     path.c_str());
      else
        std::fprintf(stderr, "FAILED to append trajectory %s: %s\n",
                     path.c_str(), error.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_fleet_scaling: %s\n", e.what());
    return 1;
  }
}
