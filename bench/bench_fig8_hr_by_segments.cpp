// Fig. 8 reproduction: per-category hit rate HR_s (Eq. 4) of PassGPT vs
// PagPassGPT, for categories s = 1..12 segments.
//
// Protocol (paper §IV-C): for each category, take the (up to) 21 most
// frequent patterns of the test set, generate a fixed budget per pattern
// with each model, and report hits over all test passwords of the category.
// Paper shape to look for: the PagPassGPT/PassGPT gap grows with s, peaks
// mid-range, and PassGPT collapses toward zero at high s.
#include <cstdio>

#include "common.h"
#include "eval/report.h"
#include "pcfg/pcfg_model.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(env,
                        "== Fig. 8: hit rate HR_s by segment-count category ==");

  const auto site = bench::load_site(env, data::rockyou_profile());
  const auto pag = bench::get_pagpassgpt(env, "rockyou", site);
  const auto passgpt = bench::get_passgpt(env, "rockyou", site);
  const eval::TestSet test(site.split.test);

  // Pattern distribution of the *test* set (paper step 1).
  pcfg::PatternDistribution test_patterns;
  for (const auto& pw : site.split.test) test_patterns.add(pcfg::pattern_of(pw));
  test_patterns.finalize();

  const auto guesses_per_pattern =
      static_cast<std::size_t>(2000 * env.scale);
  gpt::SampleOptions opts;
  opts.batch_size = 128;

  eval::Table table({"Segments s", "Test pw count", "Patterns used",
                     "PassGPT HR_s", "PagPassGPT HR_s"});
  for (int s = 1; s <= 12; ++s) {
    const auto patterns = test_patterns.top_k_with_segments(21, s);
    if (patterns.empty() || test.count_with_segments(s) == 0) {
      table.add_row({std::to_string(s),
                     eval::count(test.count_with_segments(s)), "0", "-", "-"});
      continue;
    }
    std::vector<std::string> pag_all, gpt_all;
    for (const auto& [pattern_str, prob] : patterns) {
      const auto segs = pcfg::parse_pattern(pattern_str);
      if (!segs) continue;
      Rng r1(env.seed, "fig8-pag-" + pattern_str);
      Rng r2(env.seed, "fig8-gpt-" + pattern_str);
      auto a = pag->generate_with_pattern(*segs, guesses_per_pattern, r1,
                                          opts, true);
      auto b = passgpt->generate_with_pattern(*segs, guesses_per_pattern, r2,
                                              opts);
      pag_all.insert(pag_all.end(), a.begin(), a.end());
      gpt_all.insert(gpt_all.end(), b.begin(), b.end());
    }
    table.add_row({std::to_string(s), eval::count(test.count_with_segments(s)),
                   std::to_string(patterns.size()),
                   eval::pct(eval::category_hit_rate(gpt_all, test, s)),
                   eval::pct(eval::category_hit_rate(pag_all, test, s))});
  }
  table.print();
  std::printf(
      "\nCategories with no test passwords are marked '-' (the synthetic "
      "corpus tops out below 12 segments; the real RockYou reaches 12).\n");
  return 0;
}
