// Table V reproduction: length distance (Eq. 6) and pattern distance
// (Eq. 7) between each model's generated passwords and the test set, at the
// 10^8-equivalent budget (the largest ladder point).
//
// Paper values: PassGAN 9.20/6.00, VAEPass 5.84/5.75, PassFlow 50.61/13.62,
// PassGPT 8.49/4.16, PagPassGPT 4.78/2.79 (%). PagPassGPT-D&C is excluded
// as in the paper (it takes patterns as input).
#include <cstdio>

#include "common.h"
#include "eval/report.h"

using namespace ppg;

int main(int argc, char** argv) {
  const auto env = bench::parse_env(argc, argv);
  bench::print_preamble(env,
                        "== Table V: length and pattern distances ==");

  const auto sweep = bench::trawling_sweep(env);
  eval::Table table(
      {"Model", "Length Distance", "Pattern Distance", "(paper L)", "(paper P)"});
  const std::map<std::string, std::pair<double, double>> paper = {
      {"PassGAN", {0.0920, 0.0600}},  {"VAEPass", {0.0584, 0.0575}},
      {"PassFlow", {0.5061, 0.1362}}, {"PassGPT", {0.0849, 0.0416}},
      {"PagPassGPT", {0.0478, 0.0279}},
  };
  for (const auto& name :
       {"PassGAN", "VAEPass", "PassFlow", "PassGPT", "PagPassGPT"}) {
    const auto it = sweep.curves.find(name);
    if (it == sweep.curves.end() || it->second.empty()) continue;
    const auto& p = it->second.back();
    const auto& pv = paper.at(name);
    table.add_row({name, eval::pct(p.length_distance),
                   eval::pct(p.pattern_distance), eval::pct(pv.first),
                   eval::pct(pv.second)});
  }
  table.print();
  std::printf("\nShape to verify: PassFlow's length distance is the outlier; "
              "PagPassGPT has the smallest distances.\n");
  return 0;
}
