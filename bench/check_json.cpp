// Validates that each file argument is non-empty, well-formed JSON.
//
// Used by the `obs_smoke_validate` ctest target to assert that a bench run
// with --report=<file> and PPG_TRACE=<file> produced parseable artifacts
// (catching truncation and interleaved writes). Exit code 0 iff all files
// pass.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.json>...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) {
      std::fprintf(stderr, "%s: empty file\n", argv[i]);
      ++failures;
      continue;
    }
    std::string error;
    if (!ppg::obs::validate_json(text, &error)) {
      std::fprintf(stderr, "%s: invalid JSON: %s\n", argv[i], error.c_str());
      ++failures;
      continue;
    }
    std::printf("%s: ok (%zu bytes)\n", argv[i], text.size());
  }
  return failures == 0 ? 0 : 1;
}
