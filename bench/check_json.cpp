// Validates that each file argument is non-empty, well-formed JSON.
//
// Used by the `obs_smoke_validate` ctest target to assert that a bench run
// with --report=<file> and PPG_TRACE=<file> produced parseable artifacts
// (catching truncation and interleaved writes), and — with --ndjson — by
// the serve smoke test to validate newline-delimited JSON response
// streams, where every non-empty line must be one well-formed value.
// Exit code 0 iff all files pass.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

bool check_whole_file(const char* path, const std::string& text) {
  std::string error;
  if (!ppg::obs::validate_json(text, &error)) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path, error.c_str());
    return false;
  }
  std::printf("%s: ok (%zu bytes)\n", path, text.size());
  return true;
}

bool check_ndjson(const char* path, const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0, checked = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string error;
    if (!ppg::obs::validate_json(line, &error)) {
      std::fprintf(stderr, "%s:%zu: invalid JSON line: %s\n", path, lineno,
                   error.c_str());
      return false;
    }
    ++checked;
  }
  if (checked == 0) {
    std::fprintf(stderr, "%s: no JSON lines\n", path);
    return false;
  }
  std::printf("%s: ok (%zu NDJSON lines)\n", path, checked);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool ndjson = false;
  int first_file = 1;
  if (argc > 1 && std::strcmp(argv[1], "--ndjson") == 0) {
    ndjson = true;
    first_file = 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr, "usage: %s [--ndjson] <file.json>...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) {
      std::fprintf(stderr, "%s: empty file\n", argv[i]);
      ++failures;
      continue;
    }
    if (!(ndjson ? check_ndjson(argv[i], text)
                 : check_whole_file(argv[i], text)))
      ++failures;
  }
  return failures == 0 ? 0 : 1;
}
