// Validates that each file argument is non-empty, well-formed JSON.
//
// Used by the `obs_smoke_validate` ctest target to assert that a bench run
// with --report=<file> and PPG_TRACE=<file> produced parseable artifacts
// (catching truncation and interleaved writes), and — with --ndjson — by
// the serve smoke test to validate newline-delimited JSON response
// streams, where every non-empty line must be one well-formed value.
// --ordered-ndjson additionally checks the ordered-decoding contract: at
// least one line must carry a "log_probs" array, and every such array must
// be all-finite and monotone non-increasing (wire.h: best-first order).
// Exit code 0 iff all files pass.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

bool check_whole_file(const char* path, const std::string& text) {
  std::string error;
  if (!ppg::obs::validate_json(text, &error)) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path, error.c_str());
    return false;
  }
  std::printf("%s: ok (%zu bytes)\n", path, text.size());
  return true;
}

bool check_ndjson(const char* path, const std::string& text, bool ordered) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0, checked = 0, ordered_lines = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string error;
    const auto value = ppg::obs::parse_json(line, &error);
    if (!value.has_value()) {
      std::fprintf(stderr, "%s:%zu: invalid JSON line: %s\n", path, lineno,
                   error.c_str());
      return false;
    }
    ++checked;
    if (!ordered) continue;
    const ppg::obs::JsonValue* lps = value->find("log_probs");
    if (lps == nullptr) continue;
    if (lps->type != ppg::obs::JsonValue::Type::kArray) {
      std::fprintf(stderr, "%s:%zu: log_probs is not an array\n", path,
                   lineno);
      return false;
    }
    ++ordered_lines;
    double prev = 0.0;
    for (std::size_t i = 0; i < lps->array.size(); ++i) {
      const ppg::obs::JsonValue& v = lps->array[i];
      if (v.type != ppg::obs::JsonValue::Type::kNumber ||
          !std::isfinite(v.number)) {
        std::fprintf(stderr, "%s:%zu: log_probs[%zu] is not a finite number\n",
                     path, lineno, i);
        return false;
      }
      if (i > 0 && v.number > prev) {
        std::fprintf(stderr,
                     "%s:%zu: log_probs[%zu]=%.12g rises above the previous "
                     "%.12g — ordered output must be non-increasing\n",
                     path, lineno, i, v.number, prev);
        return false;
      }
      prev = v.number;
    }
  }
  if (checked == 0) {
    std::fprintf(stderr, "%s: no JSON lines\n", path);
    return false;
  }
  if (ordered && ordered_lines == 0) {
    std::fprintf(stderr, "%s: no line carries a log_probs array\n", path);
    return false;
  }
  if (ordered)
    std::printf("%s: ok (%zu NDJSON lines, %zu ordered)\n", path, checked,
                ordered_lines);
  else
    std::printf("%s: ok (%zu NDJSON lines)\n", path, checked);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool ndjson = false, ordered = false;
  int first_file = 1;
  if (argc > 1 && std::strcmp(argv[1], "--ndjson") == 0) {
    ndjson = true;
    first_file = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "--ordered-ndjson") == 0) {
    ndjson = true;
    ordered = true;
    first_file = 2;
  }
  if (first_file >= argc) {
    std::fprintf(stderr,
                 "usage: %s [--ndjson|--ordered-ndjson] <file.json>...\n",
                 argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    if (text.empty()) {
      std::fprintf(stderr, "%s: empty file\n", argv[i]);
      ++failures;
      continue;
    }
    if (!(ndjson ? check_ndjson(argv[i], text, ordered)
                 : check_whole_file(argv[i], text)))
      ++failures;
  }
  return failures == 0 ? 0 : 1;
}
