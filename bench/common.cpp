#include "common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/cli.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "core/dcgen.h"
#include "eval/generator.h"
#include "obs/atlas.h"
#include "obs/bench_track.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"

namespace ppg::bench {

namespace fs = std::filesystem;

namespace {

/// Report destination for the atexit writer (set once in parse_env).
std::string& report_path() {
  static std::string* path = new std::string();
  return *path;
}

/// Trajectory directory for the atexit writer (set once in parse_env).
std::string& track_dir_path() {
  static std::string* path = new std::string();
  return *path;
}

void append_trajectory_at_exit() {
  const std::string& dir = track_dir_path();
  if (dir.empty()) return;
  auto& report = obs::RunReport::global();
  std::map<std::string, std::string> config;
  for (const auto& [k, v] : report.config_snapshot()) config[k] = v;
  std::map<std::string, double> metrics;
  // Derived per-stage throughput first; explicit track_metric() values win
  // on a name collision (TrackRecorder::flush merges recorded-over-base).
  for (const auto& s : report.stages_snapshot())
    if (s.items > 0.0 && s.seconds > 0.0)
      metrics["stage." + s.name + "_per_sec"] = s.items / s.seconds;
  std::string name = report.name();
  if (name.empty()) name = "bench";
  std::string error;
  const bool ok = obs::TrackRecorder::global().flush(
      std::move(name), std::move(config), std::move(metrics),
      [&](const obs::BenchRecord& rec) {
        // The writer runs with no TrackRecorder lock held (see
        // tests/lock_discipline_test.cpp).
        PPG_FAILPOINT("bench.track.append");
        const std::string path = obs::trajectory_path(dir, rec.bench);
        std::string append_error;
        if (obs::append_trajectory(path, rec, &append_error)) {
          std::fprintf(stderr, "bench: trajectory record appended to %s\n",
                       path.c_str());
          return true;
        }
        std::fprintf(stderr, "bench: FAILED to append trajectory %s: %s\n",
                     path.c_str(), append_error.c_str());
        return false;
      },
      &error);
  if (!ok && !error.empty())
    std::fprintf(stderr, "bench: trajectory record skipped: %s\n",
                 error.c_str());
}

void write_report_at_exit() {
  // Close the trace first (idempotent) so the atlas sees a complete file,
  // regardless of atexit registration order relative to the trace flusher.
  obs::trace_stop();
  const std::string& path = report_path();
  if (!path.empty()) {
    const char* trace = std::getenv("PPG_TRACE");
    if (trace != nullptr && trace[0] != '\0') {
      std::string error;
      if (auto atlas = obs::build_atlas(trace, &error))
        obs::RunReport::global().set_section("atlas",
                                             obs::atlas_to_json(*atlas));
      else
        std::fprintf(stderr, "bench: atlas skipped (%s): %s\n", trace,
                     error.c_str());
    }
    if (obs::RunReport::global().write(path))
      std::fprintf(stderr, "bench: run report written to %s\n", path.c_str());
    else
      std::fprintf(stderr, "bench: FAILED to write run report %s\n",
                   path.c_str());
  }
  append_trajectory_at_exit();
}

}  // namespace

void track_metric(const std::string& name, double value) {
  obs::TrackRecorder::global().set(name, value);
}

std::vector<std::uint64_t> BenchEnv::ladder() const {
  std::vector<std::uint64_t> out;
  for (const double base : {1e3, 1e4, 1e5}) {
    const auto v = static_cast<std::uint64_t>(base * scale);
    if (v > 0) out.push_back(v);
  }
  return out;
}

BenchEnv parse_env(int argc, char** argv) {
  const Cli cli(argc, argv, {"scale", "seed", "cache-dir", "epochs", "fresh",
                             "train-cap", "report", "track-dir"});
  BenchEnv env;
  env.scale = cli.get_double("scale", 1.0);
  env.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2024));
  env.cache_dir = cli.get("cache-dir", "bench_cache");
  env.epochs = static_cast<int>(cli.get_int("epochs", 10));
  env.fresh = cli.get_bool("fresh");
  env.train_cap = static_cast<std::size_t>(cli.get_int("train-cap", 12000));
  env.report = cli.get("report", "");
  env.track_dir = cli.get("track-dir", "");
  fs::create_directories(env.cache_dir);

  // Run-report plumbing: echo the effective config, turn on timed
  // instrumentation so latency histograms populate, and defer the actual
  // write to process exit so every bench gets it without per-main code.
  auto& report = obs::RunReport::global();
  std::string name = argc > 0 ? fs::path(argv[0]).filename().string() : "bench";
  report.set_name(name);
  report.add_config("bench", name);
  report.add_config("scale", env.scale);
  report.add_config("seed", std::uint64_t{env.seed});
  report.add_config("cache_dir", env.cache_dir);
  report.add_config("epochs", std::uint64_t(env.epochs));
  report.add_config("fresh", std::string(env.fresh ? "true" : "false"));
  report.add_config("train_cap", std::uint64_t{env.train_cap});
  report.add_config("model.d_model", std::uint64_t(env.model_cfg.d_model));
  report.add_config("model.n_layers", std::uint64_t(env.model_cfg.n_layers));
  report.add_config("model.n_heads", std::uint64_t(env.model_cfg.n_heads));
  report.add_config("model.context", std::uint64_t(env.model_cfg.context));
  if (!env.report.empty() || !env.track_dir.empty()) {
    if (!env.report.empty()) {
      obs::set_timing_enabled(true);
      report_path() = env.report;
    }
    track_dir_path() = env.track_dir;
    static bool registered = false;
    if (!registered) {
      registered = true;
      std::atexit(write_report_at_exit);
    }
  }
  // Touching trace_enabled() here picks up PPG_TRACE before any work runs.
  if (obs::trace_enabled()) {
    obs::trace_set_thread_name("main");
    obs::trace_instant("bench/start", "bench");
  }
  return env;
}

SiteData load_site(const BenchEnv& env, data::SiteProfile profile) {
  obs::StageTimer stage("data/load_site_" + profile.name);
  profile.unique_target = static_cast<std::size_t>(
      double(profile.unique_target) * env.scale * env.corpus_frac);
  profile.unique_target = std::max<std::size_t>(profile.unique_target, 500);
  SiteData site;
  site.corpus = data::clean(data::generate_site(profile, env.seed));
  site.split = data::split_712(site.corpus.passwords, env.seed);
  stage.set_items(double(site.corpus.passwords.size()));
  return site;
}

std::vector<std::string> capped_train(const BenchEnv& env,
                                      const std::vector<std::string>& train) {
  if (train.size() <= env.train_cap) return train;
  return {train.begin(), train.begin() + static_cast<std::ptrdiff_t>(env.train_cap)};
}

namespace {

std::string checkpoint_path(const BenchEnv& env, const std::string& kind,
                            const std::string& site) {
  std::ostringstream os;
  os << env.cache_dir << '/' << kind << '_' << site << "_d"
     << env.model_cfg.d_model << "_l" << env.model_cfg.n_layers << "_e"
     << env.epochs << "_s" << env.scale << "_c" << env.train_cap << "_seed"
     << env.seed << ".ckpt";
  return os.str();
}

gpt::TrainConfig train_config(const BenchEnv& env) {
  gpt::TrainConfig cfg;
  cfg.epochs = env.epochs;
  cfg.batch_size = 64;
  cfg.lr = 2e-3f;
  cfg.seed = env.seed;
  cfg.log_every = 0;
  return cfg;
}

}  // namespace

std::unique_ptr<core::PagPassGPT> get_pagpassgpt(const BenchEnv& env,
                                                 const std::string& site,
                                                 const SiteData& data) {
  auto model = std::make_unique<core::PagPassGPT>(env.model_cfg,
                                                  env.seed ^ hash64("pag"));
  const std::string path = checkpoint_path(env, "pag", site);
  if (!env.fresh && fs::exists(path)) {
    obs::StageTimer stage("load/pag_" + site);
    log_info("bench: loading cached PagPassGPT %s", path.c_str());
    model->load(path);
    return model;
  }
  obs::StageTimer stage("train/pag_" + site);
  log_info("bench: training PagPassGPT on %s (%d epochs)...", site.c_str(),
           env.epochs);
  model->train(capped_train(env, data.split.train), data.split.valid,
               train_config(env));
  model->save(path);
  return model;
}

std::unique_ptr<baselines::PassGpt> get_passgpt(const BenchEnv& env,
                                                const std::string& site,
                                                const SiteData& data) {
  auto model = std::make_unique<baselines::PassGpt>(
      env.model_cfg, env.seed ^ hash64("passgpt"));
  const std::string path = checkpoint_path(env, "passgpt", site);
  if (!env.fresh && fs::exists(path)) {
    obs::StageTimer stage("load/passgpt_" + site);
    log_info("bench: loading cached PassGPT %s", path.c_str());
    model->load(path);
    return model;
  }
  obs::StageTimer stage("train/passgpt_" + site);
  log_info("bench: training PassGPT on %s (%d epochs)...", site.c_str(),
           env.epochs);
  model->train(capped_train(env, data.split.train), data.split.valid,
               train_config(env));
  model->save(path);
  return model;
}

std::unique_ptr<baselines::PassGan> get_passgan(const BenchEnv& env,
                                                const SiteData& data) {
  baselines::PassGanConfig cfg;
  cfg.steps = static_cast<int>(250 * std::max(env.scale, 1.0));
  cfg.hidden = 96;
  auto model =
      std::make_unique<baselines::PassGan>(cfg, env.seed ^ hash64("passgan"));
  const std::string path = checkpoint_path(env, "passgan", data.corpus.name);
  if (!env.fresh && fs::exists(path)) {
    obs::StageTimer stage("load/passgan_" + data.corpus.name);
    log_info("bench: loading cached PassGAN %s", path.c_str());
    model->load(path);
    return model;
  }
  obs::StageTimer stage("train/passgan_" + data.corpus.name);
  log_info("bench: training PassGAN (%d generator steps)...", cfg.steps);
  model->train(capped_train(env, data.split.train));
  model->save(path);
  return model;
}

std::unique_ptr<baselines::VaePass> get_vaepass(const BenchEnv& env,
                                                const SiteData& data) {
  baselines::VaePassConfig cfg;
  cfg.epochs = std::max(2, env.epochs / 3);
  auto model =
      std::make_unique<baselines::VaePass>(cfg, env.seed ^ hash64("vaepass"));
  const std::string path = checkpoint_path(env, "vaepass", data.corpus.name);
  if (!env.fresh && fs::exists(path)) {
    obs::StageTimer stage("load/vaepass_" + data.corpus.name);
    log_info("bench: loading cached VAEPass %s", path.c_str());
    model->load(path);
    return model;
  }
  obs::StageTimer stage("train/vaepass_" + data.corpus.name);
  log_info("bench: training VAEPass (%d epochs)...", cfg.epochs);
  model->train(capped_train(env, data.split.train));
  model->save(path);
  return model;
}

std::unique_ptr<baselines::PassFlow> get_passflow(const BenchEnv& env,
                                                  const SiteData& data) {
  baselines::PassFlowConfig cfg;
  cfg.epochs = std::max(2, env.epochs / 3);
  auto model =
      std::make_unique<baselines::PassFlow>(cfg, env.seed ^ hash64("passflow"));
  const std::string path = checkpoint_path(env, "passflow", data.corpus.name);
  if (!env.fresh && fs::exists(path)) {
    obs::StageTimer stage("load/passflow_" + data.corpus.name);
    log_info("bench: loading cached PassFlow %s", path.c_str());
    model->load(path);
    return model;
  }
  obs::StageTimer stage("train/passflow_" + data.corpus.name);
  log_info("bench: training PassFlow (%d epochs)...", cfg.epochs);
  model->train(capped_train(env, data.split.train));
  model->save(path);
  return model;
}

namespace {

constexpr std::size_t kChunk = 2000;

std::string sweep_path(const BenchEnv& env) {
  std::ostringstream os;
  os << env.cache_dir << "/sweep_d" << env.model_cfg.d_model << "_e"
     << env.epochs << "_s" << env.scale << "_c" << env.train_cap << "_seed"
     << env.seed << ".tsv";
  return os.str();
}

void save_sweep(const std::string& path, const SweepResult& sweep) {
  std::ofstream out(path);
  out << "# test_size=" << sweep.test_size << "\n";
  out << "model\tbudget\tguesses\tunique\thits\thit_rate\trepeat_rate\t"
         "length_distance\tpattern_distance\n";
  for (const auto& [model, curve] : sweep.curves) {
    for (std::size_t i = 0; i < curve.size(); ++i) {
      const auto& p = curve[i];
      out << model << '\t' << sweep.ladder[i] << '\t' << p.guesses << '\t'
          << p.unique << '\t' << p.hits << '\t' << p.hit_rate << '\t'
          << p.repeat_rate << '\t' << p.length_distance << '\t'
          << p.pattern_distance << "\n";
    }
  }
}

bool load_sweep(const std::string& path, const BenchEnv& env,
                SweepResult& sweep) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line.rfind("# test_size=", 0) != 0)
    return false;
  sweep.test_size = std::stoull(line.substr(12));
  std::getline(in, line);  // header
  sweep.ladder = env.ladder();
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string model;
    std::uint64_t budget;
    eval::CurvePoint p;
    ls >> model >> budget >> p.guesses >> p.unique >> p.hits >> p.hit_rate >>
        p.repeat_rate >> p.length_distance >> p.pattern_distance;
    if (!ls) return false;
    sweep.curves[model].push_back(p);
  }
  return !sweep.curves.empty();
}

}  // namespace

SweepResult trawling_sweep(const BenchEnv& env) {
  obs::StageTimer sweep_stage("sweep/trawling");
  SweepResult sweep;
  const std::string path = sweep_path(env);
  if (!env.fresh && load_sweep(path, env, sweep)) {
    log_info("bench: loaded cached trawling sweep %s", path.c_str());
    return sweep;
  }
  sweep = SweepResult{};
  sweep.ladder = env.ladder();

  const SiteData site = load_site(env, data::rockyou_profile());
  const eval::TestSet test(site.split.test);
  sweep.test_size = test.size();
  log_info("bench: trawling sweep on %zu train / %zu test passwords",
           site.split.train.size(), test.size());

  const auto pag = get_pagpassgpt(env, "rockyou", site);
  const auto passgpt = get_passgpt(env, "rockyou", site);
  const auto gan = get_passgan(env, site);
  const auto vae = get_vaepass(env, site);
  const auto flow = get_passflow(env, site);

  std::vector<eval::NamedGenerator> generators;
  generators.push_back(
      {"PassGAN", [&](std::size_t n, Rng& rng) { return gan->generate(n, rng); }});
  generators.push_back(
      {"VAEPass", [&](std::size_t n, Rng& rng) { return vae->generate(n, rng); }});
  generators.push_back({"PassFlow", [&](std::size_t n, Rng& rng) {
                          return flow->generate(n, rng);
                        }});
  generators.push_back({"PassGPT", [&](std::size_t n, Rng& rng) {
                          gpt::SampleOptions opts;
                          opts.batch_size = 128;
                          return passgpt->generate(n, rng, opts);
                        }});
  generators.push_back({"PagPassGPT", [&](std::size_t n, Rng& rng) {
                          gpt::SampleOptions opts;
                          opts.batch_size = 128;
                          return pag->generate_free(n, rng, opts);
                        }});

  for (const auto& gen : generators) {
    log_info("bench: sweeping %s...", gen.name.c_str());
    obs::StageTimer stage("generate/" + gen.name);
    Rng rng(env.seed, "sweep-" + gen.name);
    eval::GuessCurve curve(test);
    Curve points;
    std::uint64_t fed = 0;
    eval::run_guess_ladder(
        gen, sweep.ladder, kChunk, rng,
        [&](const std::vector<std::string>& chunk) {
          curve.feed(chunk);
          fed += chunk.size();
        },
        [&](std::uint64_t) { points.push_back(curve.snapshot()); });
    stage.set_items(double(fed));
    sweep.curves[gen.name] = std::move(points);
  }

  // PagPassGPT-D&C: task allocation depends on the total budget, so each
  // ladder point is an independent run (as in the paper).
  {
    obs::StageTimer stage("generate/PagPassGPT-D&C");
    std::uint64_t generated = 0;
    Curve points;
    for (const std::uint64_t budget : sweep.ladder) {
      log_info("bench: D&C-GEN run at budget %" PRIu64 "...", budget);
      core::DcGenConfig cfg;
      cfg.total = double(budget);
      cfg.threshold = std::max(64.0, double(budget) / 1024.0);
      cfg.sample.batch_size = 128;
      const auto guesses =
          core::dc_generate(pag->model(), pag->patterns(), cfg,
                            env.seed ^ hash64("sweep-dc"));
      generated += guesses.size();
      eval::GuessCurve curve(test);
      curve.feed(guesses);
      points.push_back(curve.snapshot());
    }
    stage.set_items(double(generated));
    sweep.curves["PagPassGPT-D&C"] = std::move(points);
  }

  save_sweep(path, sweep);
  log_info("bench: sweep cached at %s", path.c_str());
  return sweep;
}

void print_preamble(const BenchEnv& env, const std::string& what) {
  std::printf("%s\n", what.c_str());
  std::printf(
      "substrate: synthetic leaked-corpus generator (see DESIGN.md §1); "
      "scale=%.3g seed=%" PRIu64 " epochs=%d model=d%lld/l%lld\n",
      env.scale, env.seed, env.epochs,
      static_cast<long long>(env.model_cfg.d_model),
      static_cast<long long>(env.model_cfg.n_layers));
}

}  // namespace ppg::bench
