// Cross-site password audit (paper §IV-E, defensive reading): given a model
// trained on one site's public leak, estimate how exposed ANOTHER site's
// users are to a trawling attacker with that model — the measurement a
// security team would run to argue for stronger password policies.
//
// Usage: ./examples/cross_site_audit [--train-site=rockyou]
//        [--audit-site=phpbb] [--budget=20000] [--epochs=8] [--seed=7]
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "core/dcgen.h"
#include "core/pagpassgpt.h"
#include "data/corpus.h"
#include "eval/metrics.h"

using namespace ppg;

namespace {
data::SiteProfile profile_by_name(const std::string& name) {
  if (name == "rockyou") return data::rockyou_profile();
  if (name == "linkedin") return data::linkedin_profile();
  if (name == "phpbb") return data::phpbb_profile();
  if (name == "myspace") return data::myspace_profile();
  if (name == "yahoo") return data::yahoo_profile();
  throw std::invalid_argument("unknown site: " + name);
}
}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv,
                {"train-site", "audit-site", "budget", "epochs", "seed"});
  const std::string train_site = cli.get("train-site", "rockyou");
  const std::string audit_site = cli.get("audit-site", "phpbb");
  const auto budget = static_cast<std::size_t>(cli.get_int("budget", 20000));
  const int epochs = static_cast<int>(cli.get_int("epochs", 8));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // Attacker knowledge: the training site's leak (scaled).
  auto train_profile = profile_by_name(train_site);
  train_profile.unique_target =
      std::min<std::size_t>(train_profile.unique_target / 20, 8000);
  const auto train_corpus =
      data::clean(data::generate_site(train_profile, seed));
  const auto split = data::split_712(train_corpus.passwords, seed);

  // Audited population: the other site's full (scaled) corpus.
  auto audit_profile = profile_by_name(audit_site);
  audit_profile.unique_target =
      std::min<std::size_t>(audit_profile.unique_target / 20, 6000);
  const auto audit_corpus =
      data::clean(data::generate_site(audit_profile, seed));
  const eval::TestSet audited(audit_corpus.passwords);

  std::printf("attacker model: PagPassGPT trained on %s (%zu passwords)\n",
              train_site.c_str(), split.train.size());
  std::printf("audited population: %s (%zu unique passwords)\n",
              audit_site.c_str(), audited.size());

  core::PagPassGPT model(gpt::Config::small(), seed);
  gpt::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 64;
  train_cfg.lr = 2e-3f;
  model.train(split.train, split.valid, train_cfg);

  core::DcGenConfig dc_cfg;
  dc_cfg.total = double(budget);
  dc_cfg.threshold = 64;
  dc_cfg.sample.batch_size = 128;
  const auto guesses =
      core::dc_generate(model.model(), model.patterns(), dc_cfg, seed);

  eval::GuessCurve curve(audited);
  curve.feed(guesses);
  const auto p = curve.snapshot();
  std::printf("\nwith %llu guesses the attacker cracks %llu accounts "
              "(%.2f%% of the audited site)\n",
              static_cast<unsigned long long>(p.guesses),
              static_cast<unsigned long long>(p.hits), p.hit_rate * 100.0);
  std::printf("audit verdict: %s\n",
              p.hit_rate > 0.02
                  ? "password reuse across sites leaves this population "
                    "meaningfully exposed; enforce blocklists of common "
                    "patterns"
                  : "cross-site exposure is modest at this budget");
  return 0;
}
