// Pattern-guided guessing scenario (paper Fig. 1): an attacker knows a
// site's password-composition policy (or a victim's habit) as a PCFG
// pattern and wants guesses of exactly that shape.
//
// Compares the two published mechanisms on user-chosen patterns:
//  * PassGPT-style token filtering (mask the sampler), and
//  * PagPassGPT-style conditioning (pattern as prefix context).
//
// Usage: ./examples/pattern_guided_attack --pattern=L6N2 [--guesses=3000]
//        [--epochs=8] [--corpus=5000] [--seed=7]
#include <cstdio>
#include <stdexcept>

#include "baselines/passgpt.h"
#include "common/cli.h"
#include "core/pagpassgpt.h"
#include "data/corpus.h"
#include "eval/metrics.h"

using namespace ppg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv, {"pattern", "guesses", "epochs", "corpus", "seed"});
  const std::string pattern_str = cli.get("pattern", "L6N2");
  const auto guesses = static_cast<std::size_t>(cli.get_int("guesses", 3000));
  const int epochs = static_cast<int>(cli.get_int("epochs", 8));
  const auto corpus_size =
      static_cast<std::size_t>(cli.get_int("corpus", 5000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  const auto pattern = pcfg::parse_pattern(pattern_str);
  if (!pattern) {
    std::fprintf(stderr, "unparseable pattern: %s (use e.g. L6N2, L5S1N2)\n",
                 pattern_str.c_str());
    return 1;
  }

  data::SiteProfile profile;
  profile.name = "pattern-attack";
  profile.unique_target = corpus_size;
  const auto cleaned = data::clean(data::generate_site(profile, seed));
  const auto split = data::split_712(cleaned.passwords, seed);
  const eval::TestSet test(split.test);
  std::printf("pattern %s: %zu matching passwords in the %zu-password test "
              "set\n",
              pattern_str.c_str(), test.count_with_pattern(pattern_str),
              test.size());

  gpt::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 64;
  train_cfg.lr = 2e-3f;

  std::printf("training PagPassGPT...\n");
  core::PagPassGPT pag(gpt::Config::small(), seed);
  pag.train(split.train, split.valid, train_cfg);
  std::printf("training PassGPT baseline...\n");
  baselines::PassGpt passgpt(gpt::Config::small(), seed + 1);
  passgpt.train(split.train, split.valid, train_cfg);

  gpt::SampleOptions opts;
  opts.batch_size = 128;
  Rng r1(seed, "attack-pag");
  Rng r2(seed, "attack-gpt");
  const auto pag_guesses =
      pag.generate_with_pattern(*pattern, guesses, r1, opts, true);
  const auto gpt_guesses =
      passgpt.generate_with_pattern(*pattern, guesses, r2, opts);

  const double pag_hr = eval::pattern_hit_rate(pag_guesses, test, pattern_str);
  const double gpt_hr = eval::pattern_hit_rate(gpt_guesses, test, pattern_str);
  std::printf("\n%-28s %8s %10s %10s\n", "model", "guesses", "HR_P",
              "repeat");
  std::printf("%-28s %8zu %9.2f%% %9.2f%%\n", "PassGPT (filtering)",
              gpt_guesses.size(), gpt_hr * 100.0,
              eval::repeat_rate(gpt_guesses) * 100.0);
  std::printf("%-28s %8zu %9.2f%% %9.2f%%\n", "PagPassGPT (conditioning)",
              pag_guesses.size(), pag_hr * 100.0,
              eval::repeat_rate(pag_guesses) * 100.0);

  std::printf("\nsample guesses (PagPassGPT):");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, pag_guesses.size()); ++i)
    std::printf(" %s", pag_guesses[i].c_str());
  std::printf("\nsample guesses (PassGPT):   ");
  for (std::size_t i = 0; i < std::min<std::size_t>(8, gpt_guesses.size()); ++i)
    std::printf(" %s", gpt_guesses[i].c_str());
  std::printf("\n");
  return 0;
}
