// Defensive use of the guessing substrate: a password strength meter.
//
// Trains the classic probabilistic models (PCFG and Markov) on a synthetic
// leak and uses Monte-Carlo guess-number estimation (Dell'Amico &
// Filippone) to report how many guesses a trawling attacker would need per
// password — the measurement behind "ban passwords crackable within 10^14
// guesses" policies (paper §III-A threat budget).
//
// Usage: ./examples/password_strength [--passwords=love12,Tr0ub4dor&3]
//        [--corpus=8000] [--samples=20000] [--seed=7]
#include <cstdio>
#include <sstream>

#include "baselines/markov.h"
#include "common/cli.h"
#include "data/corpus.h"
#include "eval/strength.h"
#include "pcfg/pcfg_model.h"

using namespace ppg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv, {"passwords", "corpus", "samples", "seed"});
  const auto corpus_size =
      static_cast<std::size_t>(cli.get_int("corpus", 8000));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples", 20000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  std::vector<std::string> targets;
  {
    std::stringstream ss(cli.get(
        "passwords",
        "123456,love12,monkey99,Tiger2008,xK9#mQ2$vL,correcthorse"));
    std::string item;
    while (std::getline(ss, item, ','))
      if (!item.empty()) targets.push_back(item);
  }

  data::SiteProfile profile;
  profile.name = "strength";
  profile.unique_target = corpus_size;
  const auto cleaned = data::clean(data::generate_site(profile, seed));
  std::printf("training PCFG and Markov models on %zu passwords...\n",
              cleaned.passwords.size());

  pcfg::PcfgModel pcfg_model;
  pcfg_model.train(cleaned.passwords);
  baselines::MarkovModel markov(3);
  markov.train(cleaned.passwords);

  Rng rng(seed, "strength-mc");
  const eval::StrengthEstimator pcfg_meter(
      [&](Rng& r) { return pcfg_model.sample(r); },
      [&](std::string_view pw) { return pcfg_model.log_prob(pw); }, samples,
      rng);
  const eval::StrengthEstimator markov_meter(
      [&](Rng& r) { return markov.sample(r); },
      [&](std::string_view pw) { return markov.log_prob(pw); }, samples, rng);

  std::printf("\n%-16s %14s %14s  %s\n", "password", "PCFG guesses",
              "Markov guesses", "verdict (weakest model)");
  for (const auto& pw : targets) {
    const double g1 = pcfg_meter.guess_number(pw);
    const double g2 = markov_meter.guess_number(pw);
    // A password is only as strong as its weakest model's estimate.
    const double weakest = std::min(g1, g2);
    std::printf("%-16s %14.3g %14.3g  %s\n", pw.c_str(), g1, g2,
                eval::StrengthEstimator::band(weakest).c_str());
  }
  std::printf(
      "\nNote: estimates are relative to models trained on the synthetic "
      "corpus; a real deployment would train on real leaks.\n");
  return 0;
}
