// Trawling-attack scenario (paper §IV-D): a bulk guessing campaign against
// a large user population, where duplicate guesses are pure waste.
//
// Runs the same trained PagPassGPT with and without D&C-GEN at several
// budgets and reports hit rate and repeat rate — the paper's Table IV /
// Fig. 10 story in one binary.
//
// Usage: ./examples/trawling_attack [--budget=20000] [--epochs=8]
//        [--corpus=6000] [--threshold=64] [--seed=7]
#include <cstdio>

#include "common/cli.h"
#include "core/dcgen.h"
#include "core/pagpassgpt.h"
#include "data/corpus.h"
#include "eval/metrics.h"

using namespace ppg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv,
                {"budget", "epochs", "corpus", "threshold", "seed"});
  const auto budget = static_cast<std::size_t>(cli.get_int("budget", 20000));
  const int epochs = static_cast<int>(cli.get_int("epochs", 8));
  const auto corpus_size =
      static_cast<std::size_t>(cli.get_int("corpus", 6000));
  const double threshold = cli.get_double("threshold", 64.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  data::SiteProfile profile;
  profile.name = "trawling";
  profile.unique_target = corpus_size;
  const auto cleaned = data::clean(data::generate_site(profile, seed));
  const auto split = data::split_712(cleaned.passwords, seed);
  const eval::TestSet test(split.test);

  core::PagPassGPT model(gpt::Config::small(), seed);
  gpt::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 64;
  train_cfg.lr = 2e-3f;
  std::printf("training PagPassGPT on %zu passwords...\n",
              split.train.size());
  model.train(split.train, split.valid, train_cfg);

  std::printf("\n%-22s %10s %10s %10s %10s\n", "generator", "budget",
              "unique", "hit rate", "repeat");
  for (const std::size_t b : {budget / 4, budget}) {
    // Plain auto-regressive sampling from <BOS>.
    Rng rng(seed, "trawl-free-" + std::to_string(b));
    gpt::SampleOptions opts;
    opts.batch_size = 128;
    const auto free_guesses = model.generate_free(b, rng, opts);
    eval::GuessCurve free_curve(test);
    free_curve.feed(free_guesses);
    const auto fp = free_curve.snapshot();
    std::printf("%-22s %10zu %10llu %9.2f%% %9.2f%%\n", "PagPassGPT",
                free_guesses.size(),
                static_cast<unsigned long long>(fp.unique),
                fp.hit_rate * 100.0, fp.repeat_rate * 100.0);

    // D&C-GEN at the same budget.
    core::DcGenConfig dc_cfg;
    dc_cfg.total = double(b);
    dc_cfg.threshold = threshold;
    dc_cfg.sample.batch_size = 128;
    core::DcGenStats stats;
    const auto dc_guesses = core::dc_generate(model.model(), model.patterns(),
                                              dc_cfg, seed, &stats);
    eval::GuessCurve dc_curve(test);
    dc_curve.feed(dc_guesses);
    const auto dp = dc_curve.snapshot();
    std::printf("%-22s %10zu %10llu %9.2f%% %9.2f%%   (divisions=%zu "
                "leaves=%zu)\n",
                "PagPassGPT-D&C", dc_guesses.size(),
                static_cast<unsigned long long>(dp.unique),
                dp.hit_rate * 100.0, dp.repeat_rate * 100.0, stats.divisions,
                stats.leaves);
  }
  std::printf("\nD&C-GEN should match or beat the hit rate while cutting the "
              "repeat rate — the paper's headline result.\n");
  return 0;
}
