// Quickstart: the smallest end-to-end use of the library.
//
//   1. synthesise a leaked corpus and clean it (data::),
//   2. train a small PagPassGPT on it (core::),
//   3. generate passwords three ways: pattern-guided, free-running, and
//      with D&C-GEN (core::dc_generate),
//   4. score them against the held-out test set (eval::).
//
// Build & run:  ./examples/quickstart [--epochs=8] [--corpus=4000]
#include <cstdio>

#include "common/cli.h"
#include "core/dcgen.h"
#include "core/pagpassgpt.h"
#include "data/corpus.h"
#include "eval/metrics.h"

using namespace ppg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv, {"epochs", "corpus", "seed"});
  const int epochs = static_cast<int>(cli.get_int("epochs", 8));
  const auto corpus_size =
      static_cast<std::size_t>(cli.get_int("corpus", 4000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // 1. Data: a synthetic "leak", cleaned per the paper's rules, split 7:1:2.
  data::SiteProfile profile;
  profile.name = "quickstart";
  profile.unique_target = corpus_size;
  const auto cleaned = data::clean(data::generate_site(profile, seed));
  std::printf("corpus: %zu raw unique -> %zu cleaned (retention %.1f%%)\n",
              cleaned.stats.unique_raw, cleaned.stats.cleaned,
              cleaned.stats.retention() * 100.0);
  const auto split = data::split_712(cleaned.passwords, seed);

  // 2. Train PagPassGPT (pattern-conditioned GPT).
  core::PagPassGPT model(gpt::Config::small(), seed);
  gpt::TrainConfig train_cfg;
  train_cfg.epochs = epochs;
  train_cfg.batch_size = 64;
  train_cfg.lr = 2e-3f;
  std::printf("training PagPassGPT (%d epochs on %zu passwords)...\n", epochs,
              split.train.size());
  const auto report = model.train(split.train, split.valid, train_cfg);
  std::printf("train loss %.3f -> %.3f, valid NLL %.3f\n",
              report.epoch_loss.front(), report.epoch_loss.back(),
              report.valid_nll.back());

  // 3a. Pattern-guided generation: "give me passwords shaped L5N2".
  Rng rng(seed, "quickstart-gen");
  const auto pattern = *pcfg::parse_pattern("L5N2");
  const auto guided = model.generate_with_pattern(pattern, 10, rng, {}, true);
  std::printf("\npattern-guided (L5N2):");
  for (const auto& pw : guided) std::printf(" %s", pw.c_str());
  std::printf("\n");

  // 3b. Free-running trawling generation from <BOS>.
  const auto free_run = model.generate_free(10, rng);
  std::printf("free-running:        ");
  for (const auto& pw : free_run) std::printf(" %s", pw.c_str());
  std::printf("\n");

  // 3c. D&C-GEN: low-duplicate bulk generation.
  core::DcGenConfig dc_cfg;
  dc_cfg.total = 2000;
  dc_cfg.threshold = 64;
  const auto bulk = core::dc_generate(model.model(), model.patterns(), dc_cfg,
                                      seed);

  // 4. Evaluate.
  const eval::TestSet test(split.test);
  std::printf("\nD&C-GEN bulk run: %zu guesses, repeat rate %.2f%%, hit rate "
              "%.2f%% against %zu held-out passwords\n",
              bulk.size(), eval::repeat_rate(bulk) * 100.0,
              eval::hit_rate(bulk, test) * 100.0, test.size());
  return 0;
}
