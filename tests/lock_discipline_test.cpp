// Regression tests for the copy-then-write lock discipline (DESIGN.md
// §14): the bench-trajectory and run-report write paths must never hold
// their recorder's lock across file IO. Each test constructs a writer that
// is observably stuck mid-write (a delay failpoint, a FIFO with no reader)
// and proves concurrent mutation of the recorder still completes — if the
// lock were held across the write, the mutation would block until the
// writer finished and the "writer still busy" assertion would fail (or,
// for the FIFO, the test would deadlock into the ctest timeout).
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>

#include "common/failpoint.h"
#include "obs/bench_track.h"
#include "obs/run_report.h"

namespace ppg {
namespace {

constexpr char kFlushFp[] = "lock_discipline.flush.write";

TEST(LockDiscipline, TrackRecorderFlushWritesOutsideLock) {
  failpoint::reset();
  obs::TrackRecorder rec;
  rec.set("tracked", 1.0);
  rec.set("base", 9.0);  // recorded value must win over base_metrics

  // The writer parks on a delay failpoint; while it sleeps, set() must go
  // straight through (flush released the lock before invoking the writer).
  failpoint::activate(kFlushFp, failpoint::Action::kDelay, 1, 400);
  std::atomic<bool> writer_done{false};
  obs::BenchRecord seen;
  bool flushed = false;
  std::thread flusher([&] {
    flushed = rec.flush(
        "bench_lock_discipline", {{"k", "v"}}, {{"base", 2.0}},
        [&](const obs::BenchRecord& r) {
          PPG_FAILPOINT(kFlushFp);
          seen = r;
          return true;
        });
    writer_done = true;
  });
  while (failpoint::hits(kFlushFp) == 0) std::this_thread::yield();
  rec.set("concurrent", 3.0);
  // set() returned while the writer was still inside its delay: the flush
  // lock was not held across the write.
  EXPECT_FALSE(writer_done.load());
  flusher.join();
  failpoint::reset();

  EXPECT_TRUE(flushed);
  EXPECT_TRUE(writer_done.load());
  ASSERT_EQ(seen.metrics.count("tracked"), 1u);
  EXPECT_EQ(seen.metrics.at("tracked"), 1.0);
  EXPECT_EQ(seen.metrics.at("base"), 9.0);   // recorded-over-base merge
  EXPECT_EQ(seen.metrics.count("concurrent"), 0u);  // set() after snapshot
  EXPECT_EQ(seen.config.at("k"), "v");
  EXPECT_EQ(rec.snapshot().at("concurrent"), 3.0);
}

TEST(LockDiscipline, TrackRecorderWriterMayReenterRecorder) {
  obs::TrackRecorder rec;
  rec.set("a", 1.0);
  // A writer that calls back into the recorder deadlocks on the spot if
  // flush still held the (non-recursive) lock.
  const bool ok = rec.flush("bench_reentrant", {}, {},
                            [&](const obs::BenchRecord&) {
                              rec.set("reentrant", 2.0);
                              return true;
                            });
  EXPECT_TRUE(ok);
  EXPECT_EQ(rec.snapshot().at("reentrant"), 2.0);
}

TEST(LockDiscipline, TrackRecorderFlushSkipsEmptyWithoutWriting) {
  obs::TrackRecorder rec;
  bool called = false;
  std::string error;
  EXPECT_FALSE(rec.flush("bench_empty", {}, {},
                         [&](const obs::BenchRecord&) {
                           called = true;
                           return true;
                         },
                         &error));
  EXPECT_FALSE(called);
  EXPECT_FALSE(error.empty());
}

TEST(LockDiscipline, RunReportWriteDoesNotHoldLockAcrossIO) {
  const std::string fifo = ::testing::TempDir() + "lock_discipline_fifo_" +
                           std::to_string(::getpid()) + ".json";
  ::unlink(fifo.c_str());
  ASSERT_EQ(0, ::mkfifo(fifo.c_str(), 0600));

  obs::RunReport report;
  report.set_name("fifo_report");
  report.add_config("before", std::string("1"));

  // write() blocks opening the FIFO until a reader appears. If it held
  // mu_ across that open, add_config below would block forever (no reader
  // is opened until after add_config) — a deadlock the ctest timeout
  // converts into a failure.
  std::atomic<bool> writer_done{false};
  bool wrote = false;
  std::thread writer([&] {
    wrote = report.write(fifo);
    writer_done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  report.add_config("during", std::string("2"));
  EXPECT_FALSE(writer_done.load());  // still parked in open(), lock free

  std::ifstream in(fifo);
  const std::string body((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  writer.join();
  EXPECT_TRUE(wrote);
  EXPECT_NE(body.find("\"fifo_report\""), std::string::npos);
  ::unlink(fifo.c_str());
}

}  // namespace
}  // namespace ppg
