#include "nn/layers.h"

#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace ppg::nn {
namespace {

TEST(ParamList, RegistersInOrderAndCounts) {
  ParamList params;
  Rng rng(1);
  nn::Linear l1(params, "a", 3, 4, rng);
  nn::LayerNorm ln(params, "b", 4);
  nn::Embedding emb(params, "c", 5, 4, rng);
  ASSERT_EQ(params.items().size(), 5u);
  EXPECT_EQ(params.items()[0].name, "a.weight");
  EXPECT_EQ(params.items()[1].name, "a.bias");
  EXPECT_EQ(params.items()[2].name, "b.gain");
  EXPECT_EQ(params.items()[3].name, "b.bias");
  EXPECT_EQ(params.items()[4].name, "c.table");
  EXPECT_EQ(params.count(), 3u * 4 + 4 + 4 + 4 + 5 * 4);
}

TEST(ParamList, ZeroGradClearsEverything) {
  ParamList params;
  Rng rng(2);
  nn::Linear l(params, "l", 2, 2, rng);
  l.weight().grad()[0] = 5.f;
  l.bias().grad()[1] = -1.f;
  params.zero_grad();
  EXPECT_EQ(l.weight().grad()[0], 0.f);
  EXPECT_EQ(l.bias().grad()[1], 0.f);
}

TEST(ParamList, ClipGradNormScalesDown) {
  ParamList params;
  Tensor t({4});
  params.add("t", t);
  t.grad()[0] = 3.f;
  t.grad()[1] = 4.f;  // norm 5
  const double norm = params.clip_grad_norm(1.0);
  EXPECT_NEAR(norm, 5.0, 1e-6);
  EXPECT_NEAR(t.grad()[0], 0.6f, 1e-6f);
  EXPECT_NEAR(t.grad()[1], 0.8f, 1e-6f);
}

TEST(ParamList, ClipGradNormLeavesSmallGradients) {
  ParamList params;
  Tensor t({2});
  params.add("t", t);
  t.grad()[0] = 0.3f;
  params.clip_grad_norm(1.0);
  EXPECT_FLOAT_EQ(t.grad()[0], 0.3f);
}

TEST(ParamList, SaveLoadRoundTrip) {
  ParamList a;
  Rng rng(3);
  nn::Linear la(a, "l", 3, 3, rng);
  std::stringstream ss;
  BinaryWriter w(ss);
  a.save(w);

  ParamList b;
  Rng rng2(99);  // different init
  nn::Linear lb(b, "l", 3, 3, rng2);
  BinaryReader r(ss);
  b.load(r);
  for (std::size_t i = 0; i < a.items().size(); ++i) {
    const auto da = a.items()[i].tensor.data();
    const auto db = b.items()[i].tensor.data();
    for (std::size_t j = 0; j < da.size(); ++j) EXPECT_EQ(da[j], db[j]);
  }
}

TEST(ParamList, LoadRejectsLayoutMismatch) {
  ParamList a;
  Rng rng(4);
  nn::Linear la(a, "x", 2, 2, rng);
  std::stringstream ss;
  BinaryWriter w(ss);
  a.save(w);

  ParamList b;
  nn::Linear lb(b, "y", 2, 2, rng);  // different name
  BinaryReader r(ss);
  EXPECT_THROW(b.load(r), std::runtime_error);
}

TEST(Linear, ForwardMatchesManual) {
  ParamList params;
  Rng rng(5);
  nn::Linear l(params, "l", 2, 2, rng);
  l.weight().fill(0.f);
  l.weight().at(0, 0) = 2.f;
  l.weight().at(1, 1) = 3.f;
  l.bias().at(0) = 1.f;
  Graph g;
  const Tensor x = Tensor::from({1, 2}, {4.f, 5.f});
  const Tensor y = l.forward(g, x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 9.f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 15.f);
}

TEST(LayerNorm, InitialisedToIdentityAffine) {
  ParamList params;
  nn::LayerNorm ln(params, "ln", 4);
  for (const float v : ln.gain().data()) EXPECT_EQ(v, 1.f);
  for (const float v : ln.bias().data()) EXPECT_EQ(v, 0.f);
}

TEST(Embedding, ForwardGathers) {
  ParamList params;
  Rng rng(6);
  nn::Embedding emb(params, "e", 4, 3, rng);
  Graph g;
  const Tensor out = emb.forward(g, {2, 2, 1});
  for (Index j = 0; j < 3; ++j) {
    EXPECT_EQ(out.at(0, j), emb.table().at(2, j));
    EXPECT_EQ(out.at(1, j), emb.table().at(2, j));
    EXPECT_EQ(out.at(2, j), emb.table().at(1, j));
  }
}

}  // namespace
}  // namespace ppg::nn
