#include "eval/generator.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace ppg::eval {
namespace {

TEST(RunGuessLadder, HitsEveryCheckpointExactly) {
  NamedGenerator gen{"counter", [](std::size_t n, Rng&) {
                       return std::vector<std::string>(n, "x");
                     }};
  Rng rng(1);
  std::vector<std::uint64_t> checkpoints;
  std::uint64_t fed = 0;
  run_guess_ladder(
      gen, {10, 100, 250}, 32, rng,
      [&](const std::vector<std::string>& chunk) { fed += chunk.size(); },
      [&](std::uint64_t b) { checkpoints.push_back(b); });
  EXPECT_EQ(checkpoints, (std::vector<std::uint64_t>{10, 100, 250}));
  EXPECT_EQ(fed, 250u);
}

TEST(RunGuessLadder, ChunksNeverOvershootBudget) {
  NamedGenerator gen{"exact", [](std::size_t n, Rng&) {
                       return std::vector<std::string>(n, "y");
                     }};
  Rng rng(2);
  std::uint64_t at_first_checkpoint = 0;
  std::uint64_t fed = 0;
  bool first = true;
  run_guess_ladder(
      gen, {7, 20}, 1000, rng,
      [&](const std::vector<std::string>& chunk) { fed += chunk.size(); },
      [&](std::uint64_t) {
        if (first) {
          at_first_checkpoint = fed;
          first = false;
        }
      });
  EXPECT_EQ(at_first_checkpoint, 7u);
  EXPECT_EQ(fed, 20u);
}

TEST(RunGuessLadder, PadsWhenGeneratorGivesUp) {
  // A generator that produces nothing: the ladder must still terminate and
  // account full budgets (with empty-string filler guesses).
  NamedGenerator gen{"dead", [](std::size_t, Rng&) {
                       return std::vector<std::string>{};
                     }};
  Rng rng(3);
  std::uint64_t fed = 0, empties = 0;
  run_guess_ladder(
      gen, {50}, 16, rng,
      [&](const std::vector<std::string>& chunk) {
        fed += chunk.size();
        for (const auto& g : chunk)
          if (g.empty()) ++empties;
      },
      [&](std::uint64_t) {});
  EXPECT_EQ(fed, 50u);
  EXPECT_EQ(empties, 50u);
}

TEST(RunGuessLadder, FeedsIntoGuessCurveConsistently) {
  const std::vector<std::string> test_pws = {"aa", "bb", "cc"};
  const TestSet test(test_pws);
  GuessCurve curve(test);
  int calls = 0;
  NamedGenerator gen{"cycler", [&](std::size_t n, Rng&) {
                       std::vector<std::string> out;
                       for (std::size_t i = 0; i < n; ++i)
                         out.push_back(test_pws[(calls + i) % 3]);
                       calls += static_cast<int>(n);
                       return out;
                     }};
  Rng rng(4);
  std::vector<CurvePoint> points;
  run_guess_ladder(
      gen, {3, 30}, 2, rng,
      [&](const std::vector<std::string>& chunk) { curve.feed(chunk); },
      [&](std::uint64_t) { points.push_back(curve.snapshot()); });
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].guesses, 3u);
  EXPECT_EQ(points[0].hits, 3u);  // all three test passwords hit already
  EXPECT_EQ(points[1].guesses, 30u);
  EXPECT_DOUBLE_EQ(points[1].hit_rate, 1.0);
  EXPECT_NEAR(points[1].repeat_rate, 0.9, 1e-9);
}

}  // namespace
}  // namespace ppg::eval
