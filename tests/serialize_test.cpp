#include "common/serialize.h"

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/durable_io.h"
#include "gpt/model.h"

namespace ppg {
namespace {

TEST(Serialize, PodRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::int32_t>(-7);
  w.write<double>(3.25);
  w.write<std::uint8_t>(255);
  BinaryReader r(ss);
  EXPECT_EQ(r.read<std::int32_t>(), -7);
  EXPECT_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint8_t>(), 255);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_string("hello\0world");  // embedded NUL is truncated by literal
  w.write_string("");
  w.write_string(std::string("a\0b", 3));
  BinaryReader r(ss);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), std::string("a\0b", 3));
}

TEST(Serialize, VectorRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_vector(std::vector<float>{1.f, -2.f, 0.5f});
  w.write_vector(std::vector<std::int64_t>{});
  BinaryReader r(ss);
  const auto floats = r.read_vector<float>();
  ASSERT_EQ(floats.size(), 3u);
  EXPECT_EQ(floats[1], -2.f);
  EXPECT_TRUE(r.read_vector<std::int64_t>().empty());
}

TEST(Serialize, TruncatedInputThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::int32_t>(1);
  BinaryReader r(ss);
  EXPECT_NO_THROW(r.read<std::int32_t>());
  EXPECT_THROW(r.read<std::int32_t>(), std::runtime_error);
}

TEST(Serialize, TruncatedStringThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::uint64_t>(100);  // claims 100 bytes, provides none
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), std::runtime_error);
}

TEST(Serialize, ImplausibleLengthRejected) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::uint64_t>(1ULL << 40);
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), std::runtime_error);
}

// --- Corrupted-checkpoint behaviour of GptModel::load -----------------------
// Serving loads operator-supplied checkpoint files; every corruption mode
// must produce a descriptive error instead of garbage weights.

class CorruptCheckpoint : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ppg_ckpt_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "model.ckpt").string();
    gpt::GptModel m(gpt::Config::tiny(), 11);
    m.save(path_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<char> read_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void write_bytes(const std::vector<char>& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  /// The checkpoint's parser-visible bytes: the payload with the durable_io
  /// CRC footer stripped.
  std::vector<char> read_payload() const {
    auto bytes = read_bytes();
    EXPECT_GE(bytes.size(), durable::kFooterBytes);
    bytes.resize(bytes.size() - durable::kFooterBytes);
    return bytes;
  }
  /// Writes a payload re-sealed with a freshly computed CRC footer, so the
  /// corruption under test reaches the checkpoint parser instead of being
  /// caught wholesale by the CRC layer.
  void write_sealed(const std::vector<char>& payload) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    const std::uint64_t size = payload.size();
    const std::uint32_t crc = durable::crc32(payload.data(), payload.size());
    const std::uint32_t magic = durable::kFooterMagic;
    out.write(reinterpret_cast<const char*>(&size), sizeof size);
    out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  }
  /// Expects load() to throw a runtime_error whose message contains `needle`.
  void expect_load_error(const std::string& needle) const {
    gpt::GptModel fresh(gpt::Config::tiny(), 12);
    try {
      fresh.load(path_);
      FAIL() << "load() accepted a corrupt checkpoint";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "error was: " << e.what();
      EXPECT_NE(std::string(e.what()).find(path_), std::string::npos)
          << "error lacks the file path: " << e.what();
    }
  }

  std::filesystem::path dir_;
  std::string path_;
};

TEST_F(CorruptCheckpoint, IntactRoundTrip) {
  gpt::GptModel fresh(gpt::Config::tiny(), 12);
  EXPECT_NO_THROW(fresh.load(path_));
}

TEST_F(CorruptCheckpoint, BadMagic) {
  auto payload = read_payload();
  payload[0] ^= 0x5a;
  write_sealed(payload);
  expect_load_error("bad magic");
}

TEST_F(CorruptCheckpoint, UnsupportedVersion) {
  auto payload = read_payload();
  payload[4] = 99;  // version field follows the 4-byte magic
  write_sealed(payload);
  expect_load_error("unsupported checkpoint version 99");
}

TEST_F(CorruptCheckpoint, TruncatedHeader) {
  // A 6-byte file has no CRC footer, so the legacy fallback hands it to
  // the parser — which runs out of bytes reading the header.
  auto bytes = read_bytes();
  bytes.resize(6);
  write_bytes(bytes);
  expect_load_error("truncated");
}

TEST_F(CorruptCheckpoint, TruncatedTensorData) {
  // Truncation with a re-sealed footer (as if a tool rewrote a short copy
  // end-to-end) must still die in the parser, not yield garbage weights.
  auto payload = read_payload();
  payload.resize(payload.size() / 2);
  write_sealed(payload);
  expect_load_error("tensor data");
}

TEST_F(CorruptCheckpoint, TruncatedWithoutFooterStillDiesCleanly) {
  // Shearing the footer off routes the file through the legacy fallback;
  // the parser must still fail with a precise error, not load garbage.
  auto bytes = read_bytes();
  bytes.resize(bytes.size() / 2);
  write_bytes(bytes);
  expect_load_error("truncated");
}

TEST_F(CorruptCheckpoint, CorruptConfigBlock) {
  auto payload = read_payload();
  // vocab is the first Index after magic+version; zero it out.
  for (int i = 8; i < 12; ++i) payload[static_cast<std::size_t>(i)] = 0;
  write_sealed(payload);
  expect_load_error("corrupt config block");
}

TEST_F(CorruptCheckpoint, ConfigMismatch) {
  gpt::GptModel small(gpt::Config::small(), 13);
  try {
    small.load(path_);
    FAIL() << "load() accepted a checkpoint for a different config";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("config mismatch"), std::string::npos)
        << "error was: " << e.what();
  }
}

TEST_F(CorruptCheckpoint, MissingFile) {
  gpt::GptModel fresh(gpt::Config::tiny(), 12);
  EXPECT_THROW(fresh.load((dir_ / "nope.ckpt").string()), std::runtime_error);
}

TEST(Serialize, InterleavedHeterogeneousStream) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::uint32_t>(0xDEADBEEF);
  w.write_string("checkpoint");
  w.write_vector(std::vector<int>{1, 2, 3});
  w.write<float>(1.5f);
  BinaryReader r(ss);
  EXPECT_EQ(r.read<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_string(), "checkpoint");
  EXPECT_EQ(r.read_vector<int>(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(r.read<float>(), 1.5f);
}

}  // namespace
}  // namespace ppg
