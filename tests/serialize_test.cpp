#include "common/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ppg {
namespace {

TEST(Serialize, PodRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::int32_t>(-7);
  w.write<double>(3.25);
  w.write<std::uint8_t>(255);
  BinaryReader r(ss);
  EXPECT_EQ(r.read<std::int32_t>(), -7);
  EXPECT_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint8_t>(), 255);
}

TEST(Serialize, StringRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_string("hello\0world");  // embedded NUL is truncated by literal
  w.write_string("");
  w.write_string(std::string("a\0b", 3));
  BinaryReader r(ss);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), std::string("a\0b", 3));
}

TEST(Serialize, VectorRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write_vector(std::vector<float>{1.f, -2.f, 0.5f});
  w.write_vector(std::vector<std::int64_t>{});
  BinaryReader r(ss);
  const auto floats = r.read_vector<float>();
  ASSERT_EQ(floats.size(), 3u);
  EXPECT_EQ(floats[1], -2.f);
  EXPECT_TRUE(r.read_vector<std::int64_t>().empty());
}

TEST(Serialize, TruncatedInputThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::int32_t>(1);
  BinaryReader r(ss);
  EXPECT_NO_THROW(r.read<std::int32_t>());
  EXPECT_THROW(r.read<std::int32_t>(), std::runtime_error);
}

TEST(Serialize, TruncatedStringThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::uint64_t>(100);  // claims 100 bytes, provides none
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), std::runtime_error);
}

TEST(Serialize, ImplausibleLengthRejected) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::uint64_t>(1ULL << 40);
  BinaryReader r(ss);
  EXPECT_THROW(r.read_string(), std::runtime_error);
}

TEST(Serialize, InterleavedHeterogeneousStream) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.write<std::uint32_t>(0xDEADBEEF);
  w.write_string("checkpoint");
  w.write_vector(std::vector<int>{1, 2, 3});
  w.write<float>(1.5f);
  BinaryReader r(ss);
  EXPECT_EQ(r.read<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_string(), "checkpoint");
  EXPECT_EQ(r.read_vector<int>(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(r.read<float>(), 1.5f);
}

}  // namespace
}  // namespace ppg
