#!/usr/bin/env bash
# End-to-end smoke test for ppg_serve's ordered (best-first) request kind.
#
# Drives one server process with ordered requests over small pattern
# spaces — a plain top-k ask, a deadline-bounded anytime ask, the three
# admission rejects (top_k missing, top_k over cap, negative deadline) —
# and asserts the contract: one response line per input, every log_probs
# array finite and monotone non-increasing (validated by ppg_check_json
# --ordered-ndjson), and the expected terminal status per request id.
#
# Usage: ordered_smoke.sh <ppg_serve-binary> <ppg_check_json-binary>
set -u

serve_bin="$1"
check_json_bin="$2"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

requests="$workdir/requests.ndjson"
responses="$workdir/responses.ndjson"

# N2/N4 keep the search spaces tiny (100 / 10k strings): a random-init
# model is near-uniform, and best-first expands most of a pattern's tree
# before emitting its top-k. The capped request asks for the cap exactly.
cat > "$requests" <<'EOF'
{"op":"guess","id":"o1","kind":"ordered","pattern":"N2","top_k":20}
{"op":"guess","id":"o2","kind":"ordered","pattern":"N4","top_k":5,"deadline_ms":5000}
{"op":"guess","id":"cap","kind":"ordered","pattern":"N2","top_k":64}
{"op":"guess","id":"nok","kind":"ordered","pattern":"N2"}
{"op":"guess","id":"big","kind":"ordered","pattern":"N2","top_k":65}
{"op":"guess","id":"neg","kind":"ordered","pattern":"N2","top_k":2,"deadline_ms":-1}
{"op":"guess","id":"mix","kind":"pattern","pattern":"N6","count":3,"seed":7}
{"op":"shutdown","id":"end"}
EOF

"$serve_bin" --config=tiny --seed=21 --patterns=N2,N4,N6 \
  --max-ordered-top-k=64 \
  < "$requests" > "$responses" 2> "$workdir/stderr.log"
status=$?
if [ "$status" -ne 0 ]; then
  echo "FAIL: ppg_serve exited $status" >&2
  cat "$workdir/stderr.log" >&2
  exit 1
fi

fail=0
check() {
  # check <description> <grep-pattern>
  if ! grep -q "$2" "$responses"; then
    echo "FAIL: $1 (pattern not found: $2)" >&2
    fail=1
  fi
}

lines=$(wc -l < "$responses")
if [ "$lines" -ne 8 ]; then
  echo "FAIL: expected 8 response lines (one per request), got $lines" >&2
  cat "$responses" >&2
  fail=1
fi

# Every log_probs array must be finite and monotone non-increasing, and at
# least one response must carry one.
if ! "$check_json_bin" --ordered-ndjson "$responses" >/dev/null; then
  echo "FAIL: response stream violates the ordered NDJSON contract" >&2
  fail=1
fi

check "plain ordered ask completes"   '"id":"o1","status":"ok"'
check "plain ordered carries scores"  '"id":"o1","status":"ok","passwords":\[[^]]*\],"log_probs":\['
check "deadline ask completes ok"     '"id":"o2","status":"ok"'
check "top_k at cap completes"        '"id":"cap","status":"ok"'
check "missing top_k rejected"        '"id":"nok","status":"rejected","reject":"bad_request"'
check "top_k over cap rejected"       '"id":"big","status":"rejected","reject":"bad_request"'
# Negative deadlines die at the wire parser (like any malformed field), so
# the reject line carries no id — match on the error text instead.
check "negative deadline rejected"    '"status":"rejected".*deadline_ms'
check "sampled request still served"  '"id":"mix","status":"ok"'
check "shutdown acknowledged"         '"id":"end","status":"ok","op":"shutdown"'

# A sampled response must not grow a log_probs field.
if grep '"id":"mix"' "$responses" | grep -q 'log_probs'; then
  echo "FAIL: sampled response carries log_probs" >&2
  fail=1
fi

# o1 asked for the 20 best of 100: exactly 20 scores.
o1_scores=$(grep '"id":"o1"' "$responses" |
  sed 's/.*"log_probs":\[\([^]]*\)\].*/\1/' | awk -F, '{print NF}')
if [ "${o1_scores:-0}" -ne 20 ]; then
  echo "FAIL: o1 expected 20 log_probs, got ${o1_scores:-0}" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "--- responses ---" >&2
  cat "$responses" >&2
  exit 1
fi
echo "ordered_smoke: ok ($lines response lines)"
