// KV-cache test suite (DESIGN.md §10): trie-store properties (refcounts,
// LRU eviction, byte budget), snapshot/resume bitwise equivalence against
// prime()/step(), and the differential determinism suite — dc_generate
// with the cache enabled must be byte-identical to the cache disabled for
// any seed, thread count, and byte budget (including budgets tiny enough
// to evict on every insert).
#include "gpt/kv_cache.h"

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dcgen.h"
#include "gpt/infer.h"
#include "gpt/model.h"
#include "obs/metrics.h"
#include "pcfg/pattern.h"
#include "pcfg/pcfg_model.h"
#include "tokenizer/tokenizer.h"

namespace ppg::gpt {
namespace {

/// A small synthetic KvState with recognisable contents.
KvState make_state(Index len, int layers, Index d, Index vocab, float base) {
  KvState s;
  s.len = len;
  s.k.resize(static_cast<std::size_t>(layers));
  s.v.resize(static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    s.k[static_cast<std::size_t>(l)].assign(
        static_cast<std::size_t>(len * d), base + float(l));
    s.v[static_cast<std::size_t>(l)].assign(
        static_cast<std::size_t>(len * d), base - float(l));
  }
  s.logits.assign(static_cast<std::size_t>(vocab), base * 2.f);
  return s;
}

TEST(KvTrieCache, InsertFindRoundTrip) {
  KvTrieCache cache(std::size_t(1) << 20);
  const std::vector<int> p = {3, 7, 11};
  EXPECT_FALSE(cache.find(p));
  cache.insert(p, make_state(3, 2, 4, 8, 1.f));
  auto h = cache.find(p);
  ASSERT_TRUE(h);
  EXPECT_EQ(h.len(), 3);
  ASSERT_NE(h.state(), nullptr);
  EXPECT_EQ(h.state()->k[0][0], 1.f);
  EXPECT_EQ(h.state()->v[1][0], 0.f);
  EXPECT_EQ(cache.nodes(), 1u);
  EXPECT_EQ(cache.bytes(), h.state()->bytes());
}

TEST(KvTrieCache, FindLongestReturnsDeepestAncestor) {
  KvTrieCache cache(std::size_t(1) << 20);
  cache.insert(std::vector<int>{1}, make_state(1, 1, 2, 4, 1.f));
  cache.insert(std::vector<int>{1, 2, 3}, make_state(3, 1, 2, 4, 3.f));
  const std::vector<int> query = {1, 2, 3, 4, 5};
  auto h = cache.find_longest(query);
  ASSERT_TRUE(h);
  EXPECT_EQ(h.len(), 3);
  EXPECT_EQ(h.state()->k[0][0], 3.f);
  // A query sharing only the first token resolves to the depth-1 state.
  auto h1 = cache.find_longest(std::vector<int>{1, 9});
  ASSERT_TRUE(h1);
  EXPECT_EQ(h1.len(), 1);
  // No shared prefix at all: empty handle.
  EXPECT_FALSE(cache.find_longest(std::vector<int>{2, 3}));
}

TEST(KvTrieCache, FirstInsertWins) {
  KvTrieCache cache(std::size_t(1) << 20);
  const std::vector<int> p = {5, 6};
  cache.insert(p, make_state(2, 1, 2, 4, 1.f));
  const std::size_t bytes = cache.bytes();
  cache.insert(p, make_state(2, 1, 2, 4, 99.f));
  EXPECT_EQ(cache.nodes(), 1u);
  EXPECT_EQ(cache.bytes(), bytes);
  auto h = cache.find(p);
  ASSERT_TRUE(h);
  EXPECT_EQ(h.state()->k[0][0], 1.f);  // the original survived
}

TEST(KvTrieCache, BudgetRespectedWhenUnpinned) {
  const std::size_t unit = make_state(2, 1, 4, 8, 0.f).bytes();
  KvTrieCache cache(2 * unit + unit / 2);
  for (int i = 0; i < 10; ++i)
    cache.insert(std::vector<int>{i}, make_state(2, 1, 4, 8, float(i)));
  EXPECT_LE(cache.bytes(), cache.max_bytes);
  EXPECT_LE(cache.nodes(), 2u);
  EXPECT_GE(cache.nodes(), 1u);
}

TEST(KvTrieCache, ZeroBudgetDegradesToNoCaching) {
  KvTrieCache cache(0);
  cache.insert(std::vector<int>{1, 2}, make_state(2, 1, 2, 4, 1.f));
  EXPECT_EQ(cache.nodes(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.find(std::vector<int>{1, 2}));
}

TEST(KvTrieCache, EvictionNeverFreesPinnedNode) {
  const std::size_t unit = make_state(2, 1, 4, 8, 0.f).bytes();
  KvTrieCache cache(unit);  // room for exactly one unpinned state
  cache.insert(std::vector<int>{1}, make_state(2, 1, 4, 8, 7.f));
  auto pin = cache.find(std::vector<int>{1});
  ASSERT_TRUE(pin);
  EXPECT_EQ(cache.pinned_nodes(), 1u);
  // Flood with inserts: each new unpinned state is itself evicted to meet
  // the budget, but the pinned node must survive untouched.
  for (int i = 10; i < 20; ++i)
    cache.insert(std::vector<int>{i}, make_state(2, 1, 4, 8, float(i)));
  ASSERT_NE(pin.state(), nullptr);
  EXPECT_EQ(pin.state()->k[0][0], 7.f);
  EXPECT_EQ(pin.state()->logits[0], 14.f);
  auto again = cache.find(std::vector<int>{1});
  EXPECT_TRUE(again);
  again.release();
  // Once released, the node is evictable again: the next insert that
  // overflows the budget may push it out.
  pin.release();
  EXPECT_EQ(cache.pinned_nodes(), 0u);
  cache.insert(std::vector<int>{99}, make_state(2, 1, 4, 8, 99.f));
  EXPECT_LE(cache.bytes(), cache.max_bytes);
}

TEST(KvTrieCache, LruEvictsLeastRecentlyUsed) {
  const std::size_t unit = make_state(1, 1, 4, 8, 0.f).bytes();
  KvTrieCache cache(2 * unit);
  cache.insert(std::vector<int>{1}, make_state(1, 1, 4, 8, 1.f));
  cache.insert(std::vector<int>{2}, make_state(1, 1, 4, 8, 2.f));
  cache.find(std::vector<int>{1}).release();  // touch 1 -> MRU
  cache.insert(std::vector<int>{3}, make_state(1, 1, 4, 8, 3.f));
  EXPECT_TRUE(cache.find(std::vector<int>{1}));
  EXPECT_FALSE(cache.find(std::vector<int>{2}));  // the LRU victim
  EXPECT_TRUE(cache.find(std::vector<int>{3}));
}

TEST(KvTrieCache, ReleaseIsIdempotent) {
  KvTrieCache cache(std::size_t(1) << 20);
  cache.insert(std::vector<int>{4}, make_state(1, 1, 2, 4, 4.f));
  auto h = cache.find(std::vector<int>{4});
  ASSERT_TRUE(h);
  EXPECT_EQ(cache.pinned_nodes(), 1u);
  h.release();
  EXPECT_EQ(cache.pinned_nodes(), 0u);
  h.release();  // second release must be a no-op, not an underflow
  EXPECT_EQ(cache.pinned_nodes(), 0u);
  EXPECT_FALSE(h);
}

TEST(KvTrieCache, MetricsTrackHitsMissesEvictions) {
  auto& m = kv_cache_metrics();
  const auto hits0 = m.hits.value();
  const auto misses0 = m.misses.value();
  const auto evicted0 = m.evictions.value();
  const std::size_t unit = make_state(1, 1, 4, 8, 0.f).bytes();
  KvTrieCache cache(unit);
  cache.find(std::vector<int>{1}).release();  // miss
  cache.insert(std::vector<int>{1}, make_state(1, 1, 4, 8, 1.f));
  cache.find(std::vector<int>{1}).release();  // hit
  cache.insert(std::vector<int>{2}, make_state(1, 1, 4, 8, 2.f));  // evicts
  EXPECT_GE(m.hits.value(), hits0 + 1);
  EXPECT_GE(m.misses.value(), misses0 + 1);
  EXPECT_GE(m.evictions.value(), evicted0 + 1);
}

// Concurrency smoke for the TSan job (`sanitize` label): threads hammer a
// budget-constrained cache with overlapping prefixes, reading pinned state
// contents while other threads force eviction around them.
TEST(KvTrieCache, ConcurrentInsertFindEvictStress) {
  const std::size_t unit = make_state(2, 2, 8, 16, 0.f).bytes();
  KvTrieCache cache(6 * unit);
  std::vector<std::thread> threads;  // test-only; prod code uses ThreadPool
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 300; ++i) {
        const std::vector<int> prefix = {i % 7, (i + t) % 5};
        if (i % 3 == 0) {
          cache.insert(prefix, make_state(2, 2, 8, 16, float(i % 7)));
        } else {
          auto h = cache.find_longest(prefix);
          if (h) {
            // Read through the pin; eviction must never free this.
            volatile float sink = h.state()->k[0][0];
            (void)sink;
            EXPECT_LE(h.len(), 2);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.pinned_nodes(), 0u);
  EXPECT_LE(cache.bytes(), cache.max_bytes);
}

/// Shared random-init tiny model (weights don't matter for bitwise
/// equivalence properties; strict masks keep dcgen outputs decodable).
const GptModel& test_model() {
  static const GptModel model(Config::tiny(), 33);
  return model;
}

std::vector<int> test_prefix() {
  const auto segs = *pcfg::parse_pattern("L4N2");
  return tok::Tokenizer::encode_generation_prefix(segs);
}

TEST(KvSessionResume, FullDepthResumeRestoresLogitsBitwise) {
  const auto& model = test_model();
  const auto prefix = test_prefix();
  InferenceSession ref(model);
  ref.reset(1);
  ref.prime(prefix);
  const auto ref_logits = ref.logits_row(0);
  const KvState snap = ref.snapshot(0);
  EXPECT_EQ(snap.len, static_cast<Index>(prefix.size()));

  InferenceSession resumed(model);
  resumed.resume(snap, 3);  // fan one snapshot out to a 3-row batch
  for (Index r = 0; r < 3; ++r) {
    const auto got = resumed.logits_row(r);
    EXPECT_TRUE(std::equal(ref_logits.begin(), ref_logits.end(), got.begin()))
        << "row " << r;
  }
}

TEST(KvSessionResume, ResumedStepMatchesPrimedStepBitwise) {
  const auto& model = test_model();
  const auto prefix = test_prefix();
  InferenceSession ref(model);
  ref.reset(2);
  ref.prime(prefix);
  KvState snap = ref.snapshot(1);

  InferenceSession resumed(model);
  resumed.resume(snap, 2);
  // Continue decoding the same token on both sessions: the KV restored
  // from the snapshot must behave exactly like the KV the session built.
  const std::vector<int> next = {prefix.back(), prefix.back()};
  ref.step(next);
  resumed.step(next);
  for (Index r = 0; r < 2; ++r) {
    const auto a = ref.logits_row(r);
    const auto b = resumed.logits_row(r);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "row " << r;
  }
}

TEST(KvSessionResume, PartialDepthResumePlusPrimeMatchesFullPrime) {
  const auto& model = test_model();
  const auto prefix = test_prefix();
  ASSERT_GE(prefix.size(), 3u);
  const std::size_t cut = prefix.size() / 2;

  InferenceSession ref(model);
  ref.reset(1);
  ref.prime(prefix);
  const auto want = ref.logits_row(0);

  InferenceSession half(model);
  half.reset(1);
  half.prime(std::span<const int>(prefix).subspan(0, cut));
  const KvState snap = half.snapshot(0);

  InferenceSession resumed(model);
  resumed.resume(snap, 1);
  resumed.prime(std::span<const int>(prefix).subspan(cut));
  const auto got = resumed.logits_row(0);
  EXPECT_TRUE(std::equal(want.begin(), want.end(), got.begin()));
}

TEST(KvSessionResume, ResumeRowsMixedStatesMatchPerRowReference) {
  const auto& model = test_model();
  const auto pa = test_prefix();
  auto pb = pa;
  pb.back() = pa.front();  // a second, different prefix of equal length

  InferenceSession sa(model);
  sa.reset(1);
  sa.prime(pa);
  const KvState snap_a = sa.snapshot(0);
  InferenceSession sb(model);
  sb.reset(1);
  sb.prime(pb);
  const KvState snap_b = sb.snapshot(0);

  const std::vector<const KvState*> states = {&snap_a, &snap_b, &snap_a};
  InferenceSession mixed(model);
  mixed.resume_rows(states, static_cast<Index>(pa.size()));
  const std::vector<int> next = {pa.back(), pb.back(), pa.back()};
  mixed.step(next);
  sa.step(std::vector<int>{pa.back()});
  sb.step(std::vector<int>{pb.back()});
  const auto wa = sa.logits_row(0);
  const auto wb = sb.logits_row(0);
  EXPECT_TRUE(std::equal(wa.begin(), wa.end(), mixed.logits_row(0).begin()));
  EXPECT_TRUE(std::equal(wb.begin(), wb.end(), mixed.logits_row(1).begin()));
  EXPECT_TRUE(std::equal(wa.begin(), wa.end(), mixed.logits_row(2).begin()));
}

/// Pattern mix exercising divisions at several depths and leaf sizes.
const pcfg::PatternDistribution& test_patterns() {
  static const pcfg::PatternDistribution* dist = [] {
    auto* d = new pcfg::PatternDistribution();
    d->add("L6N2", 4);
    d->add("L4N4", 3);
    d->add("N6", 2);
    d->add("L8", 1);
    d->finalize();
    return d;
  }();
  return *dist;
}

core::DcGenConfig diff_config() {
  core::DcGenConfig cfg;
  cfg.total = 1200;
  cfg.threshold = 25;
  cfg.sample.batch_size = 32;
  return cfg;
}

// The tentpole differential: for every seed × thread count × budget, the
// cached run must be byte-identical (same strings, same order) to the
// uncached single-threaded baseline. Budgets cover the unbounded case, a
// tiny budget that forces eviction mid-run, and zero (evict-on-insert).
TEST(DcGenKvCacheDifferential, CachedMatchesUncachedBitwise) {
  const auto& model = test_model();
  const auto& patterns = test_patterns();
  for (const std::uint64_t seed : {1ull, 2ull}) {
    core::DcGenConfig base = diff_config();
    base.kv_cache = false;
    base.threads = 1;
    core::DcGenStats base_stats;
    const auto want =
        core::dc_generate(model, patterns, base, seed, &base_stats);
    ASSERT_GT(want.size(), 400u) << "fixture generates too little";
    EXPECT_EQ(base_stats.prefill_saved, 0u);

    for (const int threads : {1, 4}) {
      for (const std::size_t budget :
           {std::size_t(1) << 30, std::size_t(4096), std::size_t(0)}) {
        core::DcGenConfig cfg = diff_config();
        cfg.kv_cache = true;
        cfg.kv_cache_bytes = budget;
        cfg.threads = threads;
        core::DcGenStats stats;
        const auto got = core::dc_generate(model, patterns, cfg, seed, &stats);
        EXPECT_EQ(got, want)
            << "seed=" << seed << " threads=" << threads
            << " budget=" << budget;
      }
    }
  }
}

TEST(DcGenKvCacheDifferential, CacheSavesPrefillWork) {
  const auto& model = test_model();
  const auto& patterns = test_patterns();
  core::DcGenConfig cfg = diff_config();
  cfg.kv_cache = false;
  core::DcGenStats off;
  core::dc_generate(model, patterns, cfg, 7, &off);
  cfg.kv_cache = true;
  core::DcGenStats on;
  core::dc_generate(model, patterns, cfg, 7, &on);
  EXPECT_EQ(off.prefill_saved, 0u);
  EXPECT_GT(on.prefill_saved, 0u);
  EXPECT_LT(on.prefill_tokens, off.prefill_tokens);
  // The unbounded-cache run must skip a meaningful share of prefill.
  EXPECT_GE(double(on.prefill_saved),
            0.2 * double(off.prefill_tokens));
}

}  // namespace
}  // namespace ppg::gpt
