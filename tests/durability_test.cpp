// Durability-layer coverage (DESIGN.md §11): failpoint mechanics, the
// atomic_save/checked_load corruption matrix, CheckpointManifest fallback
// and pruning, bitwise-identical trainer resume, and byte-identical D&C-GEN
// journal resume — all in-process via the `throw` failpoint action, so the
// same scenarios the forked ppg_crashtest harness exercises with real
// _exit() crashes also run under ASan/TSan (label: sanitize).
#include <unistd.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/durable_io.h"
#include "common/failpoint.h"
#include "common/serialize.h"
#include "core/dcgen.h"
#include "gpt/model.h"
#include "gpt/trainer.h"
#include "pcfg/pcfg_model.h"
#include "pcfg/pattern.h"
#include "test_util.h"
#include "tokenizer/tokenizer.h"

namespace ppg {
namespace {

namespace fs = std::filesystem;
using gpt::Config;
using gpt::GptModel;
using gpt::TrainConfig;

// ---------------------------------------------------------------------------
// Failpoint mechanics

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::reset(); }
};

TEST_F(FailpointTest, InactiveSiteIsANoop) {
  failpoint::reset();
  EXPECT_FALSE(failpoint::any_active());
  PPG_FAILPOINT("fp.test.noop");  // must not throw, crash, or count
  EXPECT_EQ(failpoint::hits("fp.test.noop"), 0u);
}

TEST_F(FailpointTest, ThrowFiresOnNthHitOnly) {
  failpoint::activate("fp.test.nth", failpoint::Action::kThrow, 3);
  PPG_FAILPOINT("fp.test.nth");  // hit 1: passes
  PPG_FAILPOINT("fp.test.nth");  // hit 2: passes
  EXPECT_THROW(PPG_FAILPOINT("fp.test.nth"), failpoint::Injected);
  EXPECT_EQ(failpoint::hits("fp.test.nth"), 3u);
  // Hits after the nth pass through again (one-shot arming).
  PPG_FAILPOINT("fp.test.nth");
  EXPECT_EQ(failpoint::hits("fp.test.nth"), 4u);
}

TEST_F(FailpointTest, DeactivateDisarms) {
  failpoint::activate("fp.test.off", failpoint::Action::kThrow, 1);
  failpoint::deactivate("fp.test.off");
  PPG_FAILPOINT("fp.test.off");  // disarmed: must not throw
}

TEST_F(FailpointTest, SpecStringArmsAndRejectsMalformed) {
  EXPECT_TRUE(failpoint::activate_from_spec("fp.test.spec=throw@2"));
  PPG_FAILPOINT("fp.test.spec");
  EXPECT_THROW(PPG_FAILPOINT("fp.test.spec"), failpoint::Injected);
  EXPECT_FALSE(failpoint::activate_from_spec("fp.test.bad=explode"));
  EXPECT_FALSE(failpoint::activate_from_spec("no-equals-sign"));
}

TEST_F(FailpointTest, DelayActionContinues) {
  failpoint::activate("fp.test.delay", failpoint::Action::kDelay, 1, 1);
  PPG_FAILPOINT("fp.test.delay");  // sleeps ~1ms then returns
  EXPECT_EQ(failpoint::hits("fp.test.delay"), 1u);
}

// ---------------------------------------------------------------------------
// atomic_save / checked_load corruption matrix

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // gtest_discover_tests runs each case as its own ctest process, many in
    // parallel — the directory must be unique per process or concurrent
    // cases clobber each other's SetUp/TearDown.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           ("ppg_durability_" + std::to_string(::getpid()) + "_" +
            info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    failpoint::reset();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// Saves a small deterministic payload durably and returns its path.
  std::string save_sample(const std::string& name) {
    const std::string p = path(name);
    durable::atomic_save(p, [](BinaryWriter& w) {
      w.write<std::uint32_t>(0xfeedbeef);
      w.write_string("payload");
      w.write_vector(std::vector<float>{1.0f, 2.5f, -3.0f});
    });
    return p;
  }

  /// Asserts checked_load fails and its message mentions `needle`.
  void expect_load_error(const std::string& p, const std::string& needle) {
    try {
      durable::checked_load(p, [](BinaryReader&) {});
      FAIL() << p << ": expected checked_load to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  static void spew(const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(DurabilityTest, Crc32KnownAnswer) {
  // The canonical CRC-32 check vector.
  EXPECT_EQ(durable::crc32("123456789", 9), 0xCBF43926u);
  // Chaining via seed equals one-shot over the concatenation.
  const auto part = durable::crc32("12345", 5);
  EXPECT_EQ(durable::crc32("6789", 4, part), 0xCBF43926u);
}

TEST_F(DurabilityTest, AtomicSaveRoundTripsAndLeavesNoTemp) {
  const std::string p = save_sample("roundtrip.bin");
  EXPECT_TRUE(durable::verify_file(p));
  EXPECT_FALSE(fs::exists(p + ".tmp"));
  durable::checked_load(p, [](BinaryReader& r) {
    EXPECT_EQ(r.read<std::uint32_t>(), 0xfeedbeefu);
    EXPECT_EQ(r.read_string(), "payload");
    EXPECT_EQ(r.read_vector<float>(), (std::vector<float>{1.0f, 2.5f, -3.0f}));
  });
}

TEST_F(DurabilityTest, MissingAndEmptyFiles) {
  expect_load_error(path("nonexistent.bin"), "cannot open");
  EXPECT_FALSE(durable::verify_file(path("nonexistent.bin")));
  spew(path("empty.bin"), "");
  expect_load_error(path("empty.bin"), "missing CRC footer");
}

TEST_F(DurabilityTest, TruncationIsDetected) {
  const std::string p = save_sample("trunc.bin");
  std::string bytes = slurp(p);
  // Truncating into the payload shears the footer off entirely; what is
  // left ends in payload bytes, so the magic check fires.
  spew(p, bytes.substr(0, bytes.size() - durable::kFooterBytes - 2));
  expect_load_error(p, "footer");
  EXPECT_FALSE(durable::verify_file(p));
  // Truncating the payload but re-attaching the intact footer is a size
  // mismatch: the footer's recorded length no longer matches the file.
  const std::string footer = bytes.substr(bytes.size() - durable::kFooterBytes);
  spew(p, bytes.substr(0, bytes.size() / 2) + footer);
  expect_load_error(p, "size mismatch");
}

TEST_F(DurabilityTest, FlippedBitsAreDetected) {
  const std::string p = save_sample("flip.bin");
  const std::string good = slurp(p);
  // A flipped payload byte fails the CRC.
  std::string bad = good;
  bad[1] = static_cast<char>(bad[1] ^ 0x40);
  spew(p, bad);
  expect_load_error(p, "CRC mismatch");
  // A flipped byte inside the stored CRC itself also fails the CRC check.
  bad = good;
  bad[bad.size() - 6] = static_cast<char>(bad[bad.size() - 6] ^ 0x01);
  spew(p, bad);
  expect_load_error(p, "CRC mismatch");
  // A flipped byte in the footer magic is reported as such.
  bad = good;
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0xff);
  spew(p, bad);
  expect_load_error(p, "bad footer magic");
}

TEST_F(DurabilityTest, LegacyFileWithoutFooterLoadsOnlyWhenOptedIn) {
  // Pre-durable_io files (e.g. committed bench_cache checkpoints) have no
  // footer: strict checked_load refuses them, checked_load_or_legacy hands
  // the whole byte stream to the parser with a warning.
  const std::string p = path("legacy.bin");
  std::ostringstream buf(std::ios::binary);
  BinaryWriter w(buf);
  w.write<std::uint32_t>(0x1234abcd);
  w.write_string("legacy payload");
  spew(p, buf.str());
  expect_load_error(p, "footer");
  durable::checked_load_or_legacy(p, [](BinaryReader& r) {
    EXPECT_EQ(r.read<std::uint32_t>(), 0x1234abcdu);
    EXPECT_EQ(r.read_string(), "legacy payload");
  });
  // A file that HAS a footer but fails its CRC is corrupt, not legacy —
  // the opt-in must not bypass the check.
  const std::string q = save_sample("footered.bin");
  std::string bytes = slurp(q);
  bytes[0] = static_cast<char>(bytes[0] ^ 0x01);
  spew(q, bytes);
  EXPECT_THROW(durable::checked_load_or_legacy(q, [](BinaryReader&) {}),
               std::runtime_error);
}

TEST_F(DurabilityTest, TrailingGarbageIsDetected) {
  const std::string p = save_sample("garbage.bin");
  spew(p, slurp(p) + "extra bytes appended by a careless tool");
  expect_load_error(p, "footer");
}

TEST_F(DurabilityTest, CrashMidWriteLeavesOldFileIntact) {
  const std::string p = save_sample("victim.bin");
  const std::string before = slurp(p);
  failpoint::activate("durable.mid_write", failpoint::Action::kThrow, 1);
  EXPECT_THROW(save_sample("victim.bin"), failpoint::Injected);
  failpoint::reset();
  // The interrupted save must not have touched the published path.
  EXPECT_EQ(slurp(p), before);
  EXPECT_TRUE(durable::verify_file(p));
}

TEST_F(DurabilityTest, ParallelSavesToDistinctPathsAllVerify) {
  constexpr int kThreads = 4, kFiles = 6;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int f = 0; f < kFiles; ++f) {
        const std::string p =
            path("par_" + std::to_string(t) + "_" + std::to_string(f));
        durable::atomic_save(p, [&](BinaryWriter& w) {
          w.write<std::int32_t>(t * 100 + f);
        });
      }
    });
  }
  for (auto& t : ts) t.join();
  for (int t = 0; t < kThreads; ++t)
    for (int f = 0; f < kFiles; ++f)
      EXPECT_TRUE(durable::verify_file(
          path("par_" + std::to_string(t) + "_" + std::to_string(f))));
}

// ---------------------------------------------------------------------------
// CheckpointManifest

TEST_F(DurabilityTest, EmptyDirectoryHasNoGoodGeneration) {
  durable::CheckpointManifest m((dir_ / "ckpt").string());
  EXPECT_FALSE(m.latest_good().has_value());
}

TEST_F(DurabilityTest, CorruptManifestDegradesToEmptyNotGarbage) {
  const std::string cdir = (dir_ / "ckpt").string();
  fs::create_directories(cdir);
  spew(cdir + "/MANIFEST", "this is not a manifest");
  durable::CheckpointManifest m(cdir);
  EXPECT_FALSE(m.latest_good().has_value());
  EXPECT_TRUE(m.entries().empty());
  // The manifest stays usable: publishing after the reset works.
  durable::atomic_save(m.file_path("gen1.bin"),
                       [](BinaryWriter& w) { w.write<std::int32_t>(1); });
  m.publish(1, {"gen1.bin"});
  ASSERT_TRUE(m.latest_good().has_value());
  EXPECT_EQ(m.latest_good()->generation, 1u);
}

TEST_F(DurabilityTest, LatestGoodFallsBackPastCorruptGeneration) {
  durable::CheckpointManifest m((dir_ / "ckpt").string());
  for (std::uint64_t g = 1; g <= 2; ++g) {
    const std::string name = "gen" + std::to_string(g) + ".bin";
    durable::atomic_save(m.file_path(name), [g](BinaryWriter& w) {
      w.write<std::uint64_t>(g);
    });
    m.publish(g, {name});
  }
  // Corrupt the newest generation's file in place.
  std::string bytes = slurp(m.file_path("gen2.bin"));
  bytes[0] = static_cast<char>(bytes[0] ^ 0x01);
  spew(m.file_path("gen2.bin"), bytes);
  // A reader (fresh manifest instance, as a resuming process would build)
  // must fall back to generation 1, never hand over the corrupt one.
  durable::CheckpointManifest reader((dir_ / "ckpt").string());
  ASSERT_TRUE(reader.latest_good().has_value());
  EXPECT_EQ(reader.latest_good()->generation, 1u);
}

TEST_F(DurabilityTest, PruneDropsOldGenerationsAndSweepsTmpDroppings) {
  durable::CheckpointManifest m((dir_ / "ckpt").string());
  for (std::uint64_t g = 1; g <= 3; ++g) {
    const std::string name = "gen" + std::to_string(g) + ".bin";
    durable::atomic_save(m.file_path(name), [g](BinaryWriter& w) {
      w.write<std::uint64_t>(g);
    });
    m.publish(g, {name});
  }
  // A stale temp file from a hypothetical interrupted save.
  spew(m.file_path("gen9.bin.tmp"), "torn");
  m.prune(2);
  EXPECT_FALSE(fs::exists(m.file_path("gen1.bin")));
  EXPECT_TRUE(fs::exists(m.file_path("gen2.bin")));
  EXPECT_TRUE(fs::exists(m.file_path("gen3.bin")));
  EXPECT_FALSE(fs::exists(m.file_path("gen9.bin.tmp")));
  ASSERT_TRUE(m.latest_good().has_value());
  EXPECT_EQ(m.latest_good()->generation, 3u);
}

// ---------------------------------------------------------------------------
// Trainer checkpoint/resume

class TrainerResumeTest : public DurabilityTest {
 protected:
  static std::vector<std::vector<int>> encoded_corpus() {
    std::vector<std::vector<int>> seqs;
    for (const auto& pw : testing::tiny_password_corpus())
      if (auto ids = tok::Tokenizer::encode_training(pw))
        seqs.push_back(std::move(*ids));
    return seqs;
  }

  static TrainConfig train_config(const std::string& ckpt_dir) {
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 8;
    cfg.lr = 1e-3f;
    cfg.seed = 7;
    if (!ckpt_dir.empty()) {
      cfg.checkpoint_every = 2;
      cfg.checkpoint_dir = ckpt_dir;
      cfg.checkpoint_keep = 2;
    }
    return cfg;
  }

  /// Trains to completion and returns the saved model's bytes.
  std::string train_to_bytes(const std::string& ckpt_dir,
                             gpt::TrainReport* report = nullptr) {
    GptModel model(Config::tiny(), 11);
    const auto r = gpt::train_lm(model, encoded_corpus(), {},
                                 train_config(ckpt_dir), tok::Tokenizer::kPad);
    if (report) *report = r;
    const std::string p = path("weights.bin");
    model.save(p);
    return slurp(p);
  }
};

TEST_F(TrainerResumeTest, CheckpointingRequiresADirectory) {
  GptModel model(Config::tiny(), 11);
  TrainConfig cfg = train_config("");
  cfg.checkpoint_every = 2;  // but no checkpoint_dir
  EXPECT_THROW(gpt::train_lm(model, encoded_corpus(), {}, cfg,
                             tok::Tokenizer::kPad),
               std::invalid_argument);
}

TEST_F(TrainerResumeTest, InterruptedRunResumesBitwiseIdentical) {
  const std::string golden = train_to_bytes("");

  // Kill the run mid-training via the throw action (same site the crash
  // harness kills with _exit), then relaunch against the same directory.
  const std::string cdir = (dir_ / "train_ckpt").string();
  failpoint::activate("train.after_step", failpoint::Action::kThrow, 5);
  EXPECT_THROW(train_to_bytes(cdir), failpoint::Injected);
  failpoint::reset();

  gpt::TrainReport report;
  const std::string resumed = train_to_bytes(cdir, &report);
  EXPECT_GT(report.resumed_from_step, 0u);
  EXPECT_EQ(resumed, golden) << "resumed weights differ from golden";
}

TEST_F(TrainerResumeTest, CrashInsideCheckpointWriteAlsoResumes) {
  const std::string golden = train_to_bytes("");
  const std::string cdir = (dir_ / "train_ckpt2").string();
  failpoint::activate("train.checkpoint.mid_write",
                      failpoint::Action::kThrow, 2);
  EXPECT_THROW(train_to_bytes(cdir), failpoint::Injected);
  failpoint::reset();
  EXPECT_EQ(train_to_bytes(cdir), golden);
}

TEST_F(TrainerResumeTest, FingerprintMismatchRefusesToResume) {
  const std::string cdir = (dir_ / "train_ckpt3").string();
  train_to_bytes(cdir);  // leaves a final checkpoint behind
  GptModel model(Config::tiny(), 11);
  TrainConfig cfg = train_config(cdir);
  cfg.lr = 5e-4f;  // different run: its checkpoints are not ours
  try {
    gpt::train_lm(model, encoded_corpus(), {}, cfg, tok::Tokenizer::kPad);
    FAIL() << "expected fingerprint mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos)
        << "message was: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// D&C-GEN job journal

class DcgenJournalTest : public DurabilityTest {
 protected:
  void SetUp() override {
    DurabilityTest::SetUp();
    model_ = std::make_unique<GptModel>(Config::tiny(), 11);
    std::vector<std::vector<int>> seqs;
    for (const auto& pw : testing::tiny_password_corpus()) {
      if (auto ids = tok::Tokenizer::encode_training(pw))
        seqs.push_back(std::move(*ids));
      patterns_.add(pcfg::pattern_of(pw));
    }
    patterns_.finalize();
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 8;
    tc.seed = 7;
    gpt::train_lm(*model_, seqs, {}, tc, tok::Tokenizer::kPad);
  }

  core::DcGenConfig gen_config(const std::string& journal_dir,
                               int threads = 1) const {
    core::DcGenConfig cfg;
    cfg.total = 120;
    cfg.threshold = 16;
    cfg.sample.batch_size = 16;
    cfg.threads = threads;
    cfg.journal_dir = journal_dir;
    return cfg;
  }

  std::vector<std::string> generate(const std::string& journal_dir,
                                    core::DcGenStats* stats = nullptr,
                                    int threads = 1,
                                    std::uint64_t seed = 55) const {
    return core::dc_generate(*model_, patterns_, gen_config(journal_dir,
                                                            threads),
                             seed, stats);
  }

  std::unique_ptr<GptModel> model_;
  pcfg::PatternDistribution patterns_;
};

TEST_F(DcgenJournalTest, InterruptedRunResumesByteIdentical) {
  const auto golden = generate("");

  const std::string jdir = (dir_ / "journal").string();
  failpoint::activate("dcgen.leaf.done", failpoint::Action::kThrow, 2);
  EXPECT_THROW(generate(jdir), failpoint::Injected);
  failpoint::reset();

  core::DcGenStats stats;
  const auto resumed = generate(jdir, &stats);
  EXPECT_TRUE(stats.resumed_plan);
  EXPECT_GE(stats.resumed_leaves, 1u);
  EXPECT_EQ(resumed, golden);
}

TEST_F(DcgenJournalTest, TornLedgerTailIsTruncatedNotTrusted) {
  const auto golden = generate("");
  const std::string jdir = (dir_ / "journal_torn").string();
  failpoint::activate("dcgen.ledger.mid_append", failpoint::Action::kThrow, 3);
  EXPECT_THROW(generate(jdir), failpoint::Injected);
  failpoint::reset();
  // The interrupted append left a half-written record; pile some extra
  // garbage on top for good measure.
  {
    std::ofstream out(jdir + "/ledger.bin",
                      std::ios::binary | std::ios::app);
    out << "\x13\x37garbage";
  }
  EXPECT_EQ(generate(jdir), golden);
}

TEST_F(DcgenJournalTest, StaleJournalFromDifferentRunIsDiscarded) {
  const std::string jdir = (dir_ / "journal_stale").string();
  generate(jdir);  // journal now fingerprinted for seed 55
  const auto golden56 = generate("", nullptr, 1, 56);
  core::DcGenStats stats;
  const auto fresh = generate(jdir, &stats, 1, 56);
  EXPECT_FALSE(stats.resumed_plan);
  EXPECT_EQ(stats.resumed_leaves, 0u);
  EXPECT_EQ(fresh, golden56);
}

TEST_F(DcgenJournalTest, ConcurrentLedgerAppendsStayConsistent) {
  // Threads > 1 appends ledger records from multiple workers through the
  // shared fd; TSan watches the mutex discipline, and the journal must
  // still describe a complete run (resuming it re-emits identical bytes).
  const auto golden = generate("");
  const std::string jdir = (dir_ / "journal_mt").string();
  const auto parallel = generate(jdir, nullptr, 4);
  EXPECT_EQ(parallel, golden);
  core::DcGenStats stats;
  const auto replay = generate(jdir, &stats, 1);
  EXPECT_TRUE(stats.resumed_plan);
  EXPECT_EQ(replay, golden);
}

}  // namespace
}  // namespace ppg
