#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ppg::eval {
namespace {

std::vector<std::string> test_passwords() {
  return {"love12", "blue34", "star56", "abcd", "efgh", "1234"};
}

TEST(TestSet, DeduplicatesAndIndexes) {
  std::vector<std::string> pws = test_passwords();
  pws.push_back("love12");  // duplicate
  const TestSet ts(pws);
  EXPECT_EQ(ts.size(), 6u);
  EXPECT_TRUE(ts.contains("love12"));
  EXPECT_FALSE(ts.contains("nope"));
  EXPECT_EQ(ts.count_with_pattern("L4N2"), 3u);
  EXPECT_EQ(ts.count_with_pattern("L4"), 2u);
  EXPECT_EQ(ts.count_with_pattern("N4"), 1u);
  EXPECT_EQ(ts.count_with_segments(2), 3u);
  EXPECT_EQ(ts.count_with_segments(1), 3u);
  EXPECT_EQ(ts.count_with_segments(5), 0u);
}

TEST(RepeatRate, HandWorkedValues) {
  EXPECT_DOUBLE_EQ(repeat_rate(std::vector<std::string>{}), 0.0);
  const std::vector<std::string> no_dups = {"a", "b", "c"};
  EXPECT_DOUBLE_EQ(repeat_rate(no_dups), 0.0);
  const std::vector<std::string> half = {"a", "a", "b", "b"};
  EXPECT_DOUBLE_EQ(repeat_rate(half), 0.5);
  const std::vector<std::string> all = {"a", "a", "a", "a"};
  EXPECT_DOUBLE_EQ(repeat_rate(all), 0.75);
}

TEST(HitRate, CountsDistinctHits) {
  const TestSet ts(test_passwords());
  const std::vector<std::string> guesses = {"love12", "love12", "wrong1",
                                            "abcd"};
  EXPECT_NEAR(hit_rate(guesses, ts), 2.0 / 6.0, 1e-12);
}

TEST(LengthDistance, ZeroForIdenticalDistributions) {
  const auto pws = test_passwords();
  EXPECT_NEAR(length_distance(pws, pws), 0.0, 1e-12);
}

TEST(LengthDistance, HandWorkedValue) {
  // gen: all length 4; test: all length 6 → sqrt(1² + 1²) = √2.
  const std::vector<std::string> gen = {"aaaa", "bbbb"};
  const std::vector<std::string> test = {"aaaaaa", "bbbbbb"};
  EXPECT_NEAR(length_distance(gen, test), std::sqrt(2.0), 1e-12);
}

TEST(LengthDistance, InvalidLengthsDiluteMass) {
  // One of two generated passwords is out of range: half the mass is gone.
  const std::vector<std::string> gen = {"aaaa", "waytoolongpassword"};
  const std::vector<std::string> test = {"aaaa"};
  EXPECT_NEAR(length_distance(gen, test), 0.5, 1e-12);
}

TEST(PatternDistance, ZeroForIdenticalDistributions) {
  const auto pws = test_passwords();
  EXPECT_NEAR(pattern_distance(pws, pws), 0.0, 1e-12);
}

TEST(PatternDistance, HandWorkedValue) {
  // test: 100% L4; gen: 100% N4 → distance on top pattern L4 = 1.
  const std::vector<std::string> gen = {"1234"};
  const std::vector<std::string> test = {"abcd"};
  EXPECT_NEAR(pattern_distance(gen, test), 1.0, 1e-12);
}

TEST(PatternDistance, TopTruncationApplies) {
  // With top=1 only the most common test pattern matters.
  const std::vector<std::string> gen = {"abcd", "99"};
  const std::vector<std::string> test = {"abcd", "abce", "12"};
  // top test pattern: L4 with prob 2/3; gen prob 1/2 → |2/3-1/2| = 1/6.
  EXPECT_NEAR(pattern_distance(gen, test, 1), 1.0 / 6.0, 1e-12);
}

TEST(PatternHitRate, RestrictsToPattern) {
  const TestSet ts(test_passwords());
  // Guesses include an L4N2 hit, an L4 hit, and noise.
  const std::vector<std::string> guesses = {"love12", "abcd", "zzzz99"};
  EXPECT_NEAR(pattern_hit_rate(guesses, ts, "L4N2"), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pattern_hit_rate(guesses, ts, "L4"), 1.0 / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(pattern_hit_rate(guesses, ts, "S4"), 0.0);
}

TEST(CategoryHitRate, RestrictsToSegmentCount) {
  const TestSet ts(test_passwords());
  const std::vector<std::string> guesses = {"love12", "abcd", "1234"};
  EXPECT_NEAR(category_hit_rate(guesses, ts, 2), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(category_hit_rate(guesses, ts, 1), 2.0 / 3.0, 1e-12);
}

TEST(GuessCurve, MatchesOneShotMetrics) {
  const TestSet ts(test_passwords());
  const std::vector<std::string> guesses = {"love12", "love12", "abcd",
                                            "nope1", "1234",   "1234"};
  GuessCurve curve(ts);
  // Feed in two chunks; results must match the one-shot computations.
  curve.feed(std::span(guesses).subspan(0, 3));
  curve.feed(std::span(guesses).subspan(3));
  const CurvePoint p = curve.snapshot();
  EXPECT_EQ(p.guesses, 6u);
  EXPECT_EQ(p.unique, 4u);
  EXPECT_EQ(p.hits, 3u);
  EXPECT_NEAR(p.hit_rate, 0.5, 1e-12);
  EXPECT_NEAR(p.repeat_rate, repeat_rate(guesses), 1e-12);
  std::vector<std::string> tv(test_passwords());
  EXPECT_NEAR(p.length_distance, length_distance(guesses, tv), 1e-12);
  EXPECT_NEAR(p.pattern_distance, pattern_distance(guesses, tv, 150), 1e-12);
}

TEST(GuessCurve, SnapshotIsMonotoneInHits) {
  const TestSet ts(test_passwords());
  GuessCurve curve(ts);
  const std::vector<std::string> first = {"love12"};
  curve.feed(first);
  const auto p1 = curve.snapshot();
  const std::vector<std::string> second = {"abcd"};
  curve.feed(second);
  const auto p2 = curve.snapshot();
  EXPECT_GT(p2.hits, p1.hits);
  EXPECT_GT(p2.guesses, p1.guesses);
}

TEST(GuessCurve, EmptySnapshotIsZero) {
  const TestSet ts(test_passwords());
  const GuessCurve curve(ts);
  const auto p = curve.snapshot();
  EXPECT_EQ(p.guesses, 0u);
  EXPECT_EQ(p.hits, 0u);
  EXPECT_DOUBLE_EQ(p.hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(p.repeat_rate, 0.0);
}

}  // namespace
}  // namespace ppg::eval
