// GuessService + wire-protocol tests: admission/backpressure, dynamic
// batching determinism, deadline enforcement, and the graceful-shutdown
// acceptance property (every request gets exactly one terminal status).
#include "serve/service.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "pcfg/pattern.h"
#include "serve/wire.h"

namespace ppg {
namespace {

using serve::GuessService;
using serve::Reject;
using serve::Request;
using serve::RequestKind;
using serve::Response;
using serve::ServiceConfig;
using serve::Status;

/// Shared tiny model/patterns fixture; random-init weights are fine because
/// strict masks force conformance and decodability.
class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new gpt::GptModel(gpt::Config::tiny(), 21);
    patterns_ = new pcfg::PatternDistribution();
    patterns_->add("L6N2", 3);
    patterns_->add("L4N4", 2);
    patterns_->add("N6", 1);
    patterns_->finalize();
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete patterns_;
    patterns_ = nullptr;
  }

  static Request pattern_req(std::string pattern, std::size_t count,
                             std::uint64_t seed) {
    Request r;
    r.kind = RequestKind::kPattern;
    r.pattern = std::move(pattern);
    r.count = count;
    r.seed = seed;
    return r;
  }

  static gpt::GptModel* model_;
  static pcfg::PatternDistribution* patterns_;
};

gpt::GptModel* ServeTest::model_ = nullptr;
pcfg::PatternDistribution* ServeTest::patterns_ = nullptr;

TEST_F(ServeTest, PatternRequestsConform) {
  GuessService svc(*model_, *patterns_, {});
  const Response r = svc.submit_and_wait(pattern_req("L4N2S1", 8, 42));
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_EQ(r.passwords.size(), 8u);
  const auto segs = *pcfg::parse_pattern("L4N2S1");
  for (const auto& pw : r.passwords)
    EXPECT_TRUE(pcfg::matches_pattern(pw, segs)) << pw;
  EXPECT_GE(r.total_ms, r.queue_ms);
}

TEST_F(ServeTest, EmptyPatternSamplesFromDistribution) {
  GuessService svc(*model_, *patterns_, {});
  const Response r = svc.submit_and_wait(pattern_req("", 4, 7));
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_EQ(r.passwords.size(), 4u);
  // All rows share the request's (sampled) pattern.
  const auto segs = pcfg::segment(r.passwords[0]);
  ASSERT_FALSE(segs.empty());
  for (const auto& pw : r.passwords)
    EXPECT_TRUE(pcfg::matches_pattern(pw, segs)) << pw;
}

TEST_F(ServeTest, PrefixRequestContinuesPrefix) {
  GuessService svc(*model_, *patterns_, {});
  Request r;
  r.kind = RequestKind::kPrefix;
  r.pattern = "L4N2";
  r.prefix = "Ab";
  r.count = 5;
  r.seed = 3;
  const Response resp = svc.submit_and_wait(std::move(r));
  ASSERT_EQ(resp.status, Status::kOk);
  ASSERT_EQ(resp.passwords.size(), 5u);
  const auto segs = *pcfg::parse_pattern("L4N2");
  for (const auto& pw : resp.passwords) {
    EXPECT_EQ(pw.substr(0, 2), "Ab") << pw;
    EXPECT_TRUE(pcfg::matches_pattern(pw, segs)) << pw;
  }
}

TEST_F(ServeTest, ResultsIndependentOfBatchGeometry) {
  // The same requests must yield identical responses whatever the batch
  // size or batching mode: row r draws from Rng(seed, "serve.row/r").
  const auto run = [&](std::size_t max_batch, bool batching) {
    ServiceConfig cfg;
    cfg.max_batch = max_batch;
    cfg.batching = batching;
    GuessService svc(*model_, *patterns_, cfg);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 6; ++i)
      futs.push_back(svc.submit(pattern_req("L6N2", 7, 100 + i)));
    std::vector<std::vector<std::string>> out;
    for (auto& f : futs) {
      Response r = f.get();
      EXPECT_EQ(r.status, Status::kOk);
      out.push_back(std::move(r.passwords));
    }
    return out;
  };
  const auto small_batched = run(4, true);
  const auto large_batched = run(64, true);
  const auto unbatched = run(64, false);
  EXPECT_EQ(small_batched, large_batched);
  EXPECT_EQ(small_batched, unbatched);
}

TEST_F(ServeTest, BadRequestsRejectImmediately) {
  GuessService svc(*model_, *patterns_, {});
  const auto expect_bad = [&](Request r) {
    const Response resp = svc.submit_and_wait(std::move(r));
    EXPECT_EQ(resp.status, Status::kRejected);
    EXPECT_EQ(resp.reject, Reject::kBadRequest);
    EXPECT_FALSE(resp.error.empty());
  };
  expect_bad(pattern_req("L4", 0, 1));          // zero count
  expect_bad(pattern_req("Z9", 1, 1));          // unknown class tag
  expect_bad(pattern_req("L99", 1, 1));         // segment > 12
  expect_bad(pattern_req("L4", 1 << 20, 1));    // over max_count
  Request p;
  p.kind = RequestKind::kPrefix;
  p.pattern = "L4";
  p.prefix = "a1";  // digit where the pattern wants a letter
  expect_bad(std::move(p));
  Request q;
  q.kind = RequestKind::kPrefix;
  q.pattern = "L4";
  q.prefix = "";  // prefix kind without a prefix
  expect_bad(std::move(q));
}

TEST_F(ServeTest, QueueFullBackpressure) {
  ServiceConfig cfg;
  cfg.max_queue = 2;
  GuessService svc(*model_, *patterns_, cfg);
  // Saturate: the first request may be picked up instantly, but the queue
  // holds at most 2, so among many instant submits some must bounce.
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 16; ++i)
    futs.push_back(svc.submit(pattern_req("L6N2", 32, i)));
  std::size_t ok = 0, queue_full = 0;
  for (auto& f : futs) {
    const Response r = f.get();
    if (r.status == Status::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(r.status, Status::kRejected);
      EXPECT_EQ(r.reject, Reject::kQueueFull);
      ++queue_full;
    }
  }
  EXPECT_GT(queue_full, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + queue_full, 16u);
}

TEST_F(ServeTest, NegativeTimeoutRejectsAtSubmit) {
  GuessService svc(*model_, *patterns_, {});
  Request r = pattern_req("L6N2", 4, 1);
  r.timeout_ms = -5.0;
  const Response resp = svc.submit_and_wait(std::move(r));
  EXPECT_EQ(resp.status, Status::kRejected);
  EXPECT_EQ(resp.reject, Reject::kBadRequest);
  EXPECT_NE(resp.error.find("timeout_ms"), std::string::npos) << resp.error;
}

TEST_F(ServeTest, MidFlightDeadlineExpiresDuringCoalesce) {
  // Exercises the coalesce-loop deadline check: the heavy request's count
  // exceeds max_batch, so after the first batch it stays at the front of
  // the queue with unassigned rows. When the worker forms the next batch it
  // takes the heavy request's rows first, then scans forward and finds the
  // doomed request already past its deadline — mid-flight, not at the head.
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 8;
  GuessService svc(*model_, *patterns_, cfg);
  auto heavy_fut = svc.submit(pattern_req("L6N2", 64, 1));
  Request doomed = pattern_req("L6N2", 4, 2);
  doomed.timeout_ms = 1e-6;  // expired by any later clock read
  const Response r = svc.submit_and_wait(std::move(doomed));
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_TRUE(r.passwords.empty());
  EXPECT_EQ(heavy_fut.get().status, Status::kOk);
}

TEST_F(ServeTest, ExpiredDeadlineTimesOutInQueue) {
  GuessService svc(*model_, *patterns_, {});
  Request heavy = pattern_req("L6N2", 64, 1);  // keeps the worker busy
  auto heavy_fut = svc.submit(std::move(heavy));
  Request doomed = pattern_req("L6N2", 4, 2);
  doomed.timeout_ms = 1e-6;  // sub-µs: expired by any later clock read
  const Response r = svc.submit_and_wait(std::move(doomed));
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_TRUE(r.passwords.empty());
  EXPECT_EQ(heavy_fut.get().status, Status::kOk);
}

TEST_F(ServeTest, SubmitAfterShutdownRejects) {
  GuessService svc(*model_, *patterns_, {});
  svc.shutdown();
  const Response r = svc.submit_and_wait(pattern_req("L4", 1, 1));
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_EQ(r.reject, Reject::kShuttingDown);
  svc.shutdown();  // idempotent
}

// Acceptance test: under concurrent submitters, shutdown() drains every
// admitted request, rejects late ones, and no request is ever lost or
// double-resolved — every future resolves with exactly one terminal status.
TEST_F(ServeTest, ShutdownDrainsAndRejectsLate) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue = 64;
  GuessService svc(*model_, *patterns_, cfg);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::future<Response>> futs[kThreads];
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t)
    submitters.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i)
        futs[t].push_back(
            svc.submit(pattern_req("L6N2", 2, 1000 * t + i)));
    });
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  svc.shutdown();  // concurrent with submitters
  for (auto& t : submitters) t.join();

  std::size_t ok = 0, rejected = 0;
  for (auto& per_thread : futs)
    for (auto& f : per_thread) {
      ASSERT_TRUE(f.valid());
      const Response r = f.get();  // resolves exactly once, no deadlock
      switch (r.status) {
        case Status::kOk:
          EXPECT_EQ(r.passwords.size(), 2u);
          ++ok;
          break;
        case Status::kRejected:
          EXPECT_TRUE(r.reject == Reject::kShuttingDown ||
                      r.reject == Reject::kQueueFull)
              << static_cast<int>(r.reject);
          ++rejected;
          break;
        case Status::kTimeout:
          ADD_FAILURE() << "no deadlines were set";
          break;
      }
    }
  EXPECT_EQ(ok + rejected, std::size_t(kThreads * kPerThread));
  // Everything admitted must have drained: nothing is left queued.
  EXPECT_EQ(svc.queued(), 0u);
}

TEST_F(ServeTest, PartialResultsWhenAttemptsExhausted) {
  // Free-running on a random-init model rarely decodes; with a tight
  // attempt budget the request still completes (kOk, partial passwords).
  ServiceConfig cfg;
  cfg.max_attempt_factor = 1;  // no retries at all
  GuessService svc(*model_, *patterns_, cfg);
  Request r;
  r.kind = RequestKind::kFree;
  r.count = 4;
  r.seed = 5;
  const Response resp = svc.submit_and_wait(std::move(r));
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.passwords.size() + resp.invalid, 4u);
}

// --- Prefix cache -----------------------------------------------------------

TEST_F(ServeTest, RepeatedPatternRequestsHitPrefixCache) {
  auto& m = gpt::kv_cache_metrics();
  GuessService svc(*model_, *patterns_, {});  // default: cache enabled
  const Response a = svc.submit_and_wait(pattern_req("L6N2", 4, 11));
  ASSERT_EQ(a.status, Status::kOk);
  const auto hits_before = m.hits.value();
  // Same pattern again: the <BOS> pattern <SEP> prefix is now cached, so
  // this request's batch must register cache hits — and still return the
  // exact same passwords (per-row RNG + bitwise-identical resume).
  const Response b = svc.submit_and_wait(pattern_req("L6N2", 4, 11));
  ASSERT_EQ(b.status, Status::kOk);
  EXPECT_EQ(a.passwords, b.passwords);
  EXPECT_GT(m.hits.value(), hits_before);
}

TEST_F(ServeTest, CachedResponsesMatchColdCacheRun) {
  ServiceConfig cold_cfg;
  cold_cfg.prefix_cache_bytes = 0;  // caching off: re-prime every batch
  GuessService cold(*model_, *patterns_, cold_cfg);
  GuessService warm(*model_, *patterns_, {});  // default budget
  ServiceConfig tiny_cfg;
  tiny_cfg.prefix_cache_bytes = 1;  // evicts on every insert
  GuessService tiny(*model_, *patterns_, tiny_cfg);
  // Several rounds so the warm service serves rounds >= 2 from cache and
  // the tiny one churns through insert-evict cycles; all three must agree
  // byte-for-byte (the kv_cache.h determinism contract, end to end).
  for (int round = 0; round < 3; ++round) {
    for (const char* pat : {"L6N2", "L4N4", "N6"}) {
      const Response rc = cold.submit_and_wait(pattern_req(pat, 3, 21));
      const Response rw = warm.submit_and_wait(pattern_req(pat, 3, 21));
      const Response rt = tiny.submit_and_wait(pattern_req(pat, 3, 21));
      ASSERT_EQ(rc.status, Status::kOk);
      ASSERT_EQ(rw.status, Status::kOk);
      ASSERT_EQ(rt.status, Status::kOk);
      EXPECT_EQ(rc.passwords, rw.passwords) << pat << " round " << round;
      EXPECT_EQ(rc.passwords, rt.passwords) << pat << " round " << round;
    }
  }
}

// --- Ordered requests -------------------------------------------------------

TEST_F(ServeTest, OrderedRequestYieldsDescendingUniqueGuesses) {
  // N2 keeps the search space small (100 strings): a random-init model is
  // near-uniform, and best-first expands most of the tree before emitting.
  GuessService svc(*model_, *patterns_, {});
  Request r;
  r.kind = RequestKind::kOrdered;
  r.pattern = "N2";
  r.top_k = 30;
  const Response resp = svc.submit_and_wait(std::move(r));
  ASSERT_EQ(resp.status, Status::kOk);
  ASSERT_EQ(resp.passwords.size(), 30u);
  ASSERT_EQ(resp.log_probs.size(), resp.passwords.size());
  const auto segs = *pcfg::parse_pattern("N2");
  std::set<std::string> seen;
  for (std::size_t i = 0; i < resp.passwords.size(); ++i) {
    EXPECT_TRUE(pcfg::matches_pattern(resp.passwords[i], segs))
        << resp.passwords[i];
    EXPECT_TRUE(seen.insert(resp.passwords[i]).second)
        << "duplicate guess " << resp.passwords[i];
    EXPECT_LE(resp.log_probs[i], 0.0);
    if (i > 0) {
      EXPECT_LE(resp.log_probs[i], resp.log_probs[i - 1]);
    }
  }
}

TEST_F(ServeTest, OrderedIsDeterministicAndSeedFree) {
  // Best-first search has no RNG: the seed field and the worker count must
  // not change the emitted ranking.
  ServiceConfig multi;
  multi.workers = 2;
  GuessService a(*model_, *patterns_, {});
  GuessService b(*model_, *patterns_, multi);
  Request r1;
  r1.kind = RequestKind::kOrdered;
  r1.pattern = "N4";
  r1.top_k = 12;
  r1.seed = 1;
  Request r2 = r1;
  r2.seed = 999;
  const Response ra = a.submit_and_wait(std::move(r1));
  const Response rb = b.submit_and_wait(std::move(r2));
  ASSERT_EQ(ra.status, Status::kOk);
  ASSERT_EQ(rb.status, Status::kOk);
  EXPECT_EQ(ra.passwords, rb.passwords);
  EXPECT_EQ(ra.log_probs, rb.log_probs);
}

TEST_F(ServeTest, OrderedValidatesAtAdmission) {
  ServiceConfig cfg;
  cfg.max_ordered_top_k = 16;
  GuessService svc(*model_, *patterns_, cfg);

  Request zero;
  zero.kind = RequestKind::kOrdered;
  zero.pattern = "N2";
  zero.top_k = 0;
  Response r = svc.submit_and_wait(std::move(zero));
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_EQ(r.reject, Reject::kBadRequest);
  EXPECT_NE(r.error.find("top_k"), std::string::npos) << r.error;

  Request big;
  big.kind = RequestKind::kOrdered;
  big.pattern = "N2";
  big.top_k = 17;
  r = svc.submit_and_wait(std::move(big));
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_EQ(r.reject, Reject::kBadRequest);
  EXPECT_NE(r.error.find("max_ordered_top_k"), std::string::npos) << r.error;

  Request neg;
  neg.kind = RequestKind::kOrdered;
  neg.pattern = "N2";
  neg.top_k = 4;
  neg.deadline_ms = -1.0;
  r = svc.submit_and_wait(std::move(neg));
  EXPECT_EQ(r.status, Status::kRejected);
  EXPECT_EQ(r.reject, Reject::kBadRequest);
  EXPECT_NE(r.error.find("deadline_ms"), std::string::npos) << r.error;

  // Exactly at the cap is admitted and served.
  Request ok;
  ok.kind = RequestKind::kOrdered;
  ok.pattern = "N2";
  ok.top_k = 16;
  r = svc.submit_and_wait(std::move(ok));
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.passwords.size(), 16u);
}

TEST_F(ServeTest, OrderedDeadlineIsAnytime) {
  // A search deadline is a soft stop, not a failure: the request completes
  // kOk with however many best-first guesses were emitted in time.
  GuessService svc(*model_, *patterns_, {});
  Request r;
  r.kind = RequestKind::kOrdered;
  r.pattern = "L6N2";
  r.top_k = 400;
  r.deadline_ms = 0.001;
  const Response resp = svc.submit_and_wait(std::move(r));
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_LE(resp.passwords.size(), 400u);
  EXPECT_EQ(resp.log_probs.size(), resp.passwords.size());
  for (std::size_t i = 1; i < resp.log_probs.size(); ++i)
    EXPECT_LE(resp.log_probs[i], resp.log_probs[i - 1]);
}

// --- Wire protocol ----------------------------------------------------------

TEST(ServeWire, ParsesFullGuessRequest) {
  std::string err;
  const auto req = serve::parse_request_line(
      R"({"op":"guess","id":"r1","kind":"prefix","pattern":"L4N2",)"
      R"("prefix":"Ab","count":10,"seed":42,"timeout_ms":250.5,"strict":false})",
      &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->op, serve::WireRequest::Op::kGuess);
  EXPECT_EQ(req->id, "r1");
  EXPECT_EQ(req->guess.kind, RequestKind::kPrefix);
  EXPECT_EQ(req->guess.pattern, "L4N2");
  EXPECT_EQ(req->guess.prefix, "Ab");
  EXPECT_EQ(req->guess.count, 10u);
  EXPECT_EQ(req->guess.seed, 42u);
  EXPECT_DOUBLE_EQ(req->guess.timeout_ms, 250.5);
  EXPECT_FALSE(req->guess.strict);
}

TEST(ServeWire, ParsesOrderedRequest) {
  std::string err;
  const auto req = serve::parse_request_line(
      R"({"op":"guess","id":"r2","kind":"ordered","pattern":"L6N2",)"
      R"("top_k":50,"deadline_ms":200})",
      &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->op, serve::WireRequest::Op::kGuess);
  EXPECT_EQ(req->id, "r2");
  EXPECT_EQ(req->guess.kind, RequestKind::kOrdered);
  EXPECT_EQ(req->guess.pattern, "L6N2");
  EXPECT_EQ(req->guess.top_k, 50u);
  EXPECT_DOUBLE_EQ(req->guess.deadline_ms, 200.0);
  // Unset fields keep their defaults.
  const auto bare = serve::parse_request_line(R"({"kind":"ordered"})");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->guess.top_k, 0u);
  EXPECT_DOUBLE_EQ(bare->guess.deadline_ms, 0.0);
}

TEST(ServeWire, DefaultsAndOtherOps) {
  auto req = serve::parse_request_line(R"({"pattern":"L8"})");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->op, serve::WireRequest::Op::kGuess);
  EXPECT_EQ(req->guess.kind, RequestKind::kPattern);
  EXPECT_EQ(req->guess.count, 1u);
  EXPECT_TRUE(req->guess.strict);
  req = serve::parse_request_line(R"({"op":"stats","id":"s"})");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->op, serve::WireRequest::Op::kStats);
  req = serve::parse_request_line(R"({"op":"shutdown"})");
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->op, serve::WireRequest::Op::kShutdown);
}

TEST(ServeWire, RejectsMalformedLines) {
  const char* bad[] = {
      "not json",
      "[1,2,3]",                               // not an object
      R"({"op":"frobnicate"})",                // unknown op
      R"({"kind":"sideways"})",                // unknown kind
      R"({"count":-3})",                       // negative count
      R"({"count":1.5})",                      // fractional count
      R"({"count":"many"})",                   // mistyped count
      R"({"timeout_ms":-1})",                  // negative deadline
      R"({"strict":"yes"})",                   // mistyped bool
      R"({"pattern":7})",                      // mistyped string
      R"({"kind":"ordered","top_k":-1})",      // negative top_k
      R"({"top_k":2.5})",                      // fractional top_k
      R"({"deadline_ms":-10})",                // negative search deadline
  };
  for (const char* line : bad) {
    std::string err;
    EXPECT_FALSE(serve::parse_request_line(line, &err).has_value()) << line;
    EXPECT_FALSE(err.empty()) << line;
  }
}

TEST(ServeWire, FormatsResponses) {
  Response ok;
  ok.status = Status::kOk;
  ok.passwords = {"abc1", "x\"y\\z"};
  ok.invalid = 1;
  ok.queue_ms = 0.5;
  ok.total_ms = 2.0;
  const std::string line = serve::format_response("r9", ok);
  EXPECT_NE(line.find("\"id\":\"r9\""), std::string::npos);
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("x\\\"y\\\\z"), std::string::npos);

  Response rej;
  rej.status = Status::kRejected;
  rej.reject = Reject::kQueueFull;
  rej.error = "admission queue is full";
  const std::string rline = serve::format_response("r2", rej);
  EXPECT_NE(rline.find("\"reject\":\"queue_full\""), std::string::npos);
  EXPECT_NE(rline.find("admission queue is full"), std::string::npos);
}

TEST(ServeWire, FormatsOrderedLogProbs) {
  Response ok;
  ok.status = Status::kOk;
  ok.passwords = {"aaaa11", "aaab12"};
  ok.log_probs = {-3.5, -4.25};
  const std::string line = serve::format_response("o1", ok);
  EXPECT_NE(line.find("\"log_probs\":[-3.5,-4.25]"), std::string::npos)
      << line;

  // Sampled responses carry no log_probs field at all.
  Response sampled;
  sampled.status = Status::kOk;
  sampled.passwords = {"aaaa11"};
  EXPECT_EQ(serve::format_response("s1", sampled).find("log_probs"),
            std::string::npos);
}

TEST(ServeWire, StreamLoopAnswersEveryLineInOrder) {
  gpt::GptModel model(gpt::Config::tiny(), 31);
  pcfg::PatternDistribution patterns;
  patterns.add("L4N2");
  patterns.finalize();
  GuessService svc(model, patterns, {});
  std::istringstream in(
      "{\"op\":\"guess\",\"id\":\"a\",\"pattern\":\"L4N2\",\"count\":2}\n"
      "garbage\n"
      "{\"op\":\"stats\",\"id\":\"b\"}\n"
      "{\"op\":\"shutdown\",\"id\":\"c\"}\n"
      "{\"op\":\"guess\",\"id\":\"never-read\"}\n");
  std::ostringstream out;
  EXPECT_TRUE(serve::serve_stream(svc, in, out));
  std::vector<std::string> lines;
  std::istringstream result(out.str());
  for (std::string line; std::getline(result, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // shutdown stops the reader
  EXPECT_NE(lines[0].find("\"id\":\"a\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[1].find("bad_request"), std::string::npos);
  EXPECT_NE(lines[2].find("\"op\":\"stats\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"op\":\"shutdown\""), std::string::npos);
}

}  // namespace
}  // namespace ppg
