#include "baselines/rules.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace ppg::baselines {
namespace {

std::string apply(const std::string& rule, const std::string& word) {
  const auto parsed = Rule::parse(rule);
  EXPECT_TRUE(parsed.has_value()) << rule;
  return parsed ? parsed->apply(word) : "";
}

TEST(Rule, NoopPassesThrough) { EXPECT_EQ(apply(":", "Pass123"), "Pass123"); }

TEST(Rule, CaseOperations) {
  EXPECT_EQ(apply("l", "PaSs"), "pass");
  EXPECT_EQ(apply("u", "PaSs"), "PASS");
  EXPECT_EQ(apply("c", "pASS"), "Pass");
  EXPECT_EQ(apply("C", "pass"), "pASS");
  EXPECT_EQ(apply("t", "PaSs1"), "pAsS1");
}

TEST(Rule, StructuralOperations) {
  EXPECT_EQ(apply("r", "abc"), "cba");
  EXPECT_EQ(apply("d", "ab"), "abab");
  EXPECT_EQ(apply("[", "abc"), "bc");
  EXPECT_EQ(apply("]", "abc"), "ab");
  EXPECT_EQ(apply("[", ""), "");
  EXPECT_EQ(apply("]", ""), "");
}

TEST(Rule, AppendPrepend) {
  EXPECT_EQ(apply("$1", "pass"), "pass1");
  EXPECT_EQ(apply("$1$2$3", "pass"), "pass123");
  EXPECT_EQ(apply("^x", "pass"), "xpass");
  EXPECT_EQ(apply("^b^a", "c"), "abc");  // prepend order: each op prepends
}

TEST(Rule, SubstituteAndPurge) {
  EXPECT_EQ(apply("sa@", "banana"), "b@n@n@");
  EXPECT_EQ(apply("se3so0", "onehole"), "0n3h0l3");
  EXPECT_EQ(apply("@a", "banana"), "bnn");
}

TEST(Rule, PositionalOperations) {
  EXPECT_EQ(apply("T0", "pass"), "Pass");
  EXPECT_EQ(apply("T2", "pass"), "paSs");
  EXPECT_EQ(apply("T9", "pass"), "pass");  // out of range: no-op
  EXPECT_EQ(apply("z2", "ab"), "aaab");
  EXPECT_EQ(apply("Z2", "ab"), "abbb");
}

TEST(Rule, CompositionAppliesLeftToRight) {
  EXPECT_EQ(apply("c$1$2$3", "password"), "Password123");
  EXPECT_EQ(apply("se3 c", "test"), "T3st");
}

TEST(Rule, ParseRejectsMalformed) {
  EXPECT_FALSE(Rule::parse("x").has_value());     // unknown op
  EXPECT_FALSE(Rule::parse("$").has_value());     // missing operand
  EXPECT_FALSE(Rule::parse("se").has_value());    // truncated substitute
  EXPECT_FALSE(Rule::parse("Tx").has_value());    // non-digit position
  EXPECT_FALSE(Rule::parse("z").has_value());
}

TEST(Rule, EmptyRuleIsIdentity) {
  const auto rule = Rule::parse("");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->apply("abc"), "abc");
}

TEST(RuleAttack, CountsRejectedRules) {
  const std::vector<std::string> lines = {":", "c", "BADRULE%", "$1"};
  const RuleAttack attack(lines, {"word"});
  EXPECT_EQ(attack.rule_count(), 3u);
  EXPECT_EQ(attack.rejected_rules(), 1u);
}

TEST(RuleAttack, EnumeratesRuleMajor) {
  const std::vector<std::string> lines = {":", "$1"};
  const RuleAttack attack(lines, {"aa", "bb"});
  const auto out = attack.enumerate(10);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], "aa");
  EXPECT_EQ(out[1], "bb");
  EXPECT_EQ(out[2], "aa1");
  EXPECT_EQ(out[3], "bb1");
}

TEST(RuleAttack, RespectsBudget) {
  const std::vector<std::string> lines = {":", "c", "u"};
  const RuleAttack attack(lines, {"one", "two", "three"});
  EXPECT_EQ(attack.enumerate(5).size(), 5u);
  EXPECT_EQ(attack.capacity(), 9u);
}

TEST(RuleAttack, SkipsEmptyTransformations) {
  const std::vector<std::string> lines = {"[", ":"};
  const RuleAttack attack(lines, {"a"});
  // "[" on "a" yields "" which is skipped; only ":" output remains.
  const auto out = attack.enumerate(10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "a");
}

TEST(RuleAttack, StockRulesAllParse) {
  const auto lines = RuleAttack::stock_rules();
  const RuleAttack attack(lines, {"password"});
  EXPECT_EQ(attack.rejected_rules(), 0u);
  EXPECT_GT(attack.rule_count(), 40u);
}

TEST(RuleAttack, StockRulesGenerateClassicMangles) {
  const auto lines = RuleAttack::stock_rules();
  const RuleAttack attack(lines, {"password", "monkey"});
  const auto out = attack.enumerate(attack.capacity());
  const std::unordered_set<std::string> set(out.begin(), out.end());
  EXPECT_TRUE(set.contains("password"));
  EXPECT_TRUE(set.contains("Password"));
  EXPECT_TRUE(set.contains("password1"));
  EXPECT_TRUE(set.contains("monkey123"));
  EXPECT_TRUE(set.contains("p@ssword"));
  EXPECT_TRUE(set.contains("passw0rd"));
}

}  // namespace
}  // namespace ppg::baselines
