#include "pcfg/pcfg_model.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

namespace ppg::pcfg {
namespace {

std::vector<std::string> fixture_passwords() {
  // 10 passwords: 5x L4N2, 3x L3, 2x N4.
  return {"pass12", "word34", "love99", "blue00", "cool77",
          "abc",    "dog",    "cat",    "1234",   "9876"};
}

TEST(PatternDistribution, ProbabilitiesMatchCounts) {
  PatternDistribution d;
  for (const auto& pw : fixture_passwords()) d.add(pattern_of(pw));
  d.finalize();
  EXPECT_DOUBLE_EQ(d.prob("L4N2"), 0.5);
  EXPECT_DOUBLE_EQ(d.prob("L3"), 0.3);
  EXPECT_DOUBLE_EQ(d.prob("N4"), 0.2);
  EXPECT_DOUBLE_EQ(d.prob("S9"), 0.0);
  EXPECT_EQ(d.distinct(), 3u);
  EXPECT_EQ(d.total(), 10u);
}

TEST(PatternDistribution, SortedDescending) {
  PatternDistribution d;
  for (const auto& pw : fixture_passwords()) d.add(pattern_of(pw));
  d.finalize();
  const auto& s = d.sorted();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].first, "L4N2");
  EXPECT_EQ(s[1].first, "L3");
  EXPECT_EQ(s[2].first, "N4");
}

TEST(PatternDistribution, TopKAndSegmentsFilter) {
  PatternDistribution d;
  for (const auto& pw : fixture_passwords()) d.add(pattern_of(pw));
  d.finalize();
  EXPECT_EQ(d.top_k(2).size(), 2u);
  const auto one_seg = d.top_k_with_segments(10, 1);
  ASSERT_EQ(one_seg.size(), 2u);
  EXPECT_EQ(one_seg[0].first, "L3");
  EXPECT_EQ(one_seg[1].first, "N4");
  EXPECT_EQ(d.top_k_with_segments(10, 2).size(), 1u);
}

TEST(PatternDistribution, GuardsAgainstMisuse) {
  PatternDistribution d;
  EXPECT_THROW(d.prob("L1"), std::logic_error);
  EXPECT_THROW(d.finalize(), std::logic_error);  // no observations
  d.add("L1");
  d.finalize();
  EXPECT_THROW(d.add("L2"), std::logic_error);
  EXPECT_THROW(d.finalize(), std::logic_error);
}

TEST(PatternDistribution, SampleFollowsProbabilities) {
  PatternDistribution d;
  d.add("L4", 80);
  d.add("N4", 20);
  d.finalize();
  Rng rng(1);
  int l4 = 0;
  for (int i = 0; i < 5000; ++i)
    if (d.sample(rng) == "L4") ++l4;
  EXPECT_NEAR(double(l4) / 5000.0, 0.8, 0.03);
}

TEST(PatternDistribution, SaveLoadRoundTrip) {
  PatternDistribution d;
  for (const auto& pw : fixture_passwords()) d.add(pattern_of(pw));
  d.finalize();
  std::stringstream ss;
  BinaryWriter w(ss);
  d.save(w);
  BinaryReader r(ss);
  const PatternDistribution e = PatternDistribution::load(r);
  EXPECT_EQ(e.total(), d.total());
  EXPECT_DOUBLE_EQ(e.prob("L4N2"), 0.5);
  EXPECT_EQ(e.sorted(), d.sorted());
}

TEST(PcfgModel, TrainRejectsEmptyAndRetrain) {
  PcfgModel m;
  std::vector<std::string> none;
  EXPECT_THROW(m.train(none), std::invalid_argument);
  const auto pws = fixture_passwords();
  PcfgModel m2;
  m2.train(pws);
  EXPECT_THROW(m2.train(pws), std::logic_error);
}

TEST(PcfgModel, SampleConformsToTrainingDistribution) {
  PcfgModel m;
  const auto pws = fixture_passwords();
  m.train(pws);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::string s = m.sample(rng);
    const std::string pat = pattern_of(s);
    EXPECT_TRUE(pat == "L4N2" || pat == "L3" || pat == "N4") << s;
  }
}

TEST(PcfgModel, SampleWithPatternHonoursPattern) {
  PcfgModel m;
  const auto pws = fixture_passwords();
  m.train(pws);
  Rng rng(3);
  const auto segs = *parse_pattern("L4N2");
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(matches_pattern(m.sample_with_pattern(segs, rng), segs));
}

TEST(PcfgModel, SampleWithUnseenSpecFallsBackToUniform) {
  PcfgModel m;
  const auto pws = fixture_passwords();
  m.train(pws);
  Rng rng(4);
  const auto segs = *parse_pattern("S2L1");  // S2 never seen in training
  const std::string s = m.sample_with_pattern(segs, rng);
  EXPECT_TRUE(matches_pattern(s, segs)) << s;
}

TEST(PcfgModel, LogProbConsistentWithComposition) {
  PcfgModel m;
  const auto pws = fixture_passwords();
  m.train(pws);
  // P("pass12") = P(L4N2) * P("pass"|L4) * P("12"|N2) = 0.5 * 0.2 * 0.2
  EXPECT_NEAR(m.log_prob("pass12"), std::log(0.5 * 0.2 * 0.2), 1e-9);
  // Unseen segment content.
  EXPECT_LT(m.log_prob("zzzz99"), -1e29);
  // Unseen pattern.
  EXPECT_LT(m.log_prob("!!!!"), -1e29);
}

TEST(PcfgModel, EnumerateDescendingProbability) {
  PcfgModel m;
  std::vector<std::string> pws;
  // Skewed corpus: "love" dominates L4, "12" dominates N2.
  for (int i = 0; i < 6; ++i) pws.push_back("love12");
  pws.push_back("love34");
  pws.push_back("cool12");
  pws.push_back("abc");
  m.train(pws);
  const auto out = m.enumerate(20);
  ASSERT_FALSE(out.empty());
  // Probabilities must be non-increasing.
  double prev = 1e9;
  for (const auto& pw : out) {
    const double lp = m.log_prob(pw);
    EXPECT_LE(lp, prev + 1e-9) << pw;
    prev = lp;
  }
  // The single most likely guess is the dominant composition.
  EXPECT_EQ(out[0], "love12");
}

TEST(PcfgModel, EnumerateProducesDistinctGuesses) {
  PcfgModel m;
  const auto pws = fixture_passwords();
  m.train(pws);
  const auto out = m.enumerate(100);
  std::unordered_set<std::string> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), out.size());
}

TEST(PcfgModel, EnumerateExhaustsFiniteSpace) {
  PcfgModel m;
  std::vector<std::string> pws = {"ab", "cd", "ab12", "cd34"};
  m.train(pws);
  // Space: patterns {L2, L2N2}; fillers L2∈{ab,cd}, N2∈{12,34}
  // → 2 + 2*2 = 6 distinct guesses at most.
  const auto out = m.enumerate(100);
  EXPECT_EQ(out.size(), 6u);
}

TEST(PcfgModel, EnumerationMatchesSampleSupport) {
  PcfgModel m;
  const auto pws = fixture_passwords();
  m.train(pws);
  const auto out = m.enumerate(1000);
  // Every training password is reachable.
  for (const auto& pw : pws)
    EXPECT_NE(std::find(out.begin(), out.end(), pw), out.end()) << pw;
}

}  // namespace
}  // namespace ppg::pcfg
