#include "common/cli.h"

#include <gtest/gtest.h>

namespace ppg {
namespace {

Cli make_cli(std::vector<const char*> args, std::vector<std::string> allowed) {
  args.insert(args.begin(), "prog");
  return Cli(static_cast<int>(args.size()),
             const_cast<char**>(args.data()), std::move(allowed));
}

TEST(Cli, EqualsForm) {
  const auto cli = make_cli({"--scale=3"}, {"scale"});
  EXPECT_EQ(cli.get_int("scale", 0), 3);
}

TEST(Cli, SpaceForm) {
  const auto cli = make_cli({"--name", "rockyou"}, {"name"});
  EXPECT_EQ(cli.get("name"), "rockyou");
}

TEST(Cli, BareBooleanFlag) {
  const auto cli = make_cli({"--verbose"}, {"verbose"});
  EXPECT_TRUE(cli.get_bool("verbose"));
}

TEST(Cli, DefaultsWhenAbsent) {
  const auto cli = make_cli({}, {"scale"});
  EXPECT_FALSE(cli.has("scale"));
  EXPECT_EQ(cli.get_int("scale", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 0.5), 0.5);
  EXPECT_EQ(cli.get("scale", "x"), "x");
  EXPECT_FALSE(cli.get_bool("scale"));
}

TEST(Cli, UnknownFlagThrows) {
  EXPECT_THROW(make_cli({"--nope=1"}, {"scale"}), std::invalid_argument);
}

TEST(Cli, PositionalArgumentsRejected) {
  EXPECT_THROW(make_cli({"positional"}, {"scale"}), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  const auto cli = make_cli({"--lr=0.125"}, {"lr"});
  EXPECT_DOUBLE_EQ(cli.get_double("lr", 0.0), 0.125);
}

TEST(Cli, BoolStringForms) {
  const auto cli =
      make_cli({"--a=true", "--b=yes", "--c=0", "--d=false"},
               {"a", "b", "c", "d"});
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_TRUE(cli.get_bool("b"));
  EXPECT_FALSE(cli.get_bool("c"));
  EXPECT_FALSE(cli.get_bool("d"));
}

TEST(Cli, MultipleFlagsMixedForms) {
  const auto cli = make_cli({"--scale", "2", "--name=test", "--fast"},
                            {"scale", "name", "fast"});
  EXPECT_EQ(cli.get_int("scale", 0), 2);
  EXPECT_EQ(cli.get("name"), "test");
  EXPECT_TRUE(cli.get_bool("fast"));
}

}  // namespace
}  // namespace ppg
