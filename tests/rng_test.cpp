#include "common/rng.h"

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ppg {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(123), b(124);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, NamedComponentDerivationDecorrelates) {
  Rng a(7, "site-a"), b(7, "site-b");
  EXPECT_NE(a(), b());
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(55);
  const auto first = a();
  a.reseed(55);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_u64(17), 17u);
}

TEST(Rng, UniformU64CoversAllResidues) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformU64RejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(2, 1), std::invalid_argument);
}

TEST(Rng, UniformDoubleInHalfOpenUnit) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(7);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Rng, DiscreteFollowsWeights) {
  Rng rng(9);
  const std::array<double, 3> w = {1.0, 2.0, 7.0};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i)
    counts[rng.discrete(std::span<const double>(w.data(), w.size()))]++;
  EXPECT_NEAR(double(counts[0]) / n, 0.1, 0.02);
  EXPECT_NEAR(double(counts[1]) / n, 0.2, 0.02);
  EXPECT_NEAR(double(counts[2]) / n, 0.7, 0.02);
}

TEST(Rng, DiscreteRejectsEmptyAndZero) {
  Rng rng(10);
  std::vector<double> empty;
  EXPECT_THROW(rng.discrete(empty), std::invalid_argument);
  const std::array<double, 2> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.discrete(std::span<const double>(zeros.data(), 2)),
               std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ZipfHeadHeavierThanTail) {
  Rng rng(12);
  std::array<int, 10> counts{};
  for (int i = 0; i < 20000; ++i) counts[rng.zipf(10, 1.0)]++;
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(ZipfTable, MatchesDirectZipfDistribution) {
  Rng rng(13);
  const ZipfTable table(50, 1.0);
  std::array<int, 50> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) counts[table.sample(rng)]++;
  // Rank 0 should have about 1/H(50) of the mass ≈ 0.2225.
  EXPECT_NEAR(double(counts[0]) / n, 0.2225, 0.02);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[40]);
}

TEST(ZipfTable, RejectsEmpty) {
  EXPECT_THROW(ZipfTable(0, 1.0), std::invalid_argument);
}

TEST(Hash64, StableAndDistinct) {
  EXPECT_EQ(hash64("rockyou"), hash64("rockyou"));
  EXPECT_NE(hash64("rockyou"), hash64("linkedin"));
  EXPECT_NE(hash64(""), hash64("a"));
}

}  // namespace
}  // namespace ppg
