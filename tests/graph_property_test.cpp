// Parameterised property sweeps over the autograd ops: gradient checks and
// algebraic identities across a grid of shapes and seeds.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/graph.h"
#include "test_util.h"

namespace ppg::nn {
namespace {

using ppg::testing::expect_gradients_match;
using ppg::testing::random_tensor;

struct ShapeCase {
  Index m, k, n;
  std::uint64_t seed;
};

class MatmulSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(MatmulSweep, GradcheckAcrossShapes) {
  const auto& p = GetParam();
  Tensor a = random_tensor({p.m, p.k}, p.seed, 0.7f);
  Tensor b = random_tensor({p.k, p.n}, p.seed + 1, 0.7f);
  expect_gradients_match(
      [&](Graph& g) { return g.mean_all(g.tanh_op(g.matmul(a, b))); }, {a, b});
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSweep,
    ::testing::Values(ShapeCase{1, 1, 1, 100}, ShapeCase{1, 7, 3, 101},
                      ShapeCase{5, 1, 4, 102}, ShapeCase{4, 6, 1, 103},
                      ShapeCase{3, 3, 3, 104}, ShapeCase{2, 9, 5, 105}));

class AttentionSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(AttentionSweep, GradcheckAcrossGeometries) {
  // Reuse ShapeCase as (batch, time, heads); d per head fixed at 2.
  const auto& p = GetParam();
  const Index d = p.n * 2;
  Tensor qkv = random_tensor({p.m * p.k, 3 * d}, p.seed, 0.6f);
  Tensor w = random_tensor({p.m * p.k, d}, p.seed + 1);
  expect_gradients_match(
      [&](Graph& g) {
        return g.sum_all(g.mul(g.causal_self_attention(qkv, p.m, p.k, p.n), w));
      },
      {qkv, w}, 1e-2f, 5e-2f);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AttentionSweep,
    ::testing::Values(ShapeCase{1, 1, 1, 200}, ShapeCase{1, 4, 2, 201},
                      ShapeCase{3, 2, 1, 202}, ShapeCase{2, 5, 3, 203}));

class SeededIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededIdentity, SoftmaxInvariantToRowShift) {
  // softmax(x + c·1) == softmax(x) for every row shift c.
  Graph g;
  const Tensor x = random_tensor({4, 6}, GetParam(), 1.5f);
  const Tensor a = g.softmax_rows(x);
  const Tensor b = g.softmax_rows(g.add_scalar(x, 3.7f));
  for (std::size_t i = 0; i < a.numel(); ++i)
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-5f);
}

TEST_P(SeededIdentity, LayernormInvariantToAffineInput) {
  // layernorm(a·x + b·1) == layernorm(x) for a > 0 (mean/variance removal).
  Graph g;
  const Tensor x = random_tensor({3, 8}, GetParam(), 1.f);
  Tensor gain({8}), bias({8});
  gain.fill(1.f);
  const Tensor y1 = g.layernorm(x, gain, bias);
  const Tensor y2 =
      g.layernorm(g.add_scalar(g.scale(x, 2.5f), -1.3f), gain, bias);
  for (std::size_t i = 0; i < y1.numel(); ++i)
    EXPECT_NEAR(y1.data()[i], y2.data()[i], 2e-4f);
}

TEST_P(SeededIdentity, MatmulDistributesOverAdd) {
  // (A+B)·C == A·C + B·C.
  Graph g;
  const Tensor a = random_tensor({3, 4}, GetParam(), 1.f);
  const Tensor b = random_tensor({3, 4}, GetParam() + 1, 1.f);
  const Tensor c = random_tensor({4, 5}, GetParam() + 2, 1.f);
  const Tensor lhs = g.matmul(g.add(a, b), c);
  const Tensor rhs = g.add(g.matmul(a, c), g.matmul(b, c));
  for (std::size_t i = 0; i < lhs.numel(); ++i)
    EXPECT_NEAR(lhs.data()[i], rhs.data()[i], 1e-4f);
}

TEST_P(SeededIdentity, CrossEntropyEqualsManualLogSoftmax) {
  Graph g;
  const Tensor logits = random_tensor({3, 5}, GetParam(), 1.2f);
  const std::vector<int> targets = {1, 4, 0};
  const Tensor loss = g.cross_entropy(logits, targets, -1);
  double manual = 0.0;
  for (Index i = 0; i < 3; ++i) {
    double mx = logits.at(i, 0);
    for (Index j = 1; j < 5; ++j) mx = std::max<double>(mx, logits.at(i, j));
    double z = 0.0;
    for (Index j = 0; j < 5; ++j) z += std::exp(double(logits.at(i, j)) - mx);
    manual += std::log(z) + mx - double(logits.at(i, targets[i]));
  }
  EXPECT_NEAR(loss.at(0), manual / 3.0, 1e-4);
}

TEST_P(SeededIdentity, GradAccumulationIsAdditiveAcrossBackwards) {
  // Two separate graphs over the same parameters accumulate gradients.
  Tensor x = random_tensor({4}, GetParam(), 1.f);
  {
    Graph g;
    g.backward(g.sum_all(g.square(x)));
  }
  std::vector<float> once(x.grad().begin(), x.grad().end());
  {
    Graph g;
    g.backward(g.sum_all(g.square(x)));
  }
  for (std::size_t i = 0; i < x.numel(); ++i)
    EXPECT_NEAR(x.grad()[i], 2 * once[i], 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededIdentity,
                         ::testing::Values(301, 302, 303, 304, 305));

}  // namespace
}  // namespace ppg::nn
