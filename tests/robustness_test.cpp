// Failure injection and hostile-input robustness across modules.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/dcgen.h"
#include "gpt/infer.h"
#include "gpt/model.h"
#include "pcfg/pcfg_model.h"
#include "tokenizer/tokenizer.h"

namespace ppg {
namespace {

namespace fs = std::filesystem;

class CheckpointCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() / "ppg_robust.ckpt").string();
    gpt::GptModel m(gpt::Config::tiny(), 1);
    m.save(path_);
  }
  void TearDown() override { fs::remove(path_); }
  std::string path_;
};

TEST_F(CheckpointCorruption, TruncatedFileRejected) {
  const auto size = fs::file_size(path_);
  fs::resize_file(path_, size / 2);
  gpt::GptModel m(gpt::Config::tiny(), 2);
  EXPECT_THROW(m.load(path_), std::runtime_error);
}

TEST_F(CheckpointCorruption, BadMagicRejected) {
  {
    std::fstream f(path_, std::ios::in | std::ios::out | std::ios::binary);
    f.write("XXXX", 4);
  }
  gpt::GptModel m(gpt::Config::tiny(), 3);
  EXPECT_THROW(m.load(path_), std::runtime_error);
}

TEST_F(CheckpointCorruption, EmptyFileRejected) {
  fs::resize_file(path_, 0);
  gpt::GptModel m(gpt::Config::tiny(), 4);
  EXPECT_THROW(m.load(path_), std::runtime_error);
}

TEST(TokenizerRobustness, GarbageIdsDecodeDefensively) {
  // Out-of-range ids in the password region must not crash decode.
  const std::vector<int> ids = {tok::Tokenizer::kBos, tok::Tokenizer::kSep,
                                999, tok::Tokenizer::kEos};
  EXPECT_FALSE(tok::Tokenizer::decode_password(ids).has_value());
  EXPECT_NE(tok::Tokenizer::decode_debug(ids).find("<BAD:999>"),
            std::string::npos);
}

TEST(TokenizerRobustness, EmptySequenceDecodes) {
  const std::vector<int> empty;
  EXPECT_FALSE(tok::Tokenizer::decode_password(empty).has_value());
  EXPECT_EQ(tok::Tokenizer::decode_debug(empty), "");
}

TEST(InferenceRobustness, PrimeLongerThanContextThrows) {
  const gpt::GptModel m(gpt::Config::tiny(), 5);
  gpt::InferenceSession s(m);
  s.reset(1);
  const std::vector<int> prefix(
      static_cast<std::size_t>(m.config().context) + 1, 0);
  EXPECT_THROW(s.prime(prefix), std::runtime_error);
}

TEST(InferenceRobustness, EmptyPrimeThrows) {
  const gpt::GptModel m(gpt::Config::tiny(), 6);
  gpt::InferenceSession s(m);
  s.reset(1);
  EXPECT_THROW(s.prime({}), std::invalid_argument);
}

TEST(DcGenRobustness, UnparseablePatternsSkipped) {
  // A hand-built distribution with hostile pattern strings: D&C-GEN must
  // skip what it cannot parse or represent and still serve the rest.
  const gpt::GptModel m(gpt::Config::tiny(), 7);
  pcfg::PatternDistribution dist;
  dist.add("garbage!!", 5);
  dist.add("L99", 5);  // parseable but not representable (max 12)
  dist.add("N2", 10);
  dist.finalize();
  core::DcGenConfig cfg;
  cfg.total = 50;
  cfg.threshold = 16;
  core::DcGenStats stats;
  const auto out = core::dc_generate(m, dist, cfg, 8, &stats);
  for (const auto& pw : out) EXPECT_EQ(pcfg::pattern_of(pw), "N2");
}

TEST(DcGenRobustness, AllPatternsUnusableYieldsEmpty) {
  const gpt::GptModel m(gpt::Config::tiny(), 9);
  pcfg::PatternDistribution dist;
  dist.add("bogus", 1);
  dist.finalize();
  core::DcGenConfig cfg;
  cfg.total = 100;
  cfg.threshold = 16;
  EXPECT_TRUE(core::dc_generate(m, dist, cfg, 10).empty());
}

TEST(PcfgRobustness, EnumerateZeroIsEmpty) {
  pcfg::PcfgModel model;
  const std::vector<std::string> pws = {"ab12", "cd34"};
  model.train(pws);
  EXPECT_TRUE(model.enumerate(0).empty());
}

TEST(PcfgRobustness, HostilePasswordsInTraining) {
  // Out-of-universe passwords are skipped; training still succeeds when at
  // least one usable password remains.
  pcfg::PcfgModel model;
  const std::vector<std::string> pws = {"has space", "p\xc3\xa4ss", "ok12"};
  model.train(pws);
  EXPECT_EQ(model.patterns().distinct(), 1u);
}

TEST(PatternRobustness, ClassAtNegativePosition) {
  const auto segs = *pcfg::parse_pattern("L2");
  // Negative positions fall before every segment: the first segment wins.
  EXPECT_EQ(pcfg::class_at(segs, 0), pcfg::CharClass::kLetter);
  EXPECT_FALSE(pcfg::class_at(segs, 2).has_value());
}

}  // namespace
}  // namespace ppg
