#include "eval/strength.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/markov.h"
#include "data/corpus.h"
#include "pcfg/pcfg_model.h"

namespace ppg::eval {
namespace {

/// A known closed-form model: passwords "p<k>" with P(k) ∝ geometric.
/// Guess number of "p<k>" is exactly k+1 (descending-probability order).
struct GeometricModel {
  static constexpr int kMax = 64;
  double prob(int k) const {
    // P(k) = 0.5^{k+1}, truncated and renormalised over k in [0, kMax).
    const double z = 1.0 - std::pow(0.5, kMax);
    return std::pow(0.5, k + 1) / z;
  }
  std::string sample(Rng& rng) const {
    const double u = rng.uniform();
    double acc = 0.0;
    for (int k = 0; k < kMax; ++k) {
      acc += prob(k);
      if (u < acc) return "p" + std::to_string(k);
    }
    return "p" + std::to_string(kMax - 1);
  }
  double log_prob(std::string_view pw) const {
    if (pw.size() < 2 || pw[0] != 'p') return -1e30;
    const int k = std::atoi(std::string(pw.substr(1)).c_str());
    if (k < 0 || k >= kMax) return -1e30;
    return std::log(prob(k));
  }
};

TEST(StrengthEstimator, MatchesClosedFormGuessNumbers) {
  const GeometricModel model;
  Rng rng(1);
  const StrengthEstimator meter(
      [&](Rng& r) { return model.sample(r); },
      [&](std::string_view pw) { return model.log_prob(pw); }, 40000, rng);
  // True guess number of "p<k>" is sum_{j<k} 1 rounded to ranks: k.
  // Accept 30% relative error from Monte-Carlo noise.
  for (const int k : {1, 3, 6, 9}) {
    const double g = meter.guess_number("p" + std::to_string(k));
    const double expected = k;  // k more-probable passwords precede it
    EXPECT_NEAR(g, expected, std::max(1.0, expected * 0.3)) << "k=" << k;
  }
}

TEST(StrengthEstimator, MonotoneInProbability) {
  const GeometricModel model;
  Rng rng(2);
  const StrengthEstimator meter(
      [&](Rng& r) { return model.sample(r); },
      [&](std::string_view pw) { return model.log_prob(pw); }, 20000, rng);
  double prev = 0.0;
  for (int k = 0; k < 12; ++k) {
    const double g = meter.guess_number("p" + std::to_string(k));
    EXPECT_GE(g, prev) << "k=" << k;
    prev = g;
  }
}

TEST(StrengthEstimator, ZeroProbabilityIsEffectivelyInfinite) {
  const GeometricModel model;
  Rng rng(3);
  const StrengthEstimator meter(
      [&](Rng& r) { return model.sample(r); },
      [&](std::string_view pw) { return model.log_prob(pw); }, 1000, rng);
  EXPECT_GE(meter.guess_number("not-in-support"), 1e29);
}

TEST(StrengthEstimator, RejectsZeroSamples) {
  const GeometricModel model;
  Rng rng(4);
  EXPECT_THROW(StrengthEstimator(
                   [&](Rng& r) { return model.sample(r); },
                   [&](std::string_view pw) { return model.log_prob(pw); }, 0,
                   rng),
               std::invalid_argument);
}

TEST(StrengthEstimator, RejectsInconsistentSamplerScorer) {
  Rng rng(5);
  EXPECT_THROW(
      StrengthEstimator([](Rng&) { return std::string("x"); },
                        [](std::string_view) { return -1e30; }, 100, rng),
      std::runtime_error);
}

TEST(StrengthEstimator, WorksWithRealModels) {
  data::SiteProfile profile;
  profile.name = "strengthtest";
  profile.unique_target = 2000;
  const auto corpus = data::clean(data::generate_site(profile, 5));

  pcfg::PcfgModel model;
  model.train(corpus.passwords);
  Rng rng(6);
  const StrengthEstimator meter(
      [&](Rng& r) { return model.sample(r); },
      [&](std::string_view pw) { return model.log_prob(pw); }, 5000, rng);
  // A very common structure should be far weaker than a rare structure.
  const double common = meter.guess_number(corpus.passwords.front());
  EXPECT_LT(common, 1e29);
  const double rare = meter.guess_number("Zq9#xW2$uT7!");
  EXPECT_GT(rare, common);
}

TEST(StrengthEstimator, MarkovIntegration) {
  data::SiteProfile profile;
  profile.name = "strengthmarkov";
  profile.unique_target = 2000;
  const auto corpus = data::clean(data::generate_site(profile, 6));
  baselines::MarkovModel markov(2);
  markov.train(corpus.passwords);
  Rng rng(7);
  const StrengthEstimator meter(
      [&](Rng& r) { return markov.sample(r); },
      [&](std::string_view pw) { return markov.log_prob(pw); }, 5000, rng);
  EXPECT_GT(meter.sample_count(), 4000u);
  EXPECT_GT(meter.guess_number("zzzzQQ##99"),
            meter.guess_number(corpus.passwords.front()));
}

TEST(StrengthEstimator, BandsAreOrdered) {
  EXPECT_NE(StrengthEstimator::band(1e3), StrengthEstimator::band(1e5));
  EXPECT_NE(StrengthEstimator::band(1e5), StrengthEstimator::band(1e12));
  EXPECT_NE(StrengthEstimator::band(1e12), StrengthEstimator::band(1e15));
}

}  // namespace
}  // namespace ppg::eval
