// Golden tests for the hot-kernel atlas (src/obs/atlas.h) on hand-built
// Chrome traces: flame-graph self-time decomposition, per-name counts and
// percentiles, ranking, thread handling, and malformed-input behaviour.
#include "obs/atlas.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.h"

namespace obs = ppg::obs;

namespace {

const obs::AtlasEntry* find(const obs::Atlas& atlas, const std::string& name) {
  for (const auto& e : atlas.entries)
    if (e.name == name) return &e;
  return nullptr;
}

std::string ev(const char* name, const char* cat, int tid, double ts,
               double dur) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.1f,"
                "\"dur\":%.1f,\"pid\":1,\"tid\":%d}",
                name, cat, ts, dur, tid);
  return buf;
}

TEST(AtlasTest, GoldenNestedTrace) {
  // Thread 1: dcgen/leaf [0,100] containing infer/step [10,30] and
  // [40,70]. Thread 2: a lone infer/step [0,40].
  const std::string trace = "{\"traceEvents\":[" + ev("dcgen/leaf", "dcgen", 1, 0, 100) +
                            "," + ev("infer/step", "gpt", 1, 10, 20) + "," +
                            ev("infer/step", "gpt", 1, 40, 30) + "," +
                            ev("infer/step", "gpt", 2, 0, 40) + "]}";
  std::string error;
  const auto atlas = obs::build_atlas_from_json(trace, &error);
  ASSERT_TRUE(atlas.has_value()) << error;

  EXPECT_EQ(atlas->events, 4u);
  EXPECT_EQ(atlas->threads, 2u);
  EXPECT_DOUBLE_EQ(atlas->wall_us, 100.0);

  const auto* leaf = find(*atlas, "dcgen/leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, 1u);
  EXPECT_DOUBLE_EQ(leaf->total_us, 100.0);
  // Self = 100 − (20 + 30) nested on the same thread; the thread-2 step
  // must NOT be subtracted.
  EXPECT_DOUBLE_EQ(leaf->self_us, 50.0);
  EXPECT_EQ(leaf->category, "dcgen");

  const auto* step = find(*atlas, "infer/step");
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->count, 3u);
  EXPECT_DOUBLE_EQ(step->total_us, 90.0);
  EXPECT_DOUBLE_EQ(step->self_us, 90.0);  // leaves: self == total
  // Exact nearest-rank percentiles over {20, 30, 40}.
  EXPECT_DOUBLE_EQ(step->p50_us, 30.0);
  EXPECT_DOUBLE_EQ(step->p99_us, 40.0);

  // Shares sum to 1 over Σself = 140 and ranking is by self time.
  EXPECT_NEAR(step->share, 90.0 / 140.0, 1e-12);
  EXPECT_NEAR(leaf->share, 50.0 / 140.0, 1e-12);
  ASSERT_EQ(atlas->entries.size(), 2u);
  EXPECT_EQ(atlas->entries[0].name, "infer/step");
}

TEST(AtlasTest, DeepNestingSubtractsEachChildOnce) {
  // a [0,100] > b [10,80] > c [20,30]: a.self = 100−80, b.self = 80−30.
  const std::string trace = "[" + ev("a", "", 1, 0, 100) + "," +
                            ev("b", "", 1, 10, 80) + "," +
                            ev("c", "", 1, 20, 30) + "]";
  const auto atlas = obs::build_atlas_from_json(trace);
  ASSERT_TRUE(atlas.has_value());
  EXPECT_DOUBLE_EQ(find(*atlas, "a")->self_us, 20.0);
  EXPECT_DOUBLE_EQ(find(*atlas, "b")->self_us, 50.0);
  EXPECT_DOUBLE_EQ(find(*atlas, "c")->self_us, 30.0);
}

TEST(AtlasTest, SiblingsDoNotNest) {
  // Two back-to-back spans sharing a boundary are siblings, not parent and
  // child: the first has ended (end <= next.start) when the second opens.
  const std::string trace = "[" + ev("s", "", 1, 0, 50) + "," +
                            ev("s", "", 1, 50, 50) + "]";
  const auto atlas = obs::build_atlas_from_json(trace);
  ASSERT_TRUE(atlas.has_value());
  const auto* s = find(*atlas, "s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 2u);
  EXPECT_DOUBLE_EQ(s->self_us, 100.0);
}

TEST(AtlasTest, MetadataAndInstantEventsAreIgnored) {
  const std::string trace =
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"main\"}},"
      "{\"name\":\"bench/start\",\"cat\":\"bench\",\"ph\":\"i\",\"ts\":0,"
      "\"s\":\"t\",\"pid\":1,\"tid\":1}," +
      ev("work", "", 1, 5, 10) + "]}";
  const auto atlas = obs::build_atlas_from_json(trace);
  ASSERT_TRUE(atlas.has_value());
  EXPECT_EQ(atlas->events, 1u);
  ASSERT_EQ(atlas->entries.size(), 1u);
  EXPECT_EQ(atlas->entries[0].name, "work");
}

TEST(AtlasTest, BareArrayAndEmptyTraceAccepted) {
  const auto bare = obs::build_atlas_from_json("[" + ev("x", "", 1, 0, 1) + "]");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->events, 1u);

  const auto empty = obs::build_atlas_from_json("{\"traceEvents\":[]}");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->events, 0u);
  EXPECT_TRUE(empty->entries.empty());
}

TEST(AtlasTest, MalformedInputReportsError) {
  std::string error;
  EXPECT_FALSE(obs::build_atlas_from_json("{\"traceEvents\":[", &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::build_atlas_from_json("{\"notTrace\":1}", &error)
                   .has_value());
  EXPECT_NE(error.find("traceEvents"), std::string::npos);
  // A missing file.
  EXPECT_FALSE(obs::build_atlas("/nonexistent/trace.json", &error)
                   .has_value());
}

TEST(AtlasTest, JsonOutputIsValidAndTopTruncates) {
  const std::string trace = "[" + ev("a", "", 1, 0, 100) + "," +
                            ev("b", "", 1, 200, 50) + "," +
                            ev("c", "", 1, 300, 10) + "]";
  const auto atlas = obs::build_atlas_from_json(trace);
  ASSERT_TRUE(atlas.has_value());

  const std::string json = obs::atlas_to_json(*atlas, 2);
  std::string error;
  EXPECT_TRUE(obs::validate_json(json, &error)) << error;
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"b\""), std::string::npos);
  EXPECT_EQ(json.find("\"c\""), std::string::npos);  // truncated by top=2

  const std::string text = obs::atlas_to_text(*atlas, 1);
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("hot-kernel atlas"), std::string::npos);
}

}  // namespace
