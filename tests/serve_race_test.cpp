// TSan-targeted stress for the serving layer (label: sanitize): many
// concurrent submitters, a metrics scraper reading the global registry
// from its own thread, and shutdown fired mid-flight. The assertions are
// deliberately weak (every future resolves exactly once with a terminal
// status) — the point is to drive every cross-thread edge the service has
// while the race detector watches.
#include "serve/service.h"

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace ppg {
namespace {

using serve::GuessService;
using serve::Reject;
using serve::Request;
using serve::RequestKind;
using serve::Response;
using serve::ServiceConfig;
using serve::Status;

class ServeRaceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    model_ = new gpt::GptModel(gpt::Config::tiny(), 99);
    patterns_ = new pcfg::PatternDistribution();
    patterns_->add("L4N2", 3);
    patterns_->add("N4", 2);
    patterns_->add("L6", 1);
    patterns_->finalize();
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete patterns_;
    patterns_ = nullptr;
  }

  static Request req(const char* pattern, std::size_t count,
                     std::uint64_t seed) {
    Request r;
    r.kind = RequestKind::kPattern;
    r.pattern = pattern;
    r.count = count;
    r.seed = seed;
    return r;
  }

  static gpt::GptModel* model_;
  static pcfg::PatternDistribution* patterns_;
};

gpt::GptModel* ServeRaceTest::model_ = nullptr;
pcfg::PatternDistribution* ServeRaceTest::patterns_ = nullptr;

/// Scrapes the global metrics registry in a tight loop until stopped —
/// exporter reads must be race-free against the lock-free update paths.
class Scraper {
 public:
  explicit Scraper(const GuessService& svc)
      : thread_([this, &svc] {
          while (!stop_.load(std::memory_order_relaxed)) {
            scraped_bytes_ += svc.queued();
            scraped_bytes_ += obs::Registry::global().to_text().size();
            scraped_bytes_ += obs::Registry::global().to_json().size();
          }
        }) {}
  ~Scraper() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::size_t scraped_bytes_ = 0;
  std::thread thread_;
};

TEST_F(ServeRaceTest, ConcurrentSubmittersAndScraper) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue = 64;
  cfg.max_batch = 8;
  GuessService svc(*model_, *patterns_, cfg);
  Scraper scraper(svc);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 12;
  const char* kPatterns[] = {"L4N2", "N4", "L6"};
  std::vector<std::future<Response>> futures[kThreads];
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Request r = req(kPatterns[(t + i) % 3], 1 + i % 3,
                        static_cast<std::uint64_t>(t * 1000 + i));
        if (i % 4 == 3) r.timeout_ms = 0.01;  // expire some while queued
        futures[t].push_back(svc.submit(std::move(r)));
      }
    });
  }
  for (auto& s : submitters) s.join();

  int ok = 0, timeout = 0, rejected = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const Response r = f.get();  // resolves exactly once, never hangs
      switch (r.status) {
        case Status::kOk: ++ok; break;
        case Status::kTimeout: ++timeout; break;
        case Status::kRejected: ++rejected; break;
      }
      if (r.status == Status::kRejected) {
        EXPECT_EQ(r.reject, Reject::kQueueFull) << r.error;
      }
    }
  }
  EXPECT_EQ(ok + timeout + rejected, kThreads * kPerThread);
  EXPECT_GT(ok, 0);
}

TEST_F(ServeRaceTest, ShutdownMidFlight) {
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue = 128;
  GuessService svc(*model_, *patterns_, cfg);

  std::atomic<bool> go{false};
  constexpr int kThreads = 3;
  constexpr int kPerThread = 20;
  std::vector<std::future<Response>> futures[kThreads];
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i)
        futures[t].push_back(
            svc.submit(req("L4N2", 2, static_cast<std::uint64_t>(i))));
    });
  }
  go.store(true);
  // Shut down while submitters are still pumping: late submissions must be
  // rejected with kShuttingDown, admitted ones drained to a terminal state.
  svc.shutdown();
  svc.shutdown();  // idempotent, racing the first is also legal
  for (auto& s : submitters) s.join();

  int resolved = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const Response r = f.get();
      ++resolved;
      if (r.status == Status::kRejected) {
        EXPECT_TRUE(r.reject == Reject::kShuttingDown ||
                    r.reject == Reject::kQueueFull)
            << r.error;
      }
    }
  }
  EXPECT_EQ(resolved, kThreads * kPerThread);
}

TEST_F(ServeRaceTest, StopMidFlightRejectsRatherThanDrops) {
  // stop() is the fast path the fleet router uses when tearing down a
  // worker: admission closes and drain-admitted requests are *rejected*
  // with kShuttingDown — never silently dropped. The regression this
  // guards: an early stop() implementation abandoned queue_ entries that
  // were admitted but never scheduled, leaving their futures unresolved
  // and f.get() below hanging forever.
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.max_queue = 256;
  GuessService svc(*model_, *patterns_, cfg);

  std::atomic<bool> go{false};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::future<Response>> futures[kThreads];
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i)
        futures[t].push_back(svc.submit(
            req("L4N2", 2, static_cast<std::uint64_t>(t * 100 + i))));
    });
  }
  go.store(true);
  svc.stop();
  svc.stop();      // idempotent
  svc.shutdown();  // stop() then shutdown() is the router teardown order
  for (auto& s : submitters) s.join();

  int resolved = 0, ok = 0, rejected = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const Response r = f.get();  // must never hang: stop() names all work
      ++resolved;
      switch (r.status) {
        case Status::kOk:
          ++ok;
          // In-flight rows complete with what they have; nothing invalid.
          EXPECT_LE(r.passwords.size(), 2u);
          break;
        case Status::kTimeout:
          break;  // legal if a deadline raced the stop
        case Status::kRejected:
          ++rejected;
          EXPECT_TRUE(r.reject == Reject::kShuttingDown ||
                      r.reject == Reject::kQueueFull)
              << r.error;
          break;
      }
    }
  }
  EXPECT_EQ(resolved, kThreads * kPerThread);
  // The race window is wide (100 submits vs an immediate stop), so at
  // least one side of it must have fired; all-ok would mean stop() waited
  // for the full drain, all-rejected that admission never opened.
  EXPECT_GT(ok + rejected, 0);
}

TEST_F(ServeRaceTest, ThreadPoolSubmitDrainStopRace) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        try {
          pool.submit([&done] { done.fetch_add(1); });
        } catch (const std::runtime_error&) {
          return;  // pool stopped underneath us: allowed
        }
      }
    });
  }
  pool.drain();  // racing the producers: only a fence, not a quiescent point
  for (auto& p : producers) p.join();
  pool.drain();
  const int submitted = done.load();
  pool.stop();
  EXPECT_EQ(done.load(), submitted);  // drain-then-stop ran everything
}

}  // namespace
}  // namespace ppg
