#include "gpt/sampler.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/masks.h"
#include "tokenizer/tokenizer.h"

namespace ppg::gpt {
namespace {

using tok::Tokenizer;

TEST(SampleFromLogits, GreedyAtLowTemperature) {
  const std::vector<float> logits = {0.f, 5.f, 1.f, -2.f};
  SampleOptions opts;
  opts.temperature = 0.01f;
  Rng rng(1);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(sample_from_logits(logits, rng, opts), 1);
}

TEST(SampleFromLogits, FollowsDistributionAtUnitTemperature) {
  // Two tokens with logit gap log(3): expect ~75/25 split.
  const std::vector<float> logits = {std::log(3.f), 0.f};
  SampleOptions opts;
  Rng rng(2);
  int zero = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (sample_from_logits(logits, rng, opts) == 0) ++zero;
  EXPECT_NEAR(double(zero) / n, 0.75, 0.02);
}

TEST(SampleFromLogits, TopKRestricts) {
  const std::vector<float> logits = {5.f, 4.f, 3.f, 2.f, 1.f};
  SampleOptions opts;
  opts.top_k = 2;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const int s = sample_from_logits(logits, rng, opts);
    EXPECT_TRUE(s == 0 || s == 1) << s;
  }
}

TEST(SampleFromLogits, TopPRestrictsToNucleus) {
  // Probabilities ~ {0.97, 0.01, ...}: top_p=0.9 keeps only token 0.
  const std::vector<float> logits = {10.f, 5.4f, 5.3f, 5.2f, 5.1f};
  SampleOptions opts;
  opts.top_p = 0.9;
  Rng rng(4);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(sample_from_logits(logits, rng, opts), 0);
}

TEST(SampleFromLogits, MaskedTokensNeverSampled) {
  std::vector<float> logits = {5.f, 4.f, 3.f};
  logits[0] = -1e30f;
  SampleOptions opts;
  Rng rng(5);
  for (int i = 0; i < 200; ++i)
    EXPECT_NE(sample_from_logits(logits, rng, opts), 0);
}

TEST(SampleFromLogits, AllMaskedReturnsSentinel) {
  const std::vector<float> logits = {-1e30f, -1e30f};
  SampleOptions opts;
  Rng rng(6);
  EXPECT_EQ(sample_from_logits(logits, rng, opts), -1);
}

TEST(SamplePasswords, ReturnsRequestedCount) {
  const GptModel m(Config::tiny(), 7);
  Rng rng(8);
  const std::vector<int> prefix = {Tokenizer::kBos};
  SampleOptions opts;
  opts.batch_size = 16;
  SampleStats stats;
  const auto pws = sample_passwords(m, prefix, 40, rng, opts, nullptr, &stats);
  // An untrained model emits mostly-invalid sequences; the budget may stop
  // short, but whatever is returned must decode to nonempty strings.
  EXPECT_LE(pws.size(), 40u);
  EXPECT_GE(stats.sequences_run, pws.size());
  for (const auto& pw : pws) EXPECT_FALSE(pw.empty());
}

TEST(SamplePasswords, ZeroCountIsEmpty) {
  const GptModel m(Config::tiny(), 9);
  Rng rng(10);
  const std::vector<int> prefix = {Tokenizer::kBos};
  EXPECT_TRUE(sample_passwords(m, prefix, 0, rng).empty());
}

TEST(SamplePasswords, PatternMaskForcesConformance) {
  const GptModel m(Config::tiny(), 11);  // untrained: worst case for masks
  Rng rng(12);
  const auto pattern = *pcfg::parse_pattern("L3N2");
  const std::vector<int> prefix = {Tokenizer::kBos};
  const auto mask = core::make_pattern_mask(pattern);
  SampleOptions opts;
  opts.batch_size = 8;
  const auto pws = sample_passwords(m, prefix, 30, rng, opts, mask);
  EXPECT_FALSE(pws.empty());
  for (const auto& pw : pws)
    EXPECT_TRUE(pcfg::matches_pattern(pw, pattern)) << pw;
}

TEST(SamplePasswords, MaskWithOffsetSkipsPrefixChars) {
  const GptModel m(Config::tiny(), 13);
  Rng rng(14);
  const auto pattern = *pcfg::parse_pattern("L2N2");
  // Prefix already contains "a": remaining suffix is L1N2.
  std::vector<int> prefix = {Tokenizer::kBos, Tokenizer::char_token('a')};
  const auto mask = core::make_pattern_mask(pattern, 1);
  const auto pws = sample_passwords(m, prefix, 20, rng, {}, mask);
  for (const auto& pw : pws) {
    EXPECT_TRUE(pcfg::matches_pattern(pw, pattern)) << pw;
    EXPECT_EQ(pw[0], 'a');
  }
}

TEST(SamplePasswords, DeterministicForSameRngSeed) {
  const GptModel m(Config::tiny(), 15);
  const auto pattern = *pcfg::parse_pattern("L4");
  const std::vector<int> prefix = {Tokenizer::kBos};
  const auto mask = core::make_pattern_mask(pattern);
  Rng r1(99), r2(99);
  const auto a = sample_passwords(m, prefix, 10, r1, {}, mask);
  const auto b = sample_passwords(m, prefix, 10, r2, {}, mask);
  EXPECT_EQ(a, b);
}

TEST(SamplePasswords, StatsCountInvalids) {
  const GptModel m(Config::tiny(), 16);
  Rng rng(17);
  const std::vector<int> prefix = {Tokenizer::kBos};
  SampleStats stats;
  sample_passwords(m, prefix, 20, rng, {}, nullptr, &stats);
  EXPECT_GT(stats.sequences_run, 0u);
}

}  // namespace
}  // namespace ppg::gpt
