// Tests for the text-table renderer and number formatting used by every
// bench binary (their output is the reproduction record, so formatting is
// load-bearing).
#include "eval/report.h"

#include <gtest/gtest.h>

namespace ppg::eval {
namespace {

TEST(Pct, FormatsTwoDecimals) {
  EXPECT_EQ(pct(0.12345), "12.35%");
  EXPECT_EQ(pct(0.0), "0.00%");
  EXPECT_EQ(pct(1.0), "100.00%");
}

TEST(Num, RespectsPrecision) {
  EXPECT_EQ(num(3.14159, 2), "3.14");
  EXPECT_EQ(num(3.0, 0), "3");
}

TEST(Count, FormatsIntegers) {
  EXPECT_EQ(count(0), "0");
  EXPECT_EQ(count(1234567), "1234567");
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"Name", "Value"});
  t.add_row({"short", "1"});
  t.add_row({"a-much-longer-name", "22"});
  ::testing::internal::CaptureStdout();
  t.print("demo");
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| Name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Separator row present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, HandlesShortRows) {
  Table t({"A", "B", "C"});
  t.add_row({"only-one"});
  ::testing::internal::CaptureStdout();
  t.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table t({"X"});
  ::testing::internal::CaptureStdout();
  t.print();
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("| X"), std::string::npos);
}

}  // namespace
}  // namespace ppg::eval
